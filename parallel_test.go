package bos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func parallelTestSeries(n int) []int64 {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, n)
	v := int64(0)
	for i := range vals {
		if rng.Float64() < 0.01 {
			v += rng.Int63n(1 << 30)
		} else {
			v += int64(rng.Intn(32)) - 16
		}
		vals[i] = v
	}
	return vals
}

func TestParallelMatchesSequential(t *testing.T) {
	vals := parallelTestSeries(50_000)
	opt := Options{Planner: PlannerBitWidth, BlockSize: 1024}

	var seq bytes.Buffer
	w := NewWriter(&seq, opt)
	if err := w.WriteValues(vals...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		par := CompressParallel(vals, opt, workers)
		if !bytes.Equal(par, seq.Bytes()) {
			t.Fatalf("workers=%d: parallel output differs from sequential (%d vs %d bytes)",
				workers, len(par), seq.Len())
		}
	}
}

func TestParallelRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1024, 1025, 30_000} {
		vals := parallelTestSeries(n)
		enc := CompressParallel(vals, Options{}, 4)
		got, err := DecompressParallel(enc, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("n=%d: got %d values", n, len(got))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d value %d mismatch", n, i)
			}
		}
		// Interop: the sequential reader must accept parallel output.
		got2, err := ReadAll(bytes.NewReader(enc))
		if err != nil || len(got2) != len(vals) {
			t.Fatalf("n=%d: ReadAll on parallel output: %v", n, err)
		}
	}
}

func TestDecompressParallelCorrupt(t *testing.T) {
	vals := parallelTestSeries(10_000)
	enc := CompressParallel(vals, Options{}, 4)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		cor := append([]byte(nil), enc...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		DecompressParallel(cor, 4) // must never panic
	}
}

func BenchmarkDecompressParallel(b *testing.B) {
	vals := parallelTestSeries(1 << 18)
	enc := CompressParallel(vals, Options{}, 0)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := DecompressParallel(enc, workers)
				if err != nil || len(got) != len(vals) {
					b.Fatalf("decode: n=%d err=%v", len(got), err)
				}
			}
		})
	}
}

func BenchmarkCompressParallel(b *testing.B) {
	vals := parallelTestSeries(1 << 18)
	for _, workers := range []int{1, 4} {
		name := "workers=1"
		if workers == 4 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				CompressParallel(vals, Options{}, workers)
			}
		})
	}
}
