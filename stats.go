package bos

import (
	"fmt"

	"bos/internal/codec"
	"bos/internal/core"
)

// StreamStats summarizes what the compressor did to a stream: which pipeline
// and post stage it used, how many blocks chose outlier separation versus
// plain packing, and how many values were separated as lower/upper outliers.
// It is the programmatic counterpart of cmd/bosinspect.
type StreamStats struct {
	Kind      string // "int", "float" (scaled) or "float-raw"
	Pipeline  Pipeline
	Post      Post
	BlockSize int

	Blocks          int
	BOSBlocks       int
	PlainBlocks     int
	PartsBlocks     int
	Values          int // values carried by the inspected blocks
	LowerOutliers   int
	UpperOutliers   int
	CompressedBytes int
}

// Stats inspects a stream produced by Compress or CompressFloats without
// materializing the decoded values (block payloads are still scanned to find
// boundaries).
func Stats(src []byte) (StreamStats, error) {
	var st StreamStats
	kind, pl, post, bs, rest, err := readHeader(src)
	if err != nil {
		return st, err
	}
	st.Pipeline, st.Post, st.BlockSize = pl, post, bs
	st.CompressedBytes = len(src)
	switch kind {
	case kindInt:
		st.Kind = "int"
	case kindFloat:
		st.Kind = "float"
		if _, rest, err = codec.ReadUvarint(rest); err != nil {
			return st, fmt.Errorf("%w: precision", ErrCorrupt)
		}
	case kindFloatRaw:
		st.Kind = "float-raw"
		return st, nil // raw payload has no blocks
	default:
		return st, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	if rest, err = undoPost(rest, post); err != nil {
		return st, fmt.Errorf("%w: post stage: %v", ErrCorrupt, err)
	}
	// Every pipeline starts with the total value count; RLE adds the run
	// count, and its blocks then carry runs rather than values.
	total, rest, err := codec.ReadUvarint(rest)
	if err != nil {
		return st, fmt.Errorf("%w: count", ErrCorrupt)
	}
	expect := total
	if pl == PipelineRLE {
		runs, r, err := codec.ReadUvarint(rest)
		if err != nil {
			return st, fmt.Errorf("%w: run count", ErrCorrupt)
		}
		rest = r
		expect = runs
	}
	var seen uint64
	for seen < expect {
		info, r, err := core.InspectBlock(rest)
		if err != nil {
			return st, fmt.Errorf("%w: block %d: %v", ErrCorrupt, st.Blocks, err)
		}
		st.Blocks++
		st.Values += info.N
		switch info.Mode {
		case "bos":
			st.BOSBlocks++
			st.LowerOutliers += info.NL
			st.UpperOutliers += info.NU
		case "parts":
			st.PartsBlocks++
		default:
			st.PlainBlocks++
		}
		seen += uint64(info.N)
		rest = r
	}
	return st, nil
}
