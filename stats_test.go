package bos

import (
	"math/rand"
	"testing"
)

func TestStatsIntStream(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	vals := make([]int64, 5000)
	v := int64(0)
	for i := range vals {
		if rng.Float64() < 0.02 {
			v += rng.Int63n(1<<30) - 1<<29
		} else {
			v += int64(rng.Intn(9)) - 4
		}
		vals[i] = v
	}
	enc := Compress(nil, vals, Options{})
	st, err := Stats(enc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "int" || st.Pipeline != PipelineDelta || st.Post != PostNone {
		t.Fatalf("stats = %+v", st)
	}
	if st.Blocks != 5 || st.Values != 5000 {
		t.Fatalf("blocks=%d values=%d", st.Blocks, st.Values)
	}
	if st.BOSBlocks == 0 || st.LowerOutliers == 0 || st.UpperOutliers == 0 {
		t.Fatalf("separation not visible: %+v", st)
	}
	if st.CompressedBytes != len(enc) {
		t.Errorf("bytes = %d want %d", st.CompressedBytes, len(enc))
	}
}

func TestStatsPipelinesAndKinds(t *testing.T) {
	vals := []int64{5, 5, 5, 9, 9, 1}
	for _, pl := range []Pipeline{PipelineDelta, PipelineRaw, PipelineRLE} {
		st, err := Stats(Compress(nil, vals, Options{Pipeline: pl}))
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		if st.Pipeline != pl || st.Blocks == 0 {
			t.Fatalf("%v: %+v", pl, st)
		}
	}
	st, err := Stats(CompressFloats(nil, []float64{1.5, 2.5}, Options{}))
	if err != nil || st.Kind != "float" {
		t.Fatalf("float stats %+v err %v", st, err)
	}
	st, err = Stats(CompressFloats(nil, []float64{1.0 / 3.0}, Options{}))
	if err != nil || st.Kind != "float-raw" {
		t.Fatalf("raw stats %+v err %v", st, err)
	}
}

func TestStatsPostStage(t *testing.T) {
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	st, err := Stats(Compress(nil, vals, Options{Post: PostLZ}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Post != PostLZ || st.Blocks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	base := Compress(nil, []int64{1, 2, 3, 100000}, Options{})
	for i := 0; i < 1500; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		Stats(cor)
	}
	if _, err := Stats(nil); err == nil {
		t.Error("empty input accepted")
	}
}
