package bos

import "testing"

// FuzzDecompress: arbitrary bytes through the public integer decoder must
// never panic.
func FuzzDecompress(f *testing.F) {
	f.Add(Compress(nil, []int64{1, 2, 3, 1000000, -5}, Options{}))
	f.Add(Compress(nil, []int64{7, 7, 7}, Options{Pipeline: PipelineRLE}))
	f.Add([]byte{magic0, magic1, kindInt, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		Decompress(data)
		DecompressFloats(data)
	})
}

// FuzzCompressValues: any reinterpreted int64 payload must round-trip.
func FuzzCompressValues(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, planner, pipeline uint8) {
		vals := make([]int64, len(data)/8)
		for i := range vals {
			b := data[i*8:]
			vals[i] = int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
				uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40 |
				uint64(b[6])<<48 | uint64(b[7])<<56)
		}
		opt := Options{Planner: Planner(planner % 4), Pipeline: Pipeline(pipeline % 3)}
		got, err := Decompress(Compress(nil, vals, opt))
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("%+v: %d values want %d", opt, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%+v: value %d mismatch", opt, i)
			}
		}
	})
}
