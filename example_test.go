package bos_test

import (
	"bytes"
	"fmt"

	"bos"
)

// The paper's motivating series: the outlier 0 and the outlier 8 force plain
// bit-packing to 4 bits per value; separating them leaves a 2-bit center.
func ExampleAnalyzeBlock() {
	plan := bos.AnalyzeBlock([]int64{3, 2, 4, 5, 3, 2, 0, 8}, bos.PlannerBitWidth)
	fmt.Println("separated:", plan.Separated)
	fmt.Println("lower outliers:", plan.LowerCount)
	fmt.Println("upper outliers:", plan.UpperCount)
	fmt.Println("center bits:", plan.CenterBits)
	fmt.Println("cost bits:", plan.CostBits)
	// Output:
	// separated: true
	// lower outliers: 1
	// upper outliers: 1
	// center bits: 2
	// cost bits: 24
}

func ExampleCompress() {
	values := []int64{100, 102, 101, 103, 100, 5_000_000, 102, 101}
	enc := bos.Compress(nil, values, bos.Options{Pipeline: bos.PipelineRaw})
	dec, err := bos.Decompress(enc)
	fmt.Println(err, len(dec) == len(values))
	// Output: <nil> true
}

func ExampleCompressFloats() {
	readings := []float64{20.1, 20.3, 20.2, 0.1, 20.4}
	enc := bos.CompressFloats(nil, readings, bos.Options{})
	dec, err := bos.DecompressFloats(enc)
	fmt.Println(err, dec[3])
	// Output: <nil> 0.1
}

func ExampleWriter() {
	var file bytes.Buffer
	w := bos.NewWriter(&file, bos.Options{BlockSize: 4})
	w.WriteValues(1, 2, 3, 4, 5, 6)
	w.Close()

	vals, err := bos.ReadAll(&file)
	fmt.Println(err, vals)
	// Output: <nil> [1 2 3 4 5 6]
}
