package bos

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Writer streams int64 values to an io.Writer as a sequence of
// length-prefixed compressed segments, one per block of Options.BlockSize
// values. It mirrors the block-file layout BOS uses inside Apache
// IoTDB/TsFile (Section VII of the paper): each segment is self-contained,
// so a reader can scan block by block without decoding the whole file.
type Writer struct {
	w   io.Writer
	opt Options
	buf []int64
	scr []byte
	err error
}

// NewWriter returns a Writer with the given options.
func NewWriter(w io.Writer, opt Options) *Writer {
	return &Writer{w: w, opt: opt, buf: make([]int64, 0, blockSizeOf(opt))}
}

// WriteValues appends values to the stream, emitting full segments as blocks
// fill up.
func (w *Writer) WriteValues(vals ...int64) error {
	if w.err != nil {
		return w.err
	}
	bs := blockSizeOf(w.opt)
	for len(vals) > 0 {
		take := bs - len(w.buf)
		if take > len(vals) {
			take = len(vals)
		}
		w.buf = append(w.buf, vals[:take]...)
		vals = vals[take:]
		if len(w.buf) == bs {
			w.err = w.emit()
			if w.err != nil {
				return w.err
			}
		}
	}
	return nil
}

// emit writes the buffered values as one segment.
func (w *Writer) emit() error {
	seg := Compress(w.scr[:0], w.buf, w.opt)
	w.scr = seg
	w.buf = w.buf[:0]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(seg)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(seg)
	return err
}

// Flush writes any buffered values as a final (possibly short) segment.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		w.err = w.emit()
	}
	return w.err
}

// Close flushes the writer. It does not close the underlying io.Writer.
func (w *Writer) Close() error { return w.Flush() }

// Reader decodes a stream produced by Writer, one segment at a time.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the values of the next segment, or io.EOF when the stream is
// exhausted.
func (r *Reader) Next() ([]int64, error) {
	segLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: segment length: %v", ErrCorrupt, err)
	}
	if segLen > 1<<31 {
		return nil, fmt.Errorf("%w: segment of %d bytes", ErrCorrupt, segLen)
	}
	seg := make([]byte, segLen)
	if _, err := io.ReadFull(r.r, seg); err != nil {
		return nil, fmt.Errorf("%w: segment body: %v", ErrCorrupt, err)
	}
	return Decompress(seg)
}

// ReadAll drains a stream produced by Writer into one slice.
func ReadAll(r io.Reader) ([]int64, error) {
	br := NewReader(r)
	var out []int64
	for {
		vals, err := br.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
}
