package bos

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestFloatStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	var want []float64
	var buf bytes.Buffer
	w := NewFloatWriter(&buf, Options{BlockSize: 128})
	for i := 0; i < 10; i++ {
		chunk := make([]float64, rng.Intn(300))
		for j := range chunk {
			chunk[j] = math.Round(rng.NormFloat64()*1000) / 10
		}
		want = append(want, chunk...)
		if err := w.WriteValues(chunk...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFloats(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestFloatStreamMixedSegments(t *testing.T) {
	// One segment of decimals (scaled path) and one of irrationals (raw
	// path) in the same stream.
	var buf bytes.Buffer
	w := NewFloatWriter(&buf, Options{BlockSize: 4})
	w.WriteValues(1.5, 2.5, 3.5, 4.5)          // scaled segment
	w.WriteValues(math.Pi, math.E, 1.0/3.0, 0) // raw segment
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFloats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5, 4.5, math.Pi, math.E, 1.0 / 3.0, 0}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestFloatStreamEmptyAndTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewFloatWriter(&buf, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFloats(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d values err %v", len(got), err)
	}

	w = NewFloatWriter(&buf, Options{})
	w.WriteValues(1.5, 2.5)
	w.Close()
	full := append([]byte(nil), buf.Bytes()...)
	for cut := 1; cut < len(full)-1; cut++ {
		if _, err := ReadAllFloats(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut %d accepted", cut)
		}
	}
}

func TestFloatStreamPlainIOReader(t *testing.T) {
	// A reader without ReadByte exercises the fallback framing.
	var buf bytes.Buffer
	w := NewFloatWriter(&buf, Options{})
	w.WriteValues(7.25, 8.75)
	w.Close()
	got, err := ReadAllFloats(onlyReader{&buf})
	if err != nil || len(got) != 2 || got[0] != 7.25 {
		t.Fatalf("got %v err %v", got, err)
	}
}

type onlyReader struct{ r *bytes.Buffer }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }
