package transform

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/core"
)

func roundTrip(t *testing.T, c *Codec, vals []int64) []byte {
	t.Helper()
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d: got %d want %d", c.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func codecs() []*Codec {
	return []*Codec{
		New(DCT, bitpack.Packer{}, 0),
		New(FFT, bitpack.Packer{}, 0),
		New(DCT, core.NewPacker(core.SeparationBitWidth), 0),
		New(FFT, core.NewPacker(core.SeparationBitWidth), 0),
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{1, 2, 3},          // tail-only (raw path)
		make([]int64, 256), // exactly one zero block
		{math.MinInt64, math.MaxInt64, 0, -1, 5},
	}
	for _, c := range codecs() {
		for _, vals := range cases {
			roundTrip(t, c, vals)
		}
	}
}

func TestRoundTripSmoothSignal(t *testing.T) {
	// A smooth sinusoid: the transform's home turf.
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(1000*math.Sin(float64(i)/30) + 5000)
	}
	for _, c := range codecs() {
		roundTrip(t, c, vals)
	}
}

func TestRoundTripNoisyAndExtreme(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 256*3+17)
	for i := range vals {
		switch rng.Intn(10) {
		case 0:
			vals[i] = rng.Int63() - rng.Int63()
		default:
			vals[i] = int64(rng.NormFloat64() * 100)
		}
	}
	for _, c := range codecs() {
		roundTrip(t, c, vals)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		orig[i] = rng.NormFloat64() * 10
		re[i] = orig[i]
	}
	fft(re, im, false)
	for k := 0; k < n; k++ {
		var wantRe, wantIm float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			wantRe += orig[j] * math.Cos(ang)
			wantIm += orig[j] * math.Sin(ang)
		}
		if math.Abs(re[k]-wantRe) > 1e-6*(1+math.Abs(wantRe)) ||
			math.Abs(im[k]-wantIm) > 1e-6*(1+math.Abs(wantIm)) {
			t.Fatalf("bin %d: got (%g,%g) want (%g,%g)", k, re[k], im[k], wantRe, wantIm)
		}
	}
}

func TestFFTInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		orig[i] = rng.NormFloat64()
		re[i] = orig[i]
	}
	fft(re, im, false)
	fft(re, im, true)
	for i := range orig {
		if math.Abs(re[i]/float64(n)-orig[i]) > 1e-9 {
			t.Fatalf("index %d: got %g want %g", i, re[i]/float64(n), orig[i])
		}
	}
}

func TestSmoothSignalSmallResiduals(t *testing.T) {
	// On a smooth signal the DCT residuals must be tiny, so the encoded
	// size should be far below the raw 8 bytes/value.
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(100000 * math.Sin(float64(i)/100))
	}
	c := New(DCT, bitpack.Packer{}, 0)
	enc := roundTrip(t, c, vals)
	if len(enc) > len(vals)*4 {
		t.Errorf("smooth signal: %d bytes for %d values", len(enc), len(vals))
	}
}

func TestBlockSizeRounding(t *testing.T) {
	c := New(FFT, bitpack.Packer{}, 300) // not a power of two
	if c.BlockSize != 256 {
		t.Errorf("block size %d want 256", c.BlockSize)
	}
	roundTrip(t, c, make([]int64, 700))
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New(DCT, bitpack.Packer{}, 64)
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	base := c.Encode(nil, vals)
	for i := 0; i < 1000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func BenchmarkDCTEncode(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(1000 * math.Sin(float64(i)/50))
	}
	c := New(DCT, bitpack.Packer{}, 0)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}

func BenchmarkFFTEncode(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(1000 * math.Sin(float64(i)/50))
	}
	c := New(FFT, bitpack.Packer{}, 0)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}
