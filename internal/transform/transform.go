// Package transform implements the lossless frequency-domain pipelines of the
// Figure 13 complementarity study: a DCT-II and a radix-2 FFT front end whose
// quantized coefficients act as a predictor, with the exact integer residuals
// stored alongside. Both coefficient and residual streams are packed by a
// pluggable codec.Packer, so the study can compare DCT+BP against DCT+BOS
// (and FFT likewise).
//
// Losslessness is guaranteed structurally: the decoder recomputes the same
// inverse transform from the same stored integer coefficients and adds the
// stored residual using wrapping arithmetic, so the round trip is exact no
// matter how the floating-point predictor behaves. (The encoded form is
// deterministic for a given platform's libm; see DESIGN.md.)
package transform

import (
	"fmt"
	"math"

	"bos/internal/codec"
)

// Kind selects the frequency transform.
type Kind int

const (
	// DCT uses the type-II discrete cosine transform.
	DCT Kind = iota
	// FFT uses a radix-2 fast Fourier transform with Hermitian packing.
	FFT
)

func (k Kind) String() string {
	if k == FFT {
		return "FFT"
	}
	return "DCT"
}

// Codec is a lossless transform codec over a pluggable packer. BlockSize must
// be a power of two (the FFT requirement); the default is 256.
type Codec struct {
	Kind      Kind
	Packer    codec.Packer
	BlockSize int

	cosTable []float64 // lazily built DCT basis for BlockSize
}

// New returns a transform codec (block size defaults to 256 and is rounded
// down to a power of two).
func New(kind Kind, p codec.Packer, blockSize int) *Codec {
	if blockSize <= 0 {
		blockSize = 256
	}
	for blockSize&(blockSize-1) != 0 {
		blockSize &= blockSize - 1 // clear lowest bit until power of two
	}
	return &Codec{Kind: kind, Packer: p, BlockSize: blockSize}
}

// Name implements codec.IntCodec.
func (c *Codec) Name() string { return c.Kind.String() + "+" + c.Packer.Name() }

// Block flags.
const (
	flagTransform byte = 0
	flagRaw       byte = 1
)

// clampRound rounds to int64, clamping to +-2^62 so downstream integer
// arithmetic cannot overflow.
func clampRound(x float64) int64 {
	const lim = float64(1 << 62)
	if x != x { // NaN guard: deterministic zero
		return 0
	}
	if x >= lim {
		return 1 << 62
	}
	if x <= -lim {
		return -(1 << 62)
	}
	return int64(math.Round(x))
}

// Encode implements codec.IntCodec.
func (c *Codec) Encode(dst []byte, vals []int64) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(vals)))
	for off := 0; off < len(vals); off += c.BlockSize {
		end := off + c.BlockSize
		if end > len(vals) {
			end = len(vals)
		}
		block := vals[off:end]
		if len(block) != c.BlockSize {
			// Tail blocks are not a power of two: store raw.
			dst = append(dst, flagRaw)
			dst = c.Packer.Pack(dst, block)
			continue
		}
		dst = append(dst, flagTransform)
		coeffs := c.forward(block)
		recon := c.inverse(coeffs, len(block))
		residual := make([]int64, len(block))
		for i, v := range block {
			residual[i] = int64(uint64(v) - uint64(recon[i]))
		}
		dst = c.Packer.Pack(dst, coeffs)
		dst = c.Packer.Pack(dst, residual)
	}
	return dst
}

// Decode implements codec.IntCodec.
func (c *Codec) Decode(src []byte) ([]int64, error) {
	n64, src, err := codec.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("transform: count: %w", err)
	}
	if n64 > uint64(codec.MaxBlockLen)*64 {
		return nil, fmt.Errorf("transform: implausible count %d", n64)
	}
	n := int(n64)
	out := make([]int64, 0, n)
	for len(out) < n {
		if len(src) == 0 {
			return nil, fmt.Errorf("transform: truncated at %d/%d", len(out), n)
		}
		flag := src[0]
		src = src[1:]
		switch flag {
		case flagRaw:
			before := len(out)
			out, src, err = c.Packer.Unpack(src, out)
			if err != nil {
				return nil, fmt.Errorf("transform: raw block: %w", err)
			}
			if len(out) == before {
				return nil, fmt.Errorf("transform: empty raw block at %d/%d", len(out), n)
			}
		case flagTransform:
			var coeffs, residual []int64
			coeffs, src, err = c.Packer.Unpack(src, nil)
			if err != nil {
				return nil, fmt.Errorf("transform: coefficients: %w", err)
			}
			residual, src, err = c.Packer.Unpack(src, nil)
			if err != nil {
				return nil, fmt.Errorf("transform: residual: %w", err)
			}
			if len(residual) != c.BlockSize || len(coeffs) != c.coeffCount() {
				return nil, fmt.Errorf("transform: block shape %d/%d", len(coeffs), len(residual))
			}
			recon := c.inverse(coeffs, c.BlockSize)
			for i, r := range residual {
				out = append(out, int64(uint64(recon[i])+uint64(r)))
			}
		default:
			return nil, fmt.Errorf("transform: unknown block flag %d", flag)
		}
		if len(out) > n {
			return nil, fmt.Errorf("transform: overran %d/%d values", len(out), n)
		}
	}
	return out, nil
}

// coeffCount is the number of stored integer coefficients per full block.
func (c *Codec) coeffCount() int {
	if c.Kind == FFT {
		return 2 * (c.BlockSize/2 + 1) // Hermitian half-spectrum, re+im
	}
	return c.BlockSize
}

// forward computes the quantized transform of one full block.
func (c *Codec) forward(block []int64) []int64 {
	if c.Kind == FFT {
		return c.forwardFFT(block)
	}
	return c.forwardDCT(block)
}

// inverse reconstructs the integer predictor from quantized coefficients.
func (c *Codec) inverse(coeffs []int64, n int) []int64 {
	if c.Kind == FFT {
		return c.inverseFFT(coeffs, n)
	}
	return c.inverseDCT(coeffs, n)
}

// ---- DCT-II / DCT-III ----

func (c *Codec) basis(n, k int) float64 {
	N := c.BlockSize
	if c.cosTable == nil {
		c.cosTable = make([]float64, N*N)
		for nn := 0; nn < N; nn++ {
			for kk := 0; kk < N; kk++ {
				c.cosTable[nn*N+kk] = math.Cos(math.Pi / float64(N) * (float64(nn) + 0.5) * float64(kk))
			}
		}
	}
	return c.cosTable[n*c.BlockSize+k]
}

func (c *Codec) forwardDCT(block []int64) []int64 {
	N := len(block)
	coeffs := make([]int64, N)
	for k := 0; k < N; k++ {
		var sum float64
		for n := 0; n < N; n++ {
			sum += float64(block[n]) * c.basis(n, k)
		}
		coeffs[k] = clampRound(sum)
	}
	return coeffs
}

func (c *Codec) inverseDCT(coeffs []int64, n int) []int64 {
	N := n
	out := make([]int64, N)
	inv := 1.0 / float64(N)
	for i := 0; i < N; i++ {
		sum := float64(coeffs[0]) * inv
		for k := 1; k < N && k < len(coeffs); k++ {
			sum += 2 * inv * float64(coeffs[k]) * c.basis(i, k)
		}
		out[i] = clampRound(sum)
	}
	return out
}

// ---- radix-2 FFT ----

// fft performs an in-place iterative radix-2 FFT (inverse when inv is true,
// without the 1/N scaling).
func fft(re, im []float64, inv bool) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tRe := re[j]*curRe - im[j]*curIm
				tIm := re[j]*curIm + im[j]*curRe
				re[j], im[j] = re[i]-tRe, im[i]-tIm
				re[i], im[i] = re[i]+tRe, im[i]+tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

func (c *Codec) forwardFFT(block []int64) []int64 {
	N := len(block)
	re := make([]float64, N)
	im := make([]float64, N)
	for i, v := range block {
		re[i] = float64(v)
	}
	fft(re, im, false)
	half := N/2 + 1
	coeffs := make([]int64, 2*half)
	for k := 0; k < half; k++ {
		coeffs[2*k] = clampRound(re[k])
		coeffs[2*k+1] = clampRound(im[k])
	}
	return coeffs
}

func (c *Codec) inverseFFT(coeffs []int64, n int) []int64 {
	N := n
	re := make([]float64, N)
	im := make([]float64, N)
	half := N/2 + 1
	for k := 0; k < half && 2*k+1 < len(coeffs); k++ {
		re[k] = float64(coeffs[2*k])
		im[k] = float64(coeffs[2*k+1])
		if k > 0 && k < N/2 { // Hermitian mirror
			re[N-k] = re[k]
			im[N-k] = -im[k]
		}
	}
	fft(re, im, true)
	out := make([]int64, N)
	inv := 1.0 / float64(N)
	for i := 0; i < N; i++ {
		out[i] = clampRound(re[i] * inv)
	}
	return out
}
