package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// newTestServer opens an engine over dir and mounts a Server on httptest.
func newTestServer(t *testing.T, dir string) (*Client, *Server, func()) {
	t.Helper()
	eng, err := engine.Open(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Engine: eng, PackerName: "BOS-B"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cleanup := func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}
	return NewClient(ts.URL, ts.Client()), srv, cleanup
}

func TestServerEndToEnd(t *testing.T) {
	c, _, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	ints := make([]tsfile.Point, 100)
	for i := range ints {
		ints[i] = tsfile.Point{T: int64(i), V: int64(i * i)}
	}
	ack, err := c.Ingest("root.d1.temp", ints)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Points != 100 || ack.Series != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	floats := []tsfile.FloatPoint{{T: 1, V: 2.5}, {T: 2, V: 3}, {T: 3, V: -0.125}}
	if _, err := c.IngestFloats("root.d1.hum", floats); err != nil {
		t.Fatal(err)
	}

	got, err := c.Query("root.d1.temp", 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != (tsfile.Point{T: 10, V: 100}) || got[9] != (tsfile.Point{T: 19, V: 361}) {
		t.Fatalf("query: %+v", got)
	}
	gotF, err := c.QueryFloats("root.d1.hum", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotF) != 3 || gotF[0].V != 2.5 || gotF[1].V != 3 || gotF[2].V != -0.125 {
		t.Fatalf("float query: %+v", gotF)
	}

	agg, err := c.Agg("root.d1.temp", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 10 || agg.Min != 0 || agg.Max != 81 || agg.Sum != 285 {
		t.Fatalf("agg: %+v", agg)
	}

	buckets, err := c.Downsample("root.d1.temp", 0, 99, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 || buckets[0].Start != 0 || buckets[1].Start != 50 || buckets[0].Count != 50 {
		t.Fatalf("downsample: %+v", buckets)
	}

	names, err := c.Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "root.d1.hum" || names[1] != "root.d1.temp" {
		t.Fatalf("series: %v", names)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Packer != "BOS-B" || st.IngestPoints != 103 || st.SeriesCount != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Series) != 2 || st.Series[1].Kind != "int" || st.Series[0].Kind != "float" {
		t.Fatalf("per-series stats: %+v", st.Series)
	}
	if st.Cache.MaxBytes <= 0 {
		t.Fatalf("decoded-chunk cache counters missing from /stats: %+v", st.Cache)
	}
}

func TestServerErrors(t *testing.T) {
	c, _, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()

	if _, err := c.IngestLines([]byte("bad line\n")); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("malformed ingest: %v", err)
	}
	if _, err := c.Query("no.such", 0, 10); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown series: %v", err)
	}
	if _, err := c.Downsample("s", 0, 10, 0); err == nil {
		t.Fatal("zero window: want error")
	}
	// Kind conflict across batches: ints first, floats second.
	if _, err := c.IngestLines([]byte("k,1,1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestLines([]byte("k,2,2.5\n")); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("kind conflict: %v", err)
	}
	// Body size cap.
	eng, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	small, err := New(Options{Engine: eng, MaxBodyBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	ts := httptest.NewServer(small.Handler())
	defer ts.Close()
	sc := NewClient(ts.URL, ts.Client())
	if _, err := sc.IngestLines([]byte("series,100,100000\nseries,200,2\n")); err == nil ||
		!strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized body: %v", err)
	}
}

// TestShutdownKeepsAcknowledgedWrites is the restart-and-count test: every
// write acknowledged before a graceful shutdown must be present after
// reopening the data directory.
func TestShutdownKeepsAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	eng, err := engine.Open(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := NewClient(ts.URL, ts.Client())

	const total = 5000
	pts := make([]tsfile.Point, total)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i) * 3}
	}
	for off := 0; off < total; off += 500 {
		if _, err := c.Ingest("root.count", pts[off:off+500]); err != nil {
			t.Fatal(err)
		}
	}
	// Graceful shutdown: stop accepting, drain the committer, flush, close.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and count through a fresh server.
	c2, _, cleanup := newTestServer(t, dir)
	defer cleanup()
	agg, err := c2.Agg("root.count", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != total {
		t.Fatalf("after restart: %d points, want %d", agg.Count, total)
	}
	// Ingest after shutdown is refused, not hung.
	if _, err := c.Ingest("root.count", pts[:1]); err == nil {
		t.Fatal("ingest after shutdown: want error")
	}
}

func TestIngestAfterServerCloseReturns503(t *testing.T) {
	eng, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c := NewClient(ts.URL, ts.Client())
	_, err = c.IngestLines([]byte("s,1,2\n"))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want 503 after close, got %v", err)
	}
	// Reads still work on a closed server (engine is still open).
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
}
