// Package server is the network serving layer over the storage engine: an
// HTTP API (stdlib-only) with a batched line-protocol ingest path that
// group-commits concurrent client batches, streaming range-scan / aggregate /
// downsample query endpoints, stats and health reporting, and a typed Go
// client. cmd/bosserver wires it to a listener and doubles as a load
// generator.
package server

import (
	"bytes"
	"fmt"
	"strconv"

	"bos/internal/tsfile"
)

// The ingest line protocol: one point per line,
//
//	series,timestamp,value
//
// Timestamps are base-10 int64. A value containing '.', 'e' or 'E' is a
// float64 (decimal notation only — NaN, Inf and hex floats are rejected);
// anything else must be a base-10 int64. Blank lines and lines starting with
// '#' are skipped. A series holds one value kind: within a batch an
// integer-looking value joining a float series is promoted to float, and the
// engine rejects cross-batch kind changes.

const (
	// maxSeriesName bounds series name length; longer names are a client bug
	// (or an attack), not data.
	maxSeriesName = 512
	// maxBatchPoints bounds one request's point count, keeping a single
	// client from monopolizing the group committer.
	maxBatchPoints = 1 << 20
)

// batch is one parsed ingest request, grouped by series.
type batch struct {
	ints   map[string][]tsfile.Point
	floats map[string][]tsfile.FloatPoint
	points int
}

func newBatch() *batch {
	return &batch{ints: map[string][]tsfile.Point{}, floats: map[string][]tsfile.FloatPoint{}}
}

// parseBatch parses a full line-protocol request body. Errors carry the
// 1-based line number. It never panics, whatever the input (fuzzed).
func parseBatch(data []byte) (*batch, error) {
	b := newBatch()
	line := 0
	for len(data) > 0 {
		line++
		var row []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			row, data = data[:i], data[i+1:]
		} else {
			row, data = data, nil
		}
		row = bytes.TrimRight(row, "\r")
		row = bytes.TrimSpace(row)
		if len(row) == 0 || row[0] == '#' {
			continue
		}
		if err := b.addLine(row); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if b.points > maxBatchPoints {
			return nil, fmt.Errorf("line %d: batch exceeds %d points", line, maxBatchPoints)
		}
	}
	return b, nil
}

func (b *batch) addLine(row []byte) error {
	c1 := bytes.IndexByte(row, ',')
	if c1 < 0 {
		return fmt.Errorf("want series,timestamp,value")
	}
	rest := row[c1+1:]
	c2 := bytes.IndexByte(rest, ',')
	if c2 < 0 {
		return fmt.Errorf("want series,timestamp,value")
	}
	series := string(bytes.TrimSpace(row[:c1]))
	if err := checkSeriesName(series); err != nil {
		return err
	}
	tsText := string(bytes.TrimSpace(rest[:c2]))
	t, err := strconv.ParseInt(tsText, 10, 64)
	if err != nil {
		return fmt.Errorf("timestamp %q: %w", tsText, err)
	}
	valText := string(bytes.TrimSpace(rest[c2+1:]))
	if len(valText) == 0 {
		return fmt.Errorf("empty value")
	}
	if isFloatSyntax(valText) {
		v, err := parseDecimalFloat(valText)
		if err != nil {
			return err
		}
		b.addFloat(series, tsfile.FloatPoint{T: t, V: v})
		return nil
	}
	v, err := strconv.ParseInt(valText, 10, 64)
	if err != nil {
		return fmt.Errorf("value %q: %w", valText, err)
	}
	if len(b.floats[series]) > 0 {
		// The series is float in this batch; promote, matching what the
		// client's float formatter may emit for whole numbers.
		b.addFloat(series, tsfile.FloatPoint{T: t, V: float64(v)})
		return nil
	}
	b.ints[series] = append(b.ints[series], tsfile.Point{T: t, V: v})
	b.points++
	return nil
}

func (b *batch) addFloat(series string, p tsfile.FloatPoint) {
	if pts := b.ints[series]; len(pts) > 0 {
		// Earlier integer-looking values of this batch join the float series.
		for _, ip := range pts {
			b.floats[series] = append(b.floats[series], tsfile.FloatPoint{T: ip.T, V: float64(ip.V)})
		}
		delete(b.ints, series)
	}
	b.floats[series] = append(b.floats[series], p)
	b.points++
}

// checkSeriesName rejects names that would corrupt the CSV wire format or
// smuggle control bytes into file-backed structures.
func checkSeriesName(s string) error {
	if len(s) == 0 {
		return fmt.Errorf("empty series name")
	}
	if len(s) > maxSeriesName {
		return fmt.Errorf("series name longer than %d bytes", maxSeriesName)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return fmt.Errorf("series name contains control byte 0x%02x", s[i])
		}
	}
	return nil
}

// isFloatSyntax reports whether the value text selects the float path.
func isFloatSyntax(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.', 'e', 'E':
			return true
		}
	}
	return false
}

// parseDecimalFloat parses a strictly decimal float: optional sign, digits
// with at most one dot, optional e/E exponent. NaN, Inf, hex floats and
// underscores — all accepted by strconv.ParseFloat — are rejected here, and
// out-of-range magnitudes error instead of rounding to ±Inf.
func parseDecimalFloat(s string) (float64, error) {
	i, n := 0, len(s)
	if i < n && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits, dot := 0, false
	for i < n {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
		case s[i] == '.' && !dot:
			dot = true
		default:
			goto exponent
		}
		i++
	}
exponent:
	if digits == 0 {
		return 0, fmt.Errorf("value %q: not a decimal number", s)
	}
	if i < n {
		if s[i] != 'e' && s[i] != 'E' {
			return 0, fmt.Errorf("value %q: not a decimal number", s)
		}
		i++
		if i < n && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i == n {
			return 0, fmt.Errorf("value %q: missing exponent digits", s)
		}
		for ; i < n; i++ {
			if s[i] < '0' || s[i] > '9' {
				return 0, fmt.Errorf("value %q: not a decimal number", s)
			}
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("value %q: %v", s, err)
	}
	return v, nil
}
