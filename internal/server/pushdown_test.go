package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// TestWindowAndFilteredQuery drives the pushdown endpoints end to end over
// HTTP: /query?window= through Client.Window, /query?vmin=&vmax= through
// Client.QueryFilterEach, and the /stats pushdown tier counters.
func TestWindowAndFilteredQuery(t *testing.T) {
	eng, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	c := NewClient(ts.URL, ts.Client())

	pts := make([]tsfile.Point, 300)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i*3 - 100)}
	}
	if _, err := c.Ingest("root.pd.cnt", pts); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestFloats("root.pd.temp", []tsfile.FloatPoint{{T: 1, V: 0.5}}); err != nil {
		t.Fatal(err)
	}
	// Persist to disk so the windowed query has chunks (and footer stats) to
	// push down into.
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	var got []Bucket
	err = c.Window("root.pd.cnt", 0, 299, 100, func(b Bucket) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("window buckets = %+v, want 3", got)
	}
	for i, b := range got {
		lo := int64(i * 100)
		wantSum := int64(0)
		for ti := lo; ti < lo+100; ti++ {
			wantSum += ti*3 - 100
		}
		want := Bucket{Start: lo, Count: 100, Min: lo*3 - 100, Max: (lo+99)*3 - 100, Sum: wantSum}
		if b != want {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want)
		}
	}

	// The whole-range aggregate is a single fully-covered chunk: it must be
	// answered from footer statistics alone.
	agg, err := c.Agg("root.pd.cnt", 0, 299)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 300 || agg.Min != -100 || agg.Max != 299*3-100 {
		t.Fatalf("agg = %+v", agg)
	}

	var filtered []tsfile.Point
	err = c.QueryFilterEach("root.pd.cnt", 0, 299, 0, 200, func(p tsfile.Point) error {
		filtered = append(filtered, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []tsfile.Point
	for _, p := range pts {
		if p.V >= 0 && p.V <= 200 {
			want = append(want, p)
		}
	}
	if len(filtered) != len(want) {
		t.Fatalf("filtered %d points, want %d", len(filtered), len(want))
	}
	for i := range want {
		if filtered[i] != want[i] {
			t.Fatalf("filtered[%d] = %+v, want %+v", i, filtered[i], want[i])
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pushdown.Stats == 0 {
		t.Fatalf("no stats-tier hits in /stats pushdown block: %+v", st.Pushdown)
	}
	if st.Pushdown.Stats+st.Pushdown.Inlier+st.Pushdown.Full < 3 {
		t.Fatalf("pushdown counters did not move: %+v", st.Pushdown)
	}

	// Error shapes.
	for name, u := range map[string]string{
		"window without from": "/query?series=root.pd.cnt&window=100",
		"non-positive window": "/query?series=root.pd.cnt&from=0&to=10&window=0",
		"window on float":     "/query?series=root.pd.temp&from=0&to=10&window=5",
		"vmin on float":       "/query?series=root.pd.temp&from=0&to=10&vmin=1",
		"malformed vmax":      "/query?series=root.pd.cnt&from=0&to=10&vmax=abc",
	} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", name, resp.StatusCode, body)
		}
	}
	if err := c.Window("no.such", 0, 10, 5, func(Bucket) error { return nil }); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("window on unknown series: %v", err)
	}
}

// TestWindowRetries proves Client.Window rides the retry layer: connection
// drops before the response replay the whole request.
func TestWindowRetries(t *testing.T) {
	fails := 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprintln(w, "0,2,1,3,4,2")
		fmt.Fprintln(w, "10,1,5,5,5,5")
	}))
	defer ts.Close()
	c := NewClient(ts.URL, retryTestHTTPClient(), WithRetry(4, time.Millisecond))
	var got []Bucket
	err := c.Window("root.r", 0, 20, 10, func(b Bucket) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatalf("window with retry: %v", err)
	}
	want := []Bucket{{Start: 0, Count: 2, Min: 1, Max: 3, Sum: 4}, {Start: 10, Count: 1, Min: 5, Max: 5, Sum: 5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
}
