package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"bos/internal/tsfile"
)

// Client is the typed Go client for the serving API. It speaks the same line
// protocol and JSON shapes the handlers emit, and is what cmd/bosserver's
// load generator drives.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at base (e.g. "http://127.0.0.1:8086").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// decodeError turns a non-2xx JSON error body into an error.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err == nil {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s: %s", resp.Status, e.Error)
		}
	}
	return fmt.Errorf("server: %s", resp.Status)
}

func (c *Client) getJSON(path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// IngestLines posts a raw line-protocol payload.
func (c *Client) IngestLines(payload []byte) (IngestResponse, error) {
	var out IngestResponse
	resp, err := c.hc.Post(c.base+"/ingest", "text/plain", bytes.NewReader(payload))
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Ingest posts one batch of integer points for a series.
func (c *Client) Ingest(series string, pts []tsfile.Point) (IngestResponse, error) {
	var buf bytes.Buffer
	for _, p := range pts {
		fmt.Fprintf(&buf, "%s,%d,%d\n", series, p.T, p.V)
	}
	return c.IngestLines(buf.Bytes())
}

// IngestFloats posts one batch of float points for a series. Values are
// formatted so they always take the protocol's float path.
func (c *Client) IngestFloats(series string, pts []tsfile.FloatPoint) (IngestResponse, error) {
	var buf bytes.Buffer
	for _, p := range pts {
		buf.WriteString(series)
		buf.WriteByte(',')
		buf.Write(strconv.AppendInt(nil, p.T, 10))
		buf.WriteByte(',')
		buf.Write(appendFloatValue(nil, p.V))
		buf.WriteByte('\n')
	}
	return c.IngestLines(buf.Bytes())
}

func (c *Client) queryCSV(series string, from, to int64) (*http.Response, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	resp, err := c.hc.Get(c.base + "/query?" + q.Encode())
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return resp, nil
}

// QueryRaw returns the raw CSV body of a range scan — the byte-exact wire
// form, which tests compare across runs.
func (c *Client) QueryRaw(series string, from, to int64) ([]byte, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Query returns the integer points of a series in [from, to].
func (c *Client) Query(series string, from, to int64) ([]tsfile.Point, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []tsfile.Point
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: value %q: %w", v, err)
		}
		out = append(out, tsfile.Point{T: t, V: n})
	}
	return out, sc.Err()
}

// QueryFloats returns the float points of a series in [from, to].
func (c *Client) QueryFloats(series string, from, to int64) ([]tsfile.FloatPoint, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []tsfile.FloatPoint
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("client: value %q: %w", v, err)
		}
		out = append(out, tsfile.FloatPoint{T: t, V: f})
	}
	return out, sc.Err()
}

func splitCSVLine(line string) (int64, string, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return 0, "", fmt.Errorf("client: malformed row %q", line)
	}
	t, err := strconv.ParseInt(line[:i], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("client: timestamp %q: %w", line[:i], err)
	}
	return t, line[i+1:], nil
}

// Agg fetches count/min/max/sum/avg for a series range.
func (c *Client) Agg(series string, from, to int64) (AggResponse, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	var out AggResponse
	err := c.getJSON("/agg", q, &out)
	return out, err
}

// Downsample fetches fixed-window aggregates.
func (c *Client) Downsample(series string, from, to, window int64) ([]BucketJSON, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	q.Set("window", strconv.FormatInt(window, 10))
	var out []BucketJSON
	err := c.getJSON("/downsample", q, &out)
	return out, err
}

// Series lists every series name.
func (c *Client) Series() ([]string, error) {
	var out []string
	err := c.getJSON("/series", nil, &out)
	return out, err
}

// Compact triggers maintenance: mode "policy" runs one tiered-policy
// decision, mode "full" merges every file, "" lets the server pick its
// default.
func (c *Client) Compact(mode string) (CompactResponse, error) {
	u := c.base + "/compact"
	if mode != "" {
		u += "?" + url.Values{"mode": {mode}}.Encode()
	}
	var out CompactResponse
	resp, err := c.hc.Post(u, "application/json", nil)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Stats fetches server and storage statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.getJSON("/stats", nil, &out)
	return out, err
}

// Health checks /healthz.
func (c *Client) Health() error {
	var out map[string]string
	if err := c.getJSON("/healthz", nil, &out); err != nil {
		return err
	}
	if out["status"] != "ok" {
		return fmt.Errorf("client: unhealthy: %v", out)
	}
	return nil
}
