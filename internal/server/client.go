package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// Client is the typed Go client for the serving API. It speaks the same line
// protocol and JSON shapes the handlers emit, and is what cmd/bosserver's
// load generator and internal/cluster's remote shards drive.
type Client struct {
	base string
	hc   *http.Client

	// retry configuration (retry.go); retryAttempts 1 = no retries.
	retryAttempts int
	retryBase     time.Duration
}

// NewClient returns a client for a server at base (e.g. "http://127.0.0.1:8086").
func NewClient(base string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: hc, retryAttempts: 1}
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError is a non-2xx API response: the HTTP status plus the
// server-supplied error message, if the body carried one.
type StatusError struct {
	Code    int    // e.g. 404
	Status  string // e.g. "404 Not Found"
	Message string // server error body, may be empty
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s: %s", e.Status, e.Message)
	}
	return "server: " + e.Status
}

// decodeError turns a non-2xx JSON error body into a *StatusError.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	se := &StatusError{Code: resp.StatusCode, Status: resp.Status}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err == nil {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil {
			se.Message = e.Error
		}
	}
	return se
}

// get issues a GET through the retry layer.
func (c *Client) get(u string) (*http.Response, error) {
	return c.doRetry(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, u, nil)
	})
}

// post issues a POST through the retry layer; the body is rebuilt per
// attempt, so replays resend the full payload.
func (c *Client) post(u, contentType string, body []byte) (*http.Response, error) {
	return c.doRetry(func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(http.MethodPost, u, rd)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		return req, nil
	})
}

func (c *Client) getJSON(path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.get(u)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// IngestLines posts a raw line-protocol payload.
func (c *Client) IngestLines(payload []byte) (IngestResponse, error) {
	var out IngestResponse
	resp, err := c.post(c.base+"/ingest", "text/plain", payload)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Ingest posts one batch of integer points for a series.
func (c *Client) Ingest(series string, pts []tsfile.Point) (IngestResponse, error) {
	var buf bytes.Buffer
	for _, p := range pts {
		fmt.Fprintf(&buf, "%s,%d,%d\n", series, p.T, p.V)
	}
	return c.IngestLines(buf.Bytes())
}

// IngestFloats posts one batch of float points for a series. Values are
// formatted so they always take the protocol's float path.
func (c *Client) IngestFloats(series string, pts []tsfile.FloatPoint) (IngestResponse, error) {
	var buf bytes.Buffer
	appendFloatLines(&buf, series, pts)
	return c.IngestLines(buf.Bytes())
}

// IngestBatch posts many series — integer and float — as one line-protocol
// payload, series in sorted order. This is the grouped form sharded routers
// use: one request per shard per commit group instead of one per series.
func (c *Client) IngestBatch(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) (IngestResponse, error) {
	var buf bytes.Buffer
	for _, s := range sortedKeys(ints) {
		for _, p := range ints[s] {
			buf.WriteString(s)
			buf.WriteByte(',')
			buf.Write(strconv.AppendInt(nil, p.T, 10))
			buf.WriteByte(',')
			buf.Write(strconv.AppendInt(nil, p.V, 10))
			buf.WriteByte('\n')
		}
	}
	for _, s := range sortedKeys(floats) {
		appendFloatLines(&buf, s, floats[s])
	}
	return c.IngestLines(buf.Bytes())
}

func appendFloatLines(buf *bytes.Buffer, series string, pts []tsfile.FloatPoint) {
	for _, p := range pts {
		buf.WriteString(series)
		buf.WriteByte(',')
		buf.Write(strconv.AppendInt(nil, p.T, 10))
		buf.WriteByte(',')
		buf.Write(appendFloatValue(nil, p.V))
		buf.WriteByte('\n')
	}
}

func (c *Client) queryCSV(series string, from, to int64) (*http.Response, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	resp, err := c.get(c.base + "/query?" + q.Encode())
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return resp, nil
}

// QueryEach streams the integer points of a series in [from, to] through fn
// without buffering the whole result. fn returning an error aborts the scan
// and returns that error.
func (c *Client) QueryEach(series string, from, to int64, fn func(tsfile.Point) error) error {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("client: value %q: %w", v, err)
		}
		if err := fn(tsfile.Point{T: t, V: n}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Window streams windowed aggregates over GET /query?window= through fn in
// window-start order, one engine.Bucket per non-empty window. Like every
// client call it rides the retry layer, so transient connection failures
// replay the whole request.
func (c *Client) Window(series string, from, to, window int64, fn func(Bucket) error) error {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	q.Set("window", strconv.FormatInt(window, 10))
	resp, err := c.get(c.base + "/query?" + q.Encode())
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, err := parseBucketRow(sc.Text())
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Bucket is one windowed-aggregate row as the client surfaces it.
type Bucket = engine.Bucket

// parseBucketRow parses one "start,count,min,max,sum,avg" CSV row. The avg
// column is derived (it re-computes from sum/count) and is ignored.
func parseBucketRow(line string) (Bucket, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 6 {
		return Bucket{}, fmt.Errorf("client: malformed bucket row %q", line)
	}
	var b Bucket
	var err error
	if b.Start, err = strconv.ParseInt(fields[0], 10, 64); err == nil {
		b.Count, err = strconv.Atoi(fields[1])
	}
	if err == nil {
		b.Min, err = strconv.ParseInt(fields[2], 10, 64)
	}
	if err == nil {
		b.Max, err = strconv.ParseInt(fields[3], 10, 64)
	}
	if err == nil {
		b.Sum, err = strconv.ParseInt(fields[4], 10, 64)
	}
	if err != nil {
		return Bucket{}, fmt.Errorf("client: bucket row %q: %w", line, err)
	}
	return b, nil
}

// QueryFilterEach streams the points of a series whose value falls in
// [vmin, vmax] through fn in time order, over GET /query?vmin=&vmax=.
func (c *Client) QueryFilterEach(series string, from, to, vmin, vmax int64, fn func(tsfile.Point) error) error {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	q.Set("vmin", strconv.FormatInt(vmin, 10))
	q.Set("vmax", strconv.FormatInt(vmax, 10))
	resp, err := c.get(c.base + "/query?" + q.Encode())
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("client: value %q: %w", v, err)
		}
		if err := fn(tsfile.Point{T: t, V: n}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// SeriesKind reports the value kind of a series over GET /kind: "int",
// "float", or "" when the server does not know the series.
func (c *Client) SeriesKind(series string) (string, error) {
	q := url.Values{}
	q.Set("series", series)
	var out KindResponse
	if err := c.getJSON("/kind", q, &out); err != nil {
		return "", err
	}
	return out.Kind, nil
}

// QueryRaw returns the raw CSV body of a range scan — the byte-exact wire
// form, which tests compare across runs.
func (c *Client) QueryRaw(series string, from, to int64) ([]byte, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Query returns the integer points of a series in [from, to].
func (c *Client) Query(series string, from, to int64) ([]tsfile.Point, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []tsfile.Point
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: value %q: %w", v, err)
		}
		out = append(out, tsfile.Point{T: t, V: n})
	}
	return out, sc.Err()
}

// QueryFloats returns the float points of a series in [from, to].
func (c *Client) QueryFloats(series string, from, to int64) ([]tsfile.FloatPoint, error) {
	resp, err := c.queryCSV(series, from, to)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []tsfile.FloatPoint
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		t, v, err := splitCSVLine(sc.Text())
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("client: value %q: %w", v, err)
		}
		out = append(out, tsfile.FloatPoint{T: t, V: f})
	}
	return out, sc.Err()
}

func splitCSVLine(line string) (int64, string, error) {
	i := strings.IndexByte(line, ',')
	if i < 0 {
		return 0, "", fmt.Errorf("client: malformed row %q", line)
	}
	t, err := strconv.ParseInt(line[:i], 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("client: timestamp %q: %w", line[:i], err)
	}
	return t, line[i+1:], nil
}

// Agg fetches count/min/max/sum/avg for a series range.
func (c *Client) Agg(series string, from, to int64) (AggResponse, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	var out AggResponse
	err := c.getJSON("/agg", q, &out)
	return out, err
}

// Downsample fetches fixed-window aggregates.
func (c *Client) Downsample(series string, from, to, window int64) ([]BucketJSON, error) {
	q := url.Values{}
	q.Set("series", series)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	q.Set("window", strconv.FormatInt(window, 10))
	var out []BucketJSON
	err := c.getJSON("/downsample", q, &out)
	return out, err
}

// Series lists every series name.
func (c *Client) Series() ([]string, error) {
	var out []string
	err := c.getJSON("/series", nil, &out)
	return out, err
}

// Compact triggers maintenance: mode "policy" runs one tiered-policy
// decision, mode "full" merges every file, "" lets the server pick its
// default.
func (c *Client) Compact(mode string) (CompactResponse, error) {
	u := c.base + "/compact"
	if mode != "" {
		u += "?" + url.Values{"mode": {mode}}.Encode()
	}
	var out CompactResponse
	resp, err := c.post(u, "application/json", nil)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Stats fetches server and storage statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.getJSON("/stats", nil, &out)
	return out, err
}

// Health checks /healthz. A degraded sharded server answers 503 with
// per-shard detail; that body is folded into the returned error.
func (c *Client) Health() error {
	resp, err := c.get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	var out HealthResponse
	if json.Unmarshal(body, &out) == nil && out.Status == "ok" && resp.StatusCode == http.StatusOK {
		return nil
	}
	return fmt.Errorf("client: unhealthy: %s: %s", resp.Status, body)
}
