package server

import (
	"net/http/httptest"
	"testing"

	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/tsfile"
)

// newMaintainedServer is newTestServer with a maintainer attached (scheduler
// not started: the endpoint drives it explicitly).
func newMaintainedServer(t *testing.T) (*Client, *engine.Engine, func()) {
	t.Helper()
	eng, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	mnt := maintain.New(eng, maintain.Config{Adaptive: true})
	srv, err := New(Options{Engine: eng, Maintainer: mnt, PackerName: "BOS-B"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cleanup := func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		mnt.Stop()
		if err := eng.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}
	return NewClient(ts.URL, ts.Client()), eng, cleanup
}

func TestCompactEndpoint(t *testing.T) {
	c, eng, cleanup := newMaintainedServer(t)
	defer cleanup()

	for i := 0; i < 4; i++ {
		pts := make([]tsfile.Point, 300)
		for j := range pts {
			pts[j] = tsfile.Point{T: int64(i*1000 + j), V: int64(j % 50)}
		}
		if err := eng.InsertBatch("s", pts); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Policy mode merges the tier of similar-sized files.
	resp, err := c.Compact("policy")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Ran || resp.Files != 4 || resp.Points != 1200 {
		t.Fatalf("policy compact: %+v", resp)
	}
	if len(resp.SeriesPackers) == 0 {
		t.Fatalf("adaptive choices missing from response: %+v", resp)
	}
	// Nothing left: policy finds no run, reports ran=false without error.
	resp, err = c.Compact("policy")
	if err != nil || resp.Ran {
		t.Fatalf("idle policy compact: %+v err %v", resp, err)
	}

	// Maintenance counters surface in /stats.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 || st.Compactions != 1 || st.CompactedFiles != 4 {
		t.Fatalf("stats after compact: files=%d compactions=%d compacted=%d",
			st.Files, st.Compactions, st.CompactedFiles)
	}
	if st.Maintenance == nil || st.Maintenance.Compactions != 1 ||
		len(st.Maintenance.SeriesPackers) == 0 {
		t.Fatalf("maintenance stats: %+v", st.Maintenance)
	}
	if st.CompactedBytesIn <= 0 || st.CompactedBytesOut <= 0 {
		t.Fatalf("byte counters: %+v", st)
	}

	// Full mode works with new data and keeps serving correct results.
	if err := eng.Insert("s", 50_000, 7); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compact("full"); err != nil {
		t.Fatal(err)
	}
	pts, err := c.Query("s", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1201 {
		t.Fatalf("points after compactions: %d want 1201", len(pts))
	}

	if _, err := c.Compact("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestCompactEndpointWithoutMaintainer(t *testing.T) {
	c, _, cleanup := newTestServer(t, t.TempDir())
	defer cleanup()
	if _, err := c.Compact("policy"); err == nil {
		t.Fatal("policy mode without maintainer accepted")
	}
	// Default (and full) mode fall back to a plain engine compaction.
	resp, err := c.Compact("")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ran {
		t.Fatalf("empty engine reported a compaction: %+v", resp)
	}
}
