package server

import (
	"sort"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// Backend is the storage interface the HTTP handlers serve. The single-node
// backend is *engine.Engine (wrapped by engineBackend below, which preserves
// the pre-Backend behavior byte for byte); internal/cluster's Router
// implements Backend over N engine shards with scatter-gather fan-out.
//
// Methods mirror the engine API but uniformly return errors: a sharded
// backend can fail partway through operations the in-process engine cannot.
type Backend interface {
	// InsertGrouped commits one coalesced commit group: every series of the
	// group, already merged per series in request order. A sharded backend
	// splits the group once by owning shard and commits shards in parallel.
	InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error
	// QueryEach streams the merged points of a series in [minT, maxT] in
	// time order through fn; fn returning an error aborts the scan.
	QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error
	QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error)
	// QueryFilterEach streams the points of a series with minT <= T <= maxT
	// and minV <= V <= maxV through fn in time order. Engine-backed shards
	// answer it in the compressed domain where chunk statistics allow.
	QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error
	Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error)
	// Aggregate folds a series over [minT, maxT] into a single bucket
	// (Count 0 when the range is empty) using chunk statistics and partial
	// decode where possible.
	Aggregate(series string, minT, maxT int64) (engine.Bucket, error)
	Series() ([]string, error)
	// SeriesKind reports "int", "float", or "" for an unknown series.
	SeriesKind(series string) (string, error)
	SeriesStats() ([]engine.SeriesStat, error)
	Stats() (engine.Stats, error)
	// Flush persists buffered writes (every shard, for sharded backends).
	Flush() error
}

// Compactor is the optional Backend upgrade behind POST /compact?mode=full
// when no Maintainer is configured. A sharded backend fans the compaction out
// and sums the per-shard results.
type Compactor interface {
	CompactAll() (engine.CompactStats, error)
}

// ShardStatus is one shard's health and footprint, reported by sharded
// backends in the /stats "shards" block and the /healthz detail.
type ShardStatus struct {
	ID      int    `json:"id"`
	Backend string `json:"backend"` // "local" or "remote"
	Target  string `json:"target"`  // data dir (local) or base URL (remote)
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`

	SeriesCount int   `json:"series_count"`
	MemPoints   int   `json:"mem_points"`
	DiskPoints  int   `json:"disk_points"`
	DiskBytes   int64 `json:"disk_bytes"`
	Files       int   `json:"files"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	WALGroups   int64 `json:"wal_groups"`
	WALRecords  int64 `json:"wal_records"`
}

// ShardStatuser is the optional Backend upgrade a sharded backend implements:
// /stats gains a per-shard block and /healthz aggregates shard health (any
// unhealthy shard turns the whole endpoint 503 with per-shard detail).
type ShardStatuser interface {
	ShardStatuses() []ShardStatus
}

// engineBackend adapts *engine.Engine to Backend. Every method is a direct
// delegation, so single-engine serving behaves exactly as it did before the
// Backend seam existed.
type engineBackend struct {
	eng *engine.Engine
}

// NewEngineBackend wraps a single engine as a Backend. cmd/bosserver's bench
// harness uses it so one driver covers single-engine and clustered runs.
func NewEngineBackend(eng *engine.Engine) Backend { return engineBackend{eng: eng} }

// InsertGrouped inserts the group's series in sorted order, integers first —
// the commit order the coalescer used before backends existed, kept so
// last-write-wins stays deterministic.
func (b engineBackend) InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error {
	for _, s := range sortedKeys(ints) {
		if err := b.eng.InsertBatch(s, ints[s]); err != nil {
			return err
		}
	}
	for _, s := range sortedKeys(floats) {
		if err := b.eng.InsertFloatBatch(s, floats[s]); err != nil {
			return err
		}
	}
	return nil
}

func (b engineBackend) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	return b.eng.QueryEach(series, minT, maxT, fn)
}

func (b engineBackend) QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error) {
	return b.eng.QueryFloats(series, minT, maxT)
}

func (b engineBackend) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	return b.eng.QueryFilterEach(series, minT, maxT, minV, maxV, fn)
}

func (b engineBackend) Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error) {
	return b.eng.Downsample(series, minT, maxT, window)
}

func (b engineBackend) Aggregate(series string, minT, maxT int64) (engine.Bucket, error) {
	return b.eng.Aggregate(series, minT, maxT)
}

func (b engineBackend) Series() ([]string, error) { return b.eng.Series(), nil }

func (b engineBackend) SeriesKind(series string) (string, error) {
	return b.eng.SeriesKind(series), nil
}

func (b engineBackend) SeriesStats() ([]engine.SeriesStat, error) {
	return b.eng.SeriesStats(), nil
}

func (b engineBackend) Stats() (engine.Stats, error) { return b.eng.Stats(), nil }

func (b engineBackend) Flush() error { return b.eng.Flush() }

func (b engineBackend) CompactAll() (engine.CompactStats, error) {
	return b.eng.CompactWith(nil)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
