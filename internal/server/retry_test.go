package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"
)

// flakyServer serves /ingest but kills the first failN connections at the
// TCP level (hijack + close), the failure shape of a shard mid-restart. It
// counts every request that reached the handler.
type flakyServer struct {
	ts   *httptest.Server
	mu   sync.Mutex
	hits int
	fail int
}

func newFlakyServer(t *testing.T, failN int) *flakyServer {
	t.Helper()
	fs := &flakyServer{fail: failN}
	fs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fs.mu.Lock()
		fs.hits++
		drop := fs.fail > 0
		if drop {
			fs.fail--
		}
		fs.mu.Unlock()
		if drop {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"points":1,"series":1}`)
	}))
	t.Cleanup(fs.ts.Close)
	return fs
}

func (fs *flakyServer) requests() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.hits
}

// retryTestHTTPClient disables keep-alives so net/http's own silent replay of
// requests on dead reused connections cannot mask (or double) our retries.
func retryTestHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

func TestRetryRecoversFromConnectionDrops(t *testing.T) {
	fs := newFlakyServer(t, 2)
	c := NewClient(fs.ts.URL, retryTestHTTPClient(), WithRetry(4, time.Millisecond))
	ack, err := c.IngestLines([]byte("root.r,1,2\n"))
	if err != nil {
		t.Fatalf("ingest with retry: %v", err)
	}
	if ack.Points != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if got := fs.requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 drops + 1 success)", got)
	}
}

func TestRetryOffByDefault(t *testing.T) {
	fs := newFlakyServer(t, 1)
	c := NewClient(fs.ts.URL, retryTestHTTPClient())
	if _, err := c.IngestLines([]byte("root.r,1,2\n")); err == nil {
		t.Fatal("first attempt hit a dropped connection and the default client retried it")
	}
	if got := fs.requests(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	fs := newFlakyServer(t, 100)
	c := NewClient(fs.ts.URL, retryTestHTTPClient(), WithRetry(3, time.Millisecond))
	if _, err := c.IngestLines([]byte("root.r,1,2\n")); err == nil {
		t.Fatal("ingest succeeded against a permanently failing server")
	}
	if got := fs.requests(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly maxAttempts=3", got)
	}
}

// An HTTP error status is a working connection: never retried, no matter the
// retry budget.
func TestRetryNeverRetriesStatusErrors(t *testing.T) {
	var hits int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		httpError(w, http.StatusNotFound, errors.New("unknown series"))
	}))
	defer ts.Close()
	c := NewClient(ts.URL, retryTestHTTPClient(), WithRetry(5, time.Millisecond))
	_, err := c.Query("root.nope", 0, 10)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Fatalf("server saw %d requests, want 1", hits)
	}
}

func TestRetryRefusedConnection(t *testing.T) {
	// Grab a port that nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := NewClient("http://"+addr, retryTestHTTPClient(), WithRetry(2, time.Millisecond))
	start := time.Now()
	if _, err := c.IngestLines([]byte("root.r,1,2\n")); err == nil {
		t.Fatal("ingest succeeded against a closed port")
	}
	// Two attempts with ~1ms backoff must not take anywhere near the cap.
	if d := time.Since(start); d > time.Second {
		t.Fatalf("retries took %v", d)
	}
}

func TestTransientErr(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("do: %w", context.Canceled), false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{syscall.ECONNREFUSED, true},
		{&net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{errors.New("server: 404 Not Found"), false},
	}
	for _, tc := range cases {
		if got := transientErr(tc.err); got != tc.want {
			t.Errorf("transientErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
	}
}
