package server

import (
	"bytes"
	"testing"
)

// FuzzLineProtocol asserts the ingest parser never panics and that every
// batch it accepts is internally consistent: counts add up, every series name
// passes validation, and no series appears with both value kinds.
func FuzzLineProtocol(f *testing.F) {
	f.Add([]byte("root.d1.temp,100,42\n"))
	f.Add([]byte("s,1,2.5\ns,2,3\n"))
	f.Add([]byte("# comment\n\ns,-5,-9\n"))
	f.Add([]byte("a,9223372036854775807,-9223372036854775808\n"))
	f.Add([]byte("a,1,1e309\n"))
	f.Add([]byte("a,1,NaN\nb,2,0x1p3\n"))
	f.Add([]byte(",,\n"))
	f.Add([]byte("s,1,.\n"))
	f.Add(bytes.Repeat([]byte("s,1,1\n"), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := parseBatch(data)
		if err != nil {
			return
		}
		n := 0
		for name, pts := range b.ints {
			if err := checkSeriesName(name); err != nil {
				t.Fatalf("accepted bad series name %q: %v", name, err)
			}
			if len(b.floats[name]) > 0 {
				t.Fatalf("series %q has both int and float points", name)
			}
			n += len(pts)
		}
		for name, pts := range b.floats {
			if err := checkSeriesName(name); err != nil {
				t.Fatalf("accepted bad series name %q: %v", name, err)
			}
			for _, p := range pts {
				if p.V != p.V {
					t.Fatalf("series %q: accepted NaN", name)
				}
			}
			n += len(pts)
		}
		if n != b.points {
			t.Fatalf("points = %d but maps hold %d", b.points, n)
		}
		if b.points > maxBatchPoints {
			t.Fatalf("accepted %d points over the %d cap", b.points, maxBatchPoints)
		}
	})
}
