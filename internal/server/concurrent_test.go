package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// TestConcurrentIngestMatchesSequential runs 8 concurrent writer clients
// (each split into interleaved shards to force the group committer to merge
// across requests) while 4 reader clients query mid-ingest, then verifies
// the stored result is byte-exact — the CSV wire form — against the same
// points written sequentially by a single writer into a fresh engine.
func TestConcurrentIngestMatchesSequential(t *testing.T) {
	const (
		writers   = 8
		readers   = 4
		perWriter = 2000
		shards    = 4
	)

	// Deterministic dataset: each writer owns one series.
	points := func(w int) []tsfile.Point {
		pts := make([]tsfile.Point, perWriter)
		for i := range pts {
			t := int64(i)
			pts[i] = tsfile.Point{T: t, V: t*int64(w+1) - int64(w)*7}
		}
		return pts
	}

	// Concurrent run, small flush threshold so data crosses the memtable /
	// file boundary repeatedly during the test.
	concDir := t.TempDir()
	eng, err := engine.Open(engine.Options{Dir: concDir, FlushThreshold: 1024})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client())
			series := fmt.Sprintf("root.sg.d%d", w)
			pts := points(w)
			// Interleaved shards: shard k sends points k, k+shards, ... so
			// concurrent requests of different writers overlap in time.
			for k := 0; k < shards; k++ {
				var shard []tsfile.Point
				for i := k; i < len(pts); i += shards {
					shard = append(shard, pts[i])
				}
				if _, err := c.Ingest(series, shard); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client())
			for i := 0; i < 30; i++ {
				series := fmt.Sprintf("root.sg.d%d", (r+i)%writers)
				// Mid-ingest reads may see partial data; they must not
				// error (404 before the first point is fine) or misorder.
				pts, err := c.Query(series, 0, perWriter)
				if err != nil {
					continue
				}
				for j := 1; j < len(pts); j++ {
					if pts[j].T <= pts[j-1].T {
						errc <- fmt.Errorf("reader %d: misordered scan of %s", r, series)
						return
					}
				}
				if _, err := c.Stats(); err != nil {
					errc <- fmt.Errorf("reader %d: stats: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st, err := NewClient(ts.URL, ts.Client()).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IngestPoints != writers*perWriter {
		t.Fatalf("acknowledged %d points, want %d", st.IngestPoints, writers*perWriter)
	}
	if st.IngestBatches != writers*shards {
		t.Fatalf("acknowledged %d batches, want %d", st.IngestBatches, writers*shards)
	}

	// Sequential reference run: one writer, same points, insertion in plain
	// order, then the same flush/close lifecycle.
	seqDir := t.TempDir()
	seqEng, err := engine.Open(engine.Options{Dir: seqDir, FlushThreshold: 1024})
	if err != nil {
		t.Fatal(err)
	}
	seqSrv, err := New(Options{Engine: seqEng})
	if err != nil {
		t.Fatal(err)
	}
	seqTS := httptest.NewServer(seqSrv.Handler())
	seqClient := NewClient(seqTS.URL, seqTS.Client())
	for w := 0; w < writers; w++ {
		series := fmt.Sprintf("root.sg.d%d", w)
		if _, err := seqClient.Ingest(series, points(w)); err != nil {
			t.Fatal(err)
		}
	}

	// Byte-exact comparison of every series' full CSV scan.
	concClient := NewClient(ts.URL, ts.Client())
	for w := 0; w < writers; w++ {
		series := fmt.Sprintf("root.sg.d%d", w)
		got, err := concClient.QueryRaw(series, 0, perWriter)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seqClient.QueryRaw(series, 0, perWriter)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: concurrent scan differs from sequential (%d vs %d bytes)",
				series, len(got), len(want))
		}
	}

	ts.Close()
	seqTS.Close()
	for _, s := range []*Server{srv, seqSrv} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seqEng.Close(); err != nil {
		t.Fatal(err)
	}
}
