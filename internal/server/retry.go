package server

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"syscall"
	"time"
)

// Client retry: transient connection errors (refused, reset, dropped
// mid-handshake) are the normal weather of a sharded deployment — a shard
// restarting, a connection idling out under the router. WithRetry makes the
// client absorb them with capped exponential backoff plus jitter. It is off
// by default: retries change timing-sensitive callers (benchmarks) and every
// replayed ingest re-inserts points, which is only safe because the engine's
// timestamps are last-write-wins.

// maxRetryDelay caps the exponential backoff growth.
const maxRetryDelay = 2 * time.Second

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry retries requests that fail with a transient transport error.
// maxAttempts counts the initial try (2 = one retry); base is the first
// backoff delay, doubled per retry up to a 2s cap, each sleep jittered to
// 50–100% of the nominal delay. HTTP error statuses are never retried — a
// response means the connection works and the server said no.
func WithRetry(maxAttempts int, base time.Duration) ClientOption {
	return func(c *Client) {
		if maxAttempts < 1 {
			maxAttempts = 1
		}
		if base <= 0 {
			base = 50 * time.Millisecond
		}
		c.retryAttempts = maxAttempts
		c.retryBase = base
	}
}

// doRetry runs one request, rebuilding it per attempt (the body reader must
// be fresh on a replay). Only transport errors are retried; any received
// response is returned as-is.
func (c *Client) doRetry(build func() (*http.Request, error)) (*http.Response, error) {
	delay := c.retryBase
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil || attempt >= c.retryAttempts || !transientErr(err) {
			return resp, err
		}
		time.Sleep(jitter(delay))
		delay *= 2
		if delay > maxRetryDelay {
			delay = maxRetryDelay
		}
	}
}

// jitter spreads a nominal delay over [d/2, d] so a fleet of retrying
// clients does not reconverge on the recovering server in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// transientErr reports whether a transport error is worth retrying: the
// connection-level failures a restarting or briefly overloaded server emits.
// Context cancellation is the caller's decision and is never retried.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
