package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"bos/internal/tsfile"
)

// The group committer: concurrent ingest requests are queued and committed
// together, merged into one engine insert per series. Under concurrent load
// this turns N small client batches into a handful of grouped InsertBatch
// calls — fewer WAL appends, fewer lock acquisitions, better packing blocks —
// which is the write-side batching the paper's IoTDB deployment relies on.

// ErrShuttingDown reports an ingest submitted after shutdown began.
var ErrShuttingDown = errors.New("server: shutting down")

// maxGroup bounds how many requests one commit merges, keeping worst-case
// commit latency bounded under a flood of writers.
const maxGroup = 64

type ingestReq struct {
	b    *batch
	done chan error
}

type coalescer struct {
	be   Backend
	ch   chan *ingestReq
	quit chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex // guards closed; held shared around channel sends
	closed bool

	// counters for /stats
	points  atomic.Int64 // points acknowledged
	batches atomic.Int64 // client requests acknowledged
	groups  atomic.Int64 // engine commit groups
}

func newCoalescer(be Backend) *coalescer {
	c := &coalescer{
		be:   be,
		ch:   make(chan *ingestReq, 256),
		quit: make(chan struct{}),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// submit enqueues a parsed batch and blocks until its group commits.
func (c *coalescer) submit(b *batch) error {
	req := &ingestReq{b: b, done: make(chan error, 1)}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return ErrShuttingDown
	}
	c.ch <- req
	c.mu.RUnlock()
	return <-req.done
}

// stop refuses new submissions, drains everything already queued, and waits
// for the committer to exit. Every request enqueued before stop is answered.
func (c *coalescer) stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
}

func (c *coalescer) run() {
	defer c.wg.Done()
	for {
		select {
		case req := <-c.ch:
			c.commit(c.gather(req))
		case <-c.quit:
			for {
				select {
				case req := <-c.ch:
					c.commit(c.gather(req))
				default:
					return
				}
			}
		}
	}
}

// gather drains whatever else is already queued, up to maxGroup requests.
func (c *coalescer) gather(first *ingestReq) []*ingestReq {
	group := []*ingestReq{first}
	for len(group) < maxGroup {
		select {
		case req := <-c.ch:
			group = append(group, req)
		default:
			return group
		}
	}
	return group
}

// commit merges the group's batches per series (request order preserved, so
// last-write-wins stays deterministic) and hands the grouped inserts to the
// backend in one call — a sharded backend splits the group by owning shard
// once and commits shards in parallel. A backend error fails the whole group:
// callers may retry, and re-inserting an already-applied point with the same
// value is harmless under the engine's last-write-wins timestamps.
func (c *coalescer) commit(group []*ingestReq) {
	ints := map[string][]tsfile.Point{}
	floats := map[string][]tsfile.FloatPoint{}
	points := 0
	for _, req := range group {
		for s, pts := range req.b.ints {
			ints[s] = append(ints[s], pts...)
		}
		for s, pts := range req.b.floats {
			floats[s] = append(floats[s], pts...)
		}
		points += req.b.points
	}
	err := c.be.InsertGrouped(ints, floats)
	if err == nil {
		c.points.Add(int64(points))
		c.batches.Add(int64(len(group)))
		c.groups.Add(1)
	}
	for _, req := range group {
		req.done <- err
	}
}
