package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bos/internal/chunkcache"
	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/pushdown"
	"bos/internal/tsfile"
)

// Options configures a Server.
type Options struct {
	// Engine is the single-node storage engine to serve. The caller keeps
	// ownership: Server.Close flushes it but does not close it. Exactly one
	// of Engine and Backend must be set.
	Engine *engine.Engine
	// Backend serves a storage backend other than a single in-process
	// engine — internal/cluster's Router routes here for sharded serving.
	Backend Backend
	// Maintainer, when set, backs the POST /compact admin endpoint and adds
	// maintenance counters to /stats. The caller keeps ownership (start and
	// stop it around the HTTP lifecycle). Single-engine only: a sharded
	// backend implements Compactor instead.
	Maintainer *maintain.Maintainer
	// PackerName is reported by /stats (informational).
	PackerName string
	// MaxBodyBytes bounds one ingest request body (default 8 MiB).
	MaxBodyBytes int64
}

func (o Options) maxBody() int64 {
	if o.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return o.MaxBodyBytes
}

// Server is the HTTP serving layer: it owns the ingest group committer and
// translates the HTTP API onto engine calls. Use Handler for the mux and
// Close for graceful teardown (after http.Server.Shutdown has drained
// connections).
type Server struct {
	opt     Options
	be      Backend
	coal    *coalescer
	mux     *http.ServeMux
	start   time.Time
	queries atomic.Int64
}

// New builds a Server over an open engine or a sharded backend.
func New(opt Options) (*Server, error) {
	be := opt.Backend
	switch {
	case be == nil && opt.Engine == nil:
		return nil, errors.New("server: one of Options.Engine or Options.Backend is required")
	case be != nil && opt.Engine != nil:
		return nil, errors.New("server: Options.Engine and Options.Backend are mutually exclusive")
	case be == nil:
		be = engineBackend{eng: opt.Engine}
	}
	s := &Server{
		opt:   opt,
		be:    be,
		coal:  newCoalescer(be),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /agg", s.handleAgg)
	s.mux.HandleFunc("GET /downsample", s.handleDownsample)
	s.mux.HandleFunc("GET /series", s.handleSeries)
	s.mux.HandleFunc("GET /kind", s.handleKind)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the ingest committer (every acknowledged write is in the
// backend, and through its WAL, before Close returns) and flushes buffered
// writes to disk. Call after the HTTP listener has stopped accepting work.
func (s *Server) Close() error {
	s.coal.stop()
	return s.be.Flush()
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// IngestResponse acknowledges one ingest request.
type IngestResponse struct {
	Points int `json:"points"`
	Series int `json:"series"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opt.maxBody()+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.opt.maxBody() {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", s.opt.maxBody()))
		return
	}
	b, err := parseBatch(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if b.points == 0 {
		writeJSON(w, IngestResponse{})
		return
	}
	if err := s.coal.submit(b); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		} else if errors.Is(err, engine.ErrSeriesKind) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, IngestResponse{Points: b.points, Series: len(b.ints) + len(b.floats)})
}

// timeRange parses from/to query params (defaulting to the full range).
func timeRange(r *http.Request) (int64, int64, error) {
	from, to := int64(math.MinInt64), int64(math.MaxInt64)
	if v := r.FormValue("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("from: %w", err)
		}
		from = n
	}
	if v := r.FormValue("to"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("to: %w", err)
		}
		to = n
	}
	return from, to, nil
}

// handleQuery streams a range scan as CSV lines "timestamp,value". Integer
// series stream through the engine's paged scan (memory bounded by the page
// size, not the series size); float series are read in one engine call and
// streamed out incrementally.
//
// Two pushdown variants share the endpoint for integer series: window=N
// streams windowed aggregate rows "start,count,min,max,sum,avg" (requires
// from, like /downsample), and vmin/vmax stream only the points whose value
// falls inside [vmin, vmax] — both answered in the compressed domain where
// chunk statistics allow.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	series := r.FormValue("series")
	if series == "" {
		httpError(w, http.StatusBadRequest, errors.New("series is required"))
		return
	}
	from, to, err := timeRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.queries.Add(1)
	kind, err := s.be.SeriesKind(series)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if kind == "" {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown series %q", series))
		return
	}
	if r.FormValue("window") != "" {
		s.queryWindowed(w, r, series, kind, from, to)
		return
	}
	if r.FormValue("vmin") != "" || r.FormValue("vmax") != "" {
		s.queryFiltered(w, r, series, kind, from, to)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Series-Kind", kind)
	cw := newChunkedCSV(w)
	if kind == "float" {
		pts, err := s.be.QueryFloats(series, from, to)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		for _, p := range pts {
			if err := cw.writeFloat(p.T, p.V); err != nil {
				// Client went away mid-stream; stop formatting rows for it.
				return
			}
		}
	} else {
		err := s.be.QueryEach(series, from, to, func(p tsfile.Point) error {
			return cw.writeInt(p.T, p.V)
		})
		if err != nil {
			// Headers are already out; the best remaining signal is an
			// aborted chunked body.
			return
		}
	}
	//bos:nolint(checkederr): headers are already out; an aborted chunked body is the only remaining signal
	cw.flush()
}

// queryWindowed serves /query?window=N: windowed aggregate rows
// "start,count,min,max,sum,avg", one CSV line per non-empty window.
func (s *Server) queryWindowed(w http.ResponseWriter, r *http.Request, series, kind string, from, to int64) {
	if kind != "int" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("window requires an integer series; %q is %s", series, kind))
		return
	}
	window, err := strconv.ParseInt(r.FormValue("window"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("window: %w", err))
		return
	}
	if from == math.MinInt64 {
		// Window starts are computed relative to from, same as /downsample.
		httpError(w, http.StatusBadRequest, errors.New("window requires from"))
		return
	}
	buckets, err := s.be.Downsample(series, from, to, window)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, engine.ErrBadWindow) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Series-Kind", kind)
	cw := newChunkedCSV(w)
	for _, b := range buckets {
		if err := cw.writeBucket(b); err != nil {
			return
		}
	}
	//bos:nolint(checkederr): headers are already out; an aborted chunked body is the only remaining signal
	cw.flush()
}

// queryFiltered serves /query?vmin=&vmax=: the points whose value falls in
// [vmin, vmax] (either bound may be omitted), streamed as "timestamp,value".
func (s *Server) queryFiltered(w http.ResponseWriter, r *http.Request, series, kind string, from, to int64) {
	if kind != "int" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("vmin/vmax require an integer series; %q is %s", series, kind))
		return
	}
	vmin, vmax := int64(math.MinInt64), int64(math.MaxInt64)
	if v := r.FormValue("vmin"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("vmin: %w", err))
			return
		}
		vmin = n
	}
	if v := r.FormValue("vmax"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("vmax: %w", err))
			return
		}
		vmax = n
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("X-Series-Kind", kind)
	cw := newChunkedCSV(w)
	err := s.be.QueryFilterEach(series, from, to, vmin, vmax, func(p tsfile.Point) error {
		return cw.writeInt(p.T, p.V)
	})
	if err != nil {
		// Headers are already out; the best remaining signal is an aborted
		// chunked body.
		return
	}
	//bos:nolint(checkederr): headers are already out; an aborted chunked body is the only remaining signal
	cw.flush()
}

// chunkedCSV batches CSV rows and flushes them through the ResponseWriter in
// chunks, so long scans stream instead of accumulating.
type chunkedCSV struct {
	w   http.ResponseWriter
	buf []byte
	err error
}

func newChunkedCSV(w http.ResponseWriter) *chunkedCSV {
	return &chunkedCSV{w: w, buf: make([]byte, 0, 32<<10)}
}

func (c *chunkedCSV) writeInt(t, v int64) error {
	c.buf = strconv.AppendInt(c.buf, t, 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendInt(c.buf, v, 10)
	c.buf = append(c.buf, '\n')
	return c.maybeFlush()
}

func (c *chunkedCSV) writeFloat(t int64, v float64) error {
	c.buf = strconv.AppendInt(c.buf, t, 10)
	c.buf = append(c.buf, ',')
	c.buf = appendFloatValue(c.buf, v)
	c.buf = append(c.buf, '\n')
	return c.maybeFlush()
}

func (c *chunkedCSV) writeBucket(b engine.Bucket) error {
	c.buf = strconv.AppendInt(c.buf, b.Start, 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendInt(c.buf, int64(b.Count), 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendInt(c.buf, b.Min, 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendInt(c.buf, b.Max, 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendInt(c.buf, b.Sum, 10)
	c.buf = append(c.buf, ',')
	c.buf = strconv.AppendFloat(c.buf, b.Avg(), 'g', -1, 64)
	c.buf = append(c.buf, '\n')
	return c.maybeFlush()
}

func (c *chunkedCSV) maybeFlush() error {
	if len(c.buf) >= 24<<10 {
		return c.flush()
	}
	return c.err
}

func (c *chunkedCSV) flush() error {
	if c.err != nil {
		return c.err
	}
	if len(c.buf) > 0 {
		if _, err := c.w.Write(c.buf); err != nil {
			c.err = err
			return err
		}
		c.buf = c.buf[:0]
		if f, ok := c.w.(http.Flusher); ok {
			f.Flush()
		}
	}
	return nil
}

// appendFloatValue formats a float so it re-parses on the float path of the
// line protocol: shortest round-trip form, forced to contain '.' or 'e'.
func appendFloatValue(dst []byte, v float64) []byte {
	start := len(dst)
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	if !isFloatSyntax(string(dst[start:])) {
		dst = append(dst, '.', '0')
	}
	return dst
}

// AggResponse is the /agg result.
type AggResponse struct {
	Series string  `json:"series"`
	Count  int     `json:"count"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Sum    int64   `json:"sum"`
	Avg    float64 `json:"avg"`
}

func (s *Server) handleAgg(w http.ResponseWriter, r *http.Request) {
	series := r.FormValue("series")
	if series == "" {
		httpError(w, http.StatusBadRequest, errors.New("series is required"))
		return
	}
	from, to, err := timeRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.queries.Add(1)
	// The pushdown executor folds whole chunks in from footer statistics;
	// an empty range returns a zero bucket, matching the old fold's shape.
	b, err := s.be.Aggregate(series, from, to)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := AggResponse{Series: series, Count: b.Count, Min: b.Min, Max: b.Max, Sum: b.Sum}
	if b.Count > 0 {
		resp.Avg = b.Avg()
	}
	writeJSON(w, resp)
}

// BucketJSON is one /downsample window.
type BucketJSON struct {
	Start int64   `json:"start"`
	Count int     `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Sum   int64   `json:"sum"`
	Avg   float64 `json:"avg"`
}

func (s *Server) handleDownsample(w http.ResponseWriter, r *http.Request) {
	series := r.FormValue("series")
	if series == "" {
		httpError(w, http.StatusBadRequest, errors.New("series is required"))
		return
	}
	from, to, err := timeRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	window, err := strconv.ParseInt(r.FormValue("window"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("window: %w", err))
		return
	}
	if from == math.MinInt64 {
		// Bucket starts are computed relative to from; an unbounded start
		// would overflow, so anchor at the series' first point.
		httpError(w, http.StatusBadRequest, errors.New("downsample requires from"))
		return
	}
	s.queries.Add(1)
	buckets, err := s.be.Downsample(series, from, to, window)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, engine.ErrBadWindow) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	out := make([]BucketJSON, len(buckets))
	for i, b := range buckets {
		out[i] = BucketJSON{Start: b.Start, Count: b.Count, Min: b.Min, Max: b.Max, Sum: b.Sum, Avg: b.Avg()}
	}
	writeJSON(w, out)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	names, err := s.be.Series()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, names)
}

// KindResponse is the GET /kind payload: the value kind of one series, ""
// when the series is unknown. Sharded routers use it to probe remote shards
// without transferring data.
type KindResponse struct {
	Series string `json:"series"`
	Kind   string `json:"kind"`
}

func (s *Server) handleKind(w http.ResponseWriter, r *http.Request) {
	series := r.FormValue("series")
	if series == "" {
		httpError(w, http.StatusBadRequest, errors.New("series is required"))
		return
	}
	kind, err := s.be.SeriesKind(series)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, KindResponse{Series: series, Kind: kind})
}

// CompactResponse acknowledges one POST /compact admin request.
type CompactResponse struct {
	Ran           bool              `json:"ran"` // false: policy found nothing due
	Files         int               `json:"files"`
	Series        int               `json:"series"`
	Points        int               `json:"points"`
	BytesBefore   int64             `json:"bytes_before"`
	BytesAfter    int64             `json:"bytes_after"`
	SeriesPackers map[string]string `json:"series_packers,omitempty"`
}

// handleCompact triggers maintenance on demand. mode=policy (default with a
// maintainer) runs one policy decision; mode=full merges every file. Without
// a maintainer only mode=full is available and runs through the backend (the
// engine default packer on a single node, a parallel per-shard fan-out on a
// sharded backend).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	mode := r.FormValue("mode")
	if mode == "" {
		if s.opt.Maintainer != nil {
			mode = "policy"
		} else {
			mode = "full"
		}
	}
	var (
		st  engine.CompactStats
		ran bool
		err error
	)
	switch mode {
	case "policy":
		if s.opt.Maintainer == nil {
			httpError(w, http.StatusBadRequest, errors.New("no maintainer configured; use mode=full"))
			return
		}
		st, ran, err = s.opt.Maintainer.RunOnce()
	case "full":
		if s.opt.Maintainer != nil {
			st, err = s.opt.Maintainer.CompactAll()
		} else if comp, ok := s.be.(Compactor); ok {
			st, err = comp.CompactAll()
		} else {
			httpError(w, http.StatusBadRequest, errors.New("backend does not support compaction"))
			return
		}
		ran = st.Files > 0
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", mode))
		return
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, engine.ErrCompacting) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, CompactResponse{
		Ran:           ran,
		Files:         st.Files,
		Series:        st.Series,
		Points:        st.Points,
		BytesBefore:   st.BytesBefore,
		BytesAfter:    st.BytesAfter,
		SeriesPackers: st.SeriesPackers,
	})
}

// StatsResponse is the /stats payload: engine footprint, per-series
// breakdown, and serving counters.
type StatsResponse struct {
	Packer        string  `json:"packer,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Files         int     `json:"files"`
	SeriesCount   int     `json:"series_count"`
	MemPoints     int     `json:"mem_points"`
	DiskPoints    int     `json:"disk_points"`
	DiskBytes     int64   `json:"disk_bytes"`
	BytesPerPoint float64 `json:"bytes_per_point,omitempty"`
	IngestPoints  int64   `json:"ingest_points"`
	IngestBatches int64   `json:"ingest_batches"`
	IngestGroups  int64   `json:"ingest_groups"`
	// WAL group-commit counters: records/groups is the batching factor the
	// engine's commit groups achieve under the current write load.
	WALGroups  int64 `json:"wal_groups"`
	WALRecords int64 `json:"wal_records"`
	Queries    int64 `json:"queries"`
	// Engine-level compaction counters (all compactions, any caller).
	Compactions       int64 `json:"compactions"`
	CompactedFiles    int64 `json:"compacted_files"`
	CompactedBytesIn  int64 `json:"compacted_bytes_in"`
	CompactedBytesOut int64 `json:"compacted_bytes_out"`
	// Cache reports the engine's decoded-chunk cache.
	Cache CacheStats `json:"cache"`
	// Pushdown reports the compressed-domain executor's tier counters:
	// chunks answered from footer statistics alone, from inlier-plane
	// partial decode, and by full decode fallback.
	Pushdown pushdown.Snapshot `json:"pushdown"`
	// Maintenance reports the background maintainer, when one is attached.
	Maintenance *maintain.Stats     `json:"maintenance,omitempty"`
	Series      []engine.SeriesStat `json:"series,omitempty"`
	// Shards reports per-shard footprints and health when the backend is
	// sharded (absent on single-engine servers).
	Shards []ShardStatus `json:"shards,omitempty"`
}

// CacheStats is the decoded-chunk cache block of /stats: the raw counters
// plus the derived hit rate.
type CacheStats struct {
	chunkcache.Stats
	HitRate float64 `json:"hit_rate"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.be.Stats()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := StatsResponse{
		Packer:        s.opt.PackerName,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Files:         st.Files,
		SeriesCount:   st.SeriesCount,
		MemPoints:     st.MemPoints,
		DiskPoints:    st.DiskPoints,
		DiskBytes:     st.DiskBytes,
		IngestPoints:  s.coal.points.Load(),
		IngestBatches: s.coal.batches.Load(),
		IngestGroups:  s.coal.groups.Load(),
		WALGroups:     st.WALGroups,
		WALRecords:    st.WALRecords,
		Queries:       s.queries.Load(),

		Compactions:       st.Compactions,
		CompactedFiles:    st.CompactedFiles,
		CompactedBytesIn:  st.CompactedBytesIn,
		CompactedBytesOut: st.CompactedBytesOut,

		Cache:    CacheStats{Stats: st.Cache, HitRate: st.Cache.HitRate()},
		Pushdown: st.Pushdown,
	}
	if s.opt.Maintainer != nil {
		ms := s.opt.Maintainer.Stats()
		resp.Maintenance = &ms
	}
	if st.DiskPoints > 0 {
		resp.BytesPerPoint = float64(st.DiskBytes) / float64(st.DiskPoints)
	}
	if r.FormValue("series") != "0" {
		ss, err := s.be.SeriesStats()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Series = ss
	}
	if sh, ok := s.be.(ShardStatuser); ok {
		resp.Shards = sh.ShardStatuses()
	}
	writeJSON(w, resp)
}

// HealthResponse is the /healthz payload. Single-engine servers report only
// the status; sharded backends add per-shard detail, and any unhealthy shard
// degrades the whole endpoint to 503.
type HealthResponse struct {
	Status string        `json:"status"` // "ok" or "degraded"
	Shards []ShardStatus `json:"shards,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.be.(ShardStatuser)
	if !ok {
		writeJSON(w, map[string]string{"status": "ok"})
		return
	}
	statuses := sh.ShardStatuses()
	resp := HealthResponse{Status: "ok", Shards: statuses}
	for _, st := range statuses {
		if !st.Healthy {
			resp.Status = "degraded"
		}
	}
	if resp.Status != "ok" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}
