package server

import (
	"strings"
	"testing"
)

func TestParseBatchBasic(t *testing.T) {
	b, err := parseBatch([]byte(
		"root.d1.temp,100,42\n" +
			"root.d1.temp,200,-7\n" +
			"# comment\n" +
			"\n" +
			"root.d1.hum,100,55.5\r\n" +
			"root.d1.hum,200,1e3\n" +
			"other,5,9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b.points != 5 {
		t.Fatalf("points = %d, want 5", b.points)
	}
	if got := b.ints["root.d1.temp"]; len(got) != 2 || got[0].T != 100 || got[0].V != 42 || got[1].V != -7 {
		t.Fatalf("temp points: %+v", got)
	}
	if got := b.floats["root.d1.hum"]; len(got) != 2 || got[0].V != 55.5 || got[1].V != 1000 {
		t.Fatalf("hum points: %+v", got)
	}
	if got := b.ints["other"]; len(got) != 1 {
		t.Fatalf("other points: %+v", got)
	}
}

func TestParseBatchIntPromotedToFloat(t *testing.T) {
	// An integer-looking value mixed into a float series within one batch is
	// promoted, in both orders.
	b, err := parseBatch([]byte("s,1,2.5\ns,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.floats["s"]; len(got) != 2 || got[1].V != 3 {
		t.Fatalf("float-first: %+v", got)
	}
	if len(b.ints["s"]) != 0 {
		t.Fatalf("int leftovers: %+v", b.ints["s"])
	}
	b, err = parseBatch([]byte("s,1,3\ns,2,2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.floats["s"]; len(got) != 2 || got[0].V != 3 || got[1].V != 2.5 {
		t.Fatalf("int-first: %+v", got)
	}
	if b.points != 2 {
		t.Fatalf("points = %d, want 2", b.points)
	}
}

func TestParseBatchErrors(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"missing fields", "a,1\n", "series,timestamp,value"},
		{"no commas", "abc\n", "series,timestamp,value"},
		{"empty series", ",1,2\n", "empty series"},
		{"control char series", "a\x01b,1,2\n", "control byte"},
		{"long series", strings.Repeat("x", maxSeriesName+1) + ",1,2\n", "longer than"},
		{"bad timestamp", "a,xyz,2\n", "timestamp"},
		{"overflow timestamp", "a,9223372036854775808,2\n", "timestamp"},
		{"empty value", "a,1,\n", "empty value"},
		{"bad value", "a,1,zzz\n", "value"},
		{"overflow int value", "a,1,99999999999999999999\n", "value"},
		{"nan", "a,1,NaN\n", "value"},
		{"inf", "a,1,Inf\n", "value"},
		{"neg inf", "a,1,-Infinity\n", "value"},
		{"hex float", "a,1,0x1p3\n", "value"},
		{"underscore int", "a,1,1_000\n", "value"},
		{"underscore float", "a,1,1_0.5\n", "value"},
		{"float overflow", "a,1,1e999\n", "value"},
		{"dangling exponent", "a,1,1e\n", "value"},
		{"double dot", "a,1,1.2.3\n", "value"},
		{"dot only", "a,1,.\n", "value"},
		{"line number", "ok,1,2\nbad\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBatch([]byte(tc.input))
			if err == nil {
				t.Fatalf("parseBatch(%q): want error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("parseBatch(%q) error %q, want substring %q", tc.input, err, tc.wantSub)
			}
		})
	}
}

func TestParseDecimalFloatAccepts(t *testing.T) {
	for _, s := range []string{"1.5", "-0.25", "+3.", ".5", "1e3", "1E-3", "2.5e+10", "0.0"} {
		if _, err := parseDecimalFloat(s); err != nil {
			t.Errorf("parseDecimalFloat(%q): %v", s, err)
		}
	}
}

func TestAppendFloatValueRoundTrips(t *testing.T) {
	for _, v := range []float64{0, 3, -3, 2.5, 1e30, -1.25e-7} {
		text := string(appendFloatValue(nil, v))
		if !isFloatSyntax(text) {
			t.Errorf("appendFloatValue(%v) = %q: not float syntax", v, text)
		}
		got, err := parseDecimalFloat(text)
		if err != nil {
			t.Errorf("appendFloatValue(%v) = %q: %v", v, text, err)
			continue
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, text, got)
		}
	}
}
