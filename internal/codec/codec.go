// Package codec defines the contracts shared by every compression component
// in this repository.
//
// The paper's central claim is that BOS is a drop-in replacement for the
// bit-packing *operator* inside larger compression methods (RLE, SPRINTZ,
// TS2DIFF, ...). That factoring is expressed here: a Packer packs one block
// of integers, an IntCodec compresses a whole integer series (usually by
// transforming it and delegating blocks to a Packer), a FloatCodec compresses
// float64 series directly, and a ByteCompressor is a general byte-stream
// compressor that can be layered on top (Figure 13).
package codec

import "fmt"

// DefaultBlockSize is the number of values per packed block, matching the
// paper's experimental default.
const DefaultBlockSize = 1024

// MaxBlockLen is the largest number of values a single packed block may
// declare. Decoders reject larger counts before allocating: a block whose
// values all pack to width 0 is otherwise free to claim an arbitrarily large
// count, which would let corrupt input trigger unbounded allocation.
const MaxBlockLen = 1 << 22

// Packer packs one block of int64 values into a self-delimiting byte blob.
// Pack appends to dst and returns the extended slice. Unpack consumes one
// blob from the front of src, appends the decoded values to out, and returns
// the grown slice plus the unread remainder of src.
//
// Implementations must round-trip arbitrary int64 values (the full range,
// including MinInt64/MaxInt64) and must return an error — never panic — on
// truncated or corrupted input.
type Packer interface {
	Name() string
	Pack(dst []byte, vals []int64) []byte
	Unpack(src []byte, out []int64) (vals []int64, rest []byte, err error)
}

// IntCodec compresses a complete integer series.
type IntCodec interface {
	Name() string
	Encode(dst []byte, vals []int64) []byte
	Decode(src []byte) ([]int64, error)
}

// FloatCodec compresses a complete float64 series. Decoded values must be
// bit-for-bit identical to the input (lossless).
type FloatCodec interface {
	Name() string
	Encode(dst []byte, vals []float64) []byte
	Decode(src []byte) ([]float64, error)
}

// ByteCompressor is a general-purpose byte-stream compressor.
type ByteCompressor interface {
	Name() string
	Compress(dst, src []byte) []byte
	Decompress(src []byte) ([]byte, error)
}

// Blockwise adapts a Packer into an IntCodec by splitting the series into
// fixed-size blocks. It is the "raw" pipeline used when a packing operator is
// evaluated on its own.
type Blockwise struct {
	Packer    Packer
	BlockSize int
}

// NewBlockwise returns a Blockwise codec over p with the given block size
// (DefaultBlockSize if size <= 0).
func NewBlockwise(p Packer, size int) *Blockwise {
	if size <= 0 {
		size = DefaultBlockSize
	}
	return &Blockwise{Packer: p, BlockSize: size}
}

// Name implements IntCodec.
func (b *Blockwise) Name() string { return b.Packer.Name() }

// Encode implements IntCodec.
func (b *Blockwise) Encode(dst []byte, vals []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(vals)))
	for off := 0; off < len(vals); off += b.BlockSize {
		end := off + b.BlockSize
		if end > len(vals) {
			end = len(vals)
		}
		dst = b.Packer.Pack(dst, vals[off:end])
	}
	return dst
}

// Decode implements IntCodec.
func (b *Blockwise) Decode(src []byte) ([]int64, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("blockwise %s: %w", b.Packer.Name(), err)
	}
	out := make([]int64, 0, n)
	for uint64(len(out)) < n {
		out, src, err = b.Packer.Unpack(src, out)
		if err != nil {
			return nil, fmt.Errorf("blockwise %s: %w", b.Packer.Name(), err)
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("blockwise %s: decoded %d values, header said %d", b.Packer.Name(), len(out), n)
	}
	return out, nil
}

// AppendUvarint appends v to dst as a byte-aligned base-128 varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// ReadUvarint consumes a varint from the front of src.
func ReadUvarint(src []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(src); i++ {
		b := src[i]
		if shift == 63 && b > 1 {
			return 0, nil, fmt.Errorf("codec: varint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, src[i+1:], nil
		}
		shift += 7
		if shift > 63 {
			return 0, nil, fmt.Errorf("codec: varint overflow")
		}
	}
	return 0, nil, fmt.Errorf("codec: truncated varint")
}
