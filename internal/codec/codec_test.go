package codec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// flatPacker is a trivial Packer used to test Blockwise independently of the
// real packers: varint count then 8-byte little-endian values.
type flatPacker struct{}

func (flatPacker) Name() string { return "flat" }

func (flatPacker) Pack(dst []byte, vals []int64) []byte {
	dst = AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		u := uint64(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

func (flatPacker) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	n, src, err := ReadUvarint(src)
	if err != nil {
		return out, nil, err
	}
	if n > uint64(len(src)/8) {
		return out, nil, errors.New("flat: truncated")
	}
	for i := uint64(0); i < n; i++ {
		u := uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 | uint64(src[3])<<24 |
			uint64(src[4])<<32 | uint64(src[5])<<40 | uint64(src[6])<<48 | uint64(src[7])<<56
		out = append(out, int64(u))
		src = src[8:]
	}
	return out, src, nil
}

func TestBlockwiseRoundTrip(t *testing.T) {
	bw := NewBlockwise(flatPacker{}, 4)
	cases := [][]int64{nil, {1}, {1, 2, 3, 4}, {1, 2, 3, 4, 5}, make([]int64, 17)}
	for _, vals := range cases {
		enc := bw.Encode(nil, vals)
		got, err := bw.Decode(enc)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("%v: got %d values", vals, len(got))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d mismatch", i)
			}
		}
	}
}

func TestBlockwiseDefaults(t *testing.T) {
	bw := NewBlockwise(flatPacker{}, 0)
	if bw.BlockSize != DefaultBlockSize {
		t.Errorf("block size %d want %d", bw.BlockSize, DefaultBlockSize)
	}
	if bw.Name() != "flat" {
		t.Errorf("name %q", bw.Name())
	}
}

func TestBlockwiseTruncated(t *testing.T) {
	bw := NewBlockwise(flatPacker{}, 4)
	enc := bw.Encode(nil, []int64{1, 2, 3, 4, 5, 6})
	if _, err := bw.Decode(enc[:3]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := bw.Decode(nil); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		got, rest, err := ReadUvarint(AppendUvarint(nil, v))
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintEdges(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, math.MaxUint64} {
		got, _, err := ReadUvarint(AppendUvarint(nil, v))
		if err != nil || got != v {
			t.Errorf("%d: got %d err %v", v, got, err)
		}
	}
	if _, _, err := ReadUvarint(nil); err == nil {
		t.Error("empty varint accepted")
	}
	if _, _, err := ReadUvarint([]byte{0x80, 0x80}); err == nil {
		t.Error("truncated varint accepted")
	}
	over := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := ReadUvarint(over); err == nil {
		t.Error("overflowing varint accepted")
	}
}
