package chunkcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(1 << 20)
	if _, _, ok := c.GetInt(1, "s", 0); ok {
		t.Fatal("hit on empty cache")
	}
	times := []int64{1, 2, 3}
	vals := []int64{10, 20, 30}
	c.PutInt(1, "s", 0, times, vals)
	gt, gv, ok := c.GetInt(1, "s", 0)
	if !ok || len(gt) != 3 || gv[2] != 30 {
		t.Fatalf("got %v %v ok=%v", gt, gv, ok)
	}
	// A float lookup on an int entry misses instead of mistyping.
	if _, _, ok := c.GetFloat(1, "s", 0); ok {
		t.Fatal("float hit on int entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != 6*8 {
		t.Fatalf("bytes %d, want 48", st.Bytes)
	}
	if hr := st.HitRate(); hr <= 0.33 || hr >= 0.34 {
		t.Fatalf("hit rate %f", hr)
	}
}

func TestFloatEntries(t *testing.T) {
	c := New(1 << 20)
	c.PutFloat(7, "f", 2, []int64{1, 2}, []float64{0.5, 1.5})
	ts, vs, ok := c.GetFloat(7, "f", 2)
	if !ok || ts[1] != 2 || vs[1] != 1.5 {
		t.Fatalf("got %v %v ok=%v", ts, vs, ok)
	}
	if _, _, ok := c.GetInt(7, "f", 2); ok {
		t.Fatal("int hit on float entry")
	}
}

func TestEvictionLRU(t *testing.T) {
	// Each entry is 2 slices x 8 values x 8 bytes = 128 bytes; cap at 3 entries.
	c := New(3 * 128)
	mk := func() ([]int64, []int64) { return make([]int64, 8), make([]int64, 8) }
	for i := 0; i < 3; i++ {
		ts, vs := mk()
		c.PutInt(1, "s", i, ts, vs)
	}
	// Touch chunk 0 so chunk 1 is the LRU victim.
	if _, _, ok := c.GetInt(1, "s", 0); !ok {
		t.Fatal("chunk 0 missing")
	}
	ts, vs := mk()
	c.PutInt(1, "s", 3, ts, vs)
	if _, _, ok := c.GetInt(1, "s", 1); ok {
		t.Fatal("LRU victim not evicted")
	}
	if _, _, ok := c.GetInt(1, "s", 0); !ok {
		t.Fatal("recently used entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*128 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOversizedBypass(t *testing.T) {
	c := New(64)
	c.PutInt(1, "s", 0, make([]int64, 100), make([]int64, 100))
	if _, _, ok := c.GetInt(1, "s", 0); ok {
		t.Fatal("oversized entry cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.PutInt(1, "a", 0, []int64{1}, []int64{1})
	c.PutInt(1, "b", 0, []int64{1}, []int64{1})
	c.PutInt(2, "a", 0, []int64{1}, []int64{1})
	c.InvalidateFile(1)
	if _, _, ok := c.GetInt(1, "a", 0); ok {
		t.Fatal("file-1 entry survived InvalidateFile")
	}
	if _, _, ok := c.GetInt(2, "a", 0); !ok {
		t.Fatal("file-2 entry lost")
	}
	c.InvalidateSeries("a")
	if _, _, ok := c.GetInt(2, "a", 0); ok {
		t.Fatal("series entry survived InvalidateSeries")
	}
	st := c.Stats()
	if st.Invalidations != 3 {
		t.Fatalf("invalidations %d, want 3", st.Invalidations)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	c.PutInt(1, "s", 0, []int64{1}, []int64{1})
	if _, _, ok := c.GetInt(1, "s", 0); ok {
		t.Fatal("nil cache hit")
	}
	c.InvalidateFile(1)
	c.InvalidateSeries("s")
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("New(<=0) must return nil")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(4 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				series := fmt.Sprintf("s%d", i%4)
				c.PutInt(uint64(g), series, i%16, make([]int64, 8), make([]int64, 8))
				c.GetInt(uint64(g), series, i%16)
				if i%100 == 0 {
					c.InvalidateFile(uint64(g))
				}
				if i%170 == 0 {
					c.InvalidateSeries(series)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 4<<10 {
		t.Fatalf("cache over budget: %+v", st)
	}
}
