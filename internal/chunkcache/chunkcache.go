// Package chunkcache is a size-bounded LRU cache for decoded chunks: the
// bit-unpacked time and value columns of one tsfile chunk, keyed by
// (file, series, chunk index). The read path decodes each chunk once per
// cache residency instead of once per scan page; the engine invalidates
// entries when the file that produced them is replaced (compaction commit,
// file GC) or when a series' visible contents change shape (range delete).
//
// Cached slices are shared between callers and MUST be treated as read-only.
// Files are identified by an engine-assigned unique ID, not their sequence
// number: compaction reuses the newest input's sequence for its output, so a
// sequence-keyed cache could serve a stale chunk under the new file's key.
package chunkcache

import (
	"container/list"
	"sync"
)

// Key identifies one decoded chunk.
type Key struct {
	File   uint64 // unique per open file handle, assigned by the owner
	Series string
	Chunk  int // index within the series' chunk list
}

// entry holds one decoded chunk. Exactly one of IVals / FVals is set.
type entry struct {
	key   Key
	times []int64
	ivals []int64   // integer chunk values
	fvals []float64 // float chunk values
	size  int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a thread-safe LRU over decoded chunks, bounded by the summed
// byte size of the cached columns.
type Cache struct {
	mu    sync.Mutex
	max   int64
	used  int64
	lru   *list.List // front = most recently used; values are *entry
	items map[Key]*list.Element

	hits, misses, evictions, invalidations int64
}

// New returns a cache bounded to maxBytes of decoded column data. maxBytes
// <= 0 returns a nil cache; a nil *Cache is a valid no-op cache.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, lru: list.New(), items: map[Key]*list.Element{}}
}

// GetInt returns the decoded columns of an integer chunk, or ok=false.
func (c *Cache) GetInt(file uint64, series string, chunk int) (times, vals []int64, ok bool) {
	e := c.get(Key{file, series, chunk}, false)
	if e == nil {
		return nil, nil, false
	}
	return e.times, e.ivals, true
}

// PutInt caches the decoded columns of an integer chunk. The cache takes
// shared ownership: the caller must not mutate the slices afterwards.
func (c *Cache) PutInt(file uint64, series string, chunk int, times, vals []int64) {
	c.put(&entry{
		key:   Key{file, series, chunk},
		times: times,
		ivals: vals,
		size:  int64(len(times)+len(vals)) * 8,
	})
}

// GetFloat returns the decoded columns of a float chunk, or ok=false.
func (c *Cache) GetFloat(file uint64, series string, chunk int) (times []int64, vals []float64, ok bool) {
	e := c.get(Key{file, series, chunk}, true)
	if e == nil {
		return nil, nil, false
	}
	return e.times, e.fvals, true
}

// PutFloat caches the decoded columns of a float chunk.
func (c *Cache) PutFloat(file uint64, series string, chunk int, times []int64, vals []float64) {
	c.put(&entry{
		key:   Key{file, series, chunk},
		times: times,
		fvals: vals,
		size:  int64(len(times)+len(vals)) * 8,
	})
}

// get looks up k, expecting a float entry when wantFloat is set; a
// kind-mismatched entry counts as a miss.
func (c *Cache) get(k Key, wantFloat bool) *entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if ok {
		e := el.Value.(*entry)
		if wantFloat == (e.fvals != nil) {
			c.hits++
			c.lru.MoveToFront(el)
			return e
		}
	}
	c.misses++
	return nil
}

func (c *Cache) put(e *entry) {
	if c == nil || e.size > c.max {
		return // oversized chunks bypass the cache rather than flushing it
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		// Replace in place (same chunk decoded twice by concurrent readers).
		old := el.Value.(*entry)
		c.used += e.size - old.size
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		c.items[e.key] = c.lru.PushFront(e)
		c.used += e.size
	}
	for c.used > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
}

// InvalidateFile drops every entry decoded from the given file. Called when
// the file leaves the live set (compaction commit, file GC).
func (c *Cache) InvalidateFile(file uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).key.File == file {
			c.removeLocked(el)
			c.invalidations++
		}
		el = next
	}
}

// InvalidateSeries drops every entry of one series across all files.
func (c *Cache) InvalidateSeries(series string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).key.Series == series {
			c.removeLocked(el)
			c.invalidations++
		}
		el = next
	}
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.items),
		Bytes:         c.used,
		MaxBytes:      c.max,
	}
}
