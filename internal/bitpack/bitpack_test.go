package bitpack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{math.MinInt64, math.MaxInt64},
		{5, 5, 5},
		{3, 2, 4, 5, 3, 2, 0, 8},
		{-100, 100, 0},
	}
	var p Packer
	for _, vals := range cases {
		enc := p.Pack(nil, vals)
		got, rest, err := p.Unpack(enc, nil)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(rest) != 0 || len(got) != len(vals) {
			t.Fatalf("%v: got %d values, %d rest", vals, len(got), len(rest))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d: got %d want %d", i, got[i], vals[i])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	var p Packer
	f := func(vals []int64) bool {
		enc := p.Pack(nil, vals)
		got, rest, err := p.Unpack(enc, nil)
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizeMatchesDefinition1(t *testing.T) {
	// 1024 values in [0, 255]: 8 bits each plus a small header.
	vals := make([]int64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = int64(rng.Intn(256))
	}
	var p Packer
	enc := p.Pack(nil, vals)
	if len(enc) < 1024 || len(enc) > 1024+16 {
		t.Errorf("encoded %d bytes, want ~1024", len(enc))
	}
}

func TestCorruptionNeverPanics(t *testing.T) {
	var p Packer
	rng := rand.New(rand.NewSource(2))
	base := p.Pack(nil, []int64{1, 2, 3, 1000, -7})
	for i := 0; i < 1000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		p.Unpack(cor, nil)
	}
}

func TestOutlierAmplification(t *testing.T) {
	// The motivating pathology: one huge outlier forces every value wide.
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i % 8) // 3 bits
	}
	var p Packer
	small := len(p.Pack(nil, vals))
	vals[0] = 1 << 40 // 41 bits
	big := len(p.Pack(nil, vals))
	if big < small*10 {
		t.Errorf("outlier did not amplify BP: %d -> %d bytes", small, big)
	}
}
