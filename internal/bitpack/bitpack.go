// Package bitpack implements plain frame-of-reference bit-packing (BP), the
// Definition 1 baseline: a block of values is stored as the minimum value
// followed by every value's offset from it at a single fixed bit-width
// ceil(log2(xmax - xmin + 1)).
//
// It is deliberately independent of the BOS implementation in internal/core
// so that the baseline measured in the experiments shares no code with the
// system under test.
package bitpack

import (
	"errors"
	"fmt"

	"bos/internal/bitio"
	"bos/internal/codec"
)

// Packer is the plain bit-packing operator. It satisfies codec.Packer.
type Packer struct{}

// Name implements codec.Packer.
func (Packer) Name() string { return "BP" }

// Pack implements codec.Packer: varint count, zigzag-varint minimum, a width
// byte, then count fixed-width offsets.
func (Packer) Pack(dst []byte, vals []int64) []byte {
	w := bitio.NewWriter(len(vals)*2 + 12)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	xmin, xmax := vals[0], vals[0]
	for _, v := range vals {
		if v < xmin {
			xmin = v
		}
		if v > xmax {
			xmax = v
		}
	}
	width := bitio.WidthOf(uint64(xmax) - uint64(xmin))
	w.WriteVarint(xmin)
	w.WriteBits(uint64(width), 8)
	// Fused frame-of-reference pack: the offsets uint64(v)-uint64(xmin)
	// are computed inside the bulk writer, no scratch slice.
	w.WriteBulkInt64(vals, uint64(xmin), width)
	return append(dst, w.Bytes()...)
}

var errCorrupt = errors.New("bitpack: corrupt block")

// Unpack implements codec.Packer.
func (Packer) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	// A width-0 (constant) block packs any count into a few header bytes,
	// so the count is bounded only by the shared absolute cap.
	if n64 > codec.MaxBlockLen {
		return out, nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	n := int(n64)
	if n == 0 {
		return out, r.Rest(), nil
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
	}
	width, err := r.ReadBits(8)
	if err != nil {
		return out, nil, fmt.Errorf("%w: width: %v", errCorrupt, err)
	}
	if width > 64 {
		return out, nil, fmt.Errorf("%w: width %d", errCorrupt, width)
	}
	base := len(out)
	out = append(out, make([]int64, n)...)
	if err := r.ReadBulkInt64(out[base:], uint(width), uint64(xmin)); err != nil {
		return out[:base], nil, fmt.Errorf("%w: values: %v", errCorrupt, err)
	}
	return out, r.Rest(), nil
}
