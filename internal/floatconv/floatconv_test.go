package floatconv

import (
	"math"
	"testing"
)

func TestPrecisionOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 0}, {-17, 0}, {0.5, 1}, {3.25, 2}, {0.125, 3},
		{12.34, 2}, {-0.001, 3}, {123456789, 0},
	}
	for _, c := range cases {
		if got := PrecisionOf(c.v); got != c.want {
			t.Errorf("PrecisionOf(%v) = %d want %d", c.v, got, c.want)
		}
	}
}

func TestPrecisionOfSpecials(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Pi, 1e300} {
		if got := PrecisionOf(v); got != -1 {
			t.Errorf("PrecisionOf(%v) = %d want -1", v, got)
		}
	}
}

func TestDetectPrecision(t *testing.T) {
	p, ok := DetectPrecision([]float64{1.5, 2.25, 3})
	if !ok || p != 2 {
		t.Errorf("got p=%d ok=%v want 2,true", p, ok)
	}
	if _, ok := DetectPrecision([]float64{1.5, math.Pi}); ok {
		t.Error("pi should not be detectable")
	}
	if p, ok := DetectPrecision(nil); !ok || p != 0 {
		t.Errorf("empty: p=%d ok=%v", p, ok)
	}
}

func TestScaledRoundTrip(t *testing.T) {
	vals := []float64{1.25, -3.5, 0, 100.75, -0.25}
	p, ok := DetectPrecision(vals)
	if !ok {
		t.Fatal("detect failed")
	}
	scaled, err := ToScaled(vals, p)
	if err != nil {
		t.Fatal(err)
	}
	back := FromScaled(scaled, p)
	for i := range vals {
		if back[i] != vals[i] {
			t.Errorf("value %d: got %v want %v", i, back[i], vals[i])
		}
	}
}

func TestScaledRoundTripDecimals(t *testing.T) {
	// Decimal fractions that are *not* exact binary fractions must still
	// round-trip through the decimal scaling.
	vals := []float64{0.1, 0.2, 0.3, 12.7, -4.9, 1234.56}
	p, ok := DetectPrecision(vals)
	if !ok {
		t.Fatal("detect failed")
	}
	scaled, err := ToScaled(vals, p)
	if err != nil {
		t.Fatal(err)
	}
	back := FromScaled(scaled, p)
	for i := range vals {
		if back[i] != vals[i] {
			t.Errorf("value %d: got %v want %v", i, back[i], vals[i])
		}
	}
}

func TestToScaledRejects(t *testing.T) {
	if _, err := ToScaled([]float64{math.Pi}, 5); err == nil {
		t.Error("pi at p=5 should fail")
	}
	if _, err := ToScaled([]float64{1}, -1); err == nil {
		t.Error("negative precision should fail")
	}
	if _, err := ToScaled([]float64{1}, MaxPrecision+1); err == nil {
		t.Error("excess precision should fail")
	}
}

func TestLargeMagnitudeRejected(t *testing.T) {
	// Values whose scaled form exceeds 2^53 cannot be represented exactly.
	if p := PrecisionOf(9.007199254740993e15 + 0.5); p > 0 {
		t.Errorf("got p=%d for value beyond exact integer range", p)
	}
}

func TestNegativeZeroFallsBackToRaw(t *testing.T) {
	// -0.0 passes float-equality round trips but cannot survive the int64
	// leg of the scaling; detection must reject it so codecs take the
	// bit-exact raw path.
	negZero := math.Copysign(0, -1)
	if p := PrecisionOf(negZero); p != -1 {
		t.Errorf("PrecisionOf(-0) = %d want -1", p)
	}
	if _, ok := DetectPrecision([]float64{1.5, negZero}); ok {
		t.Error("series containing -0 must not be detected as decimal")
	}
}
