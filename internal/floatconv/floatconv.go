// Package floatconv converts float64 series to scaled integers and back.
//
// The integer codecs in the paper (RLE, SPRINTZ, TS2DIFF and their packed
// variants) are applied to float datasets by "first converting float into
// integer by scaling 10^p, where p is the precision of the original
// floating-point data" (Section VIII-A2, following BUFF). This package
// detects p and performs the exact, reversible scaling.
package floatconv

import (
	"errors"
	"math"
)

// MaxPrecision is the largest decimal precision DetectPrecision will try.
// Beyond ~15 significant decimals a float64 cannot represent the decimal
// exactly anyway.
const MaxPrecision = 12

// ErrNotDecimal reports a value that is not exactly representable as a
// scaled integer at any precision up to MaxPrecision.
var ErrNotDecimal = errors.New("floatconv: value is not a short decimal")

// pow10 holds the exact powers of ten up to MaxPrecision.
var pow10 [MaxPrecision + 1]float64

func init() {
	p := 1.0
	for i := range pow10 {
		pow10[i] = p
		p *= 10
	}
}

// roundTripsAt reports whether v survives scaling by 10^p and back
// *bit-exactly*: float64(int64(round(v*10^p))) / 10^p must reproduce v,
// including the sign of zero (plain float comparison treats -0 == +0, but
// the int64 leg of the trip cannot carry a negative zero).
func roundTripsAt(v float64, p int) bool {
	s := math.Round(v * pow10[p])
	if math.Abs(s) >= 1<<53 {
		return false
	}
	back := float64(int64(s)) / pow10[p]
	return back == v && math.Signbit(back) == math.Signbit(v)
}

// PrecisionOf returns the smallest p in [0, MaxPrecision] at which v scales
// exactly, or -1 when none does (NaN, Inf, long binary fractions).
func PrecisionOf(v float64) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	for p := 0; p <= MaxPrecision; p++ {
		if roundTripsAt(v, p) {
			return p
		}
	}
	return -1
}

// DetectPrecision returns the smallest p at which every value in vals scales
// exactly. ok is false when any value resists scaling; such series must use a
// raw float path instead.
func DetectPrecision(vals []float64) (p int, ok bool) {
	for _, v := range vals {
		vp := PrecisionOf(v)
		if vp < 0 {
			return 0, false
		}
		if vp > p {
			p = vp
		}
	}
	return p, true
}

// DetectPrecisionLenient returns the largest precision needed by the values
// that scale exactly, skipping the ones that do not (NaN, Inf, -0, long
// binary fractions). ok is false when no value at all is decimal. It serves
// codecs that can mark individual values as unscalable (e.g. Elf's per-value
// erasure flag) rather than falling back for the whole stream.
func DetectPrecisionLenient(vals []float64) (p int, ok bool) {
	for _, v := range vals {
		if vp := PrecisionOf(v); vp >= 0 {
			ok = true
			if vp > p {
				p = vp
			}
		}
	}
	return p, ok
}

// ToScaled converts vals to integers scaled by 10^p. It returns
// ErrNotDecimal if any value does not convert exactly.
func ToScaled(vals []float64, p int) ([]int64, error) {
	if p < 0 || p > MaxPrecision {
		return nil, ErrNotDecimal
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		if !roundTripsAt(v, p) {
			return nil, ErrNotDecimal
		}
		out[i] = int64(math.Round(v * pow10[p]))
	}
	return out, nil
}

// FromScaled inverts ToScaled.
func FromScaled(scaled []int64, p int) []float64 {
	out := make([]float64, len(scaled))
	for i, s := range scaled {
		out[i] = float64(s) / pow10[p]
	}
	return out
}
