// Package lz implements an LZ4-class byte compressor from scratch: greedy
// LZ77 with a 4-byte hash table over a 64 KiB window, emitting the familiar
// token / literals / offset / match-length sequence format. It plays the role
// of LZ4 in the Figure 13 complementarity study (BOS+LZ4 vs LZ4).
package lz

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch   = 4
	hashBits   = 16
	maxOffset  = 65535
	lastTail   = 5  // final bytes are always literals
	matchGuard = 12 // matches must not start this close to the end
)

var errCorrupt = errors.New("lz: corrupt stream")

// Compressor satisfies codec.ByteCompressor.
type Compressor struct{}

// Name implements codec.ByteCompressor.
func (Compressor) Name() string { return "LZ4" }

// Compress implements codec.ByteCompressor.
func (Compressor) Compress(dst, src []byte) []byte { return Compress(dst, src) }

// Decompress implements codec.ByteCompressor.
func (Compressor) Decompress(src []byte) ([]byte, error) { return Decompress(src) }

func hash4(v uint32) uint32 {
	return v * 2654435761 >> (32 - hashBits)
}

// Compress appends the compressed form of src to dst: a varint raw length
// followed by LZ4-style sequences.
func Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << hashBits]int32 // position+1 of a recent 4-byte sequence
	anchor, i := 0, 0
	limit := len(src) - matchGuard
	for i < limit {
		seq := binary.LittleEndian.Uint32(src[i:])
		h := hash4(seq)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > maxOffset || binary.LittleEndian.Uint32(src[cand:]) != seq {
			i++
			continue
		}
		// Extend the match forward, leaving the guard tail as literals.
		mlen := minMatch
		maxLen := len(src) - lastTail - i
		for mlen < maxLen && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst = emitSequence(dst, src[anchor:i], i-cand, mlen)
		i += mlen
		anchor = i
	}
	// Final literals-only sequence.
	return emitSequence(dst, src[anchor:], 0, 0)
}

// emitSequence writes one token + literals (+ offset + extended match length
// when matchLen >= minMatch; matchLen == 0 marks the trailing literals-only
// sequence).
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= 15 {
		token = 0xf0
	} else {
		token = byte(litLen) << 4
	}
	ml := 0
	if matchLen > 0 {
		ml = matchLen - minMatch
		if ml >= 15 {
			token |= 0x0f
		} else {
			token |= byte(ml)
		}
	}
	dst = append(dst, token)
	dst = appendExtLen(dst, litLen)
	dst = append(dst, literals...)
	if matchLen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		dst = appendExtLen(dst, ml)
	}
	return dst
}

// appendExtLen writes the 255-run extension bytes for lengths >= 15.
func appendExtLen(dst []byte, l int) []byte {
	if l < 15 {
		return dst
	}
	l -= 15
	for l >= 255 {
		dst = append(dst, 255)
		l -= 255
	}
	return append(dst, byte(l))
}

func readExtLen(src []byte, base int) (int, []byte, error) {
	if base < 15 {
		return base, src, nil
	}
	l := base
	for {
		if len(src) == 0 {
			return 0, nil, fmt.Errorf("%w: truncated length", errCorrupt)
		}
		b := src[0]
		src = src[1:]
		l += int(b)
		if l < 0 {
			return 0, nil, fmt.Errorf("%w: length overflow", errCorrupt)
		}
		if b != 255 {
			return l, src, nil
		}
	}
}

// Decompress inverts Compress.
func Decompress(src []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: header", errCorrupt)
	}
	src = src[n:]
	if rawLen > uint64(len(src))*256+64 {
		return nil, fmt.Errorf("%w: implausible raw length %d", errCorrupt, rawLen)
	}
	out := make([]byte, 0, rawLen)
	for uint64(len(out)) < rawLen {
		if len(src) == 0 {
			return nil, fmt.Errorf("%w: truncated at %d/%d", errCorrupt, len(out), rawLen)
		}
		token := src[0]
		src = src[1:]
		litLen, rest, err := readExtLen(src, int(token>>4))
		if err != nil {
			return nil, err
		}
		src = rest
		if litLen > len(src) {
			return nil, fmt.Errorf("%w: %d literals with %d bytes left", errCorrupt, litLen, len(src))
		}
		out = append(out, src[:litLen]...)
		src = src[litLen:]
		if uint64(len(out)) >= rawLen {
			break // trailing literals-only sequence
		}
		if len(src) < 2 {
			return nil, fmt.Errorf("%w: truncated offset", errCorrupt)
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		ml, rest, err := readExtLen(src, int(token&0x0f))
		if err != nil {
			return nil, err
		}
		src = rest
		matchLen := ml + minMatch
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("%w: offset %d at %d", errCorrupt, offset, len(out))
		}
		if uint64(len(out)+matchLen) > rawLen {
			return nil, fmt.Errorf("%w: match overruns output", errCorrupt)
		}
		// Byte-by-byte copy: matches may overlap themselves.
		start := len(out) - offset
		for k := 0; k < matchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("%w: expanded to %d, want %d", errCorrupt, len(out), rawLen)
	}
	return out, nil
}
