package lz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Compress(nil, src)
	got, err := Decompress(enc)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(src))
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		[]byte("a"),
		[]byte("hello, world"),
		[]byte(strings.Repeat("abcd", 1000)),
		[]byte(strings.Repeat("a", 100000)),
		bytes.Repeat([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 512),
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestCompressesRepetition(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	enc := roundTrip(t, src)
	if len(enc) > len(src)/10 {
		t.Errorf("repetitive text: %d -> %d bytes", len(src), len(enc))
	}
}

func TestIncompressibleOverheadSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 64*1024)
	rng.Read(src)
	enc := roundTrip(t, src)
	if len(enc) > len(src)+len(src)/100+16 {
		t.Errorf("random data expanded: %d -> %d", len(src), len(enc))
	}
}

func TestOverlappingMatches(t *testing.T) {
	// RLE-style overlap: offset 1 with long match must replicate correctly.
	src := append([]byte("x"), bytes.Repeat([]byte("y"), 1000)...)
	roundTrip(t, src)
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		enc := Compress(nil, src)
		got, err := Decompress(enc)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStructuredBinary(t *testing.T) {
	// The actual use case: bit-packed blocks with shared headers.
	rng := rand.New(rand.NewSource(2))
	var src []byte
	for b := 0; b < 100; b++ {
		src = append(src, 0xCA, 0xFE, 8, 0)
		for i := 0; i < 256; i++ {
			src = append(src, byte(rng.Intn(16)))
		}
	}
	roundTrip(t, src)
}

func TestDecompressCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := Compress(nil, []byte(strings.Repeat("hello world ", 100)))
	for i := 0; i < 3000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		Decompress(cor)
	}
}

func TestDecompressTruncated(t *testing.T) {
	src := []byte(strings.Repeat("abcabcabd", 50))
	enc := Compress(nil, src)
	for cut := 0; cut < len(enc)-1; cut++ {
		if got, err := Decompress(enc[:cut]); err == nil && bytes.Equal(got, src) {
			t.Fatalf("cut %d decoded fully", cut)
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	src := []byte(strings.Repeat("sensor=42 temp=17.5 state=OK\n", 2000))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = Compress(buf[:0], src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := []byte(strings.Repeat("sensor=42 temp=17.5 state=OK\n", 2000))
	enc := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(enc); err != nil {
			b.Fatal(err)
		}
	}
}
