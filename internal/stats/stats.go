// Package stats implements the order-statistic and distribution tools used by
// the BOS planners and the experiment harness: an expected-O(n) QuickSelect
// (Hoare's Find, the median routine Algorithm 3 of the paper relies on),
// cumulative counts over sorted distinct values (Definition 6), and simple
// histogram / moment summaries for reproducing Figure 8.
package stats

import (
	"math"
	"sort"
)

// Median returns the lower median of vals using QuickSelect in expected O(n)
// time. vals is not modified. Median panics on an empty slice, mirroring the
// contract of the paper's FindMedian (a block always has at least one value).
func Median(vals []int64) int64 {
	if len(vals) == 0 {
		panic("stats: median of empty slice")
	}
	work := make([]int64, len(vals))
	copy(work, vals)
	return QuickSelect(work, (len(work)-1)/2)
}

// QuickSelect rearranges work in place and returns the k-th smallest element
// (0-based). It uses median-of-three pivoting with a fallback to guarantee
// progress on pathological inputs.
func QuickSelect(work []int64, k int) int64 {
	lo, hi := 0, len(work)-1
	for lo < hi {
		p := partition(work, lo, hi)
		switch {
		case k == p:
			return work[p]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return work[lo]
}

// partition chooses a median-of-three pivot and partitions work[lo:hi+1],
// returning the pivot's final index.
func partition(work []int64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Sort lo, mid, hi so work[mid] is the median of the three.
	if work[mid] < work[lo] {
		work[mid], work[lo] = work[lo], work[mid]
	}
	if work[hi] < work[lo] {
		work[hi], work[lo] = work[lo], work[hi]
	}
	if work[hi] < work[mid] {
		work[hi], work[mid] = work[mid], work[hi]
	}
	pivot := work[mid]
	work[mid], work[hi-1] = work[hi-1], work[mid]
	if hi-lo < 2 {
		return lo
	}
	i := lo
	for j := lo; j < hi-1; j++ {
		if work[j] < pivot {
			work[i], work[j] = work[j], work[i]
			i++
		}
	}
	work[i], work[hi-1] = work[hi-1], work[i]
	return i
}

// Distinct holds the sorted distinct values of a series together with the
// cumulative counts of Definition 6: for distinct value Values[i],
// CumLE[i] = |{x : x <= Values[i]}| and the strict count |{x : x < Values[i]}|
// equals CumLE[i-1] (0 for i == 0).
type Distinct struct {
	Values []int64
	CumLE  []int
	N      int
}

// NewDistinct computes the sorted distinct values and cumulative counts of
// vals in O(n log n).
func NewDistinct(vals []int64) *Distinct {
	n := len(vals)
	sorted := make([]int64, n)
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d := &Distinct{N: n}
	for i := 0; i < n; {
		j := i + 1
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		d.Values = append(d.Values, sorted[i])
		d.CumLE = append(d.CumLE, j)
		i = j
	}
	return d
}

// CountLE returns |{x : x <= v}| by binary search.
func (d *Distinct) CountLE(v int64) int {
	i := sort.Search(len(d.Values), func(i int) bool { return d.Values[i] > v })
	if i == 0 {
		return 0
	}
	return d.CumLE[i-1]
}

// CountLT returns |{x : x < v}| by binary search.
func (d *Distinct) CountLT(v int64) int {
	i := sort.Search(len(d.Values), func(i int) bool { return d.Values[i] >= v })
	if i == 0 {
		return 0
	}
	return d.CumLE[i-1]
}

// MaxLE returns the largest distinct value <= v and whether one exists.
func (d *Distinct) MaxLE(v int64) (int64, bool) {
	i := sort.Search(len(d.Values), func(i int) bool { return d.Values[i] > v })
	if i == 0 {
		return 0, false
	}
	return d.Values[i-1], true
}

// MinGE returns the smallest distinct value >= v and whether one exists.
func (d *Distinct) MinGE(v int64) (int64, bool) {
	i := sort.Search(len(d.Values), func(i int) bool { return d.Values[i] >= v })
	if i == len(d.Values) {
		return 0, false
	}
	return d.Values[i], true
}

// Summary holds the basic moments of a series.
type Summary struct {
	N         int
	Min, Max  int64
	Mean, Std float64
}

// Summarize computes min, max, mean and standard deviation in one pass.
func Summarize(vals []int64) Summary {
	s := Summary{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	var sum float64
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += float64(v)
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range vals {
		d := float64(v) - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Histogram divides [min, max] into the given number of equal-width bins and
// counts values per bin. It reproduces the Figure 8 frequency plots in text
// form.
type Histogram struct {
	Min, Max int64
	Width    float64
	Counts   []int
}

// NewHistogram builds a histogram with bins buckets over vals. It returns an
// empty histogram when vals is empty; bins must be positive.
func NewHistogram(vals []int64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(vals) == 0 {
		return h
	}
	s := Summarize(vals)
	h.Min, h.Max = s.Min, s.Max
	span := float64(s.Max) - float64(s.Min)
	if span <= 0 {
		h.Counts[0] = len(vals)
		h.Width = 1
		return h
	}
	h.Width = span / float64(bins)
	for _, v := range vals {
		i := int(float64(v-s.Min) / span * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Mode returns the index of the most populated bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}
