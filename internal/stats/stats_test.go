package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianSmall(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{2, 1}, 1},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2},
		{[]int64{9, 9, 9, 9, 9}, 9},
		{[]int64{-5, 0, 5}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %d want %d", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []int64{5, 3, 1, 4, 2}
	Median(in)
	want := []int64{5, 3, 1, 4, 2}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

func TestMedianMatchesSortProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		got := Median(vals)
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return got == sorted[(len(sorted)-1)/2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(100) + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20) - 10) // many duplicates
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for k := 0; k < n; k++ {
			work := append([]int64(nil), vals...)
			if got := QuickSelect(work, k); got != sorted[k] {
				t.Fatalf("iter %d: QuickSelect(k=%d) = %d want %d", iter, k, got, sorted[k])
			}
		}
	}
}

func TestQuickSelectSortedInput(t *testing.T) {
	// Already-sorted input is the classic quadratic trap; median-of-three
	// must keep it fast and correct.
	n := 10000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	if got := QuickSelect(vals, n/2); got != int64(n/2) {
		t.Errorf("got %d want %d", got, n/2)
	}
}

func TestDistinct(t *testing.T) {
	d := NewDistinct([]int64{3, 2, 4, 5, 3, 2, 0, 8})
	wantVals := []int64{0, 2, 3, 4, 5, 8}
	wantCum := []int{1, 3, 5, 6, 7, 8}
	if len(d.Values) != len(wantVals) {
		t.Fatalf("values = %v", d.Values)
	}
	for i := range wantVals {
		if d.Values[i] != wantVals[i] || d.CumLE[i] != wantCum[i] {
			t.Errorf("i=%d: (%d,%d) want (%d,%d)", i, d.Values[i], d.CumLE[i], wantVals[i], wantCum[i])
		}
	}
	if d.CountLE(3) != 5 || d.CountLT(3) != 3 {
		t.Errorf("CountLE(3)=%d CountLT(3)=%d", d.CountLE(3), d.CountLT(3))
	}
	if d.CountLE(-1) != 0 || d.CountLE(100) != 8 {
		t.Errorf("boundary counts wrong")
	}
	if v, ok := d.MaxLE(7); !ok || v != 5 {
		t.Errorf("MaxLE(7) = %d,%v", v, ok)
	}
	if _, ok := d.MaxLE(-1); ok {
		t.Error("MaxLE(-1) should not exist")
	}
	if v, ok := d.MinGE(6); !ok || v != 8 {
		t.Errorf("MinGE(6) = %d,%v", v, ok)
	}
	if _, ok := d.MinGE(9); ok {
		t.Error("MinGE(9) should not exist")
	}
}

func TestDistinctCountsProperty(t *testing.T) {
	f := func(vals []int64, probe int64) bool {
		d := NewDistinct(vals)
		le, lt := 0, 0
		for _, v := range vals {
			if v <= probe {
				le++
			}
			if v < probe {
				lt++
			}
		}
		return d.CountLE(probe) == le && d.CountLT(probe) == lt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Std < 1.1 || s.Std > 1.2 { // sqrt(1.25) ≈ 1.118
		t.Errorf("std = %f", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
		if c != 2 {
			t.Errorf("counts = %v", h.Counts)
			break
		}
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]int64{7, 7, 7}, 4)
	if h.Counts[0] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Mode() != 0 {
		t.Errorf("mode = %d", h.Mode())
	}
}

func BenchmarkMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Median(vals)
	}
}

func BenchmarkNewDistinct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(rng.Intn(512))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewDistinct(vals)
	}
}
