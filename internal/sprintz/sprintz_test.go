package sprintz

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/pfor"
)

func testPackers() []codec.Packer {
	return []codec.Packer{
		bitpack.Packer{},
		pfor.OptPFOR{},
		pfor.SimplePFOR{},
		core.NewPacker(core.SeparationBitWidth),
		core.NewPacker(core.SeparationMedian),
	}
}

func roundTrip(t *testing.T, c codec.IntCodec, vals []int64) []byte {
	t.Helper()
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d: got %d want %d", c.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{1, 2, 3, 4, 5},
		{math.MinInt64, math.MaxInt64, math.MinInt64},
		{-5, -4, 10000, -3},
		{9, 9, 9, 9, 9, 9},
	}
	for _, p := range testPackers() {
		c := New(p, 0)
		for _, vals := range cases {
			roundTrip(t, c, vals)
		}
	}
}

func TestZeroRunCollapse(t *testing.T) {
	// A long constant stretch yields all-zero residual blocks, which the
	// zero-run marker must collapse to a few bytes.
	vals := make([]int64, 100*1024)
	for i := range vals {
		vals[i] = 12345
	}
	// Block 0 carries the large first delta (the value itself) and packs
	// normally; the other 99 blocks are all-zero and must collapse to a
	// few bytes instead of 99 packed blocks.
	c := New(bitpack.Packer{}, 0)
	enc := roundTrip(t, c, vals)
	oneBlock := len(New(bitpack.Packer{}, 0).Encode(nil, vals[:1024]))
	if len(enc) > oneBlock+32 {
		t.Errorf("constant 100k series encoded to %d bytes (first block alone is %d)", len(enc), oneBlock)
	}
	// With BOS packing the first block, the lone spike separates too.
	bos := New(core.NewPacker(core.SeparationBitWidth), 0)
	if enc := roundTrip(t, bos, vals); len(enc) > 400 {
		t.Errorf("constant 100k series with BOS encoded to %d bytes", len(enc))
	}
}

func TestZeroRunBoundaries(t *testing.T) {
	// Zero runs that start/stop mid-block exercise the marker logic.
	c := New(bitpack.Packer{}, 64)
	vals := make([]int64, 64*5+17)
	for i := range vals {
		vals[i] = 7
	}
	vals[3] = 9                // non-zero residual in first block
	vals[64*3+5] = 11          // breaks the middle run
	vals[len(vals)-1] = 100000 // tail block is partial
	roundTrip(t, c, vals)
}

func TestZigzagFoldsNegativeDeltas(t *testing.T) {
	// Oscillating series produce alternating +/- deltas; zigzag keeps
	// them small and non-negative, so SPRINTZ+BP stays narrow.
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i%2) * 3 // deltas alternate +3/-3 -> zigzag 6/5
	}
	c := New(bitpack.Packer{}, 0)
	enc := roundTrip(t, c, vals)
	if len(enc) > 1800 { // 3 bits/value plus headers
		t.Errorf("oscillating series: %d bytes — zigzag not effective", len(enc))
	}
}

func TestBOSBeatsBPOnSpikyResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 8192)
	v := int64(0)
	for i := range vals {
		if rng.Float64() < 0.02 {
			v += rng.Int63n(1<<35) - 1<<34 // spike in either direction
		} else {
			v += int64(rng.Intn(8)) - 4
		}
		vals[i] = v
	}
	bp := len(New(bitpack.Packer{}, 0).Encode(nil, vals))
	bos := len(New(core.NewPacker(core.SeparationBitWidth), 0).Encode(nil, vals))
	if bos >= bp {
		t.Errorf("SPRINTZ+BOS-B %d bytes, SPRINTZ+BP %d — BOS should win", bos, bp)
	}
}

func TestRandomWalksAllPackers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range testPackers() {
		c := New(p, 256)
		for iter := 0; iter < 30; iter++ {
			n := rng.Intn(3000)
			vals := make([]int64, n)
			v := int64(0)
			for i := range vals {
				v += int64(rng.NormFloat64() * 50)
				vals[i] = v
			}
			roundTrip(t, c, vals)
		}
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(core.NewPacker(core.SeparationBitWidth), 0)
	base := c.Encode(nil, []int64{5, 6, 7, 1000, 8, 9})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}
