// Package sprintz implements a SPRINTZ-style codec (Blalock et al.,
// IMWUT 2018) parameterized by a bit-packing operator: delta prediction with
// all-zero residual blocks collapsed to a run count, and the surviving
// residual blocks handed to the configured codec.Packer. This is the
// SPRINTZ+BP / SPRINTZ+PFOR / SPRINTZ+BOS family of the evaluation.
//
// Substitution note (see DESIGN.md): the original Sprintz couples a FIRE
// forecaster, zigzag folding and a Huffman stage. Following the paper's own
// framing ("subtract the previous data from the current data and remove
// redundant leading zeros with bit-packing"), this implementation keeps the
// delta + zero-run + bit-pack skeleton and leaves residuals signed — the
// packing operators already subtract the block minimum, and signed residuals
// preserve the lower-outlier structure that the BOS comparison is about.
// SPRINTZ differs from TS2DIFF here by its zero-run collapse, mirroring
// Sprintz's run-of-zero-blocks optimization.
package sprintz

import (
	"fmt"

	"bos/internal/codec"
)

// Codec is delta encoding with zero-run collapse over a pluggable packer.
type Codec struct {
	Packer    codec.Packer
	BlockSize int
}

// New returns a SPRINTZ codec over p (block size defaults to
// codec.DefaultBlockSize).
func New(p codec.Packer, blockSize int) *Codec {
	if blockSize <= 0 {
		blockSize = codec.DefaultBlockSize
	}
	return &Codec{Packer: p, BlockSize: blockSize}
}

// Name implements codec.IntCodec.
func (c *Codec) Name() string { return "SPRINTZ+" + c.Packer.Name() }

// Block markers: a zero-run block replaces a run of all-zero residual blocks.
const (
	blockPacked  byte = 0
	blockZeroRun byte = 1
)

// Encode implements codec.IntCodec.
func (c *Codec) Encode(dst []byte, vals []int64) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(vals)))
	// Delta prediction; residuals stay signed.
	res := make([]int64, len(vals))
	prev := int64(0)
	for i, v := range vals {
		res[i] = int64(uint64(v) - uint64(prev))
		prev = v
	}
	for off := 0; off < len(res); {
		end := off + c.BlockSize
		if end > len(res) {
			end = len(res)
		}
		if allZero(res[off:end]) && end-off == c.BlockSize {
			// Collapse the run of full all-zero blocks.
			runEnd := end
			for runEnd+c.BlockSize <= len(res) && allZero(res[runEnd:runEnd+c.BlockSize]) {
				runEnd += c.BlockSize
			}
			dst = append(dst, blockZeroRun)
			dst = codec.AppendUvarint(dst, uint64(runEnd-off))
			off = runEnd
			continue
		}
		dst = append(dst, blockPacked)
		dst = c.Packer.Pack(dst, res[off:end])
		off = end
	}
	return dst
}

func allZero(vals []int64) bool {
	for _, v := range vals {
		if v != 0 {
			return false
		}
	}
	return true
}

// Decode implements codec.IntCodec.
func (c *Codec) Decode(src []byte) ([]int64, error) {
	n64, src, err := codec.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("sprintz: count: %w", err)
	}
	if n64 > uint64(codec.MaxBlockLen)*64 {
		return nil, fmt.Errorf("sprintz: implausible count %d", n64)
	}
	n := int(n64)
	res := make([]int64, 0, n)
	for len(res) < n {
		if len(src) == 0 {
			return nil, fmt.Errorf("sprintz: truncated after %d/%d values", len(res), n)
		}
		marker := src[0]
		src = src[1:]
		switch marker {
		case blockZeroRun:
			var run uint64
			run, src, err = codec.ReadUvarint(src)
			if err != nil {
				return nil, fmt.Errorf("sprintz: zero run: %w", err)
			}
			if run == 0 || run > uint64(n-len(res)) {
				return nil, fmt.Errorf("sprintz: zero run of %d with %d slots left", run, n-len(res))
			}
			for i := uint64(0); i < run; i++ {
				res = append(res, 0)
			}
		case blockPacked:
			before := len(res)
			res, src, err = c.Packer.Unpack(src, res)
			if err != nil {
				return nil, fmt.Errorf("sprintz: %w", err)
			}
			if len(res) == before {
				return nil, fmt.Errorf("sprintz: empty block before %d/%d values", len(res), n)
			}
		default:
			return nil, fmt.Errorf("sprintz: unknown block marker %d", marker)
		}
	}
	if len(res) != n {
		return nil, fmt.Errorf("sprintz: decoded %d values, want %d", len(res), n)
	}
	// Integrate the deltas in place.
	prev := int64(0)
	for i, d := range res {
		prev = int64(uint64(prev) + uint64(d))
		res[i] = prev
	}
	return res, nil
}
