package rle

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/pfor"
)

func testPackers() []codec.Packer {
	return []codec.Packer{
		bitpack.Packer{},
		pfor.Packer{},
		pfor.OptPFOR{},
		core.NewPacker(core.SeparationBitWidth),
		core.NewPacker(core.SeparationMedian),
	}
}

func roundTrip(t *testing.T, c codec.IntCodec, vals []int64) []byte {
	t.Helper()
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d: got %d want %d", c.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{5, 5, 5, 5, 5, 5},
		{1, 2, 3},
		{math.MinInt64, math.MinInt64, math.MaxInt64},
		{7, 7, -1, -1, -1, 7, 0},
	}
	for _, p := range testPackers() {
		c := New(p, 0)
		for _, vals := range cases {
			roundTrip(t, c, vals)
		}
	}
}

func TestHighRepetitionCompresses(t *testing.T) {
	// RLE's home turf: long runs collapse to a handful of pairs.
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i / 1000)
	}
	c := New(bitpack.Packer{}, 0)
	enc := roundTrip(t, c, vals)
	if len(enc) > 200 {
		t.Errorf("10 runs encoded to %d bytes", len(enc))
	}
}

func TestRandomSeriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range testPackers() {
		c := New(p, 128)
		for iter := 0; iter < 40; iter++ {
			n := rng.Intn(2000)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(rng.Intn(10)) // repetitive
			}
			roundTrip(t, c, vals)
		}
	}
}

func TestBOSBeatsBPWithRunValueOutliers(t *testing.T) {
	// Run values with outliers: exactly where RLE+BOS should win over
	// RLE+BP (the packer packs the run-value column).
	rng := rand.New(rand.NewSource(2))
	var vals []int64
	for r := 0; r < 3000; r++ {
		v := int64(rng.Intn(16))
		if rng.Float64() < 0.03 {
			v = rng.Int63n(1 << 40)
		}
		run := 1 + rng.Intn(4)
		for k := 0; k < run; k++ {
			vals = append(vals, v)
		}
	}
	bp := len(New(bitpack.Packer{}, 0).Encode(nil, vals))
	bos := len(New(core.NewPacker(core.SeparationBitWidth), 0).Encode(nil, vals))
	if bos >= bp {
		t.Errorf("RLE+BOS-B %d bytes, RLE+BP %d — BOS should win", bos, bp)
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New(core.NewPacker(core.SeparationBitWidth), 0)
	base := c.Encode(nil, []int64{1, 1, 1, 5, 5, 9, 9, 9, 9})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func TestDecodeRejectsBadRunLengths(t *testing.T) {
	// Encode manually with an overlong run smuggled in: the decoder must
	// reject rather than over-expand. (Zero-length runs are structurally
	// unrepresentable: lengths are stored as length-1 varints.)
	c := New(bitpack.Packer{}, 0)
	dst := codec.AppendUvarint(nil, 4) // claims 4 values
	dst = codec.AppendUvarint(dst, 2)  // 2 runs
	dst = bitpack.Packer{}.Pack(dst, []int64{7, 8})
	dst = codec.AppendUvarint(dst, 2) // run of 3
	dst = codec.AppendUvarint(dst, 2) // run of 3: total 6 > 4
	if _, err := c.Decode(dst); err == nil {
		t.Error("overlong run lengths accepted")
	}
}
