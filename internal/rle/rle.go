// Package rle implements run-length encoding (Golomb 1966) parameterized by
// a bit-packing operator: the series is rewritten as (value, run-length)
// pairs, the value column is handed to the configured codec.Packer and the
// run lengths are varint-coded (as in the IoTDB/Parquet hybrid RLE layout).
// This is the RLE+BP / RLE+PFOR / RLE+BOS family of the paper's evaluation.
package rle

import (
	"fmt"

	"bos/internal/codec"
)

// Codec is run-length encoding over a pluggable packer.
type Codec struct {
	Packer    codec.Packer
	BlockSize int
}

// New returns an RLE codec over p (block size defaults to
// codec.DefaultBlockSize).
func New(p codec.Packer, blockSize int) *Codec {
	if blockSize <= 0 {
		blockSize = codec.DefaultBlockSize
	}
	return &Codec{Packer: p, BlockSize: blockSize}
}

// Name implements codec.IntCodec.
func (c *Codec) Name() string { return "RLE+" + c.Packer.Name() }

// Encode implements codec.IntCodec.
func (c *Codec) Encode(dst []byte, vals []int64) []byte {
	var runVals, runLens []int64
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		runVals = append(runVals, vals[i])
		runLens = append(runLens, int64(j-i))
		i = j
	}
	dst = codec.AppendUvarint(dst, uint64(len(vals)))
	dst = codec.AppendUvarint(dst, uint64(len(runVals)))
	dst = c.packAll(dst, runVals)
	for _, rl := range runLens {
		dst = codec.AppendUvarint(dst, uint64(rl)-1) // runs are >= 1
	}
	return dst
}

func (c *Codec) packAll(dst []byte, vals []int64) []byte {
	for off := 0; off < len(vals); off += c.BlockSize {
		end := off + c.BlockSize
		if end > len(vals) {
			end = len(vals)
		}
		dst = c.Packer.Pack(dst, vals[off:end])
	}
	return dst
}

func (c *Codec) unpackN(src []byte, n int) ([]int64, []byte, error) {
	out := make([]int64, 0, n)
	var err error
	for len(out) < n {
		before := len(out)
		out, src, err = c.Packer.Unpack(src, out)
		if err != nil {
			return nil, nil, err
		}
		if len(out) == before {
			return nil, nil, fmt.Errorf("rle: empty block before %d/%d values", len(out), n)
		}
	}
	if len(out) != n {
		return nil, nil, fmt.Errorf("rle: decoded %d values, want %d", len(out), n)
	}
	return out, src, nil
}

// Decode implements codec.IntCodec.
func (c *Codec) Decode(src []byte) ([]int64, error) {
	n64, src, err := codec.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("rle: count: %w", err)
	}
	nRuns64, src, err := codec.ReadUvarint(src)
	if err != nil {
		return nil, fmt.Errorf("rle: run count: %w", err)
	}
	if n64 > uint64(codec.MaxBlockLen)*64 || nRuns64 > n64 {
		return nil, fmt.Errorf("rle: implausible counts %d/%d", n64, nRuns64)
	}
	n, nRuns := int(n64), int(nRuns64)
	runVals, src, err := c.unpackN(src, nRuns)
	if err != nil {
		return nil, fmt.Errorf("rle: values: %w", err)
	}
	runLens := make([]int64, nRuns)
	for k := range runLens {
		var rl uint64
		rl, src, err = codec.ReadUvarint(src)
		if err != nil {
			return nil, fmt.Errorf("rle: run length %d: %w", k, err)
		}
		if rl >= uint64(n) {
			return nil, fmt.Errorf("rle: run length %d out of range", rl)
		}
		runLens[k] = int64(rl) + 1
	}
	out := make([]int64, 0, n)
	for k := 0; k < nRuns; k++ {
		rl := runLens[k]
		if rl <= 0 || rl > int64(n-len(out)) {
			return nil, fmt.Errorf("rle: run %d has length %d with %d slots left", k, rl, n-len(out))
		}
		for i := int64(0); i < rl; i++ {
			out = append(out, runVals[k])
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("rle: expanded to %d values, want %d", len(out), n)
	}
	return out, nil
}
