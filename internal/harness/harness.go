// Package harness measures compression ratio and speed across the full
// method grid of the paper's evaluation (Section VIII) and regenerates every
// table and figure. Each experiment writes a plain-text rendition of the
// corresponding figure to an io.Writer; cmd/bosbench is the CLI front end and
// the repository-root benchmarks wrap the same entry points.
package harness

import (
	"fmt"
	"time"

	"bos/internal/bitpack"
	"bos/internal/buff"
	"bos/internal/chimp"
	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/dataset"
	"bos/internal/elf"
	"bos/internal/gorilla"
	"bos/internal/pfor"
	"bos/internal/rle"
	"bos/internal/sprintz"
	"bos/internal/ts2diff"
)

// Config tunes experiment cost.
type Config struct {
	// Scale multiplies every dataset's default size (clamped to at least
	// 2048 values). 1.0 reproduces the repository defaults.
	Scale float64
	// Reps is how many times each measurement is repeated; the paper uses
	// 500, the repository default is 3 (timings are means over reps).
	Reps int
	// DataDir optionally points at real dataset files (<ABBR>.txt, one
	// value per line); matching datasets replace their synthetic
	// stand-ins, so the experiments can be reproduced on the paper's
	// actual data when it is available.
	DataDir string
}

// DefaultConfig is used when a zero Config is supplied.
var DefaultConfig = Config{Scale: 1.0, Reps: 3}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultConfig.Scale
	}
	if c.Reps <= 0 {
		c.Reps = DefaultConfig.Reps
	}
	return c
}

// datasets resolves the evaluation datasets, applying DataDir overrides.
func (c Config) datasets() []*dataset.Dataset {
	ds, err := dataset.AllWithOverrides(c.DataDir)
	if err != nil {
		// A broken override directory should fail loudly, not silently
		// fall back to synthetic data and "reproduce" the wrong thing.
		panic("harness: " + err.Error())
	}
	return ds
}

// size returns the scaled value count for a dataset.
func (c Config) size(d *dataset.Dataset) int {
	n := int(float64(d.N) * c.Scale)
	if n < 2048 {
		n = 2048
	}
	if n > d.N*4 {
		n = d.N * 4
	}
	return n
}

// Result is one (method, dataset) measurement.
type Result struct {
	Method, Dataset  string
	RawBytes         int
	CompressedBytes  int
	Ratio            float64
	CompressNsPerVal float64
	DecompNsPerVal   float64
}

// RunInt measures an integer codec on a series.
func RunInt(c codec.IntCodec, ds string, vals []int64, reps int) (Result, error) {
	res := Result{Method: c.Name(), Dataset: ds, RawBytes: 8 * len(vals)}
	var enc []byte
	start := time.Now()
	for r := 0; r < reps; r++ {
		enc = c.Encode(enc[:0], vals)
	}
	res.CompressNsPerVal = nsPerVal(time.Since(start), reps, len(vals))
	res.CompressedBytes = len(enc)
	res.Ratio = ratio(res.RawBytes, len(enc))

	var got []int64
	var err error
	start = time.Now()
	for r := 0; r < reps; r++ {
		got, err = c.Decode(enc)
		if err != nil {
			return res, fmt.Errorf("%s on %s: decode: %w", c.Name(), ds, err)
		}
	}
	res.DecompNsPerVal = nsPerVal(time.Since(start), reps, len(vals))
	if len(got) != len(vals) {
		return res, fmt.Errorf("%s on %s: decoded %d values, want %d", c.Name(), ds, len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			return res, fmt.Errorf("%s on %s: value %d mismatch", c.Name(), ds, i)
		}
	}
	return res, nil
}

// RunFloat measures a float codec on a series.
func RunFloat(c codec.FloatCodec, ds string, vals []float64, reps int) (Result, error) {
	res := Result{Method: c.Name(), Dataset: ds, RawBytes: 8 * len(vals)}
	var enc []byte
	start := time.Now()
	for r := 0; r < reps; r++ {
		enc = c.Encode(enc[:0], vals)
	}
	res.CompressNsPerVal = nsPerVal(time.Since(start), reps, len(vals))
	res.CompressedBytes = len(enc)
	res.Ratio = ratio(res.RawBytes, len(enc))

	var got []float64
	var err error
	start = time.Now()
	for r := 0; r < reps; r++ {
		got, err = c.Decode(enc)
		if err != nil {
			return res, fmt.Errorf("%s on %s: decode: %w", c.Name(), ds, err)
		}
	}
	res.DecompNsPerVal = nsPerVal(time.Since(start), reps, len(vals))
	if len(got) != len(vals) {
		return res, fmt.Errorf("%s on %s: decoded %d values, want %d", c.Name(), ds, len(got), len(vals))
	}
	for i := range vals {
		// Bit-level comparison, treating NaN==NaN (none are generated).
		if got[i] != vals[i] {
			return res, fmt.Errorf("%s on %s: value %d mismatch", c.Name(), ds, i)
		}
	}
	return res, nil
}

func nsPerVal(d time.Duration, reps, n int) float64 {
	if n == 0 || reps == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(reps) / float64(n)
}

func ratio(raw, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(raw) / float64(compressed)
}

// PackerNames is the paper's packing-operator order for the Figure 10/11
// tables.
var PackerNames = []string{"BP", "PFOR", "NewPFOR", "OptPFOR", "FastPFOR", "BOS-V", "BOS-B", "BOS-M"}

// PackerByName builds one packing operator.
func PackerByName(name string) codec.Packer {
	switch name {
	case "BP":
		return bitpack.Packer{}
	case "PFOR":
		return pfor.Packer{}
	case "NewPFOR":
		return pfor.NewPFOR{}
	case "OptPFOR":
		return pfor.OptPFOR{}
	case "FastPFOR":
		return pfor.FastPFOR{}
	case "SimplePFOR":
		return pfor.SimplePFOR{}
	case "BOS-V":
		return core.NewPacker(core.SeparationValue)
	case "BOS-B":
		return core.NewPacker(core.SeparationBitWidth)
	case "BOS-M":
		return core.NewPacker(core.SeparationMedian)
	case "BOS-U":
		return core.NewPacker(core.SeparationUpperOnly)
	default:
		panic("harness: unknown packer " + name)
	}
}

// FamilyNames is the paper's outer-codec order.
var FamilyNames = []string{"RLE", "SPRINTZ", "TS2DIFF"}

// FamilyByName builds an outer codec around a packer.
func FamilyByName(family string, p codec.Packer) codec.IntCodec {
	switch family {
	case "RLE":
		return rle.New(p, 0)
	case "SPRINTZ":
		return sprintz.New(p, 0)
	case "TS2DIFF":
		return ts2diff.New(p, 0)
	default:
		panic("harness: unknown family " + family)
	}
}

// FloatCodecs returns the four float baselines in paper order.
func FloatCodecs() []codec.FloatCodec {
	return []codec.FloatCodec{gorilla.Codec{}, chimp.Codec{}, elf.Codec{}, buff.Codec{}}
}
