package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/dataset"
	"bos/internal/lz"
	"bos/internal/rangelz"
	"bos/internal/stats"
	"bos/internal/transform"
	"bos/internal/ts2diff"
)

// Experiments maps experiment ids to their runners, in paper order.
var Experiments = []struct {
	ID, Title string
	Run       func(w io.Writer, cfg Config) error
}{
	{"fig8", "Figure 8: value distribution of all datasets after TS2DIFF", Figure8},
	{"fig9", "Figure 9: percentage of lower and upper outliers separated by BOS-V", Figure9},
	{"fig10a", "Figure 10a: compression ratio on various datasets", Figure10a},
	{"fig10b", "Figure 10b: average compression ratio vs compression time", Figure10b},
	{"fig10c", "Figure 10c: compression and decompression time (ns/value)", Figure10c},
	{"fig11", "Figure 11: storage and query cost by operator in TS2DIFF", Figure11},
	{"fig12", "Figure 12: upper+lower vs upper-only outlier separation", Figure12},
	{"fig13", "Figure 13: combining BOS with LZ4 / 7Z / DCT / FFT", Figure13},
	{"fig14", "Figure 14: varying the number of divided value parts", Figure14},
	{"fig15", "Figure 15: compression and decompression time by block size", Figure15},
}

// Run executes one experiment by id ("all" runs every one).
func Run(id string, w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	for _, e := range Experiments {
		if id == "all" || id == e.ID {
			fmt.Fprintf(w, "=== %s ===\n", e.Title)
			if err := e.Run(w, cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
			if id == e.ID {
				return nil
			}
		}
	}
	if id != "all" {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// Figure8 prints the post-TS2DIFF delta histogram of each dataset.
func Figure8(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	for _, d := range cfg.datasets() {
		deltas := ts2diff.Deltas(d.Ints(cfg.size(d)))[1:]
		h := stats.NewHistogram(deltas, 15)
		s := stats.Summarize(deltas)
		fmt.Fprintf(w, "%-18s (%s)  mean=%.1f std=%.1f range=[%d,%d]\n",
			d.Name, d.Abbr, s.Mean, s.Std, s.Min, s.Max)
		max := 1
		for _, c := range h.Counts {
			if c > max {
				max = c
			}
		}
		for i, c := range h.Counts {
			lo := float64(h.Min) + float64(i)*h.Width
			bar := strings.Repeat("#", c*40/max)
			fmt.Fprintf(w, "  %12.0f | %-40s %d\n", lo, bar, c)
		}
	}
	return nil
}

// Figure9 reports the share of lower/upper outliers BOS-V separates.
func Figure9(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	fmt.Fprintf(w, "%-18s %10s %10s\n", "Dataset", "Lower(%)", "Upper(%)")
	for _, d := range cfg.datasets() {
		deltas := ts2diff.Deltas(d.Ints(cfg.size(d)))[1:]
		nl, nu, n := 0, 0, 0
		for off := 0; off+codec.DefaultBlockSize <= len(deltas); off += codec.DefaultBlockSize {
			p := core.PlanValue(deltas[off : off+codec.DefaultBlockSize])
			nl += p.NL
			nu += p.NU
			n += codec.DefaultBlockSize
		}
		fmt.Fprintf(w, "%-18s %10.2f %10.2f\n", d.Name,
			100*float64(nl)/float64(n), 100*float64(nu)/float64(n))
	}
	return nil
}

// gridCache memoizes the Figure 10 grid per configuration: fig10a/b/c and
// the summary all need the same measurements, and the grid is the most
// expensive thing the harness runs.
var gridCache struct {
	sync.Mutex
	key     Config
	results []Result
	valid   bool
}

// gridResults runs the full Figure 10 grid: float codecs on the float view,
// the three families x eight packers on ints.
func gridResults(cfg Config) ([]Result, error) {
	gridCache.Lock()
	if gridCache.valid && gridCache.key == cfg {
		res := gridCache.results
		gridCache.Unlock()
		return res, nil
	}
	gridCache.Unlock()
	out, err := gridResultsUncached(cfg)
	if err != nil {
		return nil, err
	}
	gridCache.Lock()
	gridCache.key, gridCache.results, gridCache.valid = cfg, out, true
	gridCache.Unlock()
	return out, nil
}

func gridResultsUncached(cfg Config) ([]Result, error) {
	var out []Result
	for _, d := range cfg.datasets() {
		n := cfg.size(d)
		floats := d.Floats(n)
		for _, fc := range FloatCodecs() {
			r, err := RunFloat(fc, d.Abbr, floats, cfg.Reps)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		ints := d.Ints(n)
		for _, fam := range FamilyNames {
			for _, pk := range PackerNames {
				c := FamilyByName(fam, PackerByName(pk))
				r, err := RunInt(c, d.Abbr, ints, cfg.Reps)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// methodOrder lists the Figure 10 row order.
func methodOrder() []string {
	rows := []string{"GORILLA", "CHIMP", "Elf", "BUFF"}
	for _, fam := range FamilyNames {
		for _, pk := range PackerNames {
			rows = append(rows, fam+"+"+pk)
		}
	}
	return rows
}

// datasetOrder lists the column abbreviations; overrides never change the
// twelve abbreviations, so the static order is always right.
func datasetOrder() []string {
	var cols []string
	for _, d := range dataset.All() {
		cols = append(cols, d.Abbr)
	}
	return cols
}

func printGrid(w io.Writer, results []Result, cell func(Result) float64, format string) {
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[r.Method+"|"+r.Dataset] = r
	}
	cols := datasetOrder()
	fmt.Fprintf(w, "%-20s", "Method")
	for _, c := range cols {
		fmt.Fprintf(w, "%9s", c)
	}
	fmt.Fprintln(w)
	for _, m := range methodOrder() {
		fmt.Fprintf(w, "%-20s", m)
		for _, c := range cols {
			r, ok := byKey[m+"|"+c]
			if !ok {
				fmt.Fprintf(w, "%9s", "-")
				continue
			}
			fmt.Fprintf(w, format, cell(r))
		}
		fmt.Fprintln(w)
	}
}

// Figure10a prints the compression ratio grid.
func Figure10a(w io.Writer, cfg Config) error {
	results, err := gridResults(cfg.normalized())
	if err != nil {
		return err
	}
	printGrid(w, results, func(r Result) float64 { return r.Ratio }, "%9.2f")
	return nil
}

// Figure10b prints average ratio and compression time per method.
func Figure10b(w io.Writer, cfg Config) error {
	results, err := gridResults(cfg.normalized())
	if err != nil {
		return err
	}
	type agg struct {
		ratio, comp float64
		n           int
	}
	byMethod := map[string]*agg{}
	for _, r := range results {
		a := byMethod[r.Method]
		if a == nil {
			a = &agg{}
			byMethod[r.Method] = a
		}
		a.ratio += r.Ratio
		a.comp += r.CompressNsPerVal
		a.n++
	}
	fmt.Fprintf(w, "%-20s %12s %18s\n", "Method", "AvgRatio", "AvgCompress(ns/v)")
	for _, m := range methodOrder() {
		if a := byMethod[m]; a != nil {
			fmt.Fprintf(w, "%-20s %12.2f %18.1f\n", m, a.ratio/float64(a.n), a.comp/float64(a.n))
		}
	}
	return nil
}

// Figure10c prints the compression and decompression time grids.
func Figure10c(w io.Writer, cfg Config) error {
	results, err := gridResults(cfg.normalized())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "-- compression time (ns/value) --")
	printGrid(w, results, func(r Result) float64 { return r.CompressNsPerVal }, "%9.0f")
	fmt.Fprintln(w, "-- decompression time (ns/value) --")
	printGrid(w, results, func(r Result) float64 { return r.DecompNsPerVal }, "%9.0f")
	return nil
}

// ioNsPerByte models the paper's IO cost for Figure 11: a storage device
// streaming at ~100 MB/s (network or spinning storage, where the paper's
// "lower IO costs" argument bites) costs about 10 ns/byte.
const ioNsPerByte = 10.0

// Figure11 reports average storage bytes/value and query time (decompression
// + modeled IO) per packing operator inside TS2DIFF.
func Figure11(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	ops := []string{"BOS-B", "BP", "FastPFOR", "NewPFOR", "OptPFOR", "PFOR"}
	fmt.Fprintf(w, "%-10s %14s %14s %12s %14s\n",
		"Operator", "Storage(B/v)", "Decomp(ns/v)", "IO(ns/v)", "Query(ns/v)")
	for _, op := range ops {
		var bytesPerVal, decomp float64
		count := 0
		for _, d := range cfg.datasets() {
			ints := d.Ints(cfg.size(d))
			r, err := RunInt(FamilyByName("TS2DIFF", PackerByName(op)), d.Abbr, ints, cfg.Reps)
			if err != nil {
				return err
			}
			bytesPerVal += float64(r.CompressedBytes) / float64(len(ints))
			decomp += r.DecompNsPerVal
			count++
		}
		bytesPerVal /= float64(count)
		decomp /= float64(count)
		io := bytesPerVal * ioNsPerByte
		fmt.Fprintf(w, "%-10s %14.2f %14.1f %12.1f %14.1f\n", op, bytesPerVal, decomp, io, decomp+io)
	}
	return nil
}

// Figure12 compares two-sided separation against upper-only separation.
func Figure12(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	fmt.Fprintf(w, "%-18s %16s %16s\n", "Dataset", "Upper+Lower", "UpperOnly")
	for _, d := range cfg.datasets() {
		ints := d.Ints(cfg.size(d))
		full, err := RunInt(FamilyByName("TS2DIFF", PackerByName("BOS-B")), d.Abbr, ints, cfg.Reps)
		if err != nil {
			return err
		}
		upper, err := RunInt(FamilyByName("TS2DIFF", PackerByName("BOS-U")), d.Abbr, ints, cfg.Reps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %16.2f %16.2f\n", d.Name, full.Ratio, upper.Ratio)
	}
	return nil
}

// byteCompressorCodec adapts a ByteCompressor into an IntCodec over either
// raw little-endian bytes ("without BOS") or BOS-packed blocks ("with BOS").
type byteCompressorCodec struct {
	comp    codec.ByteCompressor
	withBOS bool
}

func (b byteCompressorCodec) Name() string {
	if b.withBOS {
		return b.comp.Name() + "+BOS"
	}
	return b.comp.Name()
}

func (b byteCompressorCodec) Encode(dst []byte, vals []int64) []byte {
	var raw []byte
	if b.withBOS {
		bw := codec.NewBlockwise(core.NewPacker(core.SeparationBitWidth), 0)
		raw = bw.Encode(nil, vals)
	} else {
		raw = make([]byte, 0, len(vals)*8)
		for _, v := range vals {
			raw = append(raw,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
	}
	return b.comp.Compress(dst, raw)
}

func (b byteCompressorCodec) Decode(src []byte) ([]int64, error) {
	raw, err := b.comp.Decompress(src)
	if err != nil {
		return nil, err
	}
	if b.withBOS {
		bw := codec.NewBlockwise(core.NewPacker(core.SeparationBitWidth), 0)
		return bw.Decode(raw)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("raw length %d not a multiple of 8", len(raw))
	}
	out := make([]int64, len(raw)/8)
	for i := range out {
		b := raw[i*8:]
		out[i] = int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
	}
	return out, nil
}

// Figure13 measures LZ4 / 7Z / DCT / FFT with and without BOS underneath.
func Figure13(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	type method struct {
		name          string
		with, without codec.IntCodec
	}
	methods := []method{
		{"LZ4", byteCompressorCodec{lz.Compressor{}, true}, byteCompressorCodec{lz.Compressor{}, false}},
		{"7-Zip", byteCompressorCodec{rangelz.Compressor{}, true}, byteCompressorCodec{rangelz.Compressor{}, false}},
		{"DCT", transform.New(transform.DCT, PackerByName("BOS-B"), 0), transform.New(transform.DCT, PackerByName("BP"), 0)},
		{"FFT", transform.New(transform.FFT, PackerByName("BOS-B"), 0), transform.New(transform.FFT, PackerByName("BP"), 0)},
	}
	fmt.Fprintf(w, "%-8s %14s %14s %18s %18s\n",
		"Method", "RatioWithBOS", "RatioWithout", "CompWith(ns/v)", "CompWithout(ns/v)")
	for _, m := range methods {
		var ratioW, ratioWo, compW, compWo float64
		count := 0
		for _, d := range cfg.datasets() {
			ints := d.Ints(cfg.size(d))
			rw, err := RunInt(m.with, d.Abbr, ints, cfg.Reps)
			if err != nil {
				return err
			}
			rwo, err := RunInt(m.without, d.Abbr, ints, cfg.Reps)
			if err != nil {
				return err
			}
			ratioW += rw.Ratio
			ratioWo += rwo.Ratio
			compW += rw.CompressNsPerVal
			compWo += rwo.CompressNsPerVal
			count++
		}
		n := float64(count)
		fmt.Fprintf(w, "%-8s %14.2f %14.2f %18.1f %18.1f\n",
			m.name, ratioW/n, ratioWo/n, compW/n, compWo/n)
	}
	return nil
}

// Figure14 sweeps the number of divided value parts from 1 to 7.
func Figure14(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	fmt.Fprintf(w, "%-8s %12s %18s\n", "Parts", "AvgRatio", "AvgCompress(ns/v)")
	for k := 1; k <= 7; k++ {
		var ratioSum, compSum float64
		count := 0
		for _, d := range cfg.datasets() {
			ints := d.Ints(cfg.size(d))
			c := FamilyByName("TS2DIFF", &core.PartsPacker{K: k})
			r, err := RunInt(c, d.Abbr, ints, cfg.Reps)
			if err != nil {
				return err
			}
			ratioSum += r.Ratio
			compSum += r.CompressNsPerVal
			count++
		}
		fmt.Fprintf(w, "%-8d %12.2f %18.1f\n", k, ratioSum/float64(count), compSum/float64(count))
	}
	return nil
}

// Figure15 sweeps block size for the three BOS planners.
func Figure15(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	seps := []string{"BOS-V", "BOS-B", "BOS-M"}
	fmt.Fprintf(w, "%-10s", "BlockSize")
	for _, s := range seps {
		fmt.Fprintf(w, "%14s %14s", s+" comp", s+" dec")
	}
	fmt.Fprintln(w, "   (ns/block)")
	for bs := 64; bs <= 8192; bs *= 2 {
		fmt.Fprintf(w, "%-10d", bs)
		for _, s := range seps {
			var comp, dec float64
			count := 0
			for _, d := range cfg.datasets() {
				// BOS-V is quadratic per block, so this sweep runs
				// on a bounded sample with a single repetition.
				n := cfg.size(d)
				if n > 2*8192 {
					n = 2 * 8192
				}
				deltas := ts2diff.Deltas(d.Ints(n))
				bw := codec.NewBlockwise(PackerByName(s), bs)
				r, err := RunInt(bw, d.Abbr, deltas, 1)
				if err != nil {
					return err
				}
				blocks := (len(deltas) + bs - 1) / bs
				comp += r.CompressNsPerVal * float64(len(deltas)) / float64(blocks)
				dec += r.DecompNsPerVal * float64(len(deltas)) / float64(blocks)
				count++
			}
			fmt.Fprintf(w, "%14.0f %14.0f", comp/float64(count), dec/float64(count))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SortedIDs returns the experiment ids, for CLI help.
func SortedIDs() []string {
	ids := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ResetGridCache drops the memoized Figure 10 grid, so benchmarks measure
// real regeneration instead of cache hits.
func ResetGridCache() {
	gridCache.Lock()
	gridCache.valid = false
	gridCache.results = nil
	gridCache.Unlock()
}
