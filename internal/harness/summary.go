package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

func init() {
	Experiments = append(Experiments,
		struct {
			ID, Title string
			Run       func(w io.Writer, cfg Config) error
		}{"table3", "Table III: evaluation datasets", Table3},
		struct {
			ID, Title string
			Run       func(w io.Writer, cfg Config) error
		}{"summary", "Abstract claim: average ratio, existing methods vs BOS", Summary},
	)
}

// Table3 prints the dataset inventory (the repository's stand-ins for the
// paper's Table III, or the real files when -datadir is supplied).
func Table3(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	fmt.Fprintf(w, "%-18s %-6s %-8s %10s %10s\n", "Dataset", "Abbr", "Type", "Precision", "# Values")
	for _, d := range cfg.datasets() {
		typ := "Integer"
		if d.Float {
			typ = "Float"
		}
		fmt.Fprintf(w, "%-18s %-6s %-8s %10d %10d\n", d.Name, d.Abbr, typ, d.Precision, d.N)
	}
	return nil
}

// Summary reproduces the abstract's headline sentence: "by replacing
// Bit-packing with the proposed BOS in various compression methods, the
// compression ratio is significantly improved" — the average ratio of the
// packed families under every existing operator versus under BOS.
func Summary(w io.Writer, cfg Config) error {
	results, err := gridResults(cfg.normalized())
	if err != nil {
		return err
	}
	avgOver := func(packers ...string) float64 {
		var sum float64
		var n int
		match := map[string]bool{}
		for _, fam := range FamilyNames {
			for _, pk := range packers {
				match[fam+"+"+pk] = true
			}
		}
		for _, r := range results {
			if match[r.Method] {
				sum += r.Ratio
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	existing := avgOver("BP", "PFOR", "NewPFOR", "OptPFOR", "FastPFOR")
	bestExisting := avgOver("FastPFOR")
	bosB := avgOver("BOS-B")
	bosM := avgOver("BOS-M")
	fmt.Fprintf(w, "average compression ratio over {RLE, SPRINTZ, TS2DIFF} x 12 datasets:\n")
	fmt.Fprintf(w, "  existing operators (BP + PFOR family): %.2f\n", existing)
	fmt.Fprintf(w, "  strongest existing (FastPFOR):         %.2f\n", bestExisting)
	fmt.Fprintf(w, "  BOS-B (this paper, optimal):           %.2f\n", bosB)
	fmt.Fprintf(w, "  BOS-M (this paper, linear time):       %.2f\n", bosM)
	fmt.Fprintf(w, "paper reports the same move as ~2.75 -> ~3.25 on the original data.\n")
	return nil
}

func init() {
	Experiments = append(Experiments,
		struct {
			ID, Title string
			Run       func(w io.Writer, cfg Config) error
		}{"fig10csv", "Figure 10 grid as CSV (plot-ready)", Figure10CSV},
	)
}

// Figure10CSV emits the full measurement grid as CSV for external plotting:
// method, dataset, ratio, compress ns/value, decompress ns/value, bytes.
func Figure10CSV(w io.Writer, cfg Config) error {
	results, err := gridResults(cfg.normalized())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "method,dataset,ratio,compress_ns_per_value,decompress_ns_per_value,compressed_bytes,raw_bytes")
	for _, r := range results {
		fmt.Fprintf(w, "%s,%s,%.4f,%.1f,%.1f,%d,%d\n",
			r.Method, r.Dataset, r.Ratio, r.CompressNsPerVal, r.DecompNsPerVal,
			r.CompressedBytes, r.RawBytes)
	}
	return nil
}

func init() {
	Experiments = append(Experiments,
		struct {
			ID, Title string
			Run       func(w io.Writer, cfg Config) error
		}{"fig11e", "Figure 11 (end-to-end): storage and query on the real block-file engine", Figure11E},
	)
}

// Figure11E reruns the Figure 11 comparison end-to-end: each operator packs
// every dataset into actual TsFile-style block files through the storage
// engine, and queries time real file IO plus decompression instead of the
// modeled IO constant of Figure11.
func Figure11E(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	ops := []string{"BOS-B", "BOS-M", "BP", "FastPFOR", "OptPFOR", "PFOR"}
	fmt.Fprintf(w, "%-10s %14s %16s\n", "Operator", "Storage(B/v)", "Query(ns/v)")
	for _, op := range ops {
		var bytesPerVal, queryNs float64
		count := 0
		for _, d := range cfg.datasets() {
			ints := d.Ints(cfg.size(d))
			dir, err := os.MkdirTemp("", "bos-fig11e-*")
			if err != nil {
				return err
			}
			e, err := engine.Open(engine.Options{
				Dir:        dir,
				DisableWAL: true, // ingest path is not under test here
				File:       tsfile.Options{Packer: PackerByName(op)},
			})
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			pts := make([]tsfile.Point, len(ints))
			for i, v := range ints {
				pts[i] = tsfile.Point{T: int64(i), V: v}
			}
			if err := e.InsertBatch("s", pts); err != nil {
				//bos:nolint(checkederr): best-effort cleanup on an already-failing path; the insert error wins
				e.Close()
				os.RemoveAll(dir)
				return err
			}
			if err := e.Flush(); err != nil {
				//bos:nolint(checkederr): best-effort cleanup on an already-failing path; the flush error wins
				e.Close()
				os.RemoveAll(dir)
				return err
			}
			st := e.Stats()
			bytesPerVal += float64(st.DiskBytes) / float64(len(ints))
			start := time.Now()
			for r := 0; r < cfg.Reps; r++ {
				got, err := e.Query("s", 0, int64(len(ints)))
				if err != nil || len(got) != len(ints) {
					//bos:nolint(checkederr): best-effort cleanup on an already-failing path; the query error wins
					e.Close()
					os.RemoveAll(dir)
					return fmt.Errorf("fig11e %s on %s: %d points err %v", op, d.Abbr, len(got), err)
				}
			}
			queryNs += float64(time.Since(start).Nanoseconds()) / float64(cfg.Reps) / float64(len(ints))
			closeErr := e.Close()
			os.RemoveAll(dir)
			if closeErr != nil {
				return closeErr
			}
			count++
		}
		fmt.Fprintf(w, "%-10s %14.2f %16.1f\n", op, bytesPerVal/float64(count), queryNs/float64(count))
	}
	return nil
}
