package harness

import (
	"bytes"
	"strings"
	"testing"

	"bos/internal/dataset"
)

// smallCfg keeps harness tests quick: 2048-value datasets, one repetition.
var smallCfg = Config{Scale: 0.01, Reps: 1}

func TestRunIntVerifiesRoundTrip(t *testing.T) {
	d := dataset.ByAbbr("MT")
	ints := d.Ints(4096)
	r, err := RunInt(FamilyByName("TS2DIFF", PackerByName("BOS-B")), "MT", ints, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio <= 1 {
		t.Errorf("TS2DIFF+BOS-B ratio %.2f on MT — expected compression", r.Ratio)
	}
	if r.CompressedBytes <= 0 || r.RawBytes != 8*4096 {
		t.Errorf("sizes: %+v", r)
	}
}

func TestRunFloatVerifiesRoundTrip(t *testing.T) {
	d := dataset.ByAbbr("TF")
	floats := d.Floats(4096)
	for _, fc := range FloatCodecs() {
		r, err := RunFloat(fc, "TF", floats, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ratio <= 0.5 {
			t.Errorf("%s ratio %.2f on TF", fc.Name(), r.Ratio)
		}
	}
}

func TestPackerByNameCoversPaperGrid(t *testing.T) {
	for _, name := range PackerNames {
		p := PackerByName(name)
		enc := p.Pack(nil, []int64{1, 2, 3, 100})
		got, _, err := p.Unpack(enc, nil)
		if err != nil || len(got) != 4 {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, smallCfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", &buf, smallCfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBOSWinsTheGrid(t *testing.T) {
	// The paper's headline: within every family, BOS-V/B has the best
	// ratio on every dataset, and BOS-B equals BOS-V exactly.
	if testing.Short() {
		t.Skip("grid is slow")
	}
	cfg := Config{Scale: 0.05, Reps: 1}
	for _, d := range dataset.All() {
		ints := d.Ints(cfg.size(d))
		for _, fam := range FamilyNames {
			ratios := map[string]float64{}
			for _, pk := range PackerNames {
				r, err := RunInt(FamilyByName(fam, PackerByName(pk)), d.Abbr, ints, 1)
				if err != nil {
					t.Fatal(err)
				}
				ratios[pk] = r.Ratio
			}
			if ratios["BOS-B"] != ratios["BOS-V"] {
				t.Errorf("%s on %s: BOS-B %.4f != BOS-V %.4f", fam, d.Abbr, ratios["BOS-B"], ratios["BOS-V"])
			}
			for _, pk := range []string{"BP", "PFOR", "NewPFOR", "OptPFOR", "FastPFOR"} {
				if ratios["BOS-B"] < ratios[pk]*0.999 {
					t.Errorf("%s on %s: BOS-B %.3f loses to %s %.3f",
						fam, d.Abbr, ratios["BOS-B"], pk, ratios[pk])
				}
			}
		}
	}
}

func TestFigure9Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure9(&buf, smallCfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, d := range dataset.All() {
		if !strings.Contains(out, d.Name) {
			t.Errorf("figure 9 output missing %s", d.Name)
		}
	}
}
