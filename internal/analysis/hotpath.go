package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotMarker is the comment that opts a single function into the hot-path
// discipline. It must appear on its own line in the function's doc comment:
//
//	//bos:hotpath
//	func (r *Reader) ReadBulk(out []uint64, width uint) error { ... }
const hotMarker = "//bos:hotpath"

// HotPathConfig describes where the hot-path rules apply and what they ban.
// Inside a hot function (and every function literal it contains) the
// analyzer forbids the constructs that put allocation, nondeterminism or
// scheduling work into a per-value decode/encode loop:
//
//   - calls into banned packages (fmt, reflect: both allocate and reflect
//     defeats devirtualization);
//   - individually banned functions (time.Now, time.Since: nondeterministic
//     and a vDSO call per value);
//   - defer statements (a deferred frame per element);
//   - implicit or explicit interface conversions of concrete values
//     (boxing: each one may heap-allocate the value it wraps).
type HotPathConfig struct {
	// Packages are import paths in which every function is hot.
	Packages []string
	// BannedPkgs are package paths that must not be called from hot code.
	BannedPkgs []string
	// BannedFuncs are individual banned functions ("time.Now").
	BannedFuncs []string
}

// NewHotPath returns the hotpath analyzer for one configuration.
func NewHotPath(cfg HotPathConfig) Analyzer {
	a := &hotPath{hotPkgs: map[string]bool{}, bannedPkgs: map[string]bool{}, bannedFuncs: map[string]bool{}}
	for _, p := range cfg.Packages {
		a.hotPkgs[p] = true
	}
	for _, p := range cfg.BannedPkgs {
		a.bannedPkgs[p] = true
	}
	for _, f := range cfg.BannedFuncs {
		a.bannedFuncs[f] = true
	}
	return a
}

type hotPath struct {
	hotPkgs, bannedPkgs, bannedFuncs map[string]bool
}

func (a *hotPath) Name() string { return "hotpath" }
func (a *hotPath) Doc() string {
	return "forbid fmt/reflect/time.Now, defer and interface boxing inside //bos:hotpath functions and always-hot packages"
}

func (a *hotPath) Run(pass *Pass) {
	pkgHot := a.hotPkgs[pass.PkgPath]
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pkgHot || hasHotMarker(fn.Doc) {
				a.checkHotFunc(pass, fn)
			}
		}
	}
}

func hasHotMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotMarker {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot function body, including nested literals (they
// execute on the same path).
func (a *hotPath) checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	sig, _ := pass.Info.Defs[fn.Name].Type().(*types.Signature)
	a.checkBody(pass, fn.Body, sig)
}

func (a *hotPath) checkBody(pass *Pass, body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(node.Pos(), "defer in hot path: a deferred frame is scheduled on every call")
		case *ast.FuncLit:
			litSig, _ := pass.Info.Types[node].Type.(*types.Signature)
			a.checkBody(pass, node.Body, litSig)
			return false
		case *ast.CallExpr:
			if a.checkCall(pass, node) {
				return false // banned call reported; don't double-flag its args
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				break // x, y := f(): result types match by construction
			}
			for i, rhs := range node.Rhs {
				if lt, ok := lhsType(pass, node.Lhs[i]); ok {
					a.checkBoxing(pass, rhs, lt, "assignment")
				}
			}
		case *ast.ValueSpec:
			if node.Type != nil {
				if tv, ok := pass.Info.Types[node.Type]; ok {
					for _, v := range node.Values {
						a.checkBoxing(pass, v, tv.Type, "assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(node.Results) == sig.Results().Len() {
				for i, res := range node.Results {
					a.checkBoxing(pass, res, sig.Results().At(i).Type(), "return")
				}
			}
		}
		return true
	})
}

// checkCall flags banned callees and boxing at argument positions. It
// returns true when the call itself was reported.
func (a *hotPath) checkCall(pass *Pass, call *ast.CallExpr) bool {
	// Explicit conversion to an interface type: T(x).
	if tv, ok := pass.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		a.checkBoxing(pass, call.Args[0], tv.Type, "conversion")
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if a.bannedPkgs[path] {
			pass.Reportf(call.Pos(), "call to %s.%s in hot path: %s allocates on every call", path, fn.Name(), path)
			return true
		}
		if a.bannedFuncs[qualifiedName(fn)] {
			pass.Reportf(call.Pos(), "call to %s in hot path: nondeterministic and not allocation-free", qualifiedName(fn))
			return true
		}
	}
	// Boxing through interface-typed parameters.
	sig, _ := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		a.checkBoxing(pass, arg, pt, "argument")
	}
	return false
}

// checkBoxing reports expr when assigning it to target converts a concrete
// value to an interface.
func (a *hotPath) checkBoxing(pass *Pass, expr ast.Expr, target types.Type, site string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface to interface: no boxing
	}
	if _, ok := tv.Type.(*types.Tuple); ok {
		return
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "interface boxing in hot path: %s converts concrete %s to %s (may heap-allocate per value)",
		site, types.TypeString(tv.Type, nil), types.TypeString(target, nil))
}

// lhsType resolves the declared or existing type of an assignment target.
func lhsType(pass *Pass, lhs ast.Expr) (types.Type, bool) {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj, ok := pass.Info.Defs[id]; ok && obj != nil {
			return obj.Type(), true
		}
		if obj, ok := pass.Info.Uses[id]; ok && obj != nil {
			return obj.Type(), true
		}
		return nil, false
	}
	if tv, ok := pass.Info.Types[lhs]; ok {
		return tv.Type, true
	}
	return nil, false
}
