// Package analysis is a from-scratch static-analysis driver for this module,
// built only on the standard library's go/parser, go/ast, go/types and
// go/importer (no golang.org/x/tools dependency, keeping go.mod empty).
//
// It exists because the invariants that keep the engine correct — the lock
// hierarchy documented in internal/engine, the no-allocation discipline of the
// bitio hot loops, the rule that no codec error is ever silently dropped —
// live in comments that go vet cannot see. The analyzers in this package turn
// them into machine-checked gates: cmd/bosvet walks every package in the
// module, type-checks it, runs all analyzers in one pass and exits nonzero on
// any unsuppressed diagnostic, so CI can fail on a regression the same way it
// fails on a broken test.
//
// Findings are suppressed inline with
//
//	//bos:nolint(<analyzer>[,<analyzer>...]): <reason>
//
// on the flagged line or the line directly above it. A suppression without a
// reason (or naming an unknown analyzer) is itself a diagnostic: the tool
// refuses to let an exemption go unexplained.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one pluggable check. Implementations must be safe to run over
// many packages sequentially from a single goroutine.
type Analyzer interface {
	// Name is the identifier used in diagnostics and //bos:nolint lists.
	Name() string
	// Doc is a one-line description shown by bosvet -list.
	Doc() string
	// Run inspects one type-checked package and reports findings via pass.
	Run(pass *Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer Analyzer
	Fset     *token.FileSet
	PkgPath  string
	// Dir is the package's source directory on disk (build-wrapping
	// analyzers like escapecheck shell out relative to it).
	Dir   string
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with a resolved file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, then analyzer, so
// output is deterministic across runs.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// errorType is the universe error interface, used by several analyzers.
var errorType = types.Universe.Lookup("error").Type()

// namedRecv returns the name of the named type behind t (derefencing one
// pointer), or "" when t is not a named type.
func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// qualifiedName renders fn as "pkgpath.Func" or "pkgpath.Recv.Method",
// matching the notation used in analyzer configuration tables.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // error.Error and friends
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if recv := namedRecv(sig.Recv().Type()); recv != "" {
			return fn.Pkg().Path() + "." + recv + "." + fn.Name()
		}
		// Interface method: qualify by the interface's package.
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeFunc resolves the function or method a call expression invokes, or
// nil for calls through function values, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
