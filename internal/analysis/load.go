package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test .go files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from source and type-checks them. Packages
// inside the module root are parsed and checked by the Loader itself
// (recursively, with cycle detection); everything else — the standard
// library — is delegated to go/importer's source importer, so no compiled
// export data or external tooling is required.
type Loader struct {
	ModuleDir  string // absolute module root
	ModulePath string // module path from go.mod (or synthetic, for tests)

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader returns a Loader for the module rooted at dir with the given
// module path. Use FindModule to derive both from a go.mod.
func NewLoader(dir, modulePath string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		ModuleDir:  dir,
		ModulePath: modulePath,
		fset:       fset,
		pkgs:       map[string]*loadEntry{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// FindModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// Fset exposes the shared file set (all loaded packages resolve positions
// against it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps a module-internal import path to its directory, or "" when the
// path does not belong to the module.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module packages load from source
// through the Loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.dirFor(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the module package with the given import path,
// caching the result. It is not safe for concurrent use.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: %s is outside module %s", path, l.ModulePath)
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadDir(path, dir)
	e.loading = false
	return e.pkg, e.err
}

// loadDir does the actual parse + type-check for one directory.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFilesIn lists the buildable (non-test) .go files of dir, sorted. Files
// and directories skipped by the go tool's conventions (leading "." or "_")
// are skipped here too.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line package patterns ("./...", "./cmd/bosvet",
// "bos/internal/engine") into the sorted list of module import paths. Paths
// are resolved relative to the module root; testdata, vendor and hidden
// directories are excluded from "..." walks, matching go tool conventions.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all", pat == "./...", pat == "...":
			paths, err := l.walkPackages(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkPackages(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			path, err := l.pathForDir(dir)
			if err != nil {
				return nil, err
			}
			add(path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps one non-wildcard pattern to an absolute directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if pat == "." || pat == "" {
		return l.ModuleDir, nil
	}
	if d := l.dirFor(pat); d != "" {
		return d, nil
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat), nil
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
}

// pathForDir inverts dirFor.
func (l *Loader) pathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// walkPackages finds every directory under root containing buildable Go
// files and returns their import paths.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		path, err := l.pathForDir(p)
		if err != nil {
			return err
		}
		out = append(out, path)
		return nil
	})
	return out, err
}
