package analysis

import (
	"go/ast"
	"go/types"
)

// NewMutexCopy returns the mutexcopy analyzer. It flags copies of values
// whose type (transitively, through struct fields, embedded structs and
// arrays) contains a sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once or
// sync.Cond: a copied lock is a new, unlocked lock, and the copy silently
// forks the synchronization state.
//
// Flagged copy sites:
//
//   - by-value function parameters and value receivers of such types;
//   - assignments and var initializers whose right-hand side is an existing
//     value (composite literals and call results are fresh, not copies);
//   - range statements whose value variable copies such an element;
//   - call arguments passing such a value by value;
//   - return statements returning an existing such value;
//   - composite-literal elements copying an existing such value.
func NewMutexCopy() Analyzer {
	return &mutexCopy{memo: map[types.Type]bool{}}
}

type mutexCopy struct {
	memo map[types.Type]bool
}

func (a *mutexCopy) Name() string { return "mutexcopy" }
func (a *mutexCopy) Doc() string {
	return "flag by-value copies of structs containing sync.Mutex/RWMutex/WaitGroup (params, assignments, range, args, returns)"
}

// containsLock reports whether copying a value of type t duplicates a sync
// primitive.
func (a *mutexCopy) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := a.memo[t]; ok {
		return v
	}
	a.memo[t] = false // breaks recursive types; re-set below
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				result = true
			}
		}
		if !result {
			result = a.containsLock(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if a.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = a.containsLock(u.Elem())
	}
	a.memo[t] = result
	return result
}

func (a *mutexCopy) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				a.checkSignature(pass, node)
			case *ast.AssignStmt:
				if len(node.Lhs) == len(node.Rhs) {
					for _, rhs := range node.Rhs {
						a.checkCopyExpr(pass, rhs, "assignment copies")
					}
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					a.checkCopyExpr(pass, v, "variable initialization copies")
				}
			case *ast.RangeStmt:
				a.checkRange(pass, node)
			case *ast.CallExpr:
				a.checkArgs(pass, node)
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					a.checkCopyExpr(pass, res, "return copies")
				}
			case *ast.CompositeLit:
				for _, elt := range node.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					a.checkCopyExpr(pass, elt, "composite literal copies")
				}
			}
			return true
		})
	}
}

// checkSignature flags lock-containing value parameters, results and
// receivers in a function declaration.
func (a *mutexCopy) checkSignature(pass *Pass, fn *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			tv, ok := pass.Info.Types[f.Type]
			if !ok || !a.containsLock(tv.Type) {
				continue
			}
			pass.Reportf(f.Type.Pos(), "%s of %s passes a lock by value: %s contains a sync primitive (use a pointer)",
				what, fn.Name.Name, types.TypeString(tv.Type, nil))
		}
	}
	check(fn.Recv, "value receiver")
	if fn.Type.Params != nil {
		check(fn.Type.Params, "by-value parameter")
	}
}

// fresh reports whether an expression produces a brand-new value, so using
// it by value is construction rather than a copy.
func fresh(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return true // a call result has no other owner
	case *ast.UnaryExpr:
		return v.Op.String() == "&" // address-of: no copy at all
	}
	return false
}

// checkCopyExpr flags e when it copies an existing lock-containing value.
func (a *mutexCopy) checkCopyExpr(pass *Pass, e ast.Expr, what string) {
	if fresh(e) {
		return
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.IsType() || !a.containsLock(tv.Type) {
		return
	}
	pass.Reportf(e.Pos(), "%s %s which contains a sync primitive (use a pointer)",
		what, types.TypeString(tv.Type, nil))
}

// checkRange flags `for _, v := range xs` when v copies a lock-containing
// element.
func (a *mutexCopy) checkRange(pass *Pass, node *ast.RangeStmt) {
	for _, v := range [2]ast.Expr{node.Key, node.Value} {
		if v == nil || isBlank(v) {
			continue
		}
		var t types.Type
		if id, ok := v.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				t = obj.Type()
			} else if obj := pass.Info.Uses[id]; obj != nil {
				t = obj.Type()
			}
		} else if tv, ok := pass.Info.Types[v]; ok {
			t = tv.Type
		}
		if a.containsLock(t) {
			pass.Reportf(v.Pos(), "range variable copies %s which contains a sync primitive (range over indexes or pointers instead)",
				types.TypeString(t, nil))
		}
	}
}

// checkArgs flags lock-containing values passed by value as call arguments.
func (a *mutexCopy) checkArgs(pass *Pass, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return // conversion, not a call
	}
	for _, arg := range call.Args {
		a.checkCopyExpr(pass, arg, "call argument copies")
	}
}
