package analysis

import (
	"fmt"
	"io"
	"path/filepath"
	"time"
)

// Driver runs a set of analyzers over module packages and applies the
// //bos:nolint suppression pass.
type Driver struct {
	Loader    *Loader
	Analyzers []Analyzer

	// Timings accumulates per-analyzer wall time across every package
	// checked through this driver (bosvet -v prints it).
	Timings map[string]time.Duration
}

// CheckPatterns loads every package matched by patterns, runs all analyzers
// over each, and returns the unsuppressed diagnostics in deterministic
// order. A load or type-check failure aborts the run: analyzers only see
// packages that compile.
func (d *Driver) CheckPatterns(patterns []string) ([]Diagnostic, error) {
	paths, err := d.Loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := d.Loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d.CheckPackage(pkg)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// CheckPackage runs every analyzer over one package and filters the results
// through the package's //bos:nolint directives. Malformed directives and
// stale suppressions (directives whose analyzer no longer fires on the
// covered lines) are appended as "nolint" diagnostics.
func (d *Driver) CheckPackage(pkg *Package) []Diagnostic {
	if d.Timings == nil {
		d.Timings = map[string]time.Duration{}
	}
	var raw []Diagnostic
	for _, a := range d.Analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			PkgPath:  pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Types,
			Files:    pkg.Files,
			Info:     pkg.Info,
			report:   func(diag Diagnostic) { raw = append(raw, diag) },
		}
		start := time.Now()
		a.Run(pass)
		d.Timings[a.Name()] += time.Since(start)
	}
	known := map[string]bool{}
	for _, a := range d.Analyzers {
		known[a.Name()] = true
	}
	var out []Diagnostic
	dirs := collectDirectives(pkg.Fset, pkg.Files, known, func(diag Diagnostic) {
		out = append(out, diag)
	})
	for _, diag := range raw {
		if !dirs.suppresses(diag) {
			out = append(out, diag)
		}
	}
	dirs.reportStale(func(diag Diagnostic) { out = append(out, diag) })
	sortDiagnostics(out)
	return out
}

// Print writes diagnostics to w, one per line, with positions rendered
// relative to baseDir when possible (matching go vet's readable output).
func Print(w io.Writer, baseDir string, diags []Diagnostic) {
	for _, diag := range diags {
		pos := diag.Pos
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, diag.Message, diag.Analyzer)
	}
}
