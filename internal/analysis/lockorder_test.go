package analysis

import (
	"path/filepath"
	"testing"
)

// TestLockOrderInterprocBlindSpot pins the reason lockorder went
// interprocedural: every function in the fix/lockorder2 package is clean in
// isolation, so the v1-style intra-procedural simulation (IntraOnly) reports
// nothing there, while the call-graph pass reports every cross-call
// violation the fixture's want markers assert (TestGolden checks those
// exactly; here we only need the count to be nonzero).
func TestLockOrderInterprocBlindSpot(t *testing.T) {
	srcDir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(intraOnly bool) []Diagnostic {
		cfg := fixtureLockOrder("fix/lockorder2")
		cfg.IntraOnly = intraOnly
		drv := &Driver{Loader: NewLoader(srcDir, "fix"), Analyzers: []Analyzer{NewLockOrder(cfg)}}
		diags, err := drv.CheckPatterns([]string{"fix/lockorder2"})
		if err != nil {
			t.Fatalf("loading fixture: %v", err)
		}
		// The driver also reports stale-nolint findings (the fixture's
		// suppression is legitimately stale under IntraOnly, since the
		// diagnostic it silences only exists interprocedurally); judge the
		// blind spot on lockorder diagnostics alone.
		var out []Diagnostic
		for _, d := range diags {
			if d.Analyzer == "lockorder" {
				out = append(out, d)
			}
		}
		return out
	}

	if diags := run(true); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("intra-procedural pass unexpectedly reported: %s", d)
		}
	}
	inter := run(false)
	if len(inter) < 4 {
		t.Fatalf("interprocedural pass reported %d diagnostics, want at least 4 cross-call findings:\n%v", len(inter), inter)
	}
}
