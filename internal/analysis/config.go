package analysis

// BOS-specific analyzer configuration: the concrete invariants of this
// module, separated from the analyzer mechanics so the golden tests (and any
// future module layout change) can configure the same analyzers differently.

// EngineLockOrder is the formal transcription of the lock hierarchy
// documented in the "Locking" section of internal/engine/engine.go's package
// comment (the comment block and this table must change together):
//
//	level 0  Engine.flushMu    the flush pipeline; one snapshot in flight
//	                           (threshold writers bail with TryLock)
//	level 1  Engine.structMu   file list, tombstones, sequence/generation
//	level 2  memStripe.mu      the 16 memtable stripes; the all-stripe
//	                           barrier goes through Engine.lockStripes /
//	                           Engine.unlockStripes, never direct nesting
//	level 3  Engine.walMu      the shared write-ahead log and its commit
//	                           group (never held across WAL I/O: the group
//	                           leader drops it and holds the walBusy token)
//
// Any path may skip levels but never acquires a lower or equal level while
// holding a higher one. The lockStripes/unlockStripes barrier pair (and any
// future wrapper) is not configured here: the analyzer infers acquire and
// release wrappers from per-function lock summaries.
func EngineLockOrder() LockOrderConfig {
	return LockOrderConfig{
		PkgPath: "bos/internal/engine",
		DocRef:  "internal/engine/engine.go package comment, section Locking",
		Fields: map[string]int{
			"Engine.flushMu":  0,
			"Engine.structMu": 1,
			"memStripe.mu":    2,
			"Engine.walMu":    3,
		},
		LevelName: map[int]string{
			0: "flushMu",
			1: "structMu",
			2: "memtable stripes",
			3: "walMu",
		},
	}
}

// BOSCheckedErr watches the storage and codec APIs whose errors signal data
// loss or corruption when dropped, plus the std helpers this module uses on
// durability paths.
func BOSCheckedErr() CheckedErrConfig {
	return CheckedErrConfig{
		Packages: []string{
			"bos/internal/bitio",
			"bos/internal/codec",
			"bos/internal/tsfile",
			"bos/internal/engine",
			"bos/internal/server",
		},
		Funcs: []string{
			"io.ReadAll",
			"io.Copy",
			"io.WriteString",
			"fmt.Sscanf",
		},
		MustUseAll: []string{
			// params derives three coupled constants; discarding any of
			// them usually means the wrong one is about to be recomputed.
			"bos/internal/chimp.CodecN.params",
		},
	}
}

// BOSHotPath marks all of internal/bitio as hot (every encoder's inner loop
// runs through it); the BOS core encode/decode kernels opt in per function
// with //bos:hotpath markers.
func BOSHotPath() HotPathConfig {
	return HotPathConfig{
		Packages:    []string{"bos/internal/bitio"},
		BannedPkgs:  []string{"fmt", "reflect"},
		BannedFuncs: []string{"time.Now", "time.Since"},
	}
}

// BOSGoroutineLife recognizes the module's fan-out helpers: functions that
// own the WaitGroup joining the goroutines they spawn, so spawns routed
// through them need no per-site proof.
func BOSGoroutineLife() GoroutineLifeConfig {
	return GoroutineLifeConfig{
		Helpers: []string{
			"bos/internal/engine.fanOut",
		},
	}
}

// BOSEscapeCheck gates the packages whose //bos:hotpath functions must stay
// allocation-free: the decode kernels (bitio), the BOS core codec, and the
// engine's WAL/flush append paths. The committed baseline blesses today's
// escapes; anything new fails the build (see README, "Static analysis").
func BOSEscapeCheck() EscapeCheckConfig {
	return EscapeCheckConfig{
		Packages: []string{
			"bos/internal/bitio",
			"bos/internal/core",
			"bos/internal/engine",
		},
		BaselineFile: "internal/analysis/escape_baseline.txt",
	}
}

// DefaultAnalyzers is the analyzer suite cmd/bosvet runs: the module's
// concurrency and codec invariants, machine-checked.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewLockOrder(EngineLockOrder()),
		NewCheckedErr(BOSCheckedErr()),
		NewHotPath(BOSHotPath()),
		NewMutexCopy(),
		NewAtomicField(),
		NewGoroutineLife(BOSGoroutineLife()),
		NewEscapeCheck(BOSEscapeCheck()),
	}
}
