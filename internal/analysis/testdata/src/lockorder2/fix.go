// Package lockorder2 holds cross-call hierarchy violations: every function
// body is clean in isolation, so the v1 intra-procedural pass sees nothing
// here (TestLockOrderInterprocBlindSpot pins that), and every finding below
// exists only because call-graph summaries propagate lock effects to call
// sites.
package lockorder2

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type memStripe struct {
	mu sync.RWMutex
}

type Engine struct {
	flushMu  sync.Mutex
	structMu sync.RWMutex
	stripes  [4]memStripe
	walMu    sync.Mutex
}

// takesStruct is clean in isolation: lock, unlock, no leak.
func (e *Engine) takesStruct() {
	e.structMu.Lock()
	e.structMu.Unlock()
}

// holdsStripe is also clean in isolation — the inversion (structMu level 1
// under memStripe.mu level 2) only exists across the call boundary.
func (e *Engine) holdsStripe(i int) {
	e.stripes[i].mu.Lock()
	e.takesStruct() // want `call to takesStruct acquires Engine.structMu \(level 1, structMu\) while holding memStripe.mu \(level 2, stripes\)`
	e.stripes[i].mu.Unlock()
}

// lockAll / unlockAll are an inferred wrapper pair: lockAll holds the stripe
// class at every exit, unlockAll releases a class it never acquires.
func (e *Engine) lockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.Unlock()
	}
}

// Calling the acquire wrapper while holding a higher level is the same
// violation as locking a stripe directly.
func (e *Engine) holdsWal() {
	e.walMu.Lock()
	e.lockAll() // want `call to lockAll acquires memStripe.mu \(level 2, stripes\) while holding Engine.walMu \(level 3, walMu\)`
	e.unlockAll()
	e.walMu.Unlock()
}

// deepWal -> midWal: the walMu acquisition propagates through two summary
// hops.
func (e *Engine) deepWal() {
	e.walMu.Lock()
	e.walMu.Unlock()
}

func (e *Engine) midWal() {
	e.deepWal()
}

// stripeThenMid: walMu (3) through midWal is an ascending (clean) skip from
// a held stripe (2); takesStruct (1) through one hop is not.
func (e *Engine) stripeThenMid(i int) {
	e.stripes[i].mu.Lock()
	defer e.stripes[i].mu.Unlock()
	e.midWal()
	e.takesStruct() // want `call to takesStruct acquires Engine.structMu \(level 1, structMu\) while holding memStripe.mu \(level 2, stripes\)`
}

// A release wrapper called with nothing held unlocks a lock the caller does
// not own.
func (e *Engine) callerNotHolding() {
	e.unlockAll() // want `call to unlockAll releases memStripe.mu which is not held on this path`
}

// Proper wrapper usage across branches is clean: the summary pair balances
// on every path.
func (e *Engine) barrierUser(fail bool) error {
	e.lockAll()
	if fail {
		e.unlockAll()
		return errFail
	}
	e.unlockAll()
	return nil
}

// Mutual recursion: the summary fixpoint converges under the round cap, and
// recB's transitive stripe acquisition is still seen under recA's held
// stripe.
func (e *Engine) recA(i, depth int) {
	e.stripes[i].mu.Lock()
	e.recB(i, depth) // want `call to recB acquires memStripe.mu which is already held`
	e.stripes[i].mu.Unlock()
}

func (e *Engine) recB(i, depth int) {
	if depth > 0 {
		e.recA(i, depth-1)
	}
}

// Cross-call findings are suppressible like any other diagnostic.
func (e *Engine) suppressed(i int) {
	e.stripes[i].mu.Lock()
	e.takesStruct() //bos:nolint(lockorder): fixture demonstrates cross-call suppression
	e.stripes[i].mu.Unlock()
}
