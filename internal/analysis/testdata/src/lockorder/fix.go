// Package lockorder is a fixture mirroring the engine's lock hierarchy:
// Engine.flushMu (level 0, TryLock bail-out) -> Engine.structMu (level 1) ->
// memStripe.mu (level 2, all-stripe barrier via lockStripes/unlockStripes) ->
// Engine.walMu (level 3).
package lockorder

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type memStripe struct {
	mu sync.RWMutex
	n  int
}

type Engine struct {
	flushMu  sync.Mutex
	structMu sync.RWMutex
	stripes  [4]memStripe
	walMu    sync.Mutex
}

// lockStripes is an acquire wrapper: it holds memStripe.mu at every exit and
// unlockStripes is its release twin, so the analyzer infers the pair from
// their summaries — no configuration names them.
func (e *Engine) lockStripes() {
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
	}
}

func (e *Engine) unlockStripes() {
	for i := range e.stripes {
		e.stripes[i].mu.Unlock()
	}
}

// Ascending acquisition with deferred unlocks: clean.
func (e *Engine) AllLevels() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.structMu.Lock()
	defer e.structMu.Unlock()
	e.lockStripes()
	defer e.unlockStripes()
	e.walMu.Lock()
	defer e.walMu.Unlock()
}

// Unlock-before-return on a branch: clean.
func (e *Engine) BranchUnlock(fail bool) error {
	e.structMu.Lock()
	if fail {
		e.structMu.Unlock()
		return errFail
	}
	e.structMu.Unlock()
	return nil
}

// The bail-out-if-busy idiom: `if !mu.TryLock()` holds the lock on the
// fall-through only. Clean.
func (e *Engine) TryBailout() error {
	if !e.flushMu.TryLock() {
		return nil
	}
	defer e.flushMu.Unlock()
	e.structMu.Lock()
	defer e.structMu.Unlock()
	return nil
}

// `if mu.TryLock()` holds the lock in the then-branch only. Clean.
func (e *Engine) TryThenBranch() {
	if e.flushMu.TryLock() {
		e.flushMu.Unlock()
	}
	e.walMu.Lock()
	e.walMu.Unlock()
}

func (e *Engine) OutOfOrder() {
	e.walMu.Lock()
	e.structMu.Lock() // want `Engine.structMu \(level 1, structMu\) acquired while holding Engine.walMu \(level 3, walMu\)`
	e.structMu.Unlock()
	e.walMu.Unlock()
}

func (e *Engine) StripeThenStruct(i int) {
	e.stripes[i].mu.Lock()
	e.structMu.RLock() // want `Engine.structMu \(level 1, structMu\) acquired while holding memStripe.mu`
	e.structMu.RUnlock()
	e.stripes[i].mu.Unlock()
}

// The barrier summary says memStripe.mu is held after lockStripes, so a
// direct stripe lock behind it is a nested same-class acquisition.
func (e *Engine) BarrierThenStripe(i int) {
	e.lockStripes()
	e.stripes[i].mu.Lock() // want `memStripe.mu acquired while already held`
	e.unlockStripes()
}

func (e *Engine) NestedStripes(i, j int) {
	e.stripes[i].mu.Lock()
	defer e.stripes[i].mu.Unlock()
	e.stripes[j].mu.Lock() // want `memStripe.mu acquired while already held`
}

// A successful try is still an acquisition: trying a lower level while a
// higher one is held breaks the hierarchy on the success path.
func (e *Engine) TryOutOfOrder() {
	e.structMu.Lock()
	if e.flushMu.TryLock() { // want `Engine.flushMu \(level 0, flushMu\) acquired while holding Engine.structMu \(level 1, structMu\)`
		e.flushMu.Unlock()
	}
	e.structMu.Unlock()
}

// A try whose success branch returns without unlocking leaks the lock.
func (e *Engine) TryLeak() error {
	if e.flushMu.TryLock() {
		return errFail // want `returns while holding Engine.flushMu`
	}
	return nil
}

// Storing the try result defeats the simulation: reported, and treated as
// acquired so the later unlock does not cascade.
func (e *Engine) TryNotBranched() {
	ok := e.flushMu.TryLock() // want `result of TryLock on Engine.flushMu is not branched on directly`
	_ = ok
	e.flushMu.Unlock()
}

func (e *Engine) LeakOnError(fail bool) error {
	e.structMu.Lock()
	if fail {
		return errFail // want `returns while holding Engine.structMu`
	}
	e.structMu.Unlock()
	return nil
}

func (e *Engine) FallsOffEnd() {
	e.walMu.Lock()
} // want `function ends while still holding Engine.walMu`

func (e *Engine) DeferInLoop(cleanups []func()) {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	for _, f := range cleanups {
		defer f() // want `defer inside a loop while holding Engine.structMu`
	}
}

// A double unlock: the second release finds the class acquired-but-released
// on this path, which distinguishes a bug from a release wrapper (a wrapper
// unlocks a class its body never acquired at all).
func (e *Engine) UnlockNotHeld() {
	e.walMu.Lock()
	e.walMu.Unlock()
	e.walMu.Unlock() // want `unlock of Engine.walMu which is not held`
}

func (e *Engine) WrongFlavor() {
	e.structMu.RLock()
	e.structMu.Unlock() // want `Engine.structMu released with Unlock but was acquired as a read lock \(use RUnlock\)`
}

// A goroutine body starts with its own empty lock state: the literal may
// lock independently, and the spawner's held locks do not leak into it.
// (The WaitGroup pairing keeps the spawn goroutinelife-clean.)
func (e *Engine) SpawnClean() {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.walMu.Lock()
		defer e.walMu.Unlock()
	}()
	wg.Wait()
}
