package hotpathgen

import (
	"fmt"
	"time"
)

// ColdFile has no file-level marker: the marker in fix.go is per-file, not
// per-package, so nothing here is checked.
func ColdFile(n int) string {
	defer func() { _ = time.Now() }()
	return fmt.Sprint(n)
}
