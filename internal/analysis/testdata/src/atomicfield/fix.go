// Package atomicfield mixes atomic and plain access on purpose: a field
// that ever meets sync/atomic (by address or by named type) must be accessed
// atomically everywhere, and everything else here demonstrates one way of
// breaking that.
package atomicfield

import "sync/atomic"

type counters struct {
	closed int32
	memPts int64
	gen    atomic.Int64
	ready  atomic.Bool
}

// Close marks closed as an atomic field for the whole package.
func (c *counters) Close() {
	atomic.StoreInt32(&c.closed, 1)
}

// AddAtomic marks memPts.
func (c *counters) AddAtomic(n int64) {
	atomic.AddInt64(&c.memPts, n)
}

func (c *counters) IsClosedRacy() bool {
	return c.closed == 1 // want `plain read of field closed which is updated atomically elsewhere`
}

func (c *counters) AddRacy() {
	c.memPts++ // want `plain increment of field memPts which is updated atomically elsewhere`
}

func (c *counters) ResetRacy() {
	c.closed = 0 // want `plain write of field closed which is updated atomically elsewhere`
}

func (c *counters) Alias() *int64 {
	return &c.memPts // want `address of field memPts escapes outside sync/atomic`
}

// StoreGen is the sanctioned use of an atomic-typed field: method calls.
func (c *counters) StoreGen(v int64) {
	c.gen.Store(v)
}

func (c *counters) CopyGen() int64 {
	g := c.gen // want `atomic.Int64 field gen copied as a plain value`
	return g.Load()
}

func (c *counters) OverwriteReady() {
	c.ready = atomic.Bool{} // want `plain store to atomic.Bool field ready`
}

// Composite-literal initialization happens before the value is published and
// is exempt.
func newCounters() *counters {
	return &counters{closed: 0, memPts: 0}
}

// Suppression works like for any analyzer.
func (c *counters) SuppressedRead() int64 {
	return c.memPts //bos:nolint(atomicfield): fixture demonstrates suppression
}
