// The file-level marker makes every function in this file hot, the way the
// generated kernel files opt in.

//bos:hotpath

package escape

// FileLevelHot has no per-function marker; the file marker covers it.
func FileLevelHot() *big {
	w := big{} // want `new heap escape in hot path: moved to heap: w`
	return &w
}
