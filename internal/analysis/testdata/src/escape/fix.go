// Package escape feeds escapecheck deliberate heap escapes inside hot
// functions: unbaselined ones are findings, one is blessed by baseline.txt,
// and one is suppressed inline.
package escape

type big struct {
	a, b [64]uint64
}

var (
	sinkSlice []byte
	sinkFn    func() int
)

//bos:hotpath
func EscapePointer() *big {
	x := big{} // want `new heap escape in hot path: moved to heap: x`
	return &x
}

//bos:hotpath
func EscapeMake(n int) {
	buf := make([]byte, n) // want `new heap escape in hot path: make\(\[\]byte, n\) escapes to heap`
	sinkSlice = buf
}

//bos:hotpath
func EscapeClosure() {
	n := 0                // want `new heap escape in hot path: moved to heap: n`
	sinkFn = func() int { // want `new heap escape in hot path: func literal escapes to heap`
		n++
		return n
	}
}

// Blessed's escape is in baseline.txt: known, tolerated, not reported.
//
//bos:hotpath
func Blessed() *big {
	y := new(big)
	return y
}

// Suppressed's escape is acknowledged inline instead of in the baseline.
//
//bos:hotpath
func Suppressed() *big {
	z := new(big) //bos:nolint(escapecheck): fixture demonstrates suppression
	return z
}

// cold is not marked: its escapes are nobody's business.
func cold() *big {
	c := new(big)
	return c
}
