// Package checkederr exercises the checkederr analyzer against the watched
// fix/checkederrapi package and the configured std function io.ReadAll.
package checkederr

import (
	"io"

	"fix/checkederrapi"
)

// Checked uses are clean.
func Checked() error {
	if _, err := checkederrapi.Decode(nil); err != nil {
		return err
	}
	w, th := checkederrapi.Params()
	if w+th == 0 {
		return nil
	}
	return checkederrapi.Close()
}

func DropsCall() {
	checkederrapi.Close() // want `error returned by fix/checkederrapi.Close is discarded`
}

func DropsByDefer() {
	defer checkederrapi.Close() // want `error returned by fix/checkederrapi.Close is discarded by defer`
}

func DropsByGo() {
	go checkederrapi.Close() // want `error returned by fix/checkederrapi.Close is discarded by go statement` `go fix/checkederrapi.Close: callee is outside the package`
}

func BlanksError() []byte {
	out, _ := checkederrapi.Decode(nil) // want `error returned by fix/checkederrapi.Decode assigned to _`
	return out
}

func BlanksSingle() {
	_ = checkederrapi.Close() // want `error returned by fix/checkederrapi.Close assigned to _`
}

func BlanksMustUseAll() int {
	w, _ := checkederrapi.Params() // want `result 1 of fix/checkederrapi.Params assigned to _ but every result of it must be used`
	return w
}

func DropsMustUseAll() {
	checkederrapi.Params() // want `all results of fix/checkederrapi.Params must be used`
}

func DropsStdFunc(r io.Reader) {
	io.ReadAll(r) // want `error returned by io.ReadAll is discarded`
}
