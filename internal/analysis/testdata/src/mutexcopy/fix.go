// Package mutexcopy exercises the mutexcopy analyzer: copying any value that
// transitively contains a sync primitive is a diagnostic; constructing or
// pointing at one is not.
package mutexcopy

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds a Guarded by value, so copying it copies the lock too.
type wrapper struct {
	g Guarded
}

func ByValueParam(g Guarded) int { // want `by-value parameter of ByValueParam passes a lock by value`
	return g.n
}

func (g Guarded) ValueReceiver() int { // want `value receiver of ValueReceiver passes a lock by value`
	return g.n
}

func ByValueWaitGroup(wg sync.WaitGroup) { // want `by-value parameter of ByValueWaitGroup passes a lock by value`
	wg.Wait()
}

func TransitiveParam(w wrapper) int { // want `by-value parameter of TransitiveParam passes a lock by value`
	return w.g.n
}

func AssignCopy(src *Guarded) int {
	g := *src // want `assignment copies`
	return g.n
}

func VarInitCopy(src *Guarded) int {
	var g Guarded = *src // want `variable initialization copies`
	return g.n
}

func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range variable copies`
		total += g.n
	}
	return total
}

func take(p *Guarded) int { return p.n }

func CallArgCopy(g *Guarded) int {
	return ByValueParam(*g) // want `call argument copies`
}

func ReturnCopy(g *Guarded) Guarded {
	return *g // want `return copies`
}

func CompositeCopy(g *Guarded) wrapper {
	return wrapper{g: *g} // want `composite literal copies`
}

// Construction and pointer flows are clean.
func Clean() int {
	g := Guarded{n: 1}
	p := &g
	total := take(p)
	h := p // pointer copy, not a value copy
	gs := []Guarded{{n: 2}}
	for i := range gs {
		total += gs[i].n
	}
	return total + h.n
}
