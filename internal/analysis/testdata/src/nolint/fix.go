// Package nolint exercises //bos:nolint suppression: a well-formed directive
// (analyzer list plus reason) silences a diagnostic on its line or the line
// below; a directive without a reason, or naming an unknown analyzer, is
// itself diagnosed and suppresses nothing.
package nolint

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func SuppressedSameLine(src *Guarded) int {
	g := *src //bos:nolint(mutexcopy): fixture demonstrates same-line suppression
	return g.n
}

func SuppressedLineAbove(src *Guarded) int {
	//bos:nolint(mutexcopy): fixture demonstrates suppression from the line above
	g := *src
	return g.n
}

func MissingReason(src *Guarded) int {
	// want-below `assignment copies` `bos:nolint suppression requires a reason`
	g := *src //bos:nolint(mutexcopy)
	return g.n
}

func UnknownAnalyzer(src *Guarded) int {
	g := *src //bos:nolint(nosuchcheck): misnamed on purpose // want `assignment copies` `bos:nolint names unknown analyzer "nosuchcheck"`
	return g.n
}

func MissingList(src *Guarded) int {
	g := *src //bos:nolint: no analyzer list // want `assignment copies` `bos:nolint needs an analyzer list`
	return g.n
}

// A directive naming the wrong (but valid) analyzer suppresses nothing —
// and since no hotpath diagnostic fires here, it is also flagged as stale.
func WrongAnalyzer(src *Guarded) int {
	g := *src //bos:nolint(hotpath): wrong analyzer on purpose // want `assignment copies` `stale bos:nolint\(hotpath\)`
	return g.n
}
