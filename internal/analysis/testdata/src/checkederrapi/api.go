// Package checkederrapi is the watched API fixture: the checkederr analyzer
// is configured so that every error this package returns must be checked,
// and every result of Params must be used.
package checkederrapi

import "errors"

var errBad = errors.New("bad")

// Decode returns data and an error; the error must always be checked.
func Decode(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, errBad
	}
	return b, nil
}

// Close returns only an error.
func Close() error { return nil }

// Params returns two coupled values; discarding either is a diagnostic
// (MustUseAll).
func Params() (width, threshold int) { return 7, 2 }
