// Package hotpath exercises the hotpath analyzer's //bos:hotpath marker
// mode: only marked functions are checked, and inside them fmt/reflect,
// time.Now, defer and interface boxing are diagnostics.
package hotpath

import (
	"fmt"
	"time"
)

type sink interface {
	accept(v any)
}

func trace() func() { return func() {} }

// Cold is unmarked: everything here is allowed.
func Cold(n int) string {
	defer trace()()
	_ = time.Now()
	return fmt.Sprint(n)
}

//bos:hotpath
func HotClean(vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

//bos:hotpath
func HotFmt(n int) string {
	return fmt.Sprint(n) // want `call to fmt.Sprint in hot path`
}

//bos:hotpath
func HotDefer() {
	defer trace() // want `defer in hot path`
}

//bos:hotpath
func HotTime() int64 {
	return time.Now().UnixNano() // want `call to time.Now in hot path`
}

//bos:hotpath
func HotBoxAssign(n int) any {
	var v any = n // want `interface boxing in hot path: assignment converts concrete int`
	return v
}

//bos:hotpath
func HotBoxConvert(n int) any {
	return any(n) // want `interface boxing in hot path: conversion converts concrete int`
}

//bos:hotpath
func HotBoxArg(s sink, n int) {
	s.accept(n) // want `interface boxing in hot path: argument converts concrete int`
}

//bos:hotpath
func HotBoxReturn(n int) any {
	return n // want `interface boxing in hot path: return converts concrete int`
}

// Interface-to-interface flows do not box: clean even in a hot function.
//
//bos:hotpath
func HotPassThrough(s sink, v any) {
	s.accept(v)
}
