// Package goroutinelife spawns goroutines with and without a provable join
// or stop path: WaitGroup pairing, stop-channel/context selects and result
// channels are accepted; fire-and-forget spawns are reported.
package goroutinelife

import (
	"context"
	"sync"
	"time"
)

type server struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

// StartWorker pairs a field WaitGroup: Add anywhere in the package, Done in
// the body. Clean.
func (s *server) StartWorker() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// FanOut pairs a local WaitGroup: the Add precedes every spawn. Clean.
func FanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// DoneNoAdd has a Done but no Add before the spawn: the pairing is broken,
// so the Done proves nothing (Wait would return immediately).
func DoneNoAdd() {
	var wg sync.WaitGroup
	go func() { // want `goroutine has no provable join or stop path`
		defer wg.Done()
	}()
	wg.Wait()
}

// StartLoop selects on a field stop channel that Stop closes. Clean.
func (s *server) StartLoop() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// loop is the named-callee variant of the same lifecycle.
func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// StartNamed spawns a same-package method, judged by its body. Clean.
func (s *server) StartNamed() {
	go s.loop()
}

func (s *server) Stop() {
	close(s.stop)
	s.wg.Wait()
}

// StartCtx waits on context cancellation. Clean.
func StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Result sends on a channel the spawner receives from. Clean.
func Result() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// FireAndForget joins nothing and stops never.
func FireAndForget() {
	go func() { // want `goroutine has no provable join or stop path`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// ExternalCallee spawns a function declared outside the package: nothing is
// provable about its lifecycle.
func ExternalCallee() {
	go time.Sleep(time.Second) // want `go time.Sleep: callee is outside the package`
}

// FuncValue spawns through a function value: the body is unknown.
func FuncValue(f func()) {
	go f() // want `go statement through a function value`
}

// Suppressed documents its lifecycle out of band.
func Suppressed() {
	go func() { //bos:nolint(goroutinelife): fixture demonstrates suppression
		for {
			time.Sleep(time.Second)
		}
	}()
}
