package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Suppression syntax:
//
//	//bos:nolint(<analyzer>[,<analyzer>...]): <reason>
//
// A directive suppresses matching diagnostics reported on its own line (end
// of line comment) or on the line immediately below it (comment on its own
// line above the flagged statement). The analyzer list and the reason are
// both mandatory: a suppression that does not say which check it disables,
// or why, is reported as a diagnostic itself (analyzer name "nolint", which
// cannot be suppressed).

// nolintName is the pseudo-analyzer name under which malformed directives
// are reported.
const nolintName = "nolint"

// nolintEntry is the merged suppression state of one "file:line" location:
// which analyzers its directives name, and which of those actually matched a
// diagnostic (the rest are stale).
type nolintEntry struct {
	pos   token.Position
	names map[string]bool
	used  map[string]bool
}

// directiveSet indexes the well-formed directives of one package.
type directiveSet struct {
	byLoc   map[string]*nolintEntry // "file:line" -> entry
	entries []*nolintEntry          // in parse order, for deterministic stale reports
}

// suppresses reports whether a directive covers the given diagnostic, and
// records the use on every covering directive so unused suppressions can be
// flagged afterwards.
func (s *directiveSet) suppresses(d Diagnostic) bool {
	if d.Analyzer == nolintName {
		return false
	}
	matched := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if e, ok := s.byLoc[locKey(d.Pos.Filename, line)]; ok && e.names[d.Analyzer] {
			e.used[d.Analyzer] = true
			matched = true
		}
	}
	return matched
}

// reportStale flags every suppression whose analyzer reported nothing on the
// covered lines: the finding it once silenced is gone, so the directive is
// dead weight that would silently swallow a future, different finding.
func (s *directiveSet) reportStale(report func(Diagnostic)) {
	for _, e := range s.entries {
		names := make([]string, 0, len(e.names))
		for name := range e.names {
			if !e.used[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			report(Diagnostic{
				Pos:      e.pos,
				Analyzer: nolintName,
				Message:  "stale bos:nolint(" + name + "): the " + name + " diagnostic no longer fires here; delete the suppression",
			})
		}
	}
}

func locKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// collectDirectives parses every //bos:nolint comment in the package.
// Malformed directives are reported through report; only well-formed ones
// land in the returned set. known is the set of valid analyzer names.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *directiveSet {
	set := &directiveSet{byLoc: map[string]*nolintEntry{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//bos:nolint")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				bad := func(msg string) {
					report(Diagnostic{Pos: pos, Analyzer: nolintName, Message: msg})
				}
				rest, ok := strings.CutPrefix(text, "(")
				if !ok {
					bad("bos:nolint needs an analyzer list: //bos:nolint(<analyzer>): <reason>")
					continue
				}
				list, rest, ok := strings.Cut(rest, ")")
				if !ok {
					bad("bos:nolint analyzer list is missing the closing parenthesis")
					continue
				}
				names := strings.Split(list, ",")
				analyzers := map[string]bool{}
				valid := true
				for _, name := range names {
					name = strings.TrimSpace(name)
					if name == "" {
						bad("bos:nolint has an empty analyzer name")
						valid = false
						continue
					}
					if !known[name] {
						bad("bos:nolint names unknown analyzer " + strconv.Quote(name))
						valid = false
						continue
					}
					analyzers[name] = true
				}
				reason, ok := strings.CutPrefix(strings.TrimLeft(rest, " \t"), ":")
				if !ok || strings.TrimSpace(reason) == "" {
					bad("bos:nolint suppression requires a reason: //bos:nolint(<analyzer>): <reason>")
					continue
				}
				if !valid || len(analyzers) == 0 {
					continue
				}
				key := locKey(pos.Filename, pos.Line)
				entry := set.byLoc[key]
				if entry == nil {
					entry = &nolintEntry{pos: pos, names: map[string]bool{}, used: map[string]bool{}}
					set.byLoc[key] = entry
					set.entries = append(set.entries, entry)
				}
				for name := range analyzers {
					entry.names[name] = true
				}
			}
		}
	}
	return set
}
