package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewAtomicField returns the atomicfield analyzer.
//
// A struct field is an atomic field when any code in the package passes its
// address to a sync/atomic function (atomic.AddInt64(&s.n, 1), ...) or when
// it is declared with one of sync/atomic's named types (atomic.Int64,
// atomic.Bool, atomic.Pointer[T], ...). Mixing disciplines on such a field —
// an atomic store in one function and a plain `s.n++` or `if s.n > 0` in
// another — is a data race the race detector only catches when the two sides
// actually collide under test; this check makes the discipline structural:
//
//   - a field whose address ever reaches sync/atomic must be accessed
//     through sync/atomic everywhere (plain reads, writes and aliasing are
//     reported). Struct-literal initialization is exempt: a composite
//     literal builds a value no other goroutine can see yet;
//   - a field of an atomic named type may only be used as a method receiver
//     (s.n.Load(), s.n.Store(v)) or have its address taken; assigning the
//     whole field (which both bypasses the atomic protocol and copies the
//     embedded noCopy state) or reading it as a value is reported.
//
// The analysis is per package, which matches how such fields are used here:
// every atomic field in this module is unexported.
func NewAtomicField() Analyzer { return &atomicField{} }

type atomicField struct{}

func (a *atomicField) Name() string { return "atomicfield" }
func (a *atomicField) Doc() string {
	return "fields passed to sync/atomic or declared atomic.* must be accessed atomically everywhere (no mixed plain/atomic access)"
}

func (a *atomicField) Run(pass *Pass) {
	marked := map[*types.Var]token.Position{} // plain-typed fields used atomically -> first atomic use
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			if field := addressedField(pass, call.Args[0]); field != nil {
				if _, seen := marked[field]; !seen {
					marked[field] = pass.Fset.Position(call.Args[0].Pos())
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		w := &atomicWalker{pass: pass, marked: marked}
		w.walk(file)
	}
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return fn.Pkg().Path() == "sync/atomic" && (sig == nil || sig.Recv() == nil)
}

// addressedField resolves `&x.f` to the struct field f, or nil.
func addressedField(pass *Pass, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return selectedField(pass, u.X)
}

// selectedField resolves a selector expression to the struct field it
// selects, or nil for anything else (methods, package selectors, locals).
func selectedField(pass *Pass, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj().(*types.Var)
}

// atomicTypeName returns the sync/atomic named type of t ("atomic.Int64"),
// or "" when t is not one of them.
func atomicTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return "atomic." + obj.Name()
}

// atomicWalker checks every field selector in one file against the atomic
// discipline, tracking parents to recognize the sanctioned access shapes.
type atomicWalker struct {
	pass   *Pass
	marked map[*types.Var]token.Position
	stack  []ast.Node
}

func (w *atomicWalker) walk(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			w.checkSelector(sel)
		}
		w.stack = append(w.stack, n)
		return true
	})
}

// parent returns the i-th enclosing node of the one being visited (1 is the
// immediate parent), unwrapping parenthesized expressions.
func (w *atomicWalker) parent(i int) ast.Node {
	for idx := len(w.stack) - 1; idx >= 0; idx-- {
		if _, ok := w.stack[idx].(*ast.ParenExpr); ok {
			continue
		}
		i--
		if i == 0 {
			return w.stack[idx]
		}
	}
	return nil
}

func (w *atomicWalker) checkSelector(sel *ast.SelectorExpr) {
	field := selectedField(w.pass, sel)
	if field == nil {
		return
	}
	if name := atomicTypeName(field.Type()); name != "" {
		w.checkAtomicTyped(sel, field, name)
		return
	}
	first, isMarked := w.marked[field]
	if !isMarked {
		return
	}
	switch p := w.parent(1).(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			// Address taken: fine when it feeds sync/atomic, reported as
			// aliasing otherwise (a plain pointer to an atomic field lets
			// unchecked code race on it).
			if call, ok := w.parent(2).(*ast.CallExpr); ok && isAtomicCall(w.pass, call) {
				return
			}
			w.pass.Reportf(sel.Pos(), "address of field %s escapes outside sync/atomic: the field is updated atomically (first atomic use at %s) and plain aliases race with it",
				field.Name(), first)
			return
		}
	case *ast.SelectorExpr:
		if ast.Unparen(p.X) == sel {
			return // deeper selection: s.stats.n — the leaf selector decides
		}
	case *ast.KeyValueExpr:
		return // struct-literal initialization happens before publication
	case *ast.IncDecStmt:
		w.pass.Reportf(sel.Pos(), "plain %s of field %s which is updated atomically elsewhere (first atomic use at %s): use sync/atomic for every access",
			"increment", field.Name(), first)
		return
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				w.pass.Reportf(sel.Pos(), "plain %s of field %s which is updated atomically elsewhere (first atomic use at %s): use sync/atomic for every access",
					"write", field.Name(), first)
				return
			}
		}
	}
	w.pass.Reportf(sel.Pos(), "plain %s of field %s which is updated atomically elsewhere (first atomic use at %s): use sync/atomic for every access",
		"read", field.Name(), first)
}

// checkAtomicTyped enforces the method-or-address rule on fields declared
// with a sync/atomic named type.
func (w *atomicWalker) checkAtomicTyped(sel *ast.SelectorExpr, field *types.Var, typeName string) {
	switch p := w.parent(1).(type) {
	case *ast.SelectorExpr:
		if ast.Unparen(p.X) == sel {
			return // method call or deeper selection through the field
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &s.n passed along; the callee uses the atomic API
		}
	case *ast.KeyValueExpr:
		return // composite-literal init, pre-publication
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				w.pass.Reportf(sel.Pos(), "plain store to %s field %s: assignment bypasses the atomic protocol (use %s.Store)",
					typeName, field.Name(), field.Name())
				return
			}
		}
	}
	w.pass.Reportf(sel.Pos(), "%s field %s copied as a plain value: use %s.Load (atomic types must not be copied)",
		typeName, field.Name(), field.Name())
}
