package analysis

import (
	"go/ast"
	"go/types"
)

// CheckedErrConfig lists the APIs whose results must not be silently
// discarded. It is stricter than vet's unusedresult: any error produced by a
// configured package or function must reach a named variable (or be passed
// on), never the blank identifier, an expression statement, or a defer/go
// that drops it.
type CheckedErrConfig struct {
	// Packages are import paths whose functions' and methods' error results
	// must always be checked (interface methods count with the package that
	// declares the interface).
	Packages []string
	// Funcs adds individual functions from other packages, as
	// "pkgpath.Func" or "pkgpath.Type.Method" (e.g. "io.ReadAll").
	Funcs []string
	// MustUseAll lists functions whose every result must be used: assigning
	// any of them to _ is a diagnostic even when no error is involved.
	MustUseAll []string
	// Ignore exempts specific qualified functions from all checks.
	Ignore []string
}

// NewCheckedErr returns the checkederr analyzer for one configuration.
func NewCheckedErr(cfg CheckedErrConfig) Analyzer {
	a := &checkedErr{
		pkgs:       map[string]bool{},
		funcs:      map[string]bool{},
		mustUseAll: map[string]bool{},
		ignore:     map[string]bool{},
	}
	for _, p := range cfg.Packages {
		a.pkgs[p] = true
	}
	for _, f := range cfg.Funcs {
		a.funcs[f] = true
	}
	for _, f := range cfg.MustUseAll {
		a.mustUseAll[f] = true
	}
	for _, f := range cfg.Ignore {
		a.ignore[f] = true
	}
	return a
}

type checkedErr struct {
	pkgs, funcs, mustUseAll, ignore map[string]bool
}

func (a *checkedErr) Name() string { return "checkederr" }
func (a *checkedErr) Doc() string {
	return "flag discarded error results from the configured storage/codec APIs (stricter than vet's unusedresult)"
}

func (a *checkedErr) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					a.checkDiscardedCall(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				a.checkDiscardedCall(pass, stmt.Call, "discarded by defer")
			case *ast.GoStmt:
				a.checkDiscardedCall(pass, stmt.Call, "discarded by go statement")
			case *ast.AssignStmt:
				a.checkAssign(pass, stmt)
			}
			return true
		})
	}
}

// watched resolves a call's callee and reports how strictly its results are
// checked. errIdx holds the indexes of error-typed results.
func (a *checkedErr) watched(pass *Pass, call *ast.CallExpr) (fn *types.Func, qname string, errIdx []int, all bool, ok bool) {
	fn = calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, "", nil, false, false
	}
	qname = qualifiedName(fn)
	if a.ignore[qname] {
		return nil, "", nil, false, false
	}
	all = a.mustUseAll[qname]
	strict := all || a.pkgs[fn.Pkg().Path()] || a.funcs[qname]
	if !strict {
		return nil, "", nil, false, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil, "", nil, false, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 && !all {
		return nil, "", nil, false, false
	}
	return fn, qname, errIdx, all, true
}

// checkDiscardedCall flags a watched call whose results are dropped
// entirely (expression statement, defer, or go).
func (a *checkedErr) checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	_, qname, errIdx, all, ok := a.watched(pass, call)
	if !ok {
		return
	}
	if len(errIdx) > 0 {
		pass.Reportf(call.Pos(), "error returned by %s is %s", qname, how)
	} else if all {
		pass.Reportf(call.Pos(), "all results of %s must be used (result %s)", qname, how)
	}
}

// checkAssign flags watched results assigned to the blank identifier, e.g.
// `v, _ := pkg.Decode(...)`.
func (a *checkedErr) checkAssign(pass *Pass, stmt *ast.AssignStmt) {
	// Only the multi-value form `a, b := f()` maps result indexes to LHS
	// positions; `a, b := f(), g()` pairs element-wise instead.
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		_, qname, errIdx, all, ok := a.watched(pass, call)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if all {
				pass.Reportf(lhs.Pos(), "result %d of %s assigned to _ but every result of it must be used", i, qname)
				continue
			}
			for _, ei := range errIdx {
				if ei == i {
					pass.Reportf(lhs.Pos(), "error returned by %s assigned to _", qname)
				}
			}
		}
		return
	}
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		_, qname, errIdx, all, ok := a.watched(pass, call)
		if !ok {
			continue
		}
		if len(errIdx) > 0 {
			pass.Reportf(stmt.Lhs[i].Pos(), "error returned by %s assigned to _", qname)
		} else if all {
			pass.Reportf(stmt.Lhs[i].Pos(), "result of %s assigned to _ but every result of it must be used", qname)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
