package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifeConfig names fan-out helpers whose spawned goroutines are
// known to be joined internally (the helper owns the WaitGroup), so `go`
// statements inside functions passed to them are not re-examined for an
// external join.
type GoroutineLifeConfig struct {
	// Helpers are "pkgpath.Func" names of recognized fan-out helpers.
	Helpers []string
}

// NewGoroutineLife returns the goroutinelife analyzer.
//
// Every `go` statement must have a provable join or stop path; a goroutine
// with neither outlives Close/shutdown, keeps its captures alive, and races
// with teardown (the exact leak class hand-fixed twice in this module's scan
// and server paths). The analyzer accepts a spawn when it can prove one of:
//
//   - WaitGroup pairing: the goroutine body calls Done (directly or via
//     defer) on a WaitGroup that is also Add-ed — before the spawn for a
//     local WaitGroup, anywhere in the package for a field;
//   - stop signal: the body receives from a context's Done() channel or
//     from a channel that is close()d by the enclosing function (locals) or
//     anywhere in the package (fields and package-level channels);
//   - result channel: the body sends on a channel the enclosing function
//     receives from, so the spawner (or its caller, for `errc <- srv()`
//     patterns) observes termination;
//   - a configured fan-out helper spawns it.
//
// A `go` on a named function is judged by that function's body when it is
// declared in the same package (one level deep); a `go` on an external or
// unresolvable callee cannot be proven and is reported — suppress with
// //bos:nolint(goroutinelife) and a reason explaining the lifecycle.
func NewGoroutineLife(cfg GoroutineLifeConfig) Analyzer {
	a := &goroutineLife{helpers: map[string]bool{}}
	for _, h := range cfg.Helpers {
		a.helpers[h] = true
	}
	return a
}

type goroutineLife struct {
	helpers map[string]bool
}

func (a *goroutineLife) Name() string { return "goroutinelife" }
func (a *goroutineLife) Doc() string {
	return "every go statement needs a provable join or stop path (WaitGroup pairing, done-channel/context select, result channel, or a known fan-out helper)"
}

func (a *goroutineLife) Run(pass *Pass) {
	info := &lifeInfo{pass: pass, a: a}
	info.collectPackageFacts()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			info.checkFunc(fd)
		}
	}
}

// lifeInfo carries the package-wide facts the per-spawn proofs consult.
type lifeInfo struct {
	pass *Pass
	a    *goroutineLife

	// addedGroups are WaitGroup objects (usually struct fields) with an
	// Add call anywhere in the package.
	addedGroups map[types.Object]bool
	// closedChans are channel objects with a close() anywhere in the
	// package.
	closedChans map[types.Object]bool
	// decls maps declared functions to their bodies for one-level
	// indirection (`go m.loop()`).
	decls map[*types.Func]*ast.FuncDecl
}

func (li *lifeInfo) collectPackageFacts() {
	li.addedGroups = map[types.Object]bool{}
	li.closedChans = map[types.Object]bool{}
	li.decls = map[*types.Func]*ast.FuncDecl{}
	for _, file := range li.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := li.pass.Info.Defs[fd.Name].(*types.Func); ok {
					li.decls[obj] = fd
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := waitGroupMethodRecv(li.pass, call, "Add"); obj != nil {
				li.addedGroups[obj] = true
			}
			if obj := closedChanObj(li.pass, call); obj != nil {
				li.closedChans[obj] = true
			}
			return true
		})
	}
}

// waitGroupMethodRecv returns the object a sync.WaitGroup method call is
// invoked on (`wg.Add(1)` -> wg's object), or nil. Only selector receivers
// rooted in an identifier or a field chain are resolved.
func waitGroupMethodRecv(pass *Pass, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	return rootObject(pass, sel.X)
}

// closedChanObj returns the channel object of a `close(ch)` call, or nil.
func closedChanObj(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	return rootObject(pass, call.Args[0])
}

// rootObject resolves an identifier or field-selector chain to the object of
// its final component (`wg` -> wg, `c.wg` -> the wg field, `(&s.g).wg` ->
// the wg field). It returns nil for anything it cannot resolve statically.
func rootObject(pass *Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return obj
		}
		return pass.Info.Defs[e]
	case *ast.SelectorExpr:
		if selection := pass.Info.Selections[e]; selection != nil && selection.Kind() == types.FieldVal {
			return selection.Obj()
		}
		return nil
	case *ast.UnaryExpr:
		return rootObject(pass, e.X)
	case *ast.StarExpr:
		return rootObject(pass, e.X)
	default:
		return nil
	}
}

// checkFunc examines every `go` statement lexically inside fd (including
// those in nested literals, which share fd's scope for locals).
func (li *lifeInfo) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		li.checkSpawn(fd, g)
		return true
	})
}

func (li *lifeInfo) checkSpawn(encl *ast.FuncDecl, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calleeFunc(li.pass.Info, g.Call); fn != nil {
			if li.a.helpers[qualifiedName(fn)] {
				return
			}
			if fd, ok := li.decls[fn]; ok {
				body = fd.Body
				break
			}
			li.pass.Reportf(g.Pos(), "go %s: callee is outside the package, so no join or stop path is provable; wrap it in a literal that signals completion (or suppress with a lifecycle explanation)",
				qualifiedName(fn))
			return
		}
		li.pass.Reportf(g.Pos(), "go statement through a function value: no join or stop path is provable; spawn a literal that pairs with a WaitGroup or selects on a stop channel")
		return
	}
	if li.proveBody(encl, g, body) {
		return
	}
	li.pass.Reportf(g.Pos(), "goroutine has no provable join or stop path: pair it with a WaitGroup (Add before the spawn, Done in the body), select on a stop/context channel, or send its result to a channel the spawner receives from")
}

// proveBody looks for any accepted lifecycle proof inside the goroutine
// body.
func (li *lifeInfo) proveBody(encl *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt) bool {
	proved := false
	ast.Inspect(body, func(n ast.Node) bool {
		if proved {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if obj := waitGroupMethodRecv(li.pass, node, "Done"); obj != nil && li.groupAdded(obj, encl, g) {
				proved = true
			}
		case *ast.UnaryExpr:
			// <-ch: a receive from a stop/context channel counts.
			if node.Op == token.ARROW {
				if li.stopChannel(node.X, encl) {
					proved = true
				}
			}
		case *ast.SendStmt:
			// ch <- v: a send the spawner (or its caller) receives.
			if obj := rootObject(li.pass, node.Chan); obj != nil && li.receivedFrom(obj, encl) {
				proved = true
			}
		}
		return !proved
	})
	return proved
}

// groupAdded reports whether the WaitGroup object has a matching Add: before
// the spawn in the enclosing function for locals, anywhere in the package
// for fields and package-level groups.
func (li *lifeInfo) groupAdded(obj types.Object, encl *ast.FuncDecl, g *ast.GoStmt) bool {
	if isLocalOf(obj, encl) {
		found := false
		ast.Inspect(encl.Body, func(n ast.Node) bool {
			if found || n == nil || n.Pos() >= g.Pos() {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if added := waitGroupMethodRecv(li.pass, call, "Add"); added == obj {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return li.addedGroups[obj]
}

// stopChannel reports whether expr is a recognized stop signal: a Done()
// call on a context.Context, or a channel object that is close()d (in the
// enclosing function for locals, anywhere in the package otherwise).
func (li *lifeInfo) stopChannel(expr ast.Expr, encl *ast.FuncDecl) bool {
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		fn := calleeFunc(li.pass.Info, call)
		return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
	}
	obj := rootObject(li.pass, expr)
	if obj == nil {
		return false
	}
	if isLocalOf(obj, encl) {
		found := false
		ast.Inspect(encl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if closed := closedChanObj(li.pass, call); closed == obj {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return li.closedChans[obj]
}

// receivedFrom reports whether the enclosing function receives from the
// channel object (a `v := <-ch`, `<-ch`, select case, or range over it).
func (li *lifeInfo) receivedFrom(obj types.Object, encl *ast.FuncDecl) bool {
	// Channels threaded through fields or parameters are received elsewhere
	// by construction of the patterns this module uses; only locals demand
	// an in-function receive, which keeps the proof about the spawner.
	if !isLocalOf(obj, encl) {
		return true
	}
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && rootObject(li.pass, node.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if rootObject(li.pass, node.X) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLocalOf reports whether obj is declared inside fd (a local variable or
// parameter rather than a field or package-level object).
func isLocalOf(obj types.Object, fd *ast.FuncDecl) bool {
	return obj.Pos() >= fd.Pos() && obj.Pos() <= fd.End()
}
