package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden tests run the real analyzers over the deliberately broken
// fixture packages in testdata/src (a synthetic module "fix") and compare
// the diagnostics against `// want "regex"` comments in the fixtures: every
// diagnostic must be wanted on its exact line, and every want must be hit.

// fixtureAnalyzers mirrors DefaultAnalyzers but configured for the fixture
// module's package paths and type names.
func fixtureAnalyzers() []Analyzer {
	return []Analyzer{
		NewLockOrder(fixtureLockOrder("fix/lockorder")),
		NewLockOrder(fixtureLockOrder("fix/lockorder2")),
		NewCheckedErr(CheckedErrConfig{
			Packages:   []string{"fix/checkederrapi"},
			Funcs:      []string{"io.ReadAll"},
			MustUseAll: []string{"fix/checkederrapi.Params"},
		}),
		NewHotPath(HotPathConfig{
			BannedPkgs:  []string{"fmt", "reflect"},
			BannedFuncs: []string{"time.Now", "time.Since"},
		}),
		NewMutexCopy(),
		NewAtomicField(),
		NewGoroutineLife(GoroutineLifeConfig{}),
		NewEscapeCheck(EscapeCheckConfig{
			Packages:     []string{"fix/escape"},
			BaselineFile: "escape/baseline.txt",
		}),
	}
}

// fixtureLockOrder is the fixture mirror of EngineLockOrder, applied to both
// lockorder fixture packages (the intra-procedural one and the cross-call
// one).
func fixtureLockOrder(pkgPath string) LockOrderConfig {
	return LockOrderConfig{
		PkgPath: pkgPath,
		DocRef:  "the fixture hierarchy table",
		Fields: map[string]int{
			"Engine.flushMu":  0,
			"Engine.structMu": 1,
			"memStripe.mu":    2,
			"Engine.walMu":    3,
		},
		LevelName: map[int]string{0: "flushMu", 1: "structMu", 2: "stripes", 3: "walMu"},
	}
}

// expectation is one parsed `// want "regex"` marker.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// A marker expects its diagnostics on its own line; the want-below form
// expects them on the next line (for cases where the flagged line cannot
// carry extra comment text, e.g. malformed //bos:nolint directives whose
// whole trailing comment is parsed as the reason). Patterns are quoted with
// backticks or double quotes.
var wantMarker = regexp.MustCompile("// want(-below)? (.+)$")
var wantQuoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the expectations from every .go file in dir.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wantLine := i + 1
			if m[1] == "-below" {
				wantLine = i + 2
			}
			quotes := wantQuoted.FindAllString(m[2], -1)
			if len(quotes) == 0 {
				t.Fatalf("%s:%d: want marker without a quoted pattern", path, i+1)
			}
			for _, q := range quotes {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: wantLine, re: re})
			}
		}
	}
	return wants
}

func TestGolden(t *testing.T) {
	srcDir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Loader: NewLoader(srcDir, "fix"), Analyzers: fixtureAnalyzers()}
	for _, pkg := range []string{"lockorder", "lockorder2", "checkederr", "checkederrapi", "hotpath", "hotpathgen", "mutexcopy", "nolint", "atomicfield", "goroutinelife", "escape"} {
		t.Run(pkg, func(t *testing.T) {
			diags, err := drv.CheckPatterns([]string{"fix/" + pkg})
			if err != nil {
				t.Fatalf("loading fixture package: %v", err)
			}
			wants := parseWants(t, filepath.Join(srcDir, pkg))
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: wanted diagnostic matching %q was not reported", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestModuleTreeClean pins the acceptance gate that CI also enforces: the
// default analyzer suite finds nothing unsuppressed on the module itself.
func TestModuleTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	drv := &Driver{Loader: NewLoader(root, modPath), Analyzers: DefaultAnalyzers()}
	diags, err := drv.CheckPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module tree not clean: %s", d)
	}
}
