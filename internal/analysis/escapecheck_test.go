package analysis

import (
	"path/filepath"
	"testing"
)

// TestComputeEscapeBaseline pins the bosvet -escape-baseline plumbing: the
// computed key set for the escape fixture must contain every deliberate hot
// escape (including the blessed and the inline-suppressed ones — the
// baseline is the raw compiler truth, suppression happens at report time)
// and nothing from the unmarked cold function.
func TestComputeEscapeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short runs")
	}
	srcDir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := ComputeEscapeBaseline(NewLoader(srcDir, "fix"), EscapeCheckConfig{
		Packages:     []string{"fix/escape"},
		BaselineFile: "escape/baseline.txt",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, k := range keys {
		got[k] = true
	}
	for _, want := range []string{
		"fix/escape.EscapePointer: moved to heap: x",
		"fix/escape.EscapeMake: make([]byte, n) escapes to heap",
		"fix/escape.EscapeClosure: moved to heap: n",
		"fix/escape.Blessed: new(big) escapes to heap",
		"fix/escape.Suppressed: new(big) escapes to heap",
		"fix/escape.FileLevelHot: moved to heap: w",
	} {
		if !got[want] {
			t.Errorf("baseline is missing %q; got:\n%v", want, keys)
		}
	}
	for _, k := range keys {
		if len(k) >= len("fix/escape.cold") && k[:len("fix/escape.cold")] == "fix/escape.cold" {
			t.Errorf("cold (unmarked) function leaked into the baseline: %q", k)
		}
	}
}
