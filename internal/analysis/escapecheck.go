package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// EscapeCheckConfig gates heap escapes in hot functions. The analyzer wraps
// the real compiler: it runs `go build -gcflags=-m -l` on each configured
// package, parses the escape diagnostics, keeps the ones that land inside a
// //bos:hotpath function (or a file-level hot marker), and fails on any that
// the committed baseline does not bless.
type EscapeCheckConfig struct {
	// Packages are the import paths whose hot functions are gated. Only
	// these are built: the check costs one (cached) compile per package.
	Packages []string
	// BaselineFile is the allowlist of known escapes, relative to the
	// module root. One "pkgpath.Func: diagnostic" key per line; blank lines
	// and #-comments are ignored. Regenerate with `bosvet -escape-baseline`.
	BaselineFile string
}

// NewEscapeCheck returns the escapecheck analyzer.
//
// Inlining is disabled (-l) so diagnostics attribute to the function that
// wrote the code, and the escape keys are function-scoped rather than
// line-scoped: "bos/internal/engine.fanOut: moved to heap: next" survives
// unrelated edits shifting line numbers. The compiler's own escape analysis
// is the ground truth — this gate only turns its -m chatter into a
// regression test for the ~390 generated kernels and the flush/WAL append
// paths whose performance story depends on staying allocation-free.
func NewEscapeCheck(cfg EscapeCheckConfig) Analyzer {
	a := &escapeCheck{pkgs: map[string]bool{}, baselineFile: cfg.BaselineFile}
	for _, p := range cfg.Packages {
		a.pkgs[p] = true
	}
	return a
}

type escapeCheck struct {
	pkgs         map[string]bool
	baselineFile string
}

func (a *escapeCheck) Name() string { return "escapecheck" }
func (a *escapeCheck) Doc() string {
	return "run `go build -gcflags=-m -l` on hot packages and fail on heap escapes in //bos:hotpath functions absent from the baseline"
}

// escapeFinding is one compiler escape diagnostic inside a hot function.
type escapeFinding struct {
	key  string // "pkgpath.Func: message" — the baseline unit
	fn   string // "Func" or "Type.Method"
	msg  string
	file *ast.File
	line int
}

// escapeLine matches one `go build -m` diagnostic worth gating. The compiler
// also prints "... does not escape" and inline notes; only actual heap moves
// count.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

func (a *escapeCheck) Run(pass *Pass) {
	if !a.pkgs[pass.PkgPath] {
		return
	}
	findings, err := a.findings(pass)
	if err != nil {
		pass.Reportf(pass.Files[0].Package, "escapecheck could not analyze %s: %v", pass.PkgPath, err)
		return
	}
	if len(findings) == 0 {
		return
	}
	baseline, err := a.loadBaseline(pass.Dir)
	if err != nil {
		pass.Reportf(pass.Files[0].Package, "escapecheck could not read baseline: %v", err)
		return
	}
	for _, f := range findings {
		if baseline[f.key] {
			continue
		}
		tf := pass.Fset.File(f.file.Package)
		pos := f.file.Package
		if tf != nil && f.line <= tf.LineCount() {
			pos = tf.LineStart(f.line)
		}
		pass.Reportf(pos, "new heap escape in hot path: %s (in %s); keep the function allocation-free, or bless it by adding %q to %s",
			f.msg, f.fn, f.key, a.baselineFile)
	}
}

// findings builds the package with escape diagnostics enabled and keeps the
// ones landing inside a hot function.
func (a *escapeCheck) findings(pass *Pass) ([]escapeFinding, error) {
	modRoot, _, err := FindModule(pass.Dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, pass.Dir)
	if err != nil {
		return nil, err
	}
	// -l disables inlining so escapes attribute to their source function;
	// the build cache replays the diagnostics, so warm runs cost nothing.
	cmd := exec.Command("go", "build", "-gcflags=-m -l", "./"+filepath.ToSlash(rel))
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	hot := a.hotRanges(pass)
	if len(hot) == 0 {
		return nil, nil
	}
	var findings []escapeFinding
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(modRoot, file)
		}
		lineno, _ := strconv.Atoi(m[2])
		msg := m[3]
		for _, h := range hot {
			if h.filename == file && lineno >= h.start && lineno <= h.end {
				findings = append(findings, escapeFinding{
					key:  pass.PkgPath + "." + h.name + ": " + msg,
					fn:   h.name,
					msg:  msg,
					file: h.astFile,
					line: lineno,
				})
				break
			}
		}
	}
	return findings, nil
}

// hotRange is the line span of one hot function in one file.
type hotRange struct {
	filename   string
	start, end int
	name       string
	astFile    *ast.File
}

// hotRanges collects every //bos:hotpath function (explicit doc marker or
// file-level marker) as a file/line range for diagnostic attribution.
func (a *escapeCheck) hotRanges(pass *Pass) []hotRange {
	var out []hotRange
	for _, file := range pass.Files {
		fileHot := hasFileHotMarker(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !fileHot && !hasHotMarker(fn.Doc) {
				continue
			}
			start := pass.Fset.Position(fn.Pos())
			end := pass.Fset.Position(fn.End())
			name := fn.Name.Name
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				if tv, ok := pass.Info.Types[fn.Recv.List[0].Type]; ok {
					if recv := namedRecv(tv.Type); recv != "" {
						name = recv + "." + name
					}
				}
			}
			out = append(out, hotRange{
				filename: start.Filename,
				start:    start.Line,
				end:      end.Line,
				name:     name,
				astFile:  file,
			})
		}
	}
	return out
}

// loadBaseline reads the allowlist relative to the module root of dir. A
// missing file is an empty baseline: every hot escape is then a finding.
func (a *escapeCheck) loadBaseline(dir string) (map[string]bool, error) {
	if a.baselineFile == "" {
		return map[string]bool{}, nil
	}
	modRoot, _, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(modRoot, a.baselineFile))
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	baseline := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		baseline[line] = true
	}
	return baseline, nil
}

// ComputeEscapeBaseline runs the escape extraction over every configured
// package and returns the sorted key set — the exact content of a fresh
// baseline file (bosvet -escape-baseline prints it; CI diffs it against the
// committed one).
func ComputeEscapeBaseline(loader *Loader, cfg EscapeCheckConfig) ([]string, error) {
	a := NewEscapeCheck(cfg).(*escapeCheck)
	seen := map[string]bool{}
	for _, path := range cfg.Packages {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			PkgPath:  pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Types,
			Files:    pkg.Files,
			Info:     pkg.Info,
		}
		findings, err := a.findings(pass)
		if err != nil {
			return nil, err
		}
		for _, f := range findings {
			seen[f.key] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
