package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderConfig models a documented lock hierarchy for one package. Locks
// are identified by the struct field that holds them ("Type.field"); levels
// must be acquired in ascending order, skipping levels is allowed, and no
// lock may be acquired while a lock of the same or a higher level is held.
//
// Wrapper functions — an all-stripes barrier, an unlock helper — are not
// declared anywhere: the analyzer infers them from per-function summaries
// (see the interprocedural notes on NewLockOrder).
type LockOrderConfig struct {
	// PkgPath is the package the hierarchy applies to.
	PkgPath string
	// DocRef names where the hierarchy is documented, cited in diagnostics.
	DocRef string
	// Fields maps "Type.field" of each sync.Mutex/RWMutex to its level.
	Fields map[string]int
	// LevelName names each level for diagnostics.
	LevelName map[int]string
	// IntraOnly disables the propagation of callee summaries at call
	// sites, reverting to the v1 single-body analysis (wrapper inference
	// for leak suppression stays: v1 exempted wrapper bodies through
	// configuration). Only tests set it, to pin exactly which violations
	// the interprocedural pass catches that a per-function pass cannot
	// (the cross-call blind spot).
	IntraOnly bool
}

// NewLockOrder returns the lockorder analyzer for one configured hierarchy.
//
// The check is path-sensitive over the structured statement forms Go
// encourages for critical sections — straight-line code, if/else, for/range,
// switch and select — and, unlike its first version, interprocedural: before
// reporting anything it builds a module-local call graph over the package's
// function declarations and computes a lock summary for every function by
// running the same simulation in a silent mode. A summary records three sets
// of configured lock classes:
//
//   - acquires: classes the function (or anything it calls, transitively)
//     may acquire at some point while running;
//   - heldAtExit: classes held, with no deferred unlock pending, at every
//     exit — the function is an acquire wrapper for them (e.g. lockStripes);
//   - releases: classes the function unlocks without ever acquiring them —
//     the function is a release wrapper; its callers must hold the class
//     (e.g. unlockStripes).
//
// Summaries are propagated to a fixed point (bounded rounds, so recursive
// call cycles converge and then stop), and the reporting pass applies the
// callee's summary at every call site. That is what catches the cross-call
// violations the per-function pass is blind to: f holding a stripe and
// calling g, where only g takes structMu, is flagged at the call to g.
//
// Within each function (and each function literal, which starts with no
// locks held) the simulation reports:
//
//   - acquiring a lock — directly or via a call — while holding one of the
//     same or a higher level (out-of-hierarchy order, the deadlock
//     precondition);
//   - a TryLock whose result is not branched on directly (`if mu.TryLock()`
//     or `if !mu.TryLock()` are the modeled forms): the simulation cannot
//     follow a stored boolean, so other uses are reported and conservatively
//     treated as a successful acquisition;
//   - a return (or falling off the end) while a configured lock is held with
//     no deferred unlock scheduled — unless the function holds the class at
//     every exit and a release twin exists in the package, in which case it
//     is an acquire wrapper and its callers carry the obligation;
//   - unlocking a lock that was acquired and already released on this path
//     (double unlock), or with the wrong flavor (RUnlock for a write lock
//     and vice versa). Unlocking a class the function never acquired is not
//     a local error: it makes the function a release wrapper, and calls to
//     it while the class is not held are reported at the call site;
//   - calling a release wrapper without holding what it releases;
//   - any defer inside a loop while a lock is held (defers run at function
//     exit, not loop exit, so the critical section silently widens).
//
// Unconfigured mutexes are ignored, and lock state is tracked per field
// (per class), not per instance: two instances of the same field must go
// through an inferred all-instance wrapper rather than be nested directly.
func NewLockOrder(cfg LockOrderConfig) Analyzer { return &lockOrder{cfg: cfg} }

type lockOrder struct {
	cfg LockOrderConfig
}

func (a *lockOrder) Name() string { return "lockorder" }
func (a *lockOrder) Doc() string {
	return "enforce the configured mutex hierarchy across function boundaries: call-graph lock summaries, ascending acquisition, unlock on every path"
}

func (a *lockOrder) levelName(level int) string {
	if name, ok := a.cfg.LevelName[level]; ok {
		return name
	}
	return "?"
}

// maxSummaryRounds bounds the summary fixpoint: each round propagates
// summaries one call-graph edge further, and recursive cycles stop growing
// once their acquire sets saturate (the sets are subsets of the configured
// classes, so convergence is fast; the bound is a backstop).
const maxSummaryRounds = 8

func (a *lockOrder) Run(pass *Pass) {
	if pass.PkgPath != a.cfg.PkgPath {
		return
	}
	ip := newInterproc(pass)
	ip.computeSummaries(a, pass)
	for _, fd := range ip.decls {
		sim := &lockSim{a: a, pass: pass, ip: ip, self: ip.objs[fd], cur: newFuncSummary(), report: true}
		sim.runFunc(fd.Body)
	}
}

// interproc is the per-package call-graph state: every declared function
// with a body, in file order, plus the lock summary fixpoint.
type interproc struct {
	decls       []*ast.FuncDecl
	objs        map[*ast.FuncDecl]*types.Func
	sums        map[*types.Func]*funcSummary
	releaseTwin map[string]bool // classes some function releases at entry
}

func newInterproc(pass *Pass) *interproc {
	ip := &interproc{
		objs:        map[*ast.FuncDecl]*types.Func{},
		sums:        map[*types.Func]*funcSummary{},
		releaseTwin: map[string]bool{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ip.decls = append(ip.decls, fd)
			ip.objs[fd] = obj
		}
	}
	return ip
}

// computeSummaries iterates the silent simulation over every declaration
// until the summaries stop changing. Within a round each function sees the
// freshest summaries computed so far (declaration order), so a chain of
// wrappers converges in one round and mutual recursion in a handful.
func (ip *interproc) computeSummaries(a *lockOrder, pass *Pass) {
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fd := range ip.decls {
			obj := ip.objs[fd]
			sim := &lockSim{a: a, pass: pass, ip: ip, self: obj, cur: newFuncSummary()}
			sum := sim.runFunc(fd.Body)
			if !sum.equal(ip.sums[obj]) {
				ip.sums[obj] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, sum := range ip.sums {
		for class := range sum.releases {
			ip.releaseTwin[class] = true
		}
	}
}

// funcSummary is one function's effect on the configured lock classes.
type funcSummary struct {
	acquires   map[string]lockOp // may be acquired while the function runs
	heldAtExit map[string]lockOp // held at every exit (acquire wrapper)
	releases   map[string]lockOp // released without acquiring (release wrapper)
}

func newFuncSummary() *funcSummary {
	return &funcSummary{
		acquires:   map[string]lockOp{},
		heldAtExit: map[string]lockOp{},
		releases:   map[string]lockOp{},
	}
}

func (s *funcSummary) empty() bool {
	return len(s.acquires) == 0 && len(s.heldAtExit) == 0 && len(s.releases) == 0
}

func (s *funcSummary) equal(o *funcSummary) bool {
	if o == nil {
		return false
	}
	return sameOps(s.acquires, o.acquires) && sameOps(s.heldAtExit, o.heldAtExit) && sameOps(s.releases, o.releases)
}

func sameOps(a, b map[string]lockOp) bool {
	if len(a) != len(b) {
		return false
	}
	for class, op := range a {
		if other, ok := b[class]; !ok || other.read != op.read {
			return false
		}
	}
	return true
}

func sortedClasses(m map[string]lockOp) []string {
	out := make([]string, 0, len(m))
	for class := range m {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// lockOpKind classifies one statement's effect on the lock state.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opAcquire
	opRelease
	// opTryAcquire is a non-blocking TryLock/TryRLock: held only on the
	// success branch of a direct `if` condition. It cannot block, but the
	// hierarchy is still enforced on the success path so no critical section
	// ever holds configured locks in descending order.
	opTryAcquire
)

// lockOp is one recognized operation on a configured lock class.
type lockOp struct {
	kind  lockOpKind
	class string // "Type.field"
	level int
	read  bool // RLock/RUnlock flavor
}

// classify recognizes sync Lock/RLock/Unlock/RUnlock/TryLock/TryRLock calls
// on configured fields. Wrapper calls are not special-cased here: they are
// handled through the callee's summary.
func (a *lockOrder) classify(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var kind lockOpKind
	var read bool
	switch fn.Name() {
	case "Lock":
		kind = opAcquire
	case "RLock":
		kind, read = opAcquire, true
	case "Unlock":
		kind = opRelease
	case "RUnlock":
		kind, read = opRelease, true
	case "TryLock":
		kind = opTryAcquire
	case "TryRLock":
		kind, read = opTryAcquire, true
	default:
		return lockOp{}, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	selection := pass.Info.Selections[inner]
	if selection == nil {
		return lockOp{}, false
	}
	owner := namedRecv(selection.Recv())
	if owner == "" {
		return lockOp{}, false
	}
	class := owner + "." + inner.Sel.Name
	level, configured := a.cfg.Fields[class]
	if !configured {
		return lockOp{}, false
	}
	return lockOp{kind: kind, class: class, level: level, read: read}, true
}

// heldLock is the simulated state of one acquired lock class.
type heldLock struct {
	level    int
	read     bool
	deferred bool // a deferred unlock is scheduled
	pos      token.Pos
}

// lockState is one path's simulation state: the held classes plus every
// class acquired earlier on the path (held or not), which distinguishes a
// double unlock from a release wrapper unlocking on the caller's behalf.
type lockState struct {
	held map[string]*heldLock
	acq  map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]*heldLock{}, acq: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	out := &lockState{held: make(map[string]*heldLock, len(s.held)), acq: make(map[string]bool, len(s.acq))}
	for k, v := range s.held {
		c := *v
		out.held[k] = &c
	}
	for k := range s.acq {
		out.acq[k] = true
	}
	return out
}

// sortedHeld lists the held classes in deterministic order for reporting.
func sortedHeld(st *lockState) []string {
	out := make([]string, 0, len(st.held))
	for class := range st.held {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// lockSim walks one function body (in silent summary mode or reporting mode).
type lockSim struct {
	a    *lockOrder
	pass *Pass
	ip   *interproc
	self *types.Func // the declaration being simulated; nil for literals

	cur    *funcSummary // summary under construction
	report bool
	exits  []*lockState
}

// runFunc simulates a function (or function literal) starting with no locks
// held and derives its summary from the collected exit states.
func (s *lockSim) runFunc(body *ast.BlockStmt) *funcSummary {
	st, terminated := s.walkStmts(body.List, newLockState(), false)
	if !terminated {
		s.exit(st, body.Rbrace, true)
	}
	if len(s.exits) > 0 {
		for class, h := range s.exits[0].held {
			if h.deferred {
				continue
			}
			everywhere := true
			for _, e := range s.exits[1:] {
				if hh, ok := e.held[class]; !ok || hh.deferred {
					everywhere = false
					break
				}
			}
			if everywhere {
				s.cur.heldAtExit[class] = lockOp{kind: opAcquire, class: class, level: h.level, read: h.read}
			}
		}
	}
	return s.cur
}

// exit records one exit state and, in reporting mode, flags locks leaking
// through it — unless the function is an inferred acquire wrapper for the
// class (held at every exit, with a release twin somewhere in the package).
func (s *lockSim) exit(st *lockState, pos token.Pos, atEnd bool) {
	s.exits = append(s.exits, st.clone())
	if !s.report {
		return
	}
	for _, class := range sortedHeld(st) {
		h := st.held[class]
		if h.deferred || s.wrapperHold(class) {
			continue
		}
		if atEnd {
			s.pass.Reportf(pos, "function ends while still holding %s (locked at %s; no unlock or deferred unlock on this path)",
				class, s.pass.Fset.Position(h.pos))
		} else {
			s.pass.Reportf(pos, "returns while holding %s (locked at %s; no unlock or deferred unlock on this path)",
				class, s.pass.Fset.Position(h.pos))
		}
	}
}

// wrapperHold reports whether the function being simulated legitimately
// hands class to its callers: it holds it at every exit and some function in
// the package is the matching release wrapper.
func (s *lockSim) wrapperHold(class string) bool {
	if s.self == nil {
		return false
	}
	sum := s.ip.sums[s.self]
	if sum == nil {
		return false
	}
	_, netHeld := sum.heldAtExit[class]
	return netHeld && s.ip.releaseTwin[class]
}

// walkStmts simulates a statement list. It returns the resulting state and
// whether every path through the list terminates (returns or panics).
func (s *lockSim) walkStmts(stmts []ast.Stmt, st *lockState, inLoop bool) (*lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = s.walkStmt(stmt, st, inLoop)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (s *lockSim) walkStmt(stmt ast.Stmt, st *lockState, inLoop bool) (*lockState, bool) {
	switch n := stmt.(type) {
	case *ast.ExprStmt:
		s.visitFuncLits(n.X)
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if isPanic(s.pass, call) {
				return st, true
			}
			st = s.applyCall(call, st)
		}
	case *ast.DeferStmt:
		s.visitFuncLits(n.Call)
		if inLoop && len(st.held) > 0 {
			s.reportf(n.Pos(), "defer inside a loop while holding %s: deferred calls run at function exit, widening the critical section every iteration",
				anyHeld(st))
		}
		st = s.applyDefer(n, st)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			s.visitFuncLits(res)
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				st = s.applyCall(call, st)
			}
		}
		s.exit(st, n.Pos(), false)
		return st, true
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.visitFuncLits(e)
			if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
				st = s.applyCall(call, st)
			}
		}
	case *ast.DeclStmt:
		s.visitFuncLits(n)
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
						st = s.applyCall(call, st)
					}
				}
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine starts with its own empty lock state; its
		// literal body is simulated independently by visitFuncLits, and a
		// named callee is simulated as its own declaration.
		s.visitFuncLits(n.Call)
	case *ast.BlockStmt:
		return s.walkStmts(n.List, st, inLoop)
	case *ast.LabeledStmt:
		return s.walkStmt(n.Stmt, st, inLoop)
	case *ast.IfStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Cond)
		// `if mu.TryLock()` holds the lock in the then-branch only;
		// `if !mu.TryLock()` holds it on the fall-through (the
		// bail-out-if-busy idiom). These are the only forms where the
		// simulation can follow the try's boolean.
		thenIn, elseIn := st, st
		if op, negated, ok := s.tryCond(n.Cond); ok {
			held := s.acquire(op, st, n.Cond.Pos())
			if negated {
				elseIn = held
			} else {
				thenIn = held
			}
		}
		thenSt, thenTerm := s.walkStmts(n.Body.List, thenIn.clone(), inLoop)
		elseSt, elseTerm := elseIn, false
		if n.Else != nil {
			elseSt, elseTerm = s.walkStmt(n.Else, elseIn.clone(), inLoop)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeStates(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Cond)
		bodySt, _ := s.walkStmts(n.Body.List, st.clone(), true)
		return mergeStates(st, bodySt), false
	case *ast.RangeStmt:
		s.visitFuncLits(n.X)
		bodySt, _ := s.walkStmts(n.Body.List, st.clone(), true)
		return mergeStates(st, bodySt), false
	case *ast.SwitchStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Tag)
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.SelectStmt:
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.SendStmt:
		s.visitFuncLits(n.Value)
	}
	return st, false
}

// walkClauses merges the case bodies of a switch/select: the result is the
// union of every non-terminating clause (plus the entry state when there is
// no default clause, since the switch may then match nothing).
func (s *lockSim) walkClauses(body *ast.BlockStmt, st *lockState, inLoop bool) (*lockState, bool) {
	merged := (*lockState)(nil)
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.visitFuncLits(e)
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		clauseSt, term := s.walkStmts(stmts, st.clone(), inLoop)
		if !term {
			allTerminate = false
			merged = mergeStates(merged, clauseSt)
		}
	}
	if !hasDefault {
		allTerminate = false
		merged = mergeStates(merged, st)
	}
	if allTerminate && len(body.List) > 0 {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

// tryCond recognizes an if condition of the form `mu.TryLock()` or
// `!mu.TryLock()` on a configured lock, reporting whether it is negated.
func (s *lockSim) tryCond(cond ast.Expr) (op lockOp, negated, ok bool) {
	expr := ast.Unparen(cond)
	if u, isNot := expr.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		negated = true
		expr = ast.Unparen(u.X)
	}
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return lockOp{}, false, false
	}
	op, ok = s.a.classify(s.pass, call)
	if !ok || op.kind != opTryAcquire {
		return lockOp{}, false, false
	}
	return op, negated, true
}

// reportf is Pass.Reportf gated on reporting mode (summary rounds are
// silent; the final pass re-simulates with report set).
func (s *lockSim) reportf(pos token.Pos, format string, args ...any) {
	if s.report {
		s.pass.Reportf(pos, format, args...)
	}
}

// acquire folds one successful acquisition into a fresh state, reporting
// hierarchy violations against what is already held.
func (s *lockSim) acquire(op lockOp, st *lockState, pos token.Pos) *lockState {
	s.cur.acquires[op.class] = op
	if _, held := st.held[op.class]; held {
		s.reportf(pos, "%s acquired while already held: nested same-class acquisition deadlocks (for multiple instances use an all-instance wrapper; see %s)",
			op.class, s.a.cfg.DocRef)
		return st
	}
	for _, class := range sortedHeld(st) {
		h := st.held[class]
		if h.level >= op.level {
			s.reportf(pos, "%s (level %d, %s) acquired while holding %s (level %d, %s): lock order is ascending levels only (see %s)",
				op.class, op.level, s.a.levelName(op.level), class, h.level, s.a.levelName(h.level), s.a.cfg.DocRef)
		}
	}
	st = st.clone()
	st.held[op.class] = &heldLock{level: op.level, read: op.read, pos: pos}
	st.acq[op.class] = true
	return st
}

// release folds one direct unlock into the state. Releasing a class the
// function never acquired on this path is not an error: it makes the
// function a release wrapper (callers must hold the class, checked at their
// call sites).
func (s *lockSim) release(op lockOp, st *lockState, pos token.Pos) *lockState {
	h, held := st.held[op.class]
	if !held {
		if st.acq[op.class] {
			s.reportf(pos, "unlock of %s which is not held on this path", op.class)
		} else {
			s.cur.releases[op.class] = op
		}
		return st
	}
	if h.read != op.read {
		want, got := "Unlock", "RUnlock"
		if h.read {
			want, got = "RUnlock", "Unlock"
		}
		s.reportf(pos, "%s released with %s but was acquired as a %s lock (use %s)",
			op.class, got, flavor(h.read), want)
	}
	st = st.clone()
	delete(st.held, op.class)
	return st
}

// applyCall folds one call's lock effect into the state: a direct sync
// operation on a configured field, or — interprocedurally — the callee's
// summary.
func (s *lockSim) applyCall(call *ast.CallExpr, st *lockState) *lockState {
	if op, ok := s.a.classify(s.pass, call); ok {
		switch op.kind {
		case opAcquire:
			return s.acquire(op, st, call.Pos())
		case opTryAcquire:
			// Reaching here means the try's result is not branched on
			// directly; the simulation cannot follow it. Treat the lock as
			// acquired so the later unlock does not cascade into false
			// reports.
			s.reportf(call.Pos(), "result of TryLock on %s is not branched on directly: lockorder models only `if mu.TryLock()` / `if !mu.TryLock()` (see %s)",
				op.class, s.a.cfg.DocRef)
			return s.acquire(op, st, call.Pos())
		case opRelease:
			return s.release(op, st, call.Pos())
		}
		return st
	}
	fn, sum := s.calleeSummary(call)
	if sum == nil {
		return st
	}
	return s.applySummary(call.Pos(), fn.Name(), sum, st)
}

// calleeSummary resolves a call to a same-package declaration with a
// non-empty lock summary.
func (s *lockSim) calleeSummary(call *ast.CallExpr) (*types.Func, *funcSummary) {
	if s.a.cfg.IntraOnly {
		return nil, nil
	}
	fn := calleeFunc(s.pass.Info, call)
	if fn == nil {
		return nil, nil
	}
	sum := s.ip.sums[fn]
	if sum == nil || sum.empty() {
		return nil, nil
	}
	return fn, sum
}

// applySummary applies a callee's lock summary at a call site: entry
// releases first (the caller must hold them), then a hierarchy check for
// everything the callee may acquire, then the callee's net acquisitions.
func (s *lockSim) applySummary(pos token.Pos, name string, sum *funcSummary, st *lockState) *lockState {
	for _, class := range sortedClasses(sum.releases) {
		op := sum.releases[class]
		if h, held := st.held[class]; held {
			if h.read != op.read {
				want, got := "Unlock", "RUnlock"
				if h.read {
					want, got = "RUnlock", "Unlock"
				}
				s.reportf(pos, "call to %s releases %s with %s but it was acquired as a %s lock (use %s)",
					name, class, got, flavor(h.read), want)
			}
			st = st.clone()
			delete(st.held, class)
		} else {
			s.reportf(pos, "call to %s releases %s which is not held on this path", name, class)
		}
	}
	for _, class := range sortedClasses(sum.acquires) {
		op := sum.acquires[class]
		s.cur.acquires[class] = op
		if _, held := st.held[class]; held {
			s.reportf(pos, "call to %s acquires %s which is already held: nested same-class acquisition deadlocks (see %s)",
				name, class, s.a.cfg.DocRef)
			continue
		}
		for _, hclass := range sortedHeld(st) {
			h := st.held[hclass]
			if h.level >= op.level {
				s.reportf(pos, "call to %s acquires %s (level %d, %s) while holding %s (level %d, %s): lock order is ascending levels only (see %s)",
					name, class, op.level, s.a.levelName(op.level), hclass, h.level, s.a.levelName(h.level), s.a.cfg.DocRef)
			}
		}
	}
	for _, class := range sortedClasses(sum.heldAtExit) {
		op := sum.heldAtExit[class]
		if _, held := st.held[class]; !held {
			st = st.clone()
			st.held[class] = &heldLock{level: op.level, read: op.read, pos: pos}
			st.acq[class] = true
		}
	}
	return st
}

// applyDefer handles a defer of a direct unlock, a direct (illegal)
// acquisition, or a call whose summary releases or acquires classes.
func (s *lockSim) applyDefer(n *ast.DeferStmt, st *lockState) *lockState {
	if op, ok := s.a.classify(s.pass, n.Call); ok {
		switch op.kind {
		case opRelease:
			if h, held := st.held[op.class]; held {
				h.deferred = true
			} else {
				s.reportf(n.Pos(), "defer unlocks %s which is not held at this point", op.class)
			}
		case opAcquire, opTryAcquire:
			s.reportf(n.Pos(), "defer acquires %s: acquisition cannot be deferred", op.class)
		}
		return st
	}
	fn, sum := s.calleeSummary(n.Call)
	if sum == nil {
		return st
	}
	for _, class := range sortedClasses(sum.releases) {
		if h, held := st.held[class]; held {
			h.deferred = true
		} else {
			s.reportf(n.Pos(), "defer calls %s which releases %s not held at this point", fn.Name(), class)
		}
	}
	if len(sum.heldAtExit) > 0 {
		s.reportf(n.Pos(), "defer calls %s which acquires %s: acquisition cannot be deferred",
			fn.Name(), sortedClasses(sum.heldAtExit)[0])
	}
	return st
}

// visitFuncLits simulates every function literal in an expression tree as an
// independent function (a literal's body starts with no locks held, even
// when the enclosing function holds some — the literal may run later, on
// another goroutine, or not at all). Literal summaries are discarded: only
// declared functions participate in the call graph.
func (s *lockSim) visitFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			inner := &lockSim{a: s.a, pass: s.pass, ip: s.ip, cur: newFuncSummary(), report: s.report}
			inner.runFunc(lit.Body)
			return false // the inner sim handles nested literals
		}
		return true
	})
}

// mergeStates unions two branch outcomes. A lock held on either side stays
// tracked (conservative for leak detection); deferred unlocks only survive
// when scheduled on every merged path.
func mergeStates(a, b *lockState) *lockState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for class, h := range b.held {
		if existing, ok := out.held[class]; ok {
			existing.deferred = existing.deferred && h.deferred
			continue
		}
		c := *h
		out.held[class] = &c
	}
	for class := range b.acq {
		out.acq[class] = true
	}
	return out
}

func anyHeld(st *lockState) string {
	if names := sortedHeld(st); len(names) > 0 {
		return names[0]
	}
	return "?"
}

func flavor(read bool) string {
	if read {
		return "read"
	}
	return "write"
}

// isPanic recognizes a call to the panic builtin (a terminating statement).
func isPanic(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
