package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrderConfig models a documented lock hierarchy for one package. Locks
// are identified by the struct field that holds them ("Type.field"); levels
// must be acquired in ascending order, skipping levels is allowed, and no
// lock may be acquired while a lock of the same or a higher level is held.
//
// Wrapper methods that acquire or release a whole level (e.g. an
// all-stripes barrier) are declared in Acquire/Release; their bodies are the
// level's primitive implementation and are exempt from simulation.
type LockOrderConfig struct {
	// PkgPath is the package the hierarchy applies to.
	PkgPath string
	// DocRef names where the hierarchy is documented, cited in diagnostics.
	DocRef string
	// Fields maps "Type.field" of each sync.Mutex/RWMutex to its level.
	Fields map[string]int
	// LevelName names each level for diagnostics.
	LevelName map[int]string
	// Acquire/Release map wrapper methods ("Type.method") to the level they
	// take or drop as a write lock.
	Acquire map[string]int
	// Release pairs with Acquire.
	Release map[string]int
}

// NewLockOrder returns the lockorder analyzer for one configured hierarchy.
//
// The check is intra-procedural and path-sensitive over the structured
// statement forms Go encourages for critical sections: straight-line code,
// if/else, for/range, switch and select. Within each function (and each
// function literal, which starts with no locks held) it simulates the set of
// held configured locks and reports:
//
//   - acquiring a lock while holding one of the same or a higher level
//     (out-of-hierarchy order, the deadlock precondition);
//   - a TryLock whose result is not branched on directly (`if mu.TryLock()`
//     or `if !mu.TryLock()` are the modeled forms): the simulation cannot
//     follow a stored boolean, so other uses are reported and conservatively
//     treated as a successful acquisition;
//   - a return reached while a configured lock is held with no deferred
//     unlock scheduled (a leak on that path);
//   - falling off the end of the function in the same state;
//   - unlocking a lock that is not held, or with the wrong flavor
//     (RUnlock for a write lock and vice versa);
//   - any defer inside a loop while a lock is held (defers run at function
//     exit, not loop exit, so the critical section silently widens).
//
// Unconfigured mutexes are ignored, and lock state is tracked per field
// (per class), not per instance: two instances of the same field must go
// through a configured wrapper (e.g. lockStripes) rather than be nested
// directly.
func NewLockOrder(cfg LockOrderConfig) Analyzer { return &lockOrder{cfg: cfg} }

type lockOrder struct {
	cfg LockOrderConfig
}

func (a *lockOrder) Name() string { return "lockorder" }
func (a *lockOrder) Doc() string {
	return "enforce the configured mutex hierarchy: ascending acquisition, unlock on every path, no defer-in-loop under a lock"
}

func (a *lockOrder) levelName(level int) string {
	if name, ok := a.cfg.LevelName[level]; ok {
		return name
	}
	return "?"
}

func (a *lockOrder) Run(pass *Pass) {
	if pass.PkgPath != a.cfg.PkgPath {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if key, ok := a.funcKey(pass, fn); ok {
				if _, w := a.cfg.Acquire[key]; w {
					continue // wrapper bodies implement the level primitive
				}
				if _, w := a.cfg.Release[key]; w {
					continue
				}
			}
			sim := &lockSim{a: a, pass: pass}
			sim.runBody(fn.Body)
		}
	}
}

// funcKey renders a declared method as "Type.method".
func (a *lockOrder) funcKey(pass *Pass, fn *ast.FuncDecl) (string, bool) {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return obj.Name(), true
	}
	recv := namedRecv(sig.Recv().Type())
	if recv == "" {
		return "", false
	}
	return recv + "." + obj.Name(), true
}

// lockOpKind classifies one statement's effect on the lock state.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opAcquire
	opRelease
	// opTryAcquire is a non-blocking TryLock/TryRLock: held only on the
	// success branch of a direct `if` condition. It cannot block, but the
	// hierarchy is still enforced on the success path so no critical section
	// ever holds configured locks in descending order.
	opTryAcquire
)

// lockOp is one recognized operation on a configured lock class.
type lockOp struct {
	kind  lockOpKind
	class string // "Type.field" or wrapper target
	level int
	read  bool // RLock/RUnlock flavor
}

// classify recognizes sync Lock/RLock/Unlock/RUnlock calls on configured
// fields and configured wrapper methods.
func (a *lockOrder) classify(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return lockOp{}, false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		var kind lockOpKind
		var read bool
		switch fn.Name() {
		case "Lock":
			kind = opAcquire
		case "RLock":
			kind, read = opAcquire, true
		case "Unlock":
			kind = opRelease
		case "RUnlock":
			kind, read = opRelease, true
		case "TryLock":
			kind = opTryAcquire
		case "TryRLock":
			kind, read = opTryAcquire, true
		default:
			return lockOp{}, false
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return lockOp{}, false
		}
		selection := pass.Info.Selections[inner]
		if selection == nil {
			return lockOp{}, false
		}
		owner := namedRecv(selection.Recv())
		if owner == "" {
			return lockOp{}, false
		}
		class := owner + "." + inner.Sel.Name
		level, configured := a.cfg.Fields[class]
		if !configured {
			return lockOp{}, false
		}
		return lockOp{kind: kind, class: class, level: level, read: read}, true
	}
	// Wrapper methods live in the configured package.
	if fn.Pkg() == nil || fn.Pkg().Path() != a.cfg.PkgPath {
		return lockOp{}, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return lockOp{}, false
	}
	recv := namedRecv(sig.Recv().Type())
	if recv == "" {
		return lockOp{}, false
	}
	key := recv + "." + fn.Name()
	if level, ok := a.cfg.Acquire[key]; ok {
		return lockOp{kind: opAcquire, class: key, level: level}, true
	}
	if level, ok := a.cfg.Release[key]; ok {
		// A release wrapper drops whatever its acquire twin took; pair them
		// through the level so lockStripes/unlockStripes match.
		return lockOp{kind: opRelease, class: acquireClassFor(a.cfg, level), level: level}, true
	}
	return lockOp{}, false
}

// acquireClassFor finds the acquire-wrapper class registered at level, so a
// release wrapper at the same level closes it.
func acquireClassFor(cfg LockOrderConfig, level int) string {
	for key, l := range cfg.Acquire {
		if l == level {
			return key
		}
	}
	return ""
}

// heldLock is the simulated state of one acquired lock class.
type heldLock struct {
	level    int
	read     bool
	deferred bool // a deferred unlock is scheduled
	pos      token.Pos
}

// lockState maps held class -> state. States are cloned at branches.
type lockState map[string]*heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// lockSim walks one function body.
type lockSim struct {
	a    *lockOrder
	pass *Pass
}

// runBody simulates a function (or function literal) starting with no locks
// held and reports a leak if the body can fall off the end still holding one.
func (s *lockSim) runBody(body *ast.BlockStmt) {
	st, terminated := s.walkStmts(body.List, lockState{}, false)
	if terminated {
		return
	}
	for class, h := range st {
		if !h.deferred {
			s.pass.Reportf(body.Rbrace, "function ends while still holding %s (locked at %s; no unlock or deferred unlock on this path)",
				class, s.pass.Fset.Position(h.pos))
		}
	}
}

// walkStmts simulates a statement list. It returns the resulting state and
// whether every path through the list terminates (returns or panics).
func (s *lockSim) walkStmts(stmts []ast.Stmt, st lockState, inLoop bool) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = s.walkStmt(stmt, st, inLoop)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (s *lockSim) walkStmt(stmt ast.Stmt, st lockState, inLoop bool) (lockState, bool) {
	switch n := stmt.(type) {
	case *ast.ExprStmt:
		s.visitFuncLits(n.X)
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if isPanic(s.pass, call) {
				return st, true
			}
			st = s.applyCall(call, st)
		}
	case *ast.DeferStmt:
		s.visitFuncLits(n.Call)
		if inLoop && len(st) > 0 {
			s.pass.Reportf(n.Pos(), "defer inside a loop while holding %s: deferred calls run at function exit, widening the critical section every iteration",
				anyHeld(st))
		}
		if op, ok := s.a.classify(s.pass, n.Call); ok {
			switch op.kind {
			case opRelease:
				if h, held := st[op.class]; held {
					h.deferred = true
				} else {
					s.pass.Reportf(n.Pos(), "defer unlocks %s which is not held at this point", op.class)
				}
			case opAcquire, opTryAcquire:
				s.pass.Reportf(n.Pos(), "defer acquires %s: acquisition cannot be deferred", op.class)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			s.visitFuncLits(res)
		}
		for class, h := range st {
			if !h.deferred {
				s.pass.Reportf(n.Pos(), "returns while holding %s (locked at %s; no unlock or deferred unlock on this path)",
					class, s.pass.Fset.Position(h.pos))
			}
		}
		return st, true
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.visitFuncLits(e)
			if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
				st = s.applyCall(call, st)
			}
		}
	case *ast.DeclStmt:
		s.visitFuncLits(n)
	case *ast.GoStmt:
		// A spawned goroutine starts with its own empty lock state; its
		// literal body is simulated independently by visitFuncLits.
		s.visitFuncLits(n.Call)
	case *ast.BlockStmt:
		return s.walkStmts(n.List, st, inLoop)
	case *ast.LabeledStmt:
		return s.walkStmt(n.Stmt, st, inLoop)
	case *ast.IfStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Cond)
		// `if mu.TryLock()` holds the lock in the then-branch only;
		// `if !mu.TryLock()` holds it on the fall-through (the
		// bail-out-if-busy idiom). These are the only forms where the
		// simulation can follow the try's boolean.
		thenIn, elseIn := st, st
		if op, negated, ok := s.tryCond(n.Cond); ok {
			held := s.acquire(op, st, n.Cond.Pos())
			if negated {
				elseIn = held
			} else {
				thenIn = held
			}
		}
		thenSt, thenTerm := s.walkStmts(n.Body.List, thenIn.clone(), inLoop)
		elseSt, elseTerm := elseIn, false
		if n.Else != nil {
			elseSt, elseTerm = s.walkStmt(n.Else, elseIn.clone(), inLoop)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeStates(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Cond)
		bodySt, _ := s.walkStmts(n.Body.List, st.clone(), true)
		return mergeStates(st, bodySt), false
	case *ast.RangeStmt:
		s.visitFuncLits(n.X)
		bodySt, _ := s.walkStmts(n.Body.List, st.clone(), true)
		return mergeStates(st, bodySt), false
	case *ast.SwitchStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		s.visitFuncLits(n.Tag)
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st, _ = s.walkStmt(n.Init, st, inLoop)
		}
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.SelectStmt:
		return s.walkClauses(n.Body, st, inLoop)
	case *ast.SendStmt:
		s.visitFuncLits(n.Value)
	}
	return st, false
}

// walkClauses merges the case bodies of a switch/select: the result is the
// union of every non-terminating clause (plus the entry state when there is
// no default clause, since the switch may then match nothing).
func (s *lockSim) walkClauses(body *ast.BlockStmt, st lockState, inLoop bool) (lockState, bool) {
	merged := lockState(nil)
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.visitFuncLits(e)
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		clauseSt, term := s.walkStmts(stmts, st.clone(), inLoop)
		if !term {
			allTerminate = false
			merged = mergeStates(merged, clauseSt)
		}
	}
	if !hasDefault {
		allTerminate = false
		merged = mergeStates(merged, st)
	}
	if allTerminate && len(body.List) > 0 {
		return st, true
	}
	if merged == nil {
		merged = st
	}
	return merged, false
}

// tryCond recognizes an if condition of the form `mu.TryLock()` or
// `!mu.TryLock()` on a configured lock, reporting whether it is negated.
func (s *lockSim) tryCond(cond ast.Expr) (op lockOp, negated, ok bool) {
	expr := ast.Unparen(cond)
	if u, isNot := expr.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		negated = true
		expr = ast.Unparen(u.X)
	}
	call, isCall := expr.(*ast.CallExpr)
	if !isCall {
		return lockOp{}, false, false
	}
	op, ok = s.a.classify(s.pass, call)
	if !ok || op.kind != opTryAcquire {
		return lockOp{}, false, false
	}
	return op, negated, true
}

// acquire folds one successful acquisition into a fresh state, reporting
// hierarchy violations against what is already held.
func (s *lockSim) acquire(op lockOp, st lockState, pos token.Pos) lockState {
	if _, held := st[op.class]; held {
		s.pass.Reportf(pos, "%s acquired while already held: nested same-class acquisition deadlocks (for multiple instances use the configured wrapper; see %s)",
			op.class, s.a.cfg.DocRef)
		return st
	}
	for class, h := range st {
		if h.level >= op.level {
			s.pass.Reportf(pos, "%s (level %d, %s) acquired while holding %s (level %d, %s): lock order is ascending levels only (see %s)",
				op.class, op.level, s.a.levelName(op.level), class, h.level, s.a.levelName(h.level), s.a.cfg.DocRef)
		}
	}
	st = st.clone()
	st[op.class] = &heldLock{level: op.level, read: op.read, pos: pos}
	return st
}

// applyCall folds one call's lock effect into the state.
func (s *lockSim) applyCall(call *ast.CallExpr, st lockState) lockState {
	op, ok := s.a.classify(s.pass, call)
	if !ok {
		return st
	}
	switch op.kind {
	case opAcquire:
		return s.acquire(op, st, call.Pos())
	case opTryAcquire:
		// Reaching here means the try's result is not branched on directly;
		// the simulation cannot follow it. Treat the lock as acquired so the
		// later unlock does not cascade into false reports.
		s.pass.Reportf(call.Pos(), "result of TryLock on %s is not branched on directly: lockorder models only `if mu.TryLock()` / `if !mu.TryLock()` (see %s)",
			op.class, s.a.cfg.DocRef)
		return s.acquire(op, st, call.Pos())
	case opRelease:
		h, held := st[op.class]
		if !held {
			s.pass.Reportf(call.Pos(), "unlock of %s which is not held on this path", op.class)
			return st
		}
		if h.read != op.read {
			want, got := "Unlock", "RUnlock"
			if h.read {
				want, got = "RUnlock", "Unlock"
			}
			s.pass.Reportf(call.Pos(), "%s released with %s but was acquired as a %s lock (use %s)",
				op.class, got, flavor(h.read), want)
		}
		st = st.clone()
		delete(st, op.class)
	}
	return st
}

// visitFuncLits simulates every function literal in an expression tree as an
// independent function (a literal's body starts with no locks held, even
// when the enclosing function holds some — the literal may run later, on
// another goroutine, or not at all).
func (s *lockSim) visitFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			s.runBody(lit.Body)
			return false // runBody handles nested literals
		}
		return true
	})
}

// mergeStates unions two branch outcomes. A lock held on either side stays
// tracked (conservative for leak detection); deferred unlocks only survive
// when scheduled on every merged path.
func mergeStates(a, b lockState) lockState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for class, h := range b {
		if existing, ok := out[class]; ok {
			existing.deferred = existing.deferred && h.deferred
			continue
		}
		c := *h
		out[class] = &c
	}
	return out
}

func anyHeld(st lockState) string {
	for class := range st {
		return class
	}
	return "?"
}

func flavor(read bool) string {
	if read {
		return "read"
	}
	return "write"
}

// isPanic recognizes a call to the panic builtin (a terminating statement).
func isPanic(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
