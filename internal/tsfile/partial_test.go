package tsfile

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/chunkcache"
	"bos/internal/codec"
)

// encodeLegacyIndex replicates the pre-v2 footer byte for byte: series count
// first, no version tag, no per-chunk flags or sum.
func encodeLegacyIndex(order []string, index map[string][]ChunkMeta) []byte {
	out := codec.AppendUvarint(nil, uint64(len(order)))
	for _, name := range order {
		out = codec.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		chunks := index[name]
		out = codec.AppendUvarint(out, uint64(len(chunks)))
		for _, c := range chunks {
			out = codec.AppendUvarint(out, uint64(c.Offset))
			out = codec.AppendUvarint(out, uint64(c.Count))
			out = codec.AppendUvarint(out, uint64(c.EncodedBytes))
			out = appendZig(out, c.MinT)
			out = appendZig(out, c.MaxT)
			out = appendZig(out, c.MinV)
			out = appendZig(out, c.MaxV)
			out = append(out, c.Kind, byte(c.Precision))
			out = codec.AppendUvarint(out, uint64(len(c.Packer)))
			out = append(out, c.Packer...)
		}
	}
	return out
}

// rewriteAsLegacy swaps a v2 file's footer for the legacy encoding of the
// same chunk directory.
func rewriteAsLegacy(t *testing.T, file *bytes.Reader, opt Options) *bytes.Reader {
	t.Helper()
	data := make([]byte, file.Size())
	if _, err := file.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	idxLen := int64(binary.LittleEndian.Uint32(data[len(data)-8:]))
	body := data[:int64(len(data))-8-idxLen]

	r, err := OpenReader(file, file.Size(), opt)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string][]ChunkMeta{}
	for _, s := range r.Series() {
		chunks, err := r.Chunks(s)
		if err != nil {
			t.Fatal(err)
		}
		index[s] = chunks
	}
	idx := encodeLegacyIndex(r.Series(), index)
	out := append(append([]byte(nil), body...), idx...)
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(idx)))
	copy(tail[4:], magic)
	out = append(out, tail[:]...)
	return bytes.NewReader(out)
}

// TestLegacyFooterCompat: a file with the old footer still opens, reads and
// aggregates identically; its chunks just carry no stats.
func TestLegacyFooterCompat(t *testing.T) {
	opt := Options{}
	v2File, want := buildFile(t, opt)
	legacy := rewriteAsLegacy(t, v2File, opt)

	lr, err := OpenReader(legacy, legacy.Size(), opt)
	if err != nil {
		t.Fatalf("open legacy: %v", err)
	}
	v2r, err := OpenReader(v2File, v2File.Size(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for series, pts := range want {
		chunks, err := lr.Chunks(series)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range chunks {
			if m.HasStats || m.Sum != 0 {
				t.Fatalf("legacy chunk claims stats: %+v", m)
			}
		}
		got, err := lr.ReadAll(series)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("legacy read %d points, want %d", len(got), len(pts))
		}
		for i := range got {
			if got[i] != pts[i] {
				t.Fatalf("legacy point %d: got %+v want %+v", i, got[i], pts[i])
			}
		}
		// Aggregates agree between legacy (decode fallback) and v2 (footer
		// sums), on full range and on a sub-range.
		minT, maxT := pts[0].T, pts[len(pts)-1].T
		for _, rg := range [][2]int64{{minT, maxT}, {minT + (maxT-minT)/4, maxT - (maxT-minT)/4}} {
			la, err := lr.Aggregate(series, rg[0], rg[1], true)
			if err != nil {
				t.Fatal(err)
			}
			va, err := v2r.Aggregate(series, rg[0], rg[1], true)
			if err != nil {
				t.Fatal(err)
			}
			if la != va {
				t.Fatalf("aggregate mismatch legacy %+v vs v2 %+v", la, va)
			}
		}
	}
}

// TestFooterSumMatchesDecode: every v2 chunk's footer sum equals the wrapping
// sum of its decoded values.
func TestFooterSumMatchesDecode(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range r.Series() {
		chunks, err := r.Chunks(series)
		if err != nil {
			t.Fatal(err)
		}
		for ci, m := range chunks {
			if !m.HasStats {
				t.Fatalf("%s chunk %d missing stats", series, ci)
			}
			_, vals, err := r.ChunkColumns(series, ci)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if sum != m.Sum {
				t.Fatalf("%s chunk %d footer sum %d, decoded %d", series, ci, m.Sum, sum)
			}
		}
	}
}

func TestFloatFooterSum(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	scaled := []FloatPoint{{1, 1.5}, {2, -0.25}, {3, 10}}
	raw := []FloatPoint{{1, math.Pi}, {2, math.E}}
	if err := w.AppendFloats("s.scaled", scaled); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFloats("s.raw", raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := r.Chunks("s.scaled")
	if err != nil {
		t.Fatal(err)
	}
	// 1.5, -0.25, 10 at precision 2 scale to 150, -25, 1000.
	if !sc[0].HasStats || sc[0].Sum != 1125 {
		t.Fatalf("scaled chunk stats: %+v", sc[0])
	}
	rc, err := r.Chunks("s.raw")
	if err != nil {
		t.Fatal(err)
	}
	if rc[0].HasStats {
		t.Fatalf("raw chunk claims stats: %+v", rc[0])
	}
}

func TestChunkHandlePartialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, opt := range []Options{
		{},                         // BOS-B default: the partial path
		{Packer: bitpack.Packer{}}, // non-core packer: full-decode fallback
	} {
		file, _ := buildFile(t, opt)
		r, err := OpenReader(file, file.Size(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, series := range r.Series() {
			chunks, err := r.Chunks(series)
			if err != nil {
				t.Fatal(err)
			}
			for ci := range chunks {
				wantT, wantV, err := r.ChunkColumns(series, ci)
				if err != nil {
					t.Fatal(err)
				}
				h, err := r.OpenChunk(series, ci)
				if err != nil {
					t.Fatal(err)
				}
				if len(h.Times()) != len(wantT) {
					t.Fatalf("handle times %d, want %d", len(h.Times()), len(wantT))
				}
				n := len(wantV)
				for _, rg := range [][2]int{{0, n}, {0, 0}, {n / 3, 2 * n / 3}, {rng.Intn(n + 1), n}, {-5, n + 5}} {
					got, _, err := h.ValueRange(rg[0], rg[1])
					if err != nil {
						t.Fatalf("range %v: %v", rg, err)
					}
					lo, hi := rg[0], rg[1]
					if lo < 0 {
						lo = 0
					}
					if hi > n {
						hi = n
					}
					if lo > hi {
						lo = hi
					}
					if len(got) != hi-lo {
						t.Fatalf("range %v: %d values, want %d", rg, len(got), hi-lo)
					}
					for i := range got {
						if got[i] != wantV[lo+i] {
							t.Fatalf("range %v value %d: got %d want %d", rg, i, got[i], wantV[lo+i])
						}
					}
				}
				// Filter equivalence on a fresh handle (ValueRange(0,n)
				// memoizes the full column, which would bypass the
				// band-skipping path).
				h2, err := r.OpenChunk(series, ci)
				if err != nil {
					t.Fatal(err)
				}
				minV := wantV[rng.Intn(n)]
				maxV := minV + 50
				var got []Point
				if _, err := h2.FilterValues(minV, maxV, func(i int, v int64) {
					got = append(got, Point{int64(i), v})
				}); err != nil {
					t.Fatal(err)
				}
				var ref []Point
				for i, v := range wantV {
					if v >= minV && v <= maxV {
						ref = append(ref, Point{int64(i), v})
					}
				}
				if len(got) != len(ref) {
					t.Fatalf("filter [%d,%d]: %d hits, want %d", minV, maxV, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("filter hit %d: got %+v want %+v", i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestChunkHandleCacheHit: a warmed cache short-circuits OpenChunk into the
// decoded columns, and partial reads still agree.
func TestChunkHandleCacheHit(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetCache(chunkcache.New(1<<20), 1)
	series := r.Series()[0]
	wantT, wantV, err := r.ChunkColumns(series, 0) // warms the cache
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.OpenChunk(series, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, partial, err := h.ValueRange(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if partial {
		t.Fatal("cache hit reported a partial decode")
	}
	for i, v := range got {
		if v != wantV[3+i] {
			t.Fatalf("cached value %d: got %d want %d", i, v, wantV[3+i])
		}
	}
	if len(h.Times()) != len(wantT) {
		t.Fatal("cached times length mismatch")
	}
}
