// Package tsfile implements a miniature IoT-native time-series file format
// in the spirit of Apache TsFile (Zhao et al., VLDB 2024), the system the
// paper deploys BOS into (Section VII). A file holds many series; each
// Append call becomes one chunk with a timestamp column (delta + packer) and
// a value column (packer), plus per-chunk statistics. A footer index maps
// series to chunks so queries prune by time range and value range before
// decompressing anything.
//
// Layout:
//
//	"TSF2"
//	chunk*           each: varint body length, then body (see chunk.go)
//	index            per-series chunk directory with statistics
//	varint indexLen (fixed-width u32) | "TSF2"
//
// Each chunk records the name of the packer that encoded it in the footer
// (empty = the file's default packer), so one file can mix packing layouts:
// background compaction repacks each series into its cheapest candidate
// without forcing a single operator on the whole file.
//
// The format is self-contained; it exists so the repository can exercise BOS
// in the role the paper ships it in — the storage operator of a columnar
// time-series file — including the Figure 11 storage/query trade-off on real
// file IO.
package tsfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/packers"
	"bos/internal/ts2diff"
)

var (
	magic = []byte("TSF2")

	// ErrCorrupt reports an unreadable file.
	ErrCorrupt = errors.New("tsfile: corrupt file")
	// ErrNoSeries reports a query for an unknown series.
	ErrNoSeries = errors.New("tsfile: no such series")
	// ErrUnsorted reports timestamps out of order within an Append.
	ErrUnsorted = errors.New("tsfile: timestamps must be strictly increasing")
)

// Point is one (timestamp, value) sample.
type Point struct {
	T, V int64
}

// ChunkMeta describes one chunk in the footer index.
type ChunkMeta struct {
	Offset       int64 // file offset of the chunk length prefix
	Count        int
	MinT, MaxT   int64
	MinV, MaxV   int64 // scaled integers for float chunks; full-range for raw
	EncodedBytes int
	Kind         byte   // kindInt, kindScaled or kindRaw
	Precision    int    // decimal precision for kindScaled chunks
	Packer       string // packer name override; "" = the file's default packer

	// Sum is the wrapping int64 sum of the chunk's values (scaled integers
	// for kindScaled chunks), valid only when HasStats is set. HasStats is
	// false for raw float chunks, whose bit patterns have no orderable sum,
	// and for every chunk of a file written before the v2 footer — readers
	// of such chunks fall back to full decode.
	Sum      int64
	HasStats bool
}

// Options configures a Writer.
type Options struct {
	// Packer packs both columns; nil means BOS-B, the operator the paper
	// ships in TsFile.
	Packer codec.Packer
	// BlockSize is the packing block size inside a chunk (default 1024).
	BlockSize int
}

func (o Options) packer() codec.Packer {
	if o.Packer == nil {
		return core.NewPacker(core.SeparationBitWidth)
	}
	return o.Packer
}

// Writer builds a file sequentially on any io.Writer.
type Writer struct {
	w      io.Writer
	opt    Options
	off    int64
	index  map[string][]ChunkMeta
	order  []string
	closed bool
	err    error
}

// NewWriter returns a Writer that emits the file onto w.
func NewWriter(w io.Writer, opt Options) *Writer {
	tw := &Writer{w: w, opt: opt, index: map[string][]ChunkMeta{}}
	tw.err = tw.write(magic)
	return tw
}

func (w *Writer) write(b []byte) error {
	if w.err != nil {
		return w.err
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	w.err = err
	return err
}

// Append adds one chunk of samples to a series using the file's default
// packer. Timestamps must be strictly increasing within the chunk; chunks of
// one series should be appended in time order for queries to return sorted
// results.
func (w *Writer) Append(series string, points []Point) error {
	return w.AppendPacked(series, points, "")
}

// AppendPacked is Append with a per-chunk packer override: the chunk is
// encoded with the named packer (resolved through the shared registry) and
// the name is recorded in the footer, so readers decode it with the right
// operator regardless of the file's default. An empty name means the default
// packer. This is what lets one file mix packing layouts — background
// compaction repacks each series into its cheapest candidate.
func (w *Writer) AppendPacked(series string, points []Point, packerName string) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("tsfile: writer closed")
	}
	c, err := EncodeSeries(w.opt, points, packerName)
	if err != nil {
		return err
	}
	return w.AppendEncoded(series, c)
}

// EncodedChunk is one chunk encoded off-writer: the body bytes plus the
// footer metadata, with Meta.Offset left unset until AppendEncoded assigns
// the chunk its position in the file. Encoding is the expensive part of a
// flush or compaction merge; splitting it from the sequential write lets
// callers fan series out across workers and still produce byte-identical
// files by appending the results in deterministic order.
type EncodedChunk struct {
	Meta ChunkMeta
	Body []byte
}

// EncodeSeries encodes one integer chunk without a Writer. It performs the
// same validation, statistics and packing as AppendPacked and returns a
// chunk AppendEncoded can install; empty input returns a zero chunk that
// AppendEncoded skips. EncodeSeries is safe for concurrent use: the packer
// is resolved fresh per call (packer instances must not be shared across
// goroutines), so parallel encoders never share planning state.
func EncodeSeries(opt Options, points []Point, packerName string) (EncodedChunk, error) {
	if len(points) == 0 {
		return EncodedChunk{}, nil
	}
	p, err := encodePacker(opt, packerName)
	if err != nil {
		return EncodedChunk{}, err
	}
	meta := ChunkMeta{
		Count: len(points),
		MinT:  points[0].T,
		MaxT:  points[len(points)-1].T,
		MinV:  points[0].V,
		MaxV:  points[0].V,
	}
	times := make([]int64, len(points))
	vals := make([]int64, len(points))
	for i, p := range points {
		if i > 0 && p.T <= points[i-1].T {
			return EncodedChunk{}, fmt.Errorf("%w: t[%d]=%d after %d", ErrUnsorted, i, p.T, points[i-1].T)
		}
		times[i] = p.T
		vals[i] = p.V
		if p.V < meta.MinV {
			meta.MinV = p.V
		}
		if p.V > meta.MaxV {
			meta.MaxV = p.V
		}
		meta.Sum += p.V // wrapping, like Aggregate
	}
	meta.Kind = kindInt
	meta.HasStats = true
	meta.Packer = packerName
	body := encodeChunk(p, opt.BlockSize, times, vals)
	meta.EncodedBytes = len(body)
	return EncodedChunk{Meta: meta, Body: body}, nil
}

// AppendEncoded installs a chunk produced by EncodeSeries (or
// EncodeFloatSeries), assigning its file offset. Chunks must be appended in
// the same order a serial Append sequence would have used for the file bytes
// to be identical. A zero chunk (Count 0) is a no-op.
func (w *Writer) AppendEncoded(series string, c EncodedChunk) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("tsfile: writer closed")
	}
	if c.Meta.Count == 0 {
		return nil
	}
	c.Meta.Offset = w.off
	return w.writeChunk(series, c.Meta, c.Body)
}

// chunkPacker resolves a per-chunk packer override ("" = file default).
func (w *Writer) chunkPacker(name string) (codec.Packer, error) {
	if name == "" {
		return w.opt.packer(), nil
	}
	p, err := packers.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("tsfile: %w", err)
	}
	return p, nil
}

// encodePacker resolves the packer for an off-writer encode. Unlike
// chunkPacker it returns a fresh instance even for the file default
// (re-resolving configured packers through the registry by name), because
// registry packers carry planning state and must not be shared between the
// concurrent encoders a parallel flush runs. A custom Options.Packer not in
// the registry is returned as-is; such implementations must tolerate
// concurrent Pack calls if the caller encodes in parallel.
func encodePacker(opt Options, name string) (codec.Packer, error) {
	if name != "" {
		p, err := packers.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("tsfile: %w", err)
		}
		return p, nil
	}
	if opt.Packer == nil {
		return core.NewPacker(core.SeparationBitWidth), nil
	}
	if p, err := packers.ByName(opt.Packer.Name()); err == nil {
		return p, nil
	}
	return opt.Packer, nil
}

// SeriesEncodedBytes sums the encoded chunk payload bytes written so far for
// one series (0 for an unknown series). Compaction uses it to report
// bytes-after per series.
func (w *Writer) SeriesEncodedBytes(series string) int64 {
	var n int64
	for _, m := range w.index[series] {
		n += int64(m.EncodedBytes)
	}
	return n
}

// writeChunk frames one encoded chunk body and records its metadata.
func (w *Writer) writeChunk(series string, meta ChunkMeta, body []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	if err := w.write(hdr[:n]); err != nil {
		return err
	}
	if err := w.write(body); err != nil {
		return err
	}
	if _, seen := w.index[series]; !seen {
		w.order = append(w.order, series)
	}
	w.index[series] = append(w.index[series], meta)
	return nil
}

// Close writes the footer index. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	idx := encodeIndex(w.order, w.index)
	if err := w.write(idx); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(idx)))
	copy(tail[4:], magic)
	return w.write(tail[:])
}

// encodeChunk packs an integer chunk: count, kind byte, then the columns.
func encodeChunk(p codec.Packer, blockSize int, times, vals []int64) []byte {
	body := codec.AppendUvarint(nil, uint64(len(vals)))
	body = append(body, kindInt)
	return appendColumns(p, blockSize, body, times, vals)
}

// appendColumns packs the two columns — timestamps delta-coded then packed,
// values packed directly — each framed by a byte-length varint so the
// decoder can split them.
func appendColumns(p codec.Packer, blockSize int, body []byte, times, vals []int64) []byte {
	tc := ts2diff.New(p, blockSize)
	tcol := tc.Encode(nil, times)
	body = codec.AppendUvarint(body, uint64(len(tcol)))
	body = append(body, tcol...)
	vc := codec.NewBlockwise(p, blockSize)
	vcol := vc.Encode(nil, vals)
	body = codec.AppendUvarint(body, uint64(len(vcol)))
	body = append(body, vcol...)
	return body
}

// decodeChunk inverts encodeChunk for integer chunks.
func decodeChunk(p codec.Packer, blockSize int, body []byte) (times, vals []int64, err error) {
	n64, rest, err := codec.ReadUvarint(body)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: chunk count: %v", ErrCorrupt, err)
	}
	if n64 > codec.MaxBlockLen*64 {
		return nil, nil, fmt.Errorf("%w: chunk of %d points", ErrCorrupt, n64)
	}
	if len(rest) == 0 {
		return nil, nil, fmt.Errorf("%w: missing kind", ErrCorrupt)
	}
	kind := rest[0]
	rest = rest[1:]
	if kind != kindInt {
		return nil, nil, fmt.Errorf("%w: chunk kind %d is not integer", ErrKindMismatch, kind)
	}
	return decodeColumns(p, blockSize, rest, int(n64))
}

// decodeColumns inverts appendColumns.
func decodeColumns(p codec.Packer, blockSize int, rest []byte, n int) (times, vals []int64, err error) {
	readColumn := func(decode func([]byte) ([]int64, error)) ([]int64, error) {
		clen, r, err := codec.ReadUvarint(rest)
		if err != nil || clen > uint64(len(r)) {
			return nil, fmt.Errorf("column frame: %v", err)
		}
		col, err := decode(r[:clen])
		if err != nil {
			return nil, err
		}
		rest = r[clen:]
		return col, nil
	}
	tc := ts2diff.New(p, blockSize)
	times, err = readColumn(tc.Decode)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: time column: %v", ErrCorrupt, err)
	}
	vc := codec.NewBlockwise(p, blockSize)
	vals, err = readColumn(vc.Decode)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: value column: %v", ErrCorrupt, err)
	}
	if len(times) != n || len(vals) != n {
		return nil, nil, fmt.Errorf("%w: column lengths %d/%d, want %d", ErrCorrupt, len(times), len(vals), n)
	}
	return times, vals, nil
}
