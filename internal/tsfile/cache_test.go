package tsfile

import (
	"bytes"
	"testing"

	"bos/internal/chunkcache"
)

// TestReaderChunkCache verifies the cache plumbing: the second read of a
// chunk is served from the cache, results are identical, and both int and
// float chunks participate.
func TestReaderChunkCache(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	ints := make([]Point, 500)
	for i := range ints {
		ints[i] = Point{T: int64(i), V: int64(i * 3)}
	}
	if err := w.Append("s.int", ints); err != nil {
		t.Fatal(err)
	}
	floats := make([]FloatPoint, 500)
	for i := range floats {
		floats[i] = FloatPoint{T: int64(i), V: float64(i) / 4}
	}
	if err := w.AppendFloats("s.float", floats); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := chunkcache.New(1 << 20)
	r.SetCache(cache, 42)

	first, err := r.ReadAll("s.int")
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.ReadAll("s.int")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(ints) || len(second) != len(ints) {
		t.Fatalf("lens %d/%d, want %d", len(first), len(second), len(ints))
	}
	for i := range first {
		if first[i] != second[i] || first[i] != ints[i] {
			t.Fatalf("point %d mismatch: %+v %+v %+v", i, ints[i], first[i], second[i])
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}

	f1, err := r.ReadAllFloats("s.float")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := r.ReadAllFloats("s.float")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] || f1[i] != floats[i] {
			t.Fatalf("float point %d mismatch", i)
		}
	}
	if got := cache.Stats(); got.Hits <= st.Hits {
		t.Fatalf("float reread did not hit the cache: %+v -> %+v", st, got)
	}

	// The iterator path shares the cache with Query.
	preIter := cache.Stats()
	it, err := r.Iter("s.int", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil || n != len(ints) {
		t.Fatalf("iter: n=%d err=%v", n, it.Err())
	}
	if got := cache.Stats(); got.Hits <= preIter.Hits {
		t.Fatalf("iterator did not hit the cache: %+v -> %+v", preIter, got)
	}
}
