package tsfile

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func makeFloatPoints(rng *rand.Rand, start int64, n int, precision int) []FloatPoint {
	scale := math.Pow(10, float64(precision))
	pts := make([]FloatPoint, n)
	t := start
	v := 20.0
	for i := range pts {
		t += 1 + rng.Int63n(3)
		v += rng.NormFloat64() * 0.5
		if rng.Float64() < 0.01 {
			v = rng.Float64() * 2 // dropout
		}
		pts[i] = FloatPoint{t, math.Round(v*scale) / scale}
	}
	return pts
}

func TestFloatWriteReadAll(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	var want []FloatPoint
	start := int64(0)
	for c := 0; c < 3; c++ {
		pts := makeFloatPoints(rng, start, 800, 2)
		start = pts[len(pts)-1].T
		if err := w.AppendFloats("root.f", pts); err != nil {
			t.Fatal(err)
		}
		want = append(want, pts...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAllFloats("root.f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d points want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || math.Float64bits(got[i].V) != math.Float64bits(want[i].V) {
			t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestFloatRawFallback(t *testing.T) {
	// Non-decimal values (pi multiples) must round-trip bit-exactly via
	// the raw chunk kind.
	pts := make([]FloatPoint, 500)
	for i := range pts {
		pts[i] = FloatPoint{int64(i + 1), math.Pi * float64(i)}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.AppendFloats("raw", pts); err != nil {
		t.Fatal(err)
	}
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunks, _ := r.Chunks("raw")
	if chunks[0].Kind != kindRaw {
		t.Fatalf("kind = %d want raw", chunks[0].Kind)
	}
	got, err := r.ReadAllFloats("raw")
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
			t.Fatalf("point %d not bit-exact", i)
		}
	}
}

func TestFloatQueryRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := makeFloatPoints(rng, 0, 3000, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.AppendFloats("f", pts[:1500]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFloats("f", pts[1500:]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	minT, maxT := pts[500].T, pts[2500].T
	minV, maxV := 18.0, 22.0
	got, err := r.QueryFloats("f", minT, maxT, minV, maxV)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range pts {
		if p.T >= minT && p.T <= maxT && p.V >= minV && p.V <= maxV {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("got %d points want %d", len(got), count)
	}
	for _, p := range got {
		if p.V < minV || p.V > maxV || p.T < minT || p.T > maxT {
			t.Fatalf("predicate violated: %v", p)
		}
	}
}

func TestFloatValuePruning(t *testing.T) {
	// A value window far above the data must prune every scaled chunk.
	rng := rand.New(rand.NewSource(22))
	pts := makeFloatPoints(rng, 0, 2000, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	w.AppendFloats("f", pts)
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.QueryFloats("f", 0, 1<<40, 1e9, 2e9)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d points err %v", len(got), err)
	}
}

func TestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	w.Append("ints", []Point{{1, 10}, {2, 20}})
	w.AppendFloats("floats", []FloatPoint{{1, 1.5}, {2, 2.5}})
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAllFloats("ints"); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("float read of int series: %v", err)
	}
	if _, err := r.ReadAll("floats"); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("int read of float series: %v", err)
	}
}

func TestFloatUnsortedRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	err := w.AppendFloats("f", []FloatPoint{{5, 1}, {4, 2}})
	if !errors.Is(err, ErrUnsorted) {
		t.Errorf("err = %v", err)
	}
}
