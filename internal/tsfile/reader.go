package tsfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"bos/internal/codec"
	"bos/internal/packers"
)

// indexV2Tag marks a versioned footer. The legacy footer began directly with
// the series count, which parseIndex bounds by the index byte length; the tag
// is far above any possible length (the index length is a u32), so a legacy
// reader rejects a v2 file cleanly as corrupt while a v2 reader tells the two
// apart from the first varint.
const indexV2Tag = uint64(1) << 40

// indexVersion is the current footer version written by encodeIndex.
const indexVersion = 2

// Per-chunk footer flag bits (v2 footers only).
const chunkFlagStats = 1 << 0 // chunk carries a value Sum statistic

// encodeIndex serializes the footer: version tag, series count, then per
// series its name, chunk count and chunk metadata (offsets and statistics
// delta-free, all zigzag varints; the per-chunk packer-name override, then a
// flags byte and the optional value-sum statistic last).
func encodeIndex(order []string, index map[string][]ChunkMeta) []byte {
	out := codec.AppendUvarint(nil, indexV2Tag)
	out = codec.AppendUvarint(out, indexVersion)
	out = codec.AppendUvarint(out, uint64(len(order)))
	for _, name := range order {
		out = codec.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		chunks := index[name]
		out = codec.AppendUvarint(out, uint64(len(chunks)))
		for _, c := range chunks {
			out = codec.AppendUvarint(out, uint64(c.Offset))
			out = codec.AppendUvarint(out, uint64(c.Count))
			out = codec.AppendUvarint(out, uint64(c.EncodedBytes))
			out = appendZig(out, c.MinT)
			out = appendZig(out, c.MaxT)
			out = appendZig(out, c.MinV)
			out = appendZig(out, c.MaxV)
			out = append(out, c.Kind, byte(c.Precision))
			out = codec.AppendUvarint(out, uint64(len(c.Packer)))
			out = append(out, c.Packer...)
			if c.HasStats {
				out = append(out, chunkFlagStats)
				out = appendZig(out, c.Sum)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

func appendZig(dst []byte, v int64) []byte {
	return codec.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func readZig(src []byte) (int64, []byte, error) {
	u, rest, err := codec.ReadUvarint(src)
	return int64(u>>1) ^ -int64(u&1), rest, err
}

// ChunkCache caches decoded chunk columns across reads, keyed by an
// owner-assigned file ID, the series name and the chunk's index in the
// series' chunk list. Implementations must be safe for concurrent use;
// internal/chunkcache provides the standard one. Slices returned by Get or
// handed to Put are shared and must never be mutated.
type ChunkCache interface {
	GetInt(file uint64, series string, chunk int) (times, vals []int64, ok bool)
	PutInt(file uint64, series string, chunk int, times, vals []int64)
	GetFloat(file uint64, series string, chunk int) (times []int64, vals []float64, ok bool)
	PutFloat(file uint64, series string, chunk int, times []int64, vals []float64)
}

// Reader opens a file from any io.ReaderAt.
type Reader struct {
	r     io.ReaderAt
	opt   Options
	def   codec.Packer            // the file's default packer, resolved once
	named map[string]codec.Packer // per-chunk packer overrides, by footer name
	index map[string][]ChunkMeta
	order []string

	cache   ChunkCache // nil: decode every read
	cacheID uint64     // this file's identity inside the cache
}

// SetCache attaches a decoded-chunk cache. fileID must be unique among all
// files sharing the cache for the file's lifetime (and never reused for
// different content — sequence numbers are NOT safe, compaction recycles
// them). Call before the Reader is shared between goroutines.
func (r *Reader) SetCache(c ChunkCache, fileID uint64) {
	r.cache = c
	r.cacheID = fileID
}

// OpenReader parses the footer index of a file of the given size. opt must
// use the same packer family the file was written with.
func OpenReader(r io.ReaderAt, size int64, opt Options) (*Reader, error) {
	// Minimum file: header magic, a one-byte empty index, the 8-byte tail.
	if size < int64(len(magic))+1+8 {
		return nil, fmt.Errorf("%w: too small", ErrCorrupt)
	}
	head := make([]byte, len(magic))
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	tail := make([]byte, 8)
	if _, err := r.ReadAt(tail, size-8); err != nil {
		return nil, fmt.Errorf("%w: tail: %v", ErrCorrupt, err)
	}
	if string(tail[4:]) != string(magic) {
		return nil, fmt.Errorf("%w: bad tail magic", ErrCorrupt)
	}
	idxLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if idxLen <= 0 || idxLen > size-8-int64(len(magic)) {
		return nil, fmt.Errorf("%w: index length %d", ErrCorrupt, idxLen)
	}
	idx := make([]byte, idxLen)
	if _, err := r.ReadAt(idx, size-8-idxLen); err != nil {
		return nil, fmt.Errorf("%w: index: %v", ErrCorrupt, err)
	}
	tr := &Reader{
		r:     r,
		opt:   opt,
		def:   opt.packer(),
		named: map[string]codec.Packer{},
		index: map[string][]ChunkMeta{},
	}
	if err := tr.parseIndex(idx, size); err != nil {
		return nil, err
	}
	return tr, nil
}

// packerFor returns the packer that decodes one chunk: its footer override
// when present, the file default otherwise. Overrides are resolved eagerly in
// parseIndex, so the map is read-only (and safe to share) after open.
func (r *Reader) packerFor(m ChunkMeta) codec.Packer {
	if m.Packer == "" {
		return r.def
	}
	return r.named[m.Packer]
}

func (r *Reader) parseIndex(idx []byte, size int64) error {
	nSeries, rest, err := codec.ReadUvarint(idx)
	if err != nil {
		return fmt.Errorf("%w: series count", ErrCorrupt)
	}
	// Legacy footers (pre-v2) start directly with the series count; v2
	// footers start with the tag. Legacy chunks simply have no stats.
	v2 := nSeries == indexV2Tag
	if v2 {
		var version uint64
		if version, rest, err = codec.ReadUvarint(rest); err != nil || version != indexVersion {
			return fmt.Errorf("%w: footer version", ErrCorrupt)
		}
		if nSeries, rest, err = codec.ReadUvarint(rest); err != nil {
			return fmt.Errorf("%w: series count", ErrCorrupt)
		}
	}
	if nSeries > uint64(len(idx)) {
		return fmt.Errorf("%w: series count", ErrCorrupt)
	}
	for s := uint64(0); s < nSeries; s++ {
		nameLen, r2, err := codec.ReadUvarint(rest)
		if err != nil || nameLen > uint64(len(r2)) {
			return fmt.Errorf("%w: series name", ErrCorrupt)
		}
		name := string(r2[:nameLen])
		rest = r2[nameLen:]
		nChunks, r3, err := codec.ReadUvarint(rest)
		if err != nil || nChunks > uint64(len(r3)) {
			return fmt.Errorf("%w: chunk count", ErrCorrupt)
		}
		rest = r3
		chunks := make([]ChunkMeta, 0, nChunks)
		for c := uint64(0); c < nChunks; c++ {
			var m ChunkMeta
			var u uint64
			if u, rest, err = codec.ReadUvarint(rest); err != nil {
				return fmt.Errorf("%w: chunk offset", ErrCorrupt)
			}
			m.Offset = int64(u)
			if u, rest, err = codec.ReadUvarint(rest); err != nil {
				return fmt.Errorf("%w: chunk size", ErrCorrupt)
			}
			m.Count = int(u)
			if u, rest, err = codec.ReadUvarint(rest); err != nil {
				return fmt.Errorf("%w: chunk bytes", ErrCorrupt)
			}
			m.EncodedBytes = int(u)
			if m.MinT, rest, err = readZig(rest); err != nil {
				return fmt.Errorf("%w: chunk minT", ErrCorrupt)
			}
			if m.MaxT, rest, err = readZig(rest); err != nil {
				return fmt.Errorf("%w: chunk maxT", ErrCorrupt)
			}
			if m.MinV, rest, err = readZig(rest); err != nil {
				return fmt.Errorf("%w: chunk minV", ErrCorrupt)
			}
			if m.MaxV, rest, err = readZig(rest); err != nil {
				return fmt.Errorf("%w: chunk maxV", ErrCorrupt)
			}
			if len(rest) < 2 {
				return fmt.Errorf("%w: chunk kind", ErrCorrupt)
			}
			m.Kind, m.Precision = rest[0], int(rest[1])
			rest = rest[2:]
			if m.Kind > kindRaw {
				return fmt.Errorf("%w: chunk kind %d", ErrCorrupt, m.Kind)
			}
			pnLen, r4, err := codec.ReadUvarint(rest)
			if err != nil || pnLen > uint64(len(r4)) {
				return fmt.Errorf("%w: chunk packer name", ErrCorrupt)
			}
			m.Packer = string(r4[:pnLen])
			rest = r4[pnLen:]
			if v2 {
				if len(rest) < 1 {
					return fmt.Errorf("%w: chunk flags", ErrCorrupt)
				}
				flags := rest[0]
				rest = rest[1:]
				if flags&^chunkFlagStats != 0 {
					return fmt.Errorf("%w: chunk flags %#x", ErrCorrupt, flags)
				}
				if flags&chunkFlagStats != 0 {
					m.HasStats = true
					if m.Sum, rest, err = readZig(rest); err != nil {
						return fmt.Errorf("%w: chunk sum", ErrCorrupt)
					}
				}
			}
			if m.Packer != "" {
				if _, ok := r.named[m.Packer]; !ok {
					p, err := packers.ByName(m.Packer)
					if err != nil {
						return fmt.Errorf("%w: chunk packer: %v", ErrCorrupt, err)
					}
					r.named[m.Packer] = p
				}
			}
			if m.Offset < int64(len(magic)) || m.Offset >= size {
				return fmt.Errorf("%w: chunk offset %d", ErrCorrupt, m.Offset)
			}
			chunks = append(chunks, m)
		}
		r.index[name] = chunks
		r.order = append(r.order, name)
	}
	return nil
}

// Series lists the series names in file order.
func (r *Reader) Series() []string {
	return append([]string(nil), r.order...)
}

// Chunks exposes the footer metadata of one series.
func (r *Reader) Chunks(series string) ([]ChunkMeta, error) {
	chunks, ok := r.index[series]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	return append([]ChunkMeta(nil), chunks...), nil
}

// readChunkBody loads one chunk's raw body.
func (r *Reader) readChunkBody(m ChunkMeta) ([]byte, error) {
	hdr := make([]byte, binary.MaxVarintLen64)
	n, err := r.r.ReadAt(hdr, m.Offset)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("%w: chunk header: %v", ErrCorrupt, err)
	}
	bodyLen, used := binary.Uvarint(hdr[:n])
	if used <= 0 || bodyLen > 1<<31 {
		return nil, fmt.Errorf("%w: chunk length", ErrCorrupt)
	}
	body := make([]byte, bodyLen)
	if _, err := r.r.ReadAt(body, m.Offset+int64(used)); err != nil {
		return nil, fmt.Errorf("%w: chunk body: %v", ErrCorrupt, err)
	}
	return body, nil
}

// readChunk loads and decodes one integer chunk, consulting the cache first.
// ci is the chunk's index within the series. The returned slices may be
// shared with the cache and must be treated as read-only.
func (r *Reader) readChunk(series string, ci int, m ChunkMeta) ([]int64, []int64, error) {
	if r.cache != nil {
		if times, vals, ok := r.cache.GetInt(r.cacheID, series, ci); ok {
			return times, vals, nil
		}
	}
	body, err := r.readChunkBody(m)
	if err != nil {
		return nil, nil, err
	}
	times, vals, err := decodeChunk(r.packerFor(m), r.opt.BlockSize, body)
	if err != nil {
		return nil, nil, err
	}
	if r.cache != nil {
		r.cache.PutInt(r.cacheID, series, ci, times, vals)
	}
	return times, vals, nil
}

// Query returns the points of a series with minT <= T <= maxT and
// minV <= V <= maxV, in time order, decoding only chunks whose footer
// statistics overlap the predicate.
func (r *Reader) Query(series string, minT, maxT, minV, maxV int64) ([]Point, error) {
	chunks, ok := r.index[series]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	var out []Point
	for ci, m := range chunks {
		if m.MaxT < minT || m.MinT > maxT || m.MaxV < minV || m.MinV > maxV {
			continue // pruned without IO beyond the footer
		}
		times, vals, err := r.readChunk(series, ci, m)
		if err != nil {
			return nil, err
		}
		// Binary-search the time window inside the sorted chunk.
		lo := sort.Search(len(times), func(i int) bool { return times[i] >= minT })
		hi := sort.Search(len(times), func(i int) bool { return times[i] > maxT })
		for i := lo; i < hi; i++ {
			if vals[i] >= minV && vals[i] <= maxV {
				out = append(out, Point{times[i], vals[i]})
			}
		}
	}
	return out, nil
}

// ReadAll returns every point of a series in time order.
func (r *Reader) ReadAll(series string) ([]Point, error) {
	const full = int64(^uint64(0) >> 1)
	return r.Query(series, -full-1, full, -full-1, full)
}
