package tsfile

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestMixedPackerFile writes one file whose chunks use different packers —
// the layout background compaction produces — and verifies every chunk
// decodes with its own operator, including after reopening with a different
// default packer.
func TestMixedPackerFile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	want := map[string][]Point{}
	packersBySeries := map[string]string{
		"s.default":  "",
		"s.bp":       "bp",
		"s.pfor":     "pfor",
		"s.fastpfor": "fastpfor",
		"s.bosm":     "bos-m", // alias form must resolve too
	}
	for series, name := range packersBySeries {
		pts := makePoints(rng, 0, 1500)
		if err := w.AppendPacked(series, pts, name); err != nil {
			t.Fatalf("%s (%q): %v", series, name, err)
		}
		want[series] = pts
	}
	fpts := make([]FloatPoint, 300)
	tt := int64(0)
	for i := range fpts {
		tt += 1 + rng.Int63n(5)
		fpts[i] = FloatPoint{T: tt, V: float64(rng.Intn(5000)) / 100}
	}
	if err := w.AppendFloatsPacked("s.float", fpts, "bp"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if err := w.AppendPacked("s.x", []Point{{1, 1}}, "nosuchpacker"); err == nil {
		t.Error("unknown packer name accepted")
	}

	// Read back under two different default packers: per-chunk overrides must
	// win regardless. Chunks with no override still need the writing default
	// (the pre-existing contract), so the mismatched pass skips that series.
	for pass, opt := range []Options{{}, {Packer: mustPacker(t, "pfor")}} {
		file := bytes.NewReader(buf.Bytes())
		r, err := OpenReader(file, file.Size(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for series, pts := range want {
			if pass == 1 && series == "s.default" {
				continue
			}
			got, err := r.ReadAll(series)
			if err != nil {
				t.Fatalf("%s: %v", series, err)
			}
			if len(got) != len(pts) {
				t.Fatalf("%s: %d points want %d", series, len(got), len(pts))
			}
			for i := range got {
				if got[i] != pts[i] {
					t.Fatalf("%s: point %d: got %v want %v", series, i, got[i], pts[i])
				}
			}
		}
		gotF, err := r.ReadAllFloats("s.float")
		if err != nil {
			t.Fatal(err)
		}
		if len(gotF) != len(fpts) {
			t.Fatalf("float: %d points want %d", len(gotF), len(fpts))
		}
		for i := range gotF {
			if gotF[i].T != fpts[i].T || math.Abs(gotF[i].V-fpts[i].V) > 1e-9 {
				t.Fatalf("float point %d: got %v want %v", i, gotF[i], fpts[i])
			}
		}
		// The footer must expose the recorded packer names.
		chunks, err := r.Chunks("s.fastpfor")
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != 1 || chunks[0].Packer != "fastpfor" {
			t.Fatalf("footer packer: %+v", chunks)
		}
	}
}

func mustPacker(t *testing.T, name string) interface {
	Name() string
	Pack([]byte, []int64) []byte
	Unpack([]byte, []int64) ([]int64, []byte, error)
} {
	t.Helper()
	w := NewWriter(&bytes.Buffer{}, Options{})
	p, err := w.chunkPacker(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
