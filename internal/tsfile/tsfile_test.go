package tsfile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/core"
)

func makePoints(rng *rand.Rand, start int64, n int) []Point {
	pts := make([]Point, n)
	t := start
	v := int64(20000)
	for i := range pts {
		t += 1 + rng.Int63n(3)
		if rng.Float64() < 0.01 {
			v += rng.Int63n(1 << 20)
		} else {
			v += rng.Int63n(9) - 4
		}
		pts[i] = Point{t, v}
	}
	return pts
}

func buildFile(t *testing.T, opt Options) (*bytes.Reader, map[string][]Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewWriter(&buf, opt)
	want := map[string][]Point{}
	for _, series := range []string{"root.sg.d1.temp", "root.sg.d1.volt", "root.sg.d2.temp"} {
		start := int64(0)
		for chunk := 0; chunk < 4; chunk++ {
			pts := makePoints(rng, start, 500+rng.Intn(500))
			start = pts[len(pts)-1].T
			if err := w.Append(series, pts); err != nil {
				t.Fatal(err)
			}
			want[series] = append(want[series], pts...)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes()), want
}

func TestWriteReadAll(t *testing.T) {
	for _, opt := range []Options{
		{},
		{Packer: bitpack.Packer{}},
		{Packer: core.NewPacker(core.SeparationMedian), BlockSize: 256},
	} {
		file, want := buildFile(t, opt)
		r, err := OpenReader(file, file.Size(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Series()) != 3 {
			t.Fatalf("series = %v", r.Series())
		}
		for series, pts := range want {
			got, err := r.ReadAll(series)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(pts) {
				t.Fatalf("%s: %d points want %d", series, len(got), len(pts))
			}
			for i := range pts {
				if got[i] != pts[i] {
					t.Fatalf("%s point %d: got %v want %v", series, i, got[i], pts[i])
				}
			}
		}
	}
}

func TestQueryTimeRange(t *testing.T) {
	file, want := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	series := "root.sg.d1.temp"
	pts := want[series]
	minT := pts[len(pts)/4].T
	maxT := pts[3*len(pts)/4].T
	got, err := r.Query(series, minT, maxT, -1<<62, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	var exp []Point
	for _, p := range pts {
		if p.T >= minT && p.T <= maxT {
			exp = append(exp, p)
		}
	}
	if len(got) != len(exp) {
		t.Fatalf("got %d points want %d", len(got), len(exp))
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("point %d: got %v want %v", i, got[i], exp[i])
		}
	}
}

func TestQueryValuePredicate(t *testing.T) {
	file, want := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	series := "root.sg.d2.temp"
	pts := want[series]
	minV, maxV := pts[0].V, pts[0].V+1000
	got, err := r.Query(series, pts[0].T, pts[len(pts)-1].T, minV, maxV)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range pts {
		if p.V >= minV && p.V <= maxV {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("got %d points want %d", len(got), count)
	}
	for _, p := range got {
		if p.V < minV || p.V > maxV {
			t.Fatalf("predicate violated: %v", p)
		}
	}
}

func TestPruningSkipsChunks(t *testing.T) {
	// A query outside every chunk's value range must return nothing (and
	// reads only the footer — verified indirectly via metadata).
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Query("root.sg.d1.temp", 0, 1<<62, -1<<62, -1<<40)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d points, err %v", len(got), err)
	}
	chunks, err := r.Chunks("root.sg.d1.temp")
	if err != nil || len(chunks) != 4 {
		t.Fatalf("chunks = %d err %v", len(chunks), err)
	}
	for _, c := range chunks {
		if c.Count <= 0 || c.EncodedBytes <= 0 || c.MinT > c.MaxT || c.MinV > c.MaxV {
			t.Fatalf("bad chunk meta %+v", c)
		}
	}
}

func TestUnknownSeries(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll("root.nope"); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v", err)
	}
}

func TestUnsortedTimestampsRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	err := w.Append("s", []Point{{5, 1}, {5, 2}})
	if !errors.Is(err, ErrUnsorted) {
		t.Errorf("err = %v", err)
	}
	err = w.Append("s", []Point{{5, 1}, {4, 2}})
	if !errors.Is(err, ErrUnsorted) {
		t.Errorf("err = %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series()) != 0 {
		t.Errorf("series = %v", r.Series())
	}
}

func TestCorruptFilesNeverPanic(t *testing.T) {
	file, _ := buildFile(t, Options{})
	data := make([]byte, file.Size())
	file.ReadAt(data, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		cor := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		}
		cor = cor[:rng.Intn(len(cor)+1)]
		r, err := OpenReader(bytes.NewReader(cor), int64(len(cor)), Options{})
		if err != nil {
			continue
		}
		for _, s := range r.Series() {
			r.ReadAll(s)
		}
	}
}

func TestBOSFileSmallerThanBPFile(t *testing.T) {
	// The Figure 11 storage claim on the file substrate: with spiky
	// values, the BOS-packed file is smaller than the BP-packed file.
	rng := rand.New(rand.NewSource(3))
	pts := makePoints(rng, 0, 20000)
	sizeWith := encodeFileSize(t, pts, Options{})
	sizeWithout := encodeFileSize(t, pts, Options{Packer: bitpack.Packer{}})
	if sizeWith >= sizeWithout {
		t.Errorf("BOS file %d bytes >= BP file %d", sizeWith, sizeWithout)
	}
}

func encodeFileSize(t *testing.T, pts []Point, opt Options) int {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opt)
	if err := w.Append("s", pts); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

func BenchmarkAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := makePoints(rng, 0, 8192)
	b.ReportAllocs()
	b.SetBytes(int64(len(pts) * 16))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{})
		if err := w.Append("s", pts); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	start := int64(0)
	for c := 0; c < 16; c++ {
		pts := makePoints(rng, start, 4096)
		start = pts[len(pts)-1].T
		if err := w.Append("s", pts); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Query("s", start/3, start*2/3, -1<<62, 1<<62); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeSeriesByteIdentity builds the same file twice — once through the
// Append/AppendFloats writer path and once by pre-encoding every chunk with
// EncodeSeries/EncodeFloatSeries and installing them via AppendEncoded — and
// requires the bytes to match exactly. This is the contract the parallel
// flush relies on: encoding off-writer must not change the file.
func TestEncodeSeriesByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, opt := range []Options{
		{},
		{Packer: bitpack.Packer{}},
		{Packer: core.NewPacker(core.SeparationMedian), BlockSize: 256},
	} {
		ints := map[string][]Point{}
		for _, s := range []string{"root.sg.a", "root.sg.b", "root.sg.c"} {
			ints[s] = makePoints(rng, 0, 400+rng.Intn(400))
		}
		floats := map[string][]FloatPoint{}
		for _, s := range []string{"root.sg.f1", "root.sg.f2"} {
			pts := make([]FloatPoint, 300)
			for i := range pts {
				pts[i] = FloatPoint{T: int64(i * 2), V: float64(rng.Intn(5000)) / 100}
			}
			// f2 is non-decimal to exercise the raw-bits branch.
			if s == "root.sg.f2" {
				for i := range pts {
					pts[i].V = rng.NormFloat64()
				}
			}
			floats[s] = pts
		}
		order := []string{"root.sg.a", "root.sg.b", "root.sg.c"}
		forder := []string{"root.sg.f1", "root.sg.f2"}

		var serial bytes.Buffer
		w := NewWriter(&serial, opt)
		for _, s := range order {
			if err := w.Append(s, ints[s]); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range forder {
			if err := w.AppendFloats(s, floats[s]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		var staged bytes.Buffer
		w2 := NewWriter(&staged, opt)
		for _, s := range order {
			c, err := EncodeSeries(opt, ints[s], "")
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.AppendEncoded(s, c); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range forder {
			c, err := EncodeFloatSeries(opt, floats[s], "")
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.AppendEncoded(s, c); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(serial.Bytes(), staged.Bytes()) {
			t.Fatalf("staged file differs from serial file (%d vs %d bytes)",
				staged.Len(), serial.Len())
		}
	}
}

// TestAppendEncodedEmpty verifies a zero chunk is a clean no-op.
func TestAppendEncodedEmpty(t *testing.T) {
	c, err := EncodeSeries(Options{}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.AppendEncoded("root.sg.x", c); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(w.order) != 0 {
		t.Fatalf("empty chunk registered series %v", w.order)
	}
}
