package tsfile

import (
	"errors"
	"fmt"
	"math"

	"bos/internal/codec"
	"bos/internal/floatconv"
)

// Column kinds, recorded per chunk and per series.
const (
	kindInt    byte = 0 // int64 values
	kindScaled byte = 1 // float64 values stored as 10^p-scaled integers
	kindRaw    byte = 2 // float64 values stored as raw bits (non-decimal data)
)

// ErrKindMismatch reports mixing integer and float chunks in one series, or
// querying a series with the wrong typed API.
var ErrKindMismatch = errors.New("tsfile: series value kind mismatch")

// FloatPoint is one (timestamp, float value) sample.
type FloatPoint struct {
	T int64
	V float64
}

// AppendFloats adds one chunk of float samples to a series. Decimal data is
// scaled to integers (keeping all the packing machinery and statistics
// pruning); non-decimal data falls back to raw bits, losslessly.
func (w *Writer) AppendFloats(series string, points []FloatPoint) error {
	return w.AppendFloatsPacked(series, points, "")
}

// AppendFloatsPacked is AppendFloats with a per-chunk packer override,
// mirroring AppendPacked: the named packer encodes the chunk and is recorded
// in the footer ("" = the file's default packer).
func (w *Writer) AppendFloatsPacked(series string, points []FloatPoint, packerName string) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("tsfile: writer closed")
	}
	c, err := EncodeFloatSeries(w.opt, points, packerName)
	if err != nil {
		return err
	}
	return w.AppendEncoded(series, c)
}

// EncodeFloatSeries encodes one float chunk without a Writer, mirroring
// EncodeSeries: same validation, precision detection and packing as
// AppendFloatsPacked, safe for concurrent use (the packer is resolved fresh
// per call).
func EncodeFloatSeries(opt Options, points []FloatPoint, packerName string) (EncodedChunk, error) {
	if len(points) == 0 {
		return EncodedChunk{}, nil
	}
	packer, err := encodePacker(opt, packerName)
	if err != nil {
		return EncodedChunk{}, err
	}
	times := make([]int64, len(points))
	vals := make([]float64, len(points))
	for i, p := range points {
		if i > 0 && p.T <= points[i-1].T {
			return EncodedChunk{}, fmt.Errorf("%w: t[%d]=%d after %d", ErrUnsorted, i, p.T, points[i-1].T)
		}
		times[i] = p.T
		vals[i] = p.V
	}
	meta := ChunkMeta{
		Count: len(points),
		MinT:  times[0],
		MaxT:  times[len(times)-1],
	}
	meta.Packer = packerName
	var body []byte
	if p, ok := floatconv.DetectPrecision(vals); ok {
		scaled, err := floatconv.ToScaled(vals, p)
		if err == nil {
			meta.Kind = kindScaled
			meta.Precision = p
			meta.MinV, meta.MaxV = minMax(scaled)
			for _, v := range scaled {
				meta.Sum += v // wrapping sum of the scaled integers
			}
			meta.HasStats = true
			body = encodeFloatChunk(packer, opt.BlockSize, kindScaled, p, times, scaled)
		}
	}
	if body == nil {
		meta.Kind = kindRaw
		bits := make([]int64, len(vals))
		for i, v := range vals {
			bits[i] = int64(math.Float64bits(v))
		}
		// Raw chunks carry no orderable statistics; value pruning is
		// disabled for them via the full-range sentinel.
		meta.MinV, meta.MaxV = math.MinInt64, math.MaxInt64
		body = encodeFloatChunk(packer, opt.BlockSize, kindRaw, 0, times, bits)
	}
	meta.EncodedBytes = len(body)
	return EncodedChunk{Meta: meta, Body: body}, nil
}

func minMax(vals []int64) (lo, hi int64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// encodeFloatChunk mirrors encodeChunk with a kind byte and optional
// precision before the columns.
func encodeFloatChunk(p codec.Packer, blockSize int, kind byte, precision int, times, vals []int64) []byte {
	body := codec.AppendUvarint(nil, uint64(len(vals)))
	body = append(body, kind)
	if kind == kindScaled {
		body = append(body, byte(precision))
	}
	body = appendColumns(p, blockSize, body, times, vals)
	return body
}

// ReadAllFloats returns every float point of a series in time order.
func (r *Reader) ReadAllFloats(series string) ([]FloatPoint, error) {
	const full = int64(^uint64(0) >> 1)
	return r.QueryFloats(series, -full-1, full, math.Inf(-1), math.Inf(1))
}

// QueryFloats returns the points of a float series with minT <= T <= maxT
// and minV <= V <= maxV, pruning scaled chunks via their integer statistics.
func (r *Reader) QueryFloats(series string, minT, maxT int64, minV, maxV float64) ([]FloatPoint, error) {
	chunks, ok := r.index[series]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	var out []FloatPoint
	for ci, m := range chunks {
		if m.MaxT < minT || m.MinT > maxT {
			continue
		}
		if m.Kind == kindInt {
			return nil, fmt.Errorf("%w: %q holds integers; use Query", ErrKindMismatch, series)
		}
		if m.Kind == kindScaled {
			// Prune on the scaled statistics when the float bounds
			// scale safely.
			scale := math.Pow(10, float64(m.Precision))
			if hi := minV * scale; !math.IsInf(hi, 0) && float64(m.MaxV) < hi {
				continue
			}
			if lo := maxV * scale; !math.IsInf(lo, 0) && float64(m.MinV) > lo {
				continue
			}
		}
		times, vals, err := r.readFloatChunk(series, ci, m)
		if err != nil {
			return nil, err
		}
		for i, t := range times {
			if t < minT || t > maxT {
				continue
			}
			if vals[i] < minV || vals[i] > maxV {
				continue
			}
			out = append(out, FloatPoint{t, vals[i]})
		}
	}
	return out, nil
}

// readFloatChunk loads and decodes one float chunk, consulting the cache
// first. The cache holds the post-conversion float column, so a hit skips
// both the bit-unpacking and the scaled-to-float pass. Returned slices may be
// shared with the cache and must be treated as read-only.
func (r *Reader) readFloatChunk(series string, ci int, m ChunkMeta) ([]int64, []float64, error) {
	if r.cache != nil {
		if times, vals, ok := r.cache.GetFloat(r.cacheID, series, ci); ok {
			return times, vals, nil
		}
	}
	body, err := r.readChunkBody(m)
	if err != nil {
		return nil, nil, err
	}
	n64, rest, err := codec.ReadUvarint(body)
	if err != nil || n64 > codec.MaxBlockLen*64 {
		return nil, nil, fmt.Errorf("%w: chunk count", ErrCorrupt)
	}
	if len(rest) == 0 {
		return nil, nil, fmt.Errorf("%w: missing kind", ErrCorrupt)
	}
	kind := rest[0]
	rest = rest[1:]
	precision := 0
	switch kind {
	case kindScaled:
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("%w: missing precision", ErrCorrupt)
		}
		precision = int(rest[0])
		rest = rest[1:]
		if precision > floatconv.MaxPrecision {
			return nil, nil, fmt.Errorf("%w: precision %d", ErrCorrupt, precision)
		}
	case kindRaw:
	default:
		return nil, nil, fmt.Errorf("%w: chunk kind %d is not float", ErrKindMismatch, kind)
	}
	times, vals, err := decodeColumns(r.packerFor(m), r.opt.BlockSize, rest, int(n64))
	if err != nil {
		return nil, nil, err
	}
	fvals := make([]float64, len(vals))
	if kind == kindScaled {
		copy(fvals, floatconv.FromScaled(vals, precision))
	} else {
		for i, v := range vals {
			fvals[i] = math.Float64frombits(uint64(v))
		}
	}
	if r.cache != nil {
		r.cache.PutFloat(r.cacheID, series, ci, times, fvals)
	}
	return times, fvals, nil
}
