package tsfile

import (
	"fmt"
	"sort"
)

// Iterator streams the points of one integer series in time order, loading
// one chunk at a time: memory use is bounded by the chunk size, not the
// result size, which is what a scan operator inside a query engine needs.
type Iterator struct {
	r           *Reader
	series      string
	chunks      []ChunkMeta
	minT, maxT  int64
	chunkIdx    int
	times, vals []int64
	pos         int
	cur         Point
	err         error
	done        bool
}

// Iter returns an iterator over the series points with minT <= T <= maxT.
func (r *Reader) Iter(series string, minT, maxT int64) (*Iterator, error) {
	chunks, ok := r.index[series]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	return &Iterator{r: r, series: series, chunks: chunks, minT: minT, maxT: maxT}, nil
}

// Next advances to the next point; it returns false at the end of the scan
// or on error (check Err).
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for {
		if it.pos < len(it.times) {
			t := it.times[it.pos]
			if t > it.maxT {
				it.done = true
				return false
			}
			it.cur = Point{T: t, V: it.vals[it.pos]}
			it.pos++
			return true
		}
		// Load the next overlapping chunk.
		for {
			if it.chunkIdx >= len(it.chunks) {
				it.done = true
				return false
			}
			ci := it.chunkIdx
			m := it.chunks[ci]
			it.chunkIdx++
			if m.MaxT < it.minT || m.MinT > it.maxT {
				continue // pruned via footer statistics
			}
			times, vals, err := it.r.readChunk(it.series, ci, m)
			if err != nil {
				it.err = err
				it.done = true
				return false
			}
			lo := sort.Search(len(times), func(i int) bool { return times[i] >= it.minT })
			it.times, it.vals = times[lo:], vals[lo:]
			it.pos = 0
			break
		}
	}
}

// Point returns the current point after a successful Next.
func (it *Iterator) Point() Point { return it.cur }

// Err reports the first error the scan hit, if any.
func (it *Iterator) Err() error { return it.err }
