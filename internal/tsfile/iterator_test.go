package tsfile

import (
	"errors"
	"math/rand"
	"testing"
)

func TestIteratorMatchesQuery(t *testing.T) {
	file, want := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for series, pts := range want {
		minT := pts[len(pts)/5].T
		maxT := pts[4*len(pts)/5].T
		it, err := r.Iter(series, minT, maxT)
		if err != nil {
			t.Fatal(err)
		}
		var got []Point
		for it.Next() {
			got = append(got, it.Point())
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		exp, err := r.Query(series, minT, maxT, -1<<62, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(exp) {
			t.Fatalf("%s: iterator %d points, query %d", series, len(got), len(exp))
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("%s point %d: %v vs %v", series, i, got[i], exp[i])
			}
		}
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.Iter("root.sg.d1.temp", -100, -50)
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Error("empty range yielded a point")
	}
	if it.Err() != nil {
		t.Error(it.Err())
	}
}

func TestIteratorUnknownSeries(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Iter("nope", 0, 10); !errors.Is(err, ErrNoSeries) {
		t.Errorf("err = %v", err)
	}
}

func TestIteratorExhaustedStaysDone(t *testing.T) {
	file, want := buildFile(t, Options{})
	r, _ := OpenReader(file, file.Size(), Options{})
	series := "root.sg.d2.temp"
	it, _ := r.Iter(series, 0, 1<<62)
	n := 0
	for it.Next() {
		n++
	}
	if n != len(want[series]) {
		t.Fatalf("iterated %d want %d", n, len(want[series]))
	}
	if it.Next() || it.Next() {
		t.Error("exhausted iterator yielded again")
	}
}

func BenchmarkIterator(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var buf []byte
	{
		var w *Writer
		bb := &byteBuf{}
		w = NewWriter(bb, Options{})
		start := int64(0)
		for c := 0; c < 8; c++ {
			pts := makePoints(rng, start, 4096)
			start = pts[len(pts)-1].T
			w.Append("s", pts)
		}
		w.Close()
		buf = bb.b
	}
	r, err := OpenReader(byteReaderAt(buf), int64(len(buf)), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it, _ := r.Iter("s", 0, 1<<62)
		for it.Next() {
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
	}
}

type byteBuf struct{ b []byte }

func (bb *byteBuf) Write(p []byte) (int, error) { bb.b = append(bb.b, p...); return len(p), nil }

type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b)) {
		return 0, errors.New("EOF")
	}
	n := copy(p, b[off:])
	return n, nil
}
