package tsfile

import "fmt"

// Aggregate is the result of an aggregation query over one series.
type Aggregate struct {
	Count    int
	Min, Max int64
	Sum      int64 // wrapping on overflow, like SQL engines over int64
}

// Aggregate computes count/min/max/sum over [minT, maxT] for a series. It is
// the classic statistics-pushdown: chunks entirely inside the time range
// contribute their footer statistics for count/min/max without being read,
// and only the boundary chunks — plus any chunk at all when a sum is needed
// beyond what statistics carry — are decoded.
//
// Count, Min and Max come from the footer alone when the range covers whole
// chunks. Sum comes from the footer too for chunks written with v2 stats;
// fully-covered chunks of older files are decoded only when sums are
// requested via needSum.
func (r *Reader) Aggregate(series string, minT, maxT int64, needSum bool) (Aggregate, error) {
	chunks, ok := r.index[series]
	if !ok {
		return Aggregate{}, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	var agg Aggregate
	first := true
	add := func(v int64) {
		if first || v < agg.Min {
			agg.Min = v
		}
		if first || v > agg.Max {
			agg.Max = v
		}
		first = false
	}
	for ci, m := range chunks {
		if m.MaxT < minT || m.MinT > maxT {
			continue
		}
		covered := m.MinT >= minT && m.MaxT <= maxT
		if covered && (!needSum || m.HasStats) {
			// Pushdown: statistics answer count/min/max directly, and the
			// v2 footer sum covers needSum without touching the chunk.
			agg.Count += m.Count
			add(m.MinV)
			add(m.MaxV)
			agg.Sum = int64(uint64(agg.Sum) + uint64(m.Sum))
			continue
		}
		times, vals, err := r.readChunk(series, ci, m)
		if err != nil {
			return Aggregate{}, err
		}
		for i, t := range times {
			if t < minT || t > maxT {
				continue
			}
			agg.Count++
			add(vals[i])
			agg.Sum = int64(uint64(agg.Sum) + uint64(vals[i]))
		}
	}
	return agg, nil
}
