package tsfile

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAggregateMatchesScan(t *testing.T) {
	file, want := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for series, pts := range want {
		ranges := [][2]int64{
			{pts[0].T, pts[len(pts)-1].T},            // whole series
			{pts[len(pts)/3].T, pts[2*len(pts)/3].T}, // middle window
			{pts[0].T - 100, pts[0].T - 1},           // empty window
			{pts[len(pts)/2].T, pts[len(pts)/2].T},   // single point
			{pts[10].T, pts[len(pts)-10].T},          // boundary chunks
		}
		for _, needSum := range []bool{false, true} {
			for _, rg := range ranges {
				got, err := r.Aggregate(series, rg[0], rg[1], needSum)
				if err != nil {
					t.Fatal(err)
				}
				var exp Aggregate
				firstMatch := true
				for _, p := range pts {
					if p.T < rg[0] || p.T > rg[1] {
						continue
					}
					exp.Count++
					if firstMatch || p.V < exp.Min {
						exp.Min = p.V
					}
					if firstMatch || p.V > exp.Max {
						exp.Max = p.V
					}
					exp.Sum += p.V
					firstMatch = false
				}
				if got.Count != exp.Count {
					t.Fatalf("%s %v needSum=%v: count %d want %d", series, rg, needSum, got.Count, exp.Count)
				}
				if exp.Count > 0 && (got.Min != exp.Min || got.Max != exp.Max) {
					t.Fatalf("%s %v: min/max %d/%d want %d/%d", series, rg, got.Min, got.Max, exp.Min, exp.Max)
				}
				if needSum && got.Sum != exp.Sum {
					t.Fatalf("%s %v: sum %d want %d", series, rg, got.Sum, exp.Sum)
				}
			}
		}
	}
}

func TestAggregateUnknownSeries(t *testing.T) {
	file, _ := buildFile(t, Options{})
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Aggregate("nope", 0, 100, false); err == nil {
		t.Error("unknown series accepted")
	}
}

func BenchmarkAggregatePushdownVsScan(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	start := int64(0)
	for c := 0; c < 32; c++ {
		pts := makePoints(rng, start, 4096)
		start = pts[len(pts)-1].T
		if err := w.Append("s", pts); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	file := bytes.NewReader(buf.Bytes())
	r, err := OpenReader(file, file.Size(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Aggregate("s", 0, start, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.Aggregate("s", 0, start, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}
