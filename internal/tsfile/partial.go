package tsfile

import (
	"fmt"

	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/ts2diff"
)

// This file is the partial-decode surface internal/pushdown builds on: a
// ChunkHandle exposes one integer chunk's fully-decoded time column next to
// its still-encoded value column, so the evaluator can binary-search the time
// window first and then touch only the value bits that matter, through the
// core partial kernels (SkipBlock / DecodeBlockRange / FilterBlock).
//
// Partial decode is only possible for chunks packed by a BOS-family packer
// (*core.Packer); any other packer — and any chunk already decoded into the
// chunk cache — transparently falls back to the full value column.

// ChunkColumns returns the decoded columns of one integer chunk, consulting
// the chunk cache like Query does. ci is the chunk's index within the
// series' chunk list. The returned slices may be shared with the cache and
// must be treated as read-only.
func (r *Reader) ChunkColumns(series string, ci int) ([]int64, []int64, error) {
	m, err := r.chunkMeta(series, ci)
	if err != nil {
		return nil, nil, err
	}
	return r.readChunk(series, ci, m)
}

func (r *Reader) chunkMeta(series string, ci int) (ChunkMeta, error) {
	chunks, ok := r.index[series]
	if !ok {
		return ChunkMeta{}, fmt.Errorf("%w: %q", ErrNoSeries, series)
	}
	if ci < 0 || ci >= len(chunks) {
		return ChunkMeta{}, fmt.Errorf("%w: chunk index %d of %d", ErrCorrupt, ci, len(chunks))
	}
	return chunks[ci], nil
}

// ChunkHandle is one integer chunk opened for partial access: the time
// column decoded, the value column kept encoded until a ValueRange or
// FilterValues call needs (some of) it.
type ChunkHandle struct {
	Meta ChunkMeta

	times  []int64
	vals   []int64 // full value column, when cached or fully decoded
	vcol   []byte  // encoded value column, when vals == nil
	packer codec.Packer
	bsize  int
}

// OpenChunk opens one integer chunk for partial access. A chunk-cache hit
// returns the decoded columns directly; a miss reads and decodes only the
// time column, leaving the value column encoded. OpenChunk never populates
// the cache — partial reads would poison it with incomplete columns.
func (r *Reader) OpenChunk(series string, ci int) (*ChunkHandle, error) {
	m, err := r.chunkMeta(series, ci)
	if err != nil {
		return nil, err
	}
	h := &ChunkHandle{Meta: m, packer: r.packerFor(m), bsize: r.opt.BlockSize}
	if r.cache != nil {
		if times, vals, ok := r.cache.GetInt(r.cacheID, series, ci); ok {
			h.times, h.vals = times, vals
			return h, nil
		}
	}
	body, err := r.readChunkBody(m)
	if err != nil {
		return nil, err
	}
	n64, rest, err := codec.ReadUvarint(body)
	if err != nil {
		return nil, fmt.Errorf("%w: chunk count: %v", ErrCorrupt, err)
	}
	if n64 > codec.MaxBlockLen*64 {
		return nil, fmt.Errorf("%w: chunk of %d points", ErrCorrupt, n64)
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("%w: missing kind", ErrCorrupt)
	}
	kind := rest[0]
	rest = rest[1:]
	if kind != kindInt {
		return nil, fmt.Errorf("%w: chunk kind %d is not integer", ErrKindMismatch, kind)
	}
	tlen, r2, err := codec.ReadUvarint(rest)
	if err != nil || tlen > uint64(len(r2)) {
		return nil, fmt.Errorf("%w: time column frame", ErrCorrupt)
	}
	tc := ts2diff.New(h.packer, r.opt.BlockSize)
	times, err := tc.Decode(r2[:tlen])
	if err != nil {
		return nil, fmt.Errorf("%w: time column: %v", ErrCorrupt, err)
	}
	if uint64(len(times)) != n64 {
		return nil, fmt.Errorf("%w: time column length %d, want %d", ErrCorrupt, len(times), n64)
	}
	rest = r2[tlen:]
	vlen, r3, err := codec.ReadUvarint(rest)
	if err != nil || vlen > uint64(len(r3)) {
		return nil, fmt.Errorf("%w: value column frame", ErrCorrupt)
	}
	h.times = times
	h.vcol = r3[:vlen]
	return h, nil
}

// Times is the chunk's full time column, read-only.
func (h *ChunkHandle) Times() []int64 { return h.times }

// decodeAll decodes and memoizes the full value column.
func (h *ChunkHandle) decodeAll() ([]int64, error) {
	if h.vals == nil {
		vc := codec.NewBlockwise(h.packer, h.bsize)
		vals, err := vc.Decode(h.vcol)
		if err != nil {
			return nil, fmt.Errorf("%w: value column: %v", ErrCorrupt, err)
		}
		if len(vals) != len(h.times) {
			return nil, fmt.Errorf("%w: value column length %d, want %d", ErrCorrupt, len(vals), len(h.times))
		}
		h.vals = vals
	}
	return h.vals, nil
}

// openBlocks validates the value column's count header and returns the
// packed block stream. The caller walks it with the core partial kernels.
func (h *ChunkHandle) openBlocks() ([]byte, error) {
	total, blocks, err := codec.ReadUvarint(h.vcol)
	if err != nil || total != uint64(len(h.times)) {
		return nil, fmt.Errorf("%w: value column count", ErrCorrupt)
	}
	return blocks, nil
}

// ValueRange returns the chunk's values at positions [lo, hi) (clamped),
// read-only. When the column is BOS-packed and the range is a strict
// sub-range, only the needed blocks are range-decoded and the rest are
// skipped by header arithmetic; the second result reports whether that
// partial path ran (false means the full column was decoded or cached).
func (h *ChunkHandle) ValueRange(lo, hi int) ([]int64, bool, error) {
	n := len(h.times)
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	if h.vals != nil {
		return h.vals[lo:hi], false, nil
	}
	if _, ok := h.packer.(*core.Packer); !ok || (lo == 0 && hi == n) {
		vals, err := h.decodeAll()
		if err != nil {
			return nil, false, err
		}
		return vals[lo:hi], false, nil
	}
	blocks, err := h.openBlocks()
	if err != nil {
		return nil, false, err
	}
	out := make([]int64, 0, hi-lo)
	for seen := 0; seen < hi && len(blocks) > 0; {
		bn, rest, err := core.SkipBlock(blocks)
		if err != nil {
			return nil, false, fmt.Errorf("%w: value block: %v", ErrCorrupt, err)
		}
		if bn > 0 && seen+bn > lo {
			out, _, err = core.DecodeBlockRange(blocks, out, lo-seen, hi-seen)
			if err != nil {
				return nil, false, fmt.Errorf("%w: value block: %v", ErrCorrupt, err)
			}
		}
		seen += bn
		blocks = rest
	}
	if len(out) != hi-lo {
		return nil, false, fmt.Errorf("%w: value column holds %d of [%d,%d)", ErrCorrupt, len(out), lo, hi)
	}
	return out, true, nil
}

// FilterValues calls emit(i, v), in position order, for every value v of the
// chunk with minV <= v <= maxV, i being the position within the chunk. For a
// BOS-packed column the per-class value bands decide which planes are
// decoded at all; the first result reports whether any plane (or whole
// block) was skipped that way.
func (h *ChunkHandle) FilterValues(minV, maxV int64, emit func(i int, v int64)) (bool, error) {
	if _, ok := h.packer.(*core.Packer); !ok || h.vals != nil {
		vals, err := h.decodeAll()
		if err != nil {
			return false, err
		}
		for i, v := range vals {
			if v >= minV && v <= maxV {
				emit(i, v)
			}
		}
		return false, nil
	}
	blocks, err := h.openBlocks()
	if err != nil {
		return false, err
	}
	skipped := false
	for seen := 0; seen < len(h.times) && len(blocks) > 0; {
		start := seen
		bn, sk, rest, err := core.FilterBlock(blocks, minV, maxV, func(i int, v int64) {
			emit(start+i, v)
		})
		if err != nil {
			return false, fmt.Errorf("%w: value block: %v", ErrCorrupt, err)
		}
		skipped = skipped || sk
		seen += bn
		blocks = rest
	}
	return skipped, nil
}
