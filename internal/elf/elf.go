// Package elf implements an erasing-based lossless float codec in the style
// of Elf (Li et al., VLDB 2023): before XOR compression, each value's
// trailing mantissa bits are erased when the decimal precision of the stream
// makes them redundant, which dramatically lengthens the trailing-zero runs
// the XOR stage feeds on.
//
// Substitution note (see DESIGN.md): the original Elf derives the erasable
// bit count analytically from the decimal significand; this implementation
// finds the shortest mantissa prefix that still round-trips through the
// stream's decimal precision, which erases at least as many bits and keeps
// the decode rule (round the erased value to p decimals) identical.
package elf

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"bos/internal/bitio"
	"bos/internal/codec"
	"bos/internal/floatconv"
)

var errCorrupt = errors.New("elf: corrupt stream")

// rawPrecision marks a stream without a usable decimal precision: no erasure.
const rawPrecision = 0xff

// Codec is the erasing float codec. It satisfies codec.FloatCodec.
type Codec struct{}

// Name implements codec.FloatCodec.
func (Codec) Name() string { return "Elf" }

// eraseTo truncates v's mantissa to keep bits, zeroing the rest.
func eraseTo(v float64, keep uint) float64 {
	b := math.Float64bits(v)
	b &^= 1<<(52-keep) - 1
	return math.Float64frombits(b)
}

// restore recovers the original value from an erased one at precision p.
func restore(erased float64, p int) float64 {
	scale := math.Pow(10, float64(p))
	return math.Round(erased*scale) / scale
}

// erasable returns the smallest number of kept mantissa bits that still
// recovers v at precision p, or -1 when no erasure helps.
func erasable(v float64, p int) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	for keep := uint(0); keep < 52; keep++ {
		if e := eraseTo(v, keep); restore(e, p) == v {
			if e == v {
				return -1 // nothing actually erased
			}
			return int(keep)
		}
	}
	return -1
}

// Encode implements codec.FloatCodec.
func (Codec) Encode(dst []byte, vals []float64) []byte {
	w := bitio.NewWriter(len(vals)*8 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	// Lenient detection: values that do not scale (NaN, Inf, -0, long
	// binary fractions) simply carry a zero erasure flag and exact bits.
	p, ok := floatconv.DetectPrecisionLenient(vals)
	if !ok {
		p = rawPrecision
	}
	w.WriteBits(uint64(p), 8)

	// Erase pass, recording per-value flags.
	erased := make([]float64, len(vals))
	keeps := make([]int, len(vals))
	for i, v := range vals {
		keeps[i] = -1
		erased[i] = v
		if p != rawPrecision {
			if k := erasable(v, p); k >= 0 {
				keeps[i] = k
				erased[i] = eraseTo(v, uint(k))
			}
		}
	}

	// XOR chain over the erased stream (Gorilla-style windows).
	prev := math.Float64bits(erased[0])
	w.WriteBit(flagBit(keeps[0]))
	w.WriteBits(prev, 64)
	prevLead, prevMean := uint(0), uint(0)
	window := false
	for i := 1; i < len(vals); i++ {
		w.WriteBit(flagBit(keeps[i]))
		cur := math.Float64bits(erased[i])
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		trail := uint(bits.TrailingZeros64(xor))
		mean := 64 - lead - trail
		if window && lead >= prevLead && 64-prevLead-prevMean <= trail {
			w.WriteBit(0)
			w.WriteBits(xor>>(64-prevLead-prevMean), prevMean)
			continue
		}
		w.WriteBit(1)
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(mean-1), 6)
		w.WriteBits(xor>>trail, mean)
		prevLead, prevMean, window = lead, mean, true
	}
	return append(dst, w.Bytes()...)
}

func flagBit(keep int) uint64 {
	if keep >= 0 {
		return 1
	}
	return 0
}

// Decode implements codec.FloatCodec.
func (Codec) Decode(src []byte) ([]float64, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > codec.MaxBlockLen {
		return nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	n := int(n64)
	out := make([]float64, 0, n)
	if n == 0 {
		return out, nil
	}
	p64, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("%w: precision: %v", errCorrupt, err)
	}
	p := int(p64)
	if p != rawPrecision && p > floatconv.MaxPrecision {
		return nil, fmt.Errorf("%w: precision %d", errCorrupt, p)
	}
	readFlag := func() (erased bool, err error) {
		b, err := r.ReadBit()
		if err != nil {
			return false, err
		}
		return b == 1, nil
	}
	emit := func(bitsVal uint64, wasErased bool) {
		v := math.Float64frombits(bitsVal)
		if wasErased {
			v = restore(v, p)
		}
		out = append(out, v)
	}

	wasErased, err := readFlag()
	if err != nil {
		return nil, fmt.Errorf("%w: flag: %v", errCorrupt, err)
	}
	prev, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: first value: %v", errCorrupt, err)
	}
	emit(prev, wasErased)
	var prevLead, prevMean uint
	for i := 1; i < n; i++ {
		wasErased, err = readFlag()
		if err != nil {
			return nil, fmt.Errorf("%w: flag: %v", errCorrupt, err)
		}
		b, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: control: %v", errCorrupt, err)
		}
		if b == 0 {
			emit(prev, wasErased)
			continue
		}
		b, err = r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: control: %v", errCorrupt, err)
		}
		if b == 1 {
			hdr, err := r.ReadBits(11)
			if err != nil {
				return nil, fmt.Errorf("%w: window: %v", errCorrupt, err)
			}
			prevLead = uint(hdr >> 6)
			prevMean = uint(hdr&0x3f) + 1
		}
		if prevLead+prevMean > 64 {
			return nil, fmt.Errorf("%w: window %d+%d", errCorrupt, prevLead, prevMean)
		}
		xor, err := r.ReadBits(prevMean)
		if err != nil {
			return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
		}
		prev ^= xor << (64 - prevLead - prevMean)
		emit(prev, wasErased)
	}
	return out, nil
}
