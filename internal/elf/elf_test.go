package elf

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/gorilla"
)

func roundTrip(t *testing.T, vals []float64) []byte {
	t.Helper()
	var c Codec
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %x want %x (%v vs %v)",
				i, math.Float64bits(got[i]), math.Float64bits(vals[i]), got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{1.25},
		{0.1, 0.2, 0.3}, // decimals that are not binary fractions
		{12.34, 56.78, 90.12},
		{math.Pi, math.E, math.Sqrt2}, // no decimal precision: raw path
		{math.NaN(), math.Inf(1), -0.0, 7.5},
		{1e15, -1e15, 0.001},
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestErasureActuallyErases(t *testing.T) {
	// 0.1 has a long binary mantissa; at p=1 most of it must be erasable.
	k := erasable(0.1, 1)
	if k < 0 || k > 20 {
		t.Errorf("erasable(0.1, 1) = %d, expected a short kept prefix", k)
	}
	e := eraseTo(0.1, uint(k))
	if restore(e, 1) != 0.1 {
		t.Error("restore failed")
	}
	if e == 0.1 {
		t.Error("nothing was erased")
	}
}

func TestBeatsGorillaOnDecimalData(t *testing.T) {
	// The whole point of Elf: low-precision decimal data has noisy
	// trailing mantissa bits that ruin Gorilla's XOR but erase cleanly.
	rng := rand.New(rand.NewSource(10))
	vals := make([]float64, 4096)
	v := 20.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = math.Round(v*10) / 10 // one decimal place
	}
	var e Codec
	var g gorilla.Codec
	el := len(e.Encode(nil, vals))
	gl := len(g.Encode(nil, vals))
	if el >= gl {
		t.Errorf("Elf %d bytes vs Gorilla %d — erasure bought nothing", el, gl)
	}
}

func TestRoundTripRandomDecimals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		n := rng.Intn(500) + 1
		p := rng.Intn(4)
		scale := math.Pow(10, float64(p))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.NormFloat64()*1000*scale) / scale
		}
		roundTrip(t, vals)
	}
}

func TestRoundTripAdversarialBits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	roundTrip(t, vals)
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var c Codec
	base := c.Encode(nil, []float64{1.5, 2.5, 3.75, 1e30, -2})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	vals := make([]float64, 1024)
	v := 50.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = math.Round(v*100) / 100
	}
	var c Codec
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}
