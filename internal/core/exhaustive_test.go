package core

import (
	"testing"

	"bos/internal/bitio"
	"bos/internal/stats"
)

// bruteForceCost evaluates Definition 5 directly for every integer threshold
// pair (xl, xu) with xl < xu over [xmin-1, xmax+1], with no shortcuts — an
// independent oracle for the optimal storage cost.
func bruteForceCost(vals []int64) int64 {
	s := stats.Summarize(vals)
	best := plainCost(len(vals), s.Min, s.Max)
	for xl := s.Min - 1; xl <= s.Max; xl++ {
		for xu := xl + 1; xu <= s.Max+1; xu++ {
			if xl < s.Min && xu > s.Max {
				continue // no separation: the plain baseline
			}
			if c := bruteCost(vals, xl, xu); c < best {
				best = c
			}
		}
	}
	return best
}

// bruteCost is Definition 5 computed from scratch for one threshold pair.
func bruteCost(vals []int64, xl, xu int64) int64 {
	var (
		nl, nu, nc                 int
		maxXl, minXu, minXc, maxXc int64
		haveL, haveU, haveC        bool
	)
	var xmin, xmax int64
	for i, v := range vals {
		if i == 0 || v < xmin {
			xmin = v
		}
		if i == 0 || v > xmax {
			xmax = v
		}
		switch {
		case v <= xl:
			nl++
			if !haveL || v > maxXl {
				maxXl = v
			}
			haveL = true
		case v >= xu:
			nu++
			if !haveU || v < minXu {
				minXu = v
			}
			haveU = true
		default:
			nc++
			if !haveC || v < minXc {
				minXc = v
			}
			if !haveC || v > maxXc {
				maxXc = v
			}
			haveC = true
		}
	}
	var cost int64
	if haveL {
		w := bitio.WidthOf(uint64(maxXl) - uint64(xmin))
		if w < 1 {
			w = 1
		}
		cost += int64(nl) * int64(w+1)
	}
	if haveU {
		w := bitio.WidthOf(uint64(xmax) - uint64(minXu))
		if w < 1 {
			w = 1
		}
		cost += int64(nu) * int64(w+1)
	}
	if haveC {
		w := bitio.WidthOf(uint64(maxXc) - uint64(minXc))
		if w < 1 {
			w = 1
		}
		cost += int64(nc) * int64(w)
	}
	return cost + int64(len(vals))
}

// TestExhaustiveSmallUniverse sweeps every series of length 1..4 over a
// 5-value alphabet (plus all length-5 series over a 4-value alphabet) and
// checks, against the brute-force oracle, that (a) BOS-V is optimal and
// (b) BOS-B matches BOS-V exactly — Propositions 1-3 on the full space.
func TestExhaustiveSmallUniverse(t *testing.T) {
	alphabet := []int64{0, 1, 2, 5, 13}
	var sweep func(prefix []int64, depth int, alpha []int64)
	checked := 0
	sweep = func(prefix []int64, depth int, alpha []int64) {
		if len(prefix) > 0 {
			v := PlanValue(prefix)
			b := PlanBitWidth(prefix)
			oracle := bruteForceCost(prefix)
			// A non-separated plan carries the plain Definition 1 cost.
			vCost, bCost := v.CostBits, b.CostBits
			if vCost != oracle {
				t.Fatalf("BOS-V %d != oracle %d on %v", vCost, oracle, prefix)
			}
			if bCost != vCost {
				t.Fatalf("BOS-B %d != BOS-V %d on %v", bCost, vCost, prefix)
			}
			checked++
		}
		if depth == 0 {
			return
		}
		for _, a := range alpha {
			sweep(append(prefix, a), depth-1, alpha)
		}
	}
	sweep(nil, 4, alphabet)
	sweep(nil, 5, []int64{0, 3, 4, 11})
	t.Logf("checked %d series exhaustively", checked)
}

// TestBruteOracleAgreesOnIntro pins the oracle itself to the hand-computed
// intro example so the oracle and the planners cannot drift together.
func TestBruteOracleAgreesOnIntro(t *testing.T) {
	if got := bruteForceCost([]int64{3, 2, 4, 5, 3, 2, 0, 8}); got != 24 {
		t.Fatalf("oracle = %d want 24", got)
	}
}
