package core

import "math"

// MedianApproxBoundNormal returns the Proposition 4 bound on BOS-M's
// approximation ratio for normally distributed data X ~ N(mu, sigma^2),
// which the paper proves to hold with probability 0.997:
//
//	ratio <= 2                      if sigma <= 5/3
//	ratio <= ceil(log2(3*sigma-1))  otherwise
//
// The bound is loose in practice — the empirical ratio measured in
// TestMedianApproxRatioNormal stays far below it — but it is the theoretical
// guarantee the paper offers for the linear-time planner.
func MedianApproxBoundNormal(sigma float64) float64 {
	if sigma <= 5.0/3.0 {
		return 2
	}
	return math.Ceil(math.Log2(3*sigma - 1))
}
