package core

import (
	"bos/internal/bitio"
	"bos/internal/stats"
)

// PlanMedianPaper is Algorithm 3 exactly as the paper's pseudo-code states
// it: candidate costs are *estimated* from the thresholds alone — the lower
// class is assumed to span down to xmin, the upper class up to xmax, and the
// center is charged beta+1 bits (the symmetric window spans up to 2^(beta+1)
// values) — instead of resolving each candidate's actual class bounds the
// way PlanMedian does. The winning threshold pair is then resolved into an
// exact Plan for encoding.
//
// It exists as an ablation partner: PlanMedian (exact candidate costing)
// must never pick a worse plan than this estimate-based variant.
func PlanMedianPaper(vals []int64) Plan {
	n := len(vals)
	if n == 0 {
		return plainPlan(vals)
	}
	med := stats.Median(vals)

	var lowCnt, highCnt [maxBuckets]int
	xmin, xmax := vals[0], vals[0]
	for _, v := range vals {
		if v < xmin {
			xmin = v
		}
		if v > xmax {
			xmax = v
		}
		switch {
		case v > med:
			highCnt[bitio.WidthOf(spread(med, v))]++
		case v < med:
			lowCnt[bitio.WidthOf(spread(v, med))]++
		}
	}
	maxBeta := int(bitio.WidthOf(spread(xmin, xmax)))
	if maxBeta >= maxBuckets {
		maxBeta = maxBuckets - 1
	}

	bestCost := plainCost(n, xmin, xmax)
	bestBeta := -1
	dLow := spread(xmin, med)
	dHigh := spread(med, xmax)
	nl, nu := 0, 0
	for beta := maxBeta; beta >= 1 && beta < 64; beta-- {
		if b := beta + 1; b < maxBuckets {
			nl += lowCnt[b]
			nu += highCnt[b]
		}
		if nl == 0 && nu == 0 {
			continue
		}
		// Estimated widths per the pseudo-code: classes are bounded by
		// the thresholds (xl = med-2^beta, xu = med+2^beta), not their
		// actual extrema, and the center is charged its window width.
		off := uint64(1) << uint(beta)
		var cost int64
		if nl > 0 {
			var aSpread uint64
			if dLow > off {
				aSpread = dLow - off
			}
			cost += int64(nl) * int64(classWidth(aSpread)+1)
		}
		if nu > 0 {
			var gSpread uint64
			if dHigh > off {
				gSpread = dHigh - off
			}
			cost += int64(nu) * int64(classWidth(gSpread)+1)
		}
		cost += int64(n-nl-nu) * int64(beta+1) // center window estimate
		cost += int64(n)
		if cost < bestCost {
			bestCost = cost
			bestBeta = beta
		}
	}
	if bestBeta < 0 {
		return plainPlan(vals)
	}
	// Resolve the winning thresholds into an exact plan for encoding.
	plan := resolveThresholds(vals, med, uint(bestBeta))
	if !plan.Separated || plan.CostBits >= plainCost(n, xmin, xmax) {
		return plainPlan(vals)
	}
	return plan
}

// resolveThresholds computes the exact Plan for the symmetric thresholds
// (med-2^beta, med+2^beta) by one scan over the values. Comparisons run in
// the uint64 spread domain so the thresholds never overflow int64.
func resolveThresholds(vals []int64, med int64, beta uint) Plan {
	return resolveClasses(vals,
		func(v int64) bool { return v < med && spread(v, med) >= uint64(1)<<beta },
		func(v int64) bool { return v > med && spread(med, v) >= uint64(1)<<beta })
}
