package core

import (
	"sort"

	"bos/internal/bitio"
	"bos/internal/stats"
)

// PartsPlan is the generalized separation of Figure 14: the value domain is
// split into K contiguous classes, each bit-packed at its own width, with a
// per-value class tag. K == 3 with a dominant center class degenerates to the
// BOS bitmap of Figure 2 (tag lengths 1/2/2); K == 1 is plain bit-packing.
//
// Class boundaries are chosen by dynamic programming over the distinct values
// to minimize the total value bits; the tag stream then uses a Huffman code
// over the realized class counts (the DP ignores tag-length differences
// between candidate partitions, which is the documented approximation).
type PartsPlan struct {
	K        int
	Bases    []int64 // ascending class minima
	Maxes    []int64 // class maxima
	Counts   []int
	Widths   []uint
	TagLens  []uint
	CostBits int64 // value bits + tag bits (headers excluded)
}

// PlanParts partitions vals into at most k contiguous classes. It panics if
// k < 1; it returns fewer classes than k when there are fewer distinct
// values.
func PlanParts(vals []int64, k int) PartsPlan {
	if k < 1 {
		panic("core: PlanParts needs k >= 1")
	}
	d := stats.NewDistinct(vals)
	m := len(d.Values)
	if m == 0 {
		return PartsPlan{K: 0}
	}
	if k > m {
		k = m
	}

	// classBits(a, b): value bits for one class covering distinct values
	// [a, b).
	countIn := func(a, b int) int {
		lo := 0
		if a > 0 {
			lo = d.CumLE[a-1]
		}
		return d.CumLE[b-1] - lo
	}
	classBits := func(a, b int) int64 {
		w := int64(classWidth(spread(d.Values[a], d.Values[b-1])))
		return int64(countIn(a, b)) * w
	}

	// dp[c][i]: min value bits for the first i distinct values in c classes.
	const inf = int64(1) << 62
	prev := make([]int64, m+1)
	cur := make([]int64, m+1)
	choice := make([][]int, k+1)
	for c := range choice {
		choice[c] = make([]int, m+1)
	}
	for i := 1; i <= m; i++ {
		prev[i] = classBits(0, i)
	}
	for c := 2; c <= k; c++ {
		cur[0] = inf
		for i := 1; i <= m; i++ {
			best, bestA := inf, -1
			for a := c - 1; a < i; a++ {
				if prev[a] >= inf {
					continue
				}
				if v := prev[a] + classBits(a, i); v < best {
					best, bestA = v, a
				}
			}
			cur[i], choice[c][i] = best, bestA
		}
		prev, cur = cur, prev
	}

	// Recover boundaries for exactly k classes.
	bounds := make([]int, 0, k+1)
	bounds = append(bounds, m)
	i := m
	for c := k; c >= 2; c-- {
		i = choice[c][i]
		bounds = append(bounds, i)
	}
	bounds = append(bounds, 0)
	// bounds is descending: m, ..., 0. Reverse it.
	for l, r := 0, len(bounds)-1; l < r; l, r = l+1, r-1 {
		bounds[l], bounds[r] = bounds[r], bounds[l]
	}

	p := PartsPlan{K: k}
	for c := 0; c < k; c++ {
		a, b := bounds[c], bounds[c+1]
		p.Bases = append(p.Bases, d.Values[a])
		p.Maxes = append(p.Maxes, d.Values[b-1])
		p.Counts = append(p.Counts, countIn(a, b))
		if k == 1 {
			// A single class is plain bit-packing: Definition 1
			// allows width 0 for a constant block.
			p.Widths = append(p.Widths, bitio.WidthOf(spread(d.Values[a], d.Values[b-1])))
		} else {
			p.Widths = append(p.Widths, classWidth(spread(d.Values[a], d.Values[b-1])))
		}
	}
	p.TagLens = huffmanLengths(p.Counts)
	for c := 0; c < k; c++ {
		p.CostBits += int64(p.Counts[c]) * int64(p.Widths[c]+p.TagLens[c])
	}
	return p
}

// huffmanLengths returns Huffman code lengths for the given symbol counts
// (all counts > 0). One symbol yields length 0 (no tag stream needed).
func huffmanLengths(counts []int) []uint {
	k := len(counts)
	lens := make([]uint, k)
	if k <= 1 {
		return lens
	}
	// Tiny k: simple O(k^2) Huffman via repeated min-merging of tree
	// nodes. Each node tracks the set of leaf symbols beneath it.
	type node struct {
		weight  int
		symbols []int
	}
	nodes := make([]*node, 0, k)
	for i, c := range counts {
		nodes = append(nodes, &node{weight: c, symbols: []int{i}})
	}
	for len(nodes) > 1 {
		// Find the two lightest nodes.
		a, b := 0, 1
		if nodes[b].weight < nodes[a].weight {
			a, b = b, a
		}
		for i := 2; i < len(nodes); i++ {
			switch {
			case nodes[i].weight < nodes[a].weight:
				b, a = a, i
			case nodes[i].weight < nodes[b].weight:
				b = i
			}
		}
		for _, s := range nodes[a].symbols {
			lens[s]++
		}
		for _, s := range nodes[b].symbols {
			lens[s]++
		}
		merged := &node{
			weight:  nodes[a].weight + nodes[b].weight,
			symbols: append(append([]int(nil), nodes[a].symbols...), nodes[b].symbols...),
		}
		// Remove a and b (remove the larger index first).
		if a < b {
			a, b = b, a
		}
		nodes = append(nodes[:a], nodes[a+1:]...)
		nodes = append(nodes[:b], nodes[b+1:]...)
		nodes = append(nodes, merged)
	}
	return lens
}

// canonicalCodes assigns canonical Huffman codes to the given lengths.
// Symbols are ordered by (length, index); codes count upward.
func canonicalCodes(lens []uint) []uint64 {
	type sym struct {
		i int
		l uint
	}
	order := make([]sym, len(lens))
	for i, l := range lens {
		order[i] = sym{i, l}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].l != order[b].l {
			return order[a].l < order[b].l
		}
		return order[a].i < order[b].i
	})
	codes := make([]uint64, len(lens))
	var code uint64
	var prevLen uint
	for _, s := range order {
		if s.l == 0 {
			continue
		}
		code <<= s.l - prevLen
		codes[s.i] = code
		code++
		prevLen = s.l
	}
	return codes
}

// EncodeBlockParts packs vals as a k-part block (mode 2) and returns the
// extended dst.
func EncodeBlockParts(dst []byte, vals []int64, k int) []byte {
	plan := PlanParts(vals, k)
	return EncodeBlockPartsPlan(dst, vals, &plan)
}

// EncodeBlockPartsPlan packs vals according to an existing k-parts plan.
//
//bos:hotpath
func EncodeBlockPartsPlan(dst []byte, vals []int64, plan *PartsPlan) []byte {
	w := bitio.NewWriter(len(vals)*2 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	w.WriteBits(uint64(modeParts), 8)
	w.WriteUvarint(uint64(plan.K))
	w.WriteVarint(plan.Bases[0])
	for c := 1; c < plan.K; c++ {
		w.WriteUvarint(spread(plan.Bases[c-1], plan.Bases[c]))
	}
	for c := 0; c < plan.K; c++ {
		w.WriteBits(uint64(plan.Widths[c]), 8)
		w.WriteBits(uint64(plan.TagLens[c]), 8)
	}
	codes := canonicalCodes(plan.TagLens)
	classIdx := func(v int64) int {
		// Largest base <= v.
		i := sort.Search(plan.K, func(i int) bool { return plan.Bases[i] > v }) - 1
		if i < 0 {
			i = 0
		}
		return i
	}
	for _, v := range vals {
		c := classIdx(v)
		w.WriteBits(codes[c], plan.TagLens[c])
	}
	for _, v := range vals {
		c := classIdx(v)
		w.WriteBits(spread(plan.Bases[c], v), plan.Widths[c])
	}
	return append(dst, w.Bytes()...)
}

// decodeParts decodes a mode-2 block body.
//
//bos:hotpath
func decodeParts(r *bitio.Reader, n int, out []int64) ([]int64, []byte, error) {
	fail := func(what string, err error) ([]int64, []byte, error) {
		return out, nil, corrupte("parts "+what, err)
	}
	k64, err := r.ReadUvarint()
	if err != nil {
		return fail("k", err)
	}
	if k64 == 0 || k64 > 64 {
		return out, nil, corruptn("parts k", int64(k64))
	}
	k := int(k64)
	bases := make([]int64, k)
	bases[0], err = r.ReadVarint()
	if err != nil {
		return fail("base", err)
	}
	for c := 1; c < k; c++ {
		d, err := r.ReadUvarint()
		if err != nil {
			return fail("base", err)
		}
		bases[c] = int64(uint64(bases[c-1]) + d)
	}
	widths := make([]uint, k)
	tagLens := make([]uint, k)
	for c := 0; c < k; c++ {
		wv, err := r.ReadBits(8)
		if err != nil {
			return fail("width", err)
		}
		tv, err := r.ReadBits(8)
		if err != nil {
			return fail("taglen", err)
		}
		if wv > 64 || tv > 64 {
			return out, nil, corruptn("parts width/taglen", int64(wv), int64(tv))
		}
		widths[c], tagLens[c] = uint(wv), uint(tv)
	}
	codes := canonicalCodes(tagLens)
	// Build a (length, code) -> class lookup for bit-serial decoding.
	type key struct {
		l uint
		c uint64
	}
	lookup := make(map[key]int, k)
	maxLen := uint(0)
	soleClass := -1
	for c := 0; c < k; c++ {
		if tagLens[c] == 0 {
			soleClass = c
			continue
		}
		lookup[key{tagLens[c], codes[c]}] = c
		if tagLens[c] > maxLen {
			maxLen = tagLens[c]
		}
	}
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		if maxLen == 0 {
			classes[i] = soleClass
			continue
		}
		var code uint64
		var l uint
		found := false
		for l < maxLen {
			b, err := r.ReadBit()
			if err != nil {
				return fail("tag", err)
			}
			code = code<<1 | b
			l++
			if c, ok := lookup[key{l, code}]; ok {
				classes[i] = c
				found = true
				break
			}
		}
		if !found {
			return out, nil, corrupt("parts: invalid tag code")
		}
	}
	for i := 0; i < n; i++ {
		c := classes[i]
		d, err := r.ReadBits(widths[c])
		if err != nil {
			return out, nil, corruptne("parts value", int64(i), err)
		}
		out = append(out, int64(uint64(bases[c])+d))
	}
	return out, r.Rest(), nil
}
