package core

import (
	"encoding/hex"
	"testing"
)

// Golden block-format tests (Figure 7 layout): fixed inputs must encode to
// fixed bytes. A failure means the block format changed — revise only with a
// deliberate format version bump.
func TestGoldenBlockFormat(t *testing.T) {
	intro := []int64{3, 2, 4, 5, 3, 2, 0, 8}
	cases := []struct {
		name string
		enc  []byte
		want string
	}{
		{"bos block", EncodeBlock(nil, intro, SeparationValue), "0801000101020801020102d2d0"},
		{"plain block", EncodeBlock(nil, []int64{10, 11, 12, 13}, SeparationNone), "040014021b"},
		{"parts block", EncodeBlockParts(nil, intro, 3), "0802030003020202010102024d5a88c0"},
	}
	for _, c := range cases {
		if got := hex.EncodeToString(c.enc); got != c.want {
			t.Errorf("%s:\n  got  %s\n  want %s", c.name, got, c.want)
		}
	}
}

// Dissect the golden BOS block against the Figure 7 layout, field by field,
// so the golden hex is not just a magic string.
func TestGoldenBOSBlockLayout(t *testing.T) {
	enc, _ := hex.DecodeString("0801000101020801020102d2d0")
	info, rest, err := InspectBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %x", rest)
	}
	if info.N != 8 || info.Mode != "bos" {
		t.Fatalf("info = %+v", info)
	}
	// Layout: n=8 | mode=1 | xmin=0 | nl=1 | nu=1 | offC=2 | offU=8 |
	// alpha=1 beta=2 gamma=1 | bitmap 10 0 0 0 0 0 11 (8+2 bits) |
	// values: 0@1b, 1 0 2 3 1 0 @2b, 0@1b -> the trailing d2d0.
	if info.Xmin != 0 || info.NL != 1 || info.NU != 1 {
		t.Fatalf("header fields: %+v", info)
	}
	if info.Alpha != 1 || info.Beta != 2 || info.Gamma != 1 {
		t.Fatalf("widths: %+v", info)
	}
}
