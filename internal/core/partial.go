package core

import (
	"bos/internal/bitio"
)

// This file gives compressed-domain access to encoded blocks, the kernels
// under internal/pushdown's tiered chunk evaluator:
//
//   - SkipBlock finds a block boundary from its header alone — the value
//     section's bit length is fully determined by the counts and widths, so
//     skipping costs O(header) instead of O(n) decode.
//   - DecodeBlockRange materializes only a positional sub-range, bit-skipping
//     the values before and after it.
//   - FilterBlock evaluates a value predicate against the per-class bands
//     first: a class whose representable range [base, base+2^width) cannot
//     intersect [minV, maxV] is skipped without touching its bits. For
//     predicates inside the inlier band this reads the center plane only;
//     for predicates outside it, only the outlier planes.
//
// Parts-mode blocks (Figure 14) interleave Huffman-tagged sections whose
// length the header alone does not determine, so all three fall back to full
// decode there. None of these run on the bulk decode hot path, so they are
// deliberately not //bos:hotpath.

// bosHead is the parsed fixed header of a modeBOS block (Figure 7).
type bosHead struct {
	xmin, minXc, minXu int64
	nl, nu             int
	alpha, beta, gamma uint
}

// widthOf returns the bit-width of one value of class c.
func (h *bosHead) widthOf(c class) uint {
	switch c {
	case classLower:
		return h.alpha
	case classUpper:
		return h.gamma
	default:
		return h.beta
	}
}

// baseOf returns the class minimum values of class c are stored relative to.
func (h *bosHead) baseOf(c class) int64 {
	switch c {
	case classLower:
		return h.xmin
	case classUpper:
		return h.minXu
	default:
		return h.minXc
	}
}

// bitmapBits is the exact bit length of the positional bitmap: one bit per
// value plus a second bit per declared outlier.
func (h *bosHead) bitmapBits(n int) int { return n + h.nl + h.nu }

// valueBits is the exact bit length of the value section as declared by the
// header. Bounded by maxBlockLen * 64 bits, so it cannot overflow int.
func (h *bosHead) valueBits(n int) int {
	return (n-h.nl-h.nu)*int(h.beta) + h.nl*int(h.alpha) + h.nu*int(h.gamma)
}

// parseBOSHead reads the modeBOS header after the count and mode byte,
// applying the same validation as decodeBOS.
func parseBOSHead(r *bitio.Reader, n int) (bosHead, error) {
	var h bosHead
	xmin, err := r.ReadVarint()
	if err != nil {
		return h, corrupte("xmin", err)
	}
	nl64, err := r.ReadUvarint()
	if err != nil {
		return h, corrupte("nl", err)
	}
	nu64, err := r.ReadUvarint()
	if err != nil {
		return h, corrupte("nu", err)
	}
	// Checked individually before the sum so a wrapping uint64 sum cannot
	// sneak absurd counts past the bound.
	if nl64 > uint64(n) || nu64 > uint64(n) || nl64+nu64 > uint64(n) {
		return h, corruptn("outlier counts exceed block size", int64(nl64), int64(nu64), int64(n))
	}
	offC, err := r.ReadUvarint()
	if err != nil {
		return h, corrupte("minXc", err)
	}
	offU, err := r.ReadUvarint()
	if err != nil {
		return h, corrupte("minXu", err)
	}
	widths, err := r.ReadBits(24)
	if err != nil {
		return h, corrupte("widths", err)
	}
	h.alpha = uint(widths >> 16 & 0xff)
	h.beta = uint(widths >> 8 & 0xff)
	h.gamma = uint(widths & 0xff)
	if h.alpha > 64 || h.beta > 64 || h.gamma > 64 {
		return h, corruptn("widths", int64(h.alpha), int64(h.beta), int64(h.gamma))
	}
	h.xmin = xmin
	h.nl, h.nu = int(nl64), int(nu64)
	h.minXc = int64(uint64(xmin) + offC)
	h.minXu = int64(uint64(xmin) + offU)
	return h, nil
}

// readClasses walks the positional bitmap exactly as decodeBOS does and
// returns the class of every position, leaving r at the value section.
func readClasses(r *bitio.Reader, n int, h *bosHead) ([]class, error) {
	data, pos := r.Data()
	if pos+h.bitmapBits(n) > len(data)*8 {
		return nil, corrupte("bitmap", bitio.ErrUnexpectedEOF)
	}
	classes := make([]class, n)
	declared := h.nl + h.nu
	outliers := 0
	for i := 0; i < n; {
		if pos&7 == 0 && i+8 <= n && data[pos>>3] == 0 {
			i += 8 // classes are zero-initialized to classCenter
			pos += 8
			continue
		}
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			pos++
			i++
			continue
		}
		if outliers == declared {
			return nil, corruptn("bitmap marks more outliers than declared", int64(declared))
		}
		outliers++
		pos++
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			classes[i] = classLower
		} else {
			classes[i] = classUpper
		}
		pos++
		i++
	}
	r.SetBitPos(pos)
	return classes, nil
}

// advanceBits moves r forward by exactly `bits` payload bits, failing rather
// than clamping when the buffer is too short.
func advanceBits(r *bitio.Reader, bits int) error {
	data, pos := r.Data()
	if bits < 0 || pos+bits > len(data)*8 {
		return corrupte("body", bitio.ErrUnexpectedEOF)
	}
	r.SetBitPos(pos + bits)
	return nil
}

// SkipBlock advances past one block from the front of src without decoding
// its values and returns the block's value count plus the unread remainder.
// Plain and BOS bodies are skipped arithmetically from the header; parts
// blocks fall back to a full decode to find the boundary.
func SkipBlock(src []byte) (int, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return 0, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		return 0, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if n == 0 {
		return 0, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return 0, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		if _, err := r.ReadVarint(); err != nil {
			return 0, nil, corrupte("xmin", err)
		}
		width, err := r.ReadBits(8)
		if err != nil {
			return 0, nil, corrupte("width", err)
		}
		if width > 64 {
			return 0, nil, corruptn("width", int64(width))
		}
		if err := advanceBits(r, n*int(width)); err != nil {
			return 0, nil, err
		}
		return n, r.Rest(), nil
	case modeBOS:
		h, err := parseBOSHead(r, n)
		if err != nil {
			return 0, nil, err
		}
		if err := advanceBits(r, h.bitmapBits(n)+h.valueBits(n)); err != nil {
			return 0, nil, err
		}
		return n, r.Rest(), nil
	case modeParts:
		_, rest, err := DecodeBlock(src, nil)
		if err != nil {
			return 0, nil, err
		}
		return n, rest, nil
	default:
		return 0, nil, corruptn("unknown mode", int64(mode))
	}
}

// DecodeBlockRange decodes one block from the front of src but materializes
// only the values at positions [lo, hi) (clamped to the block), appending
// them to out. The values outside the range are bit-skipped, not decoded. It
// returns the grown slice and the unread remainder after the whole block.
func DecodeBlockRange(src []byte, out []int64, lo, hi int) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		return out, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if n == 0 {
		return out, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		xmin, err := r.ReadVarint()
		if err != nil {
			return out, nil, corrupte("xmin", err)
		}
		width, err := r.ReadBits(8)
		if err != nil {
			return out, nil, corrupte("width", err)
		}
		if width > 64 {
			return out, nil, corruptn("width", int64(width))
		}
		data, pos := r.Data()
		if pos+n*int(width) > len(data)*8 {
			return out, nil, corrupte("values", bitio.ErrUnexpectedEOF)
		}
		if lo < hi {
			r.SetBitPos(pos + lo*int(width))
			base := len(out)
			out = append(out, make([]int64, hi-lo)...)
			if err := r.ReadBulkInt64(out[base:], uint(width), uint64(xmin)); err != nil {
				return out[:base], nil, corrupte("values", err)
			}
		}
		r.SetBitPos(pos + n*int(width))
		return out, r.Rest(), nil
	case modeBOS:
		h, err := parseBOSHead(r, n)
		if err != nil {
			return out, nil, err
		}
		classes, err := readClasses(r, n, &h)
		if err != nil {
			return out, nil, err
		}
		// Bit offsets within the value section, from the actual classes
		// (exact even when the bitmap declared more outliers than it marked).
		skip, total := 0, 0
		for i, c := range classes {
			w := int(h.widthOf(c))
			if i < lo {
				skip += w
			}
			total += w
		}
		data, pos := r.Data()
		if pos+total > len(data)*8 {
			return out, nil, corrupte("values", bitio.ErrUnexpectedEOF)
		}
		if lo < hi {
			r.SetBitPos(pos + skip)
			base := len(out)
			out = append(out, make([]int64, hi-lo)...)
			for i := lo; i < hi; {
				if classes[i] == classCenter {
					j := i + 1
					for j < hi && classes[j] == classCenter {
						j++
					}
					if err := r.ReadBulkInt64(out[base+i-lo:base+j-lo], h.beta, uint64(h.minXc)); err != nil {
						return out[:base], nil, corruptne("values at", int64(i), err)
					}
					i = j
					continue
				}
				d, err := r.ReadBits(h.widthOf(classes[i]))
				if err != nil {
					return out[:base], nil, corruptne("value", int64(i), err)
				}
				out[base+i-lo] = int64(uint64(h.baseOf(classes[i])) + d)
				i++
			}
		}
		r.SetBitPos(pos + total)
		return out, r.Rest(), nil
	case modeParts:
		vals, rest, err := DecodeBlock(src, nil)
		if err != nil {
			return out, nil, err
		}
		return append(out, vals[lo:hi]...), rest, nil
	default:
		return out, nil, corruptn("unknown mode", int64(mode))
	}
}

// bandMax returns the largest value a class with minimum `base` and width w
// can represent (base + 2^w - 1) and whether that bound is meaningful — a
// width of 64 or an int64 wraparound makes the band unbounded, which callers
// must treat as "may contain anything".
func bandMax(base int64, w uint) (int64, bool) {
	if w >= 64 {
		return 0, false
	}
	hi := int64(uint64(base) + (uint64(1) << w) - 1)
	return hi, hi >= base
}

// bandDisjoint reports whether a class with the given minimum and width is
// provably disjoint from [minV, maxV].
func bandDisjoint(base int64, w uint, minV, maxV int64) bool {
	hi, ok := bandMax(base, w)
	return ok && (hi < minV || base > maxV)
}

// FilterBlock decodes one block from the front of src and calls emit(i, v),
// in position order, for each value v at block position i with
// minV <= v <= maxV. Classes whose representable band is provably disjoint
// from the predicate are bit-skipped without decoding — the inlier-plane (or
// outlier-plane-only) scan. It returns the block's value count, whether any
// present class was skipped that way, and the unread remainder.
func FilterBlock(src []byte, minV, maxV int64, emit func(i int, v int64)) (int, bool, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return 0, false, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		return 0, false, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if n == 0 {
		return 0, false, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return 0, false, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		xmin, err := r.ReadVarint()
		if err != nil {
			return 0, false, nil, corrupte("xmin", err)
		}
		w, err := r.ReadBits(8)
		if err != nil {
			return 0, false, nil, corrupte("width", err)
		}
		if w > 64 {
			return 0, false, nil, corruptn("width", int64(w))
		}
		if bandDisjoint(xmin, uint(w), minV, maxV) {
			if err := advanceBits(r, n*int(w)); err != nil {
				return 0, false, nil, err
			}
			return n, true, r.Rest(), nil
		}
		vals := make([]int64, n)
		if err := r.ReadBulkInt64(vals, uint(w), uint64(xmin)); err != nil {
			return 0, false, nil, corrupte("values", err)
		}
		for i, v := range vals {
			if v >= minV && v <= maxV {
				emit(i, v)
			}
		}
		return n, false, r.Rest(), nil
	case modeBOS:
		h, err := parseBOSHead(r, n)
		if err != nil {
			return 0, false, nil, err
		}
		classes, err := readClasses(r, n, &h)
		if err != nil {
			return 0, false, nil, err
		}
		skipClass := [3]bool{
			classCenter: bandDisjoint(h.minXc, h.beta, minV, maxV),
			classLower:  bandDisjoint(h.xmin, h.alpha, minV, maxV),
			classUpper:  bandDisjoint(h.minXu, h.gamma, minV, maxV),
		}
		data, pos := r.Data()
		total := 0
		for _, c := range classes {
			total += int(h.widthOf(c))
		}
		if pos+total > len(data)*8 {
			return 0, false, nil, corrupte("values", bitio.ErrUnexpectedEOF)
		}
		skipped := false
		var scratch []int64
		for i := 0; i < n; {
			c := classes[i]
			if c == classCenter {
				j := i + 1
				for j < n && classes[j] == classCenter {
					j++
				}
				if skipClass[classCenter] {
					if err := advanceBits(r, (j-i)*int(h.beta)); err != nil {
						return 0, false, nil, err
					}
					skipped = true
					i = j
					continue
				}
				if cap(scratch) < j-i {
					scratch = make([]int64, j-i)
				}
				scratch = scratch[:j-i]
				if err := r.ReadBulkInt64(scratch, h.beta, uint64(h.minXc)); err != nil {
					return 0, false, nil, corruptne("values at", int64(i), err)
				}
				for k, v := range scratch {
					if v >= minV && v <= maxV {
						emit(i+k, v)
					}
				}
				i = j
				continue
			}
			w := h.widthOf(c)
			if skipClass[c] {
				if err := advanceBits(r, int(w)); err != nil {
					return 0, false, nil, err
				}
				skipped = true
				i++
				continue
			}
			d, err := r.ReadBits(w)
			if err != nil {
				return 0, false, nil, corruptne("value", int64(i), err)
			}
			if v := int64(uint64(h.baseOf(c)) + d); v >= minV && v <= maxV {
				emit(i, v)
			}
			i++
		}
		return n, skipped, r.Rest(), nil
	case modeParts:
		vals, rest, err := DecodeBlock(src, nil)
		if err != nil {
			return 0, false, nil, err
		}
		for i, v := range vals {
			if v >= minV && v <= maxV {
				emit(i, v)
			}
		}
		return n, false, rest, nil
	default:
		return 0, false, nil, corruptn("unknown mode", int64(mode))
	}
}
