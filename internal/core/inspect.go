package core

import (
	"fmt"

	"bos/internal/bitio"
)

// BlockInfo is the parsed header of one encoded block, for debugging and
// storage inspection (cmd/bosinspect). It reports what the planner chose
// without decoding the values.
type BlockInfo struct {
	N    int
	Mode string // "plain", "bos" or "parts"

	// Plain fields.
	Xmin  int64
	Width uint

	// BOS fields (Figure 7 header).
	NL, NU             int
	MinXc, MinXu       int64
	Alpha, Beta, Gamma uint

	// Parts fields.
	K int

	// BodyBytes is the total encoded size of the block.
	BodyBytes int
}

// InspectBlock parses the header of the next block in src and returns its
// description plus the remainder after the whole block. The values are
// decoded (and discarded) only to find the block boundary.
func InspectBlock(src []byte) (BlockInfo, []byte, error) {
	var info BlockInfo
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return info, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > maxBlockLen {
		return info, nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	info.N = int(n64)
	if info.N == 0 {
		info.Mode = "plain"
		rest := r.Rest()
		info.BodyBytes = len(src) - len(rest)
		return info, rest, nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return info, nil, fmt.Errorf("%w: mode: %v", errCorrupt, err)
	}
	switch byte(mode) {
	case modePlain:
		info.Mode = "plain"
		if info.Xmin, err = r.ReadVarint(); err != nil {
			return info, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
		}
		w, err := r.ReadBits(8)
		if err != nil || w > 64 {
			return info, nil, fmt.Errorf("%w: width", errCorrupt)
		}
		info.Width = uint(w)
	case modeBOS:
		info.Mode = "bos"
		if info.Xmin, err = r.ReadVarint(); err != nil {
			return info, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
		}
		nl, err := r.ReadUvarint()
		if err != nil {
			return info, nil, fmt.Errorf("%w: nl: %v", errCorrupt, err)
		}
		nu, err := r.ReadUvarint()
		if err != nil {
			return info, nil, fmt.Errorf("%w: nu: %v", errCorrupt, err)
		}
		if nl+nu > n64 {
			return info, nil, fmt.Errorf("%w: outlier counts", errCorrupt)
		}
		info.NL, info.NU = int(nl), int(nu)
		offC, err := r.ReadUvarint()
		if err != nil {
			return info, nil, fmt.Errorf("%w: minXc: %v", errCorrupt, err)
		}
		offU, err := r.ReadUvarint()
		if err != nil {
			return info, nil, fmt.Errorf("%w: minXu: %v", errCorrupt, err)
		}
		info.MinXc = int64(uint64(info.Xmin) + offC)
		info.MinXu = int64(uint64(info.Xmin) + offU)
		widths, err := r.ReadBits(24)
		if err != nil {
			return info, nil, fmt.Errorf("%w: widths: %v", errCorrupt, err)
		}
		info.Alpha = uint(widths >> 16 & 0xff)
		info.Beta = uint(widths >> 8 & 0xff)
		info.Gamma = uint(widths & 0xff)
	case modeParts:
		info.Mode = "parts"
		k, err := r.ReadUvarint()
		if err != nil || k == 0 || k > 64 {
			return info, nil, fmt.Errorf("%w: parts k", errCorrupt)
		}
		info.K = int(k)
	default:
		return info, nil, fmt.Errorf("%w: unknown mode %d", errCorrupt, mode)
	}
	// Find the block boundary by decoding (the payload is bit-packed; the
	// header alone does not determine byte length for parts blocks).
	_, rest, err := DecodeBlock(src, nil)
	if err != nil {
		return info, nil, err
	}
	info.BodyBytes = len(src) - len(rest)
	return info, rest, nil
}
