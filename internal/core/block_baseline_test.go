//go:build bosoldref

package core

import (
	"bytes"
	"math/rand"
	"os"
	"testing"

	"bos/internal/bitio"
)

// diffSeries builds a block's worth of values at roughly rate outliers per
// thousand, mixing lower and upper bands.
func diffSeries(rng *rand.Rand, n, ratePermille int, beta uint) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		if rng.Intn(1000) < ratePermille {
			d := int64(1)<<40 + rng.Int63n(1<<20)
			if rng.Intn(2) == 0 {
				d = -d
			}
			vals[i] = d
		} else {
			vals[i] = rng.Int63n(1 << beta)
		}
	}
	return vals
}

// TestEncodeBOSByteIdentity pins the chunked-bitmap, mark-list encoder
// against the frozen per-value baseline: same plan, same values, same bytes.
func TestEncodeBOSByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seps := []Separation{SeparationValue, SeparationBitWidth, SeparationMedian, SeparationUpperOnly}
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(600)
		vals := diffSeries(rng, n, []int{0, 1, 10, 50, 200, 900}[iter%6], uint(4+rng.Intn(16)))
		plan := PlanFor(vals, seps[iter%len(seps)])
		if !plan.Separated {
			continue
		}
		wNew := bitio.NewWriter(n * 2)
		encodeBOS(wNew, vals, &plan)
		wOld := bitio.NewWriter(n * 2)
		encodeBOSRef(wOld, vals, &plan)
		if !bytes.Equal(wNew.Bytes(), wOld.Bytes()) {
			t.Fatalf("iter %d (n=%d sep=%v): encoded stream differs from baseline", iter, n, seps[iter%len(seps)])
		}
	}
}

// TestDecodeBOSDifferentialRandom feeds valid, truncated and bit-flipped
// blocks to both decoders: they must agree on acceptance, values and
// remainder.
func TestDecodeBOSDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(600)
		vals := diffSeries(rng, n, []int{0, 1, 10, 50, 200}[iter%5], uint(4+rng.Intn(16)))
		src := EncodeBlock(nil, vals, SeparationValue)
		src = append(src, 0xa5, 0x5a) // trailing bytes exercise Rest()
		switch iter % 3 {
		case 1:
			src = src[:rng.Intn(len(src)+1)]
		case 2:
			src[rng.Intn(len(src))] ^= 1 << uint(rng.Intn(8))
		}
		checkDecodersAgree(t, src)
	}
}

func checkDecodersAgree(t *testing.T, src []byte) {
	t.Helper()
	gotNew, restNew, errNew := DecodeBlock(src, nil)
	gotOld, restOld, errOld := decodeBlockRef(src, nil)
	if (errNew == nil) != (errOld == nil) {
		t.Fatalf("decoders disagree on acceptance: new=%v old=%v (src %x)", errNew, errOld, src)
	}
	if errNew != nil {
		return
	}
	if len(gotNew) != len(gotOld) {
		t.Fatalf("value count %d vs %d", len(gotNew), len(gotOld))
	}
	for i := range gotNew {
		if gotNew[i] != gotOld[i] {
			t.Fatalf("value %d: new %d old %d", i, gotNew[i], gotOld[i])
		}
	}
	if !bytes.Equal(restNew, restOld) {
		t.Fatalf("remainders differ: %x vs %x", restNew, restOld)
	}
}

// FuzzDecodeBOS differentially fuzzes the run-fused decoder against the
// frozen baseline on arbitrary bytes. Run with -tags bosoldref.
func FuzzDecodeBOS(f *testing.F) {
	rng := rand.New(rand.NewSource(33))
	for _, rate := range []int{0, 10, 200} {
		vals := diffSeries(rng, 256, rate, 8)
		f.Add(EncodeBlock(nil, vals, SeparationValue))
		f.Add(EncodeBlock(nil, vals, SeparationMedian))
	}
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x01})
	f.Fuzz(func(t *testing.T, src []byte) {
		checkDecodersAgree(t, src)
	})
}

// TestDecodeBOSSpeedup is the CI block-decode smoke: at a 1% outlier rate the
// run-fused decoder must beat the frozen per-bit baseline by at least 1.5x
// (in practice 3.5-4.7x). Opt-in via BOS_BENCH_SMOKE=1, like the bitio kernel
// smoke, so noisy development machines do not see spurious failures.
func TestDecodeBOSSpeedup(t *testing.T) {
	if os.Getenv("BOS_BENCH_SMOKE") == "" {
		t.Skip("set BOS_BENCH_SMOKE=1 to run the block decode speedup smoke")
	}
	rng := rand.New(rand.NewSource(40))
	vals := diffSeries(rng, 1024, 10, 8) // 1% outliers, 8-bit centers
	if plan := PlanFor(vals, SeparationValue); !plan.Separated {
		t.Fatal("fixture no longer produces a separated plan")
	}
	src := EncodeBlock(nil, vals, SeparationValue)
	out := make([]int64, 0, len(vals))
	var sc Scratch
	fused := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeBlockScratch(src, out[:0], &sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	baseline := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := decodeBlockRef(src, out[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(baseline.NsPerOp()) / float64(fused.NsPerOp())
	t.Logf("baseline %v, run-fused %v, speedup %.2fx", baseline, fused, ratio)
	if ratio < 1.5 {
		t.Fatalf("run-fused decode only %.2fx the baseline, want >= 1.5x", ratio)
	}
}
