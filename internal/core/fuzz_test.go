package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeBlock drives the block decoder with arbitrary bytes: it must
// return an error or a value slice, never panic, and any block it accepts
// must re-encode deterministically through the round trip.
func FuzzDecodeBlock(f *testing.F) {
	f.Add(EncodeBlock(nil, introSeries, SeparationValue))
	f.Add(EncodeBlock(nil, Fig1Series, SeparationMedian))
	f.Add(EncodeBlock(nil, []int64{7, 7, 7}, SeparationNone))
	f.Add(EncodeBlockParts(nil, Fig1Series, 5))
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, rest, err := DecodeBlock(data, nil)
		if err != nil {
			return
		}
		// Accepted input: re-encoding the decoded values and decoding
		// again must give the same values (decode/encode stability).
		enc := EncodeBlock(nil, vals, SeparationBitWidth)
		again, rest2, err := DecodeBlock(enc, nil)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(again) != len(vals) {
			t.Fatalf("re-encode changed length %d -> %d", len(vals), len(again))
		}
		for i := range vals {
			if again[i] != vals[i] {
				t.Fatalf("value %d drifted: %d -> %d", i, vals[i], again[i])
			}
		}
		_ = rest
	})
}

// FuzzEncodeDecodeValues fuzzes the value domain: any byte string
// reinterpreted as int64s must round-trip through every separation.
func FuzzEncodeDecodeValues(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]int64, len(data)/8)
		for i := range vals {
			b := data[i*8:]
			vals[i] = int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
				uint64(b[3])<<24 | uint64(b[4])<<32 | uint64(b[5])<<40 |
				uint64(b[6])<<48 | uint64(b[7])<<56)
		}
		for _, sep := range []Separation{SeparationNone, SeparationBitWidth, SeparationMedian} {
			enc := EncodeBlock(nil, vals, sep)
			got, rest, err := DecodeBlock(enc, nil)
			if err != nil {
				t.Fatalf("%v: %v", sep, err)
			}
			if len(rest) != 0 || len(got) != len(vals) {
				t.Fatalf("%v: got %d values, %d rest", sep, len(got), len(rest))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%v: value %d: %d != %d", sep, i, got[i], vals[i])
				}
			}
		}
	})
}
