package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// Outlier-rate sweep for the block codec hot paths. The decode cost of a BOS
// block is dominated by the interleaving the bitmap creates: the average
// center run is ~1/rate values, so higher outlier rates mean shorter runs and
// more per-run entry cost. BENCH_bos_block.json records this sweep before and
// after the run-fused decode path.

// rateWidths are the inlier bit-widths the sweep covers (beta after
// frame-of-reference).
var rateWidths = []uint{4, 8, 16}

// ratePermille are the outlier rates in permille: 0%, 0.1%, 1%, 5%, 20%.
var ratePermille = []int{0, 1, 10, 50, 200}

// rateSeries builds a 1024-value series whose plan has inlier width ~beta and
// the given outlier rate (half lower, half upper outliers).
func rateSeries(rate int, beta uint) []int64 {
	rng := rand.New(rand.NewSource(int64(rate)*1000 + int64(beta)))
	vals := make([]int64, 1024)
	for i := range vals {
		r := rng.Intn(1000)
		switch {
		case r < rate/2: // lower outlier, far below the center band
			vals[i] = -(1 << 40) - rng.Int63n(1<<20)
		case r < rate: // upper outlier, far above
			vals[i] = (1 << 40) + rng.Int63n(1<<20)
		default: // center band
			vals[i] = rng.Int63n(1 << beta)
		}
	}
	return vals
}

func rateName(rate int) string {
	if rate%10 == 0 {
		return fmt.Sprintf("r%d%%", rate/10)
	}
	return fmt.Sprintf("r0.%d%%", rate%10)
}

func BenchmarkDecodeBlock(b *testing.B) {
	for _, rate := range ratePermille {
		for _, beta := range rateWidths {
			b.Run(fmt.Sprintf("%s/w%02d", rateName(rate), beta), func(b *testing.B) {
				vals := rateSeries(rate, beta)
				enc := EncodeBlock(nil, vals, SeparationBitWidth)
				out := make([]int64, 0, len(vals))
				var sc Scratch
				b.ReportAllocs()
				b.SetBytes(int64(len(vals)) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					out, _, err = DecodeBlockScratch(enc, out[:0], &sc)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	for _, rate := range ratePermille {
		for _, beta := range rateWidths {
			b.Run(fmt.Sprintf("%s/w%02d", rateName(rate), beta), func(b *testing.B) {
				vals := rateSeries(rate, beta)
				plan := PlanFor(vals, SeparationBitWidth)
				var buf []byte
				b.ReportAllocs()
				b.SetBytes(int64(len(vals)) * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = EncodeBlockPlan(buf[:0], vals, &plan)
				}
			})
		}
	}
}

// TestDecodeBlockZeroAllocs pins the steady-state decode alloc contract: with
// a reused scratch and a pre-sized output slice, block decode performs no
// heap allocation at any outlier rate.
func TestDecodeBlockZeroAllocs(t *testing.T) {
	for _, rate := range ratePermille {
		for _, beta := range rateWidths {
			vals := rateSeries(rate, beta)
			enc := EncodeBlock(nil, vals, SeparationBitWidth)
			out := make([]int64, 0, len(vals))
			var sc Scratch
			// Warm the scratch (first call may grow the mark list).
			if _, _, err := DecodeBlockScratch(enc, out[:0], &sc); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				var err error
				out, _, err = DecodeBlockScratch(enc, out[:0], &sc)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("rate %d beta %d: %v allocs/op, want 0", rate, beta, allocs)
			}
		}
	}
}
