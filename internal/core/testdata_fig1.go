package core

// Fig1Series is a 100-point series shaped like Figure 1 of the paper: values
// in [465, 935] with the bulk of the mass concentrated in a narrow center
// band around the median, five lower outliers at or below 620, and four
// upper outliers at or above 794. It drives the worked-example tests
// (Examples 1-4) and the quickstart example.
//
// The exact values of the paper's series are not published; this series is
// engineered so that the quantities stated in Example 1 hold: with the
// thresholds (xl, xu) = (620, 794) there are nl = 5 lower and nu = 4 upper
// outliers, so the bitmap costs n + nl + nu = 109 bits.
var Fig1Series = []int64{
	659, 676, 668, 683, 650, 672, 690, 662, 678, 655,
	671, 686, 645, 669, 681, 658, 674, 693, 652, 666,
	465, 680, 661, 688, 673, 648, 677, 664, 685, 656,
	670, 692, 653, 679, 667, 684, 649, 675, 660, 687,
	540, 646, 682, 657, 694, 663, 671, 689, 651, 678,
	935, 665, 680, 647, 691, 668, 674, 654, 686, 659,
	580, 677, 644, 683, 662, 695, 669, 656, 688, 672,
	850, 650, 679, 664, 692, 648, 675, 660, 685, 670,
	620, 653, 690, 667, 681, 600, 673, 658, 694, 663,
	900, 676, 655, 687, 649, 682, 665, 794, 671, 684,
}
