//go:build bosoldref

package core

import "bos/internal/bitio"

// This file preserves the pre-run-fusion block codec — the per-bit bitmap
// walk with a full per-value class slice, and the per-value WriteBit encoder
// — as a differential baseline. It is compiled only under the bosoldref tag,
// where FuzzDecodeBOS and the byte-identity tests pin the rewritten hot paths
// against it: same bytes in, same values (or same rejection) out, and same
// bytes produced for every plan. It is frozen code; do not optimize it.

// decodeBlockRef mirrors DecodeBlock but routes modeBOS through the old
// decoder. Other modes share the live implementation (they were not touched
// by the rewrite).
func decodeBlockRef(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		return out, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if n == 0 {
		return out, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		return decodePlain(r, n, out)
	case modeBOS:
		return decodeBOSRef(r, n, out)
	case modeParts:
		return decodeParts(r, n, out)
	default:
		return out, nil, corruptn("unknown mode", int64(mode))
	}
}

func decodeBOSRef(r *bitio.Reader, n int, out []int64) ([]int64, []byte, error) {
	fail := func(what string, err error) ([]int64, []byte, error) {
		return out, nil, corrupte(what, err)
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return fail("xmin", err)
	}
	nl64, err := r.ReadUvarint()
	if err != nil {
		return fail("nl", err)
	}
	nu64, err := r.ReadUvarint()
	if err != nil {
		return fail("nu", err)
	}
	if nl64+nu64 > uint64(n) {
		return out, nil, corruptn("outlier counts exceed block size", int64(nl64), int64(nu64), int64(n))
	}
	offC, err := r.ReadUvarint()
	if err != nil {
		return fail("minXc", err)
	}
	offU, err := r.ReadUvarint()
	if err != nil {
		return fail("minXu", err)
	}
	widths, err := r.ReadBits(24)
	if err != nil {
		return fail("widths", err)
	}
	alpha := uint(widths >> 16 & 0xff)
	beta := uint(widths >> 8 & 0xff)
	gamma := uint(widths & 0xff)
	if alpha > 64 || beta > 64 || gamma > 64 {
		return out, nil, corruptn("widths", int64(alpha), int64(beta), int64(gamma))
	}
	minXc := int64(uint64(xmin) + offC)
	minXu := int64(uint64(xmin) + offU)

	// First pass: the positional bitmap, one bit at a time, into a
	// per-value class slice.
	data, pos := r.Data()
	if pos+n+int(nl64+nu64) > len(data)*8 {
		return fail("bitmap", bitio.ErrUnexpectedEOF)
	}
	classes := make([]class, n)
	declared := int(nl64 + nu64)
	outliers := 0
	for i := 0; i < n; {
		if pos&7 == 0 && i+8 <= n && data[pos>>3] == 0 {
			i += 8 // classes are zero-initialized to classCenter
			pos += 8
			continue
		}
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			pos++
			i++
			continue
		}
		if outliers == declared {
			return out, nil, corruptn("bitmap marks more outliers than declared", int64(declared))
		}
		outliers++
		pos++
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			classes[i] = classLower
		} else {
			classes[i] = classUpper
		}
		pos++
		i++
	}
	r.SetBitPos(pos)
	// Second pass: the values in original order.
	base := len(out)
	out = append(out, make([]int64, n)...)
	for i := 0; i < n; {
		if classes[i] == classCenter {
			j := i + 1
			for j < n && classes[j] == classCenter {
				j++
			}
			if err := r.ReadBulkInt64(out[base+i:base+j], beta, uint64(minXc)); err != nil {
				return out[:base], nil, corruptne("values at", int64(i), err)
			}
			i = j
			continue
		}
		var vbase uint64
		var width uint
		if classes[i] == classLower {
			vbase, width = uint64(xmin), alpha
		} else {
			vbase, width = uint64(minXu), gamma
		}
		if width == 0 {
			// Zero-width outlier class: every member equals the class
			// minimum; nothing was stored.
			out[base+i] = int64(vbase)
			i++
			continue
		}
		d, err := r.ReadBits(width)
		if err != nil {
			return out[:base], nil, corruptne("value", int64(i), err)
		}
		out[base+i] = int64(vbase + d)
		i++
	}
	return out, r.Rest(), nil
}

// encodeBOSRef is the pre-staging encoder: per-value classification into a
// full class slice and a WriteBit-at-a-time bitmap.
func encodeBOSRef(w *bitio.Writer, vals []int64, plan *Plan) {
	w.WriteBits(uint64(modeBOS), 8)
	w.WriteVarint(plan.Xmin)
	w.WriteUvarint(uint64(plan.NL))
	w.WriteUvarint(uint64(plan.NU))
	if plan.NC() > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXc))
	} else {
		w.WriteUvarint(0)
	}
	if plan.NU > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXu))
	} else {
		w.WriteUvarint(0)
	}
	w.WriteBits(uint64(plan.Alpha), 8)
	w.WriteBits(uint64(plan.Beta), 8)
	w.WriteBits(uint64(plan.Gamma), 8)

	classes := make([]class, len(vals))
	for i, v := range vals {
		classes[i] = classOf(plan, v)
	}
	for _, c := range classes {
		switch c {
		case classCenter:
			w.WriteBit(0)
		case classLower:
			w.WriteBit(1)
			w.WriteBit(0)
		default:
			w.WriteBit(1)
			w.WriteBit(1)
		}
	}
	for i := 0; i < len(vals); {
		if classes[i] == classCenter {
			j := i + 1
			for j < len(vals) && classes[j] == classCenter {
				j++
			}
			w.WriteBulkInt64(vals[i:j], uint64(plan.MinXc), plan.Beta)
			i = j
			continue
		}
		if classes[i] == classLower {
			w.WriteBits(spread(plan.Xmin, vals[i]), plan.Alpha)
		} else {
			w.WriteBits(spread(plan.MinXu, vals[i]), plan.Gamma)
		}
		i++
	}
}
