package core

import (
	"math/rand"
	"testing"
)

func TestPartsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for iter := 0; iter < 100; iter++ {
		vals := genSeries(rng)
		for k := 1; k <= 7; k++ {
			enc := EncodeBlockParts(nil, vals, k)
			got, rest, err := DecodeBlock(enc, nil)
			if err != nil {
				t.Fatalf("iter %d k=%d: %v", iter, k, err)
			}
			if len(rest) != 0 || len(got) != len(vals) {
				t.Fatalf("iter %d k=%d: decoded %d/%d, rest %d", iter, k, len(got), len(vals), len(rest))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("iter %d k=%d value %d: got %d want %d", iter, k, i, got[i], vals[i])
				}
			}
		}
	}
}

func TestPartsPlanOnePartIsBP(t *testing.T) {
	vals := []int64{3, 2, 4, 5, 3, 2, 0, 8}
	p := PlanParts(vals, 1)
	if p.K != 1 {
		t.Fatalf("k = %d", p.K)
	}
	if p.CostBits != plainCost(len(vals), 0, 8) {
		t.Errorf("1-part cost %d want %d", p.CostBits, plainCost(len(vals), 0, 8))
	}
	if p.TagLens[0] != 0 {
		t.Errorf("1-part tag length %d want 0", p.TagLens[0])
	}
}

func TestPartsValueBitsNonIncreasing(t *testing.T) {
	// More classes can only shrink the pure value bits (the DP objective);
	// total cost including tags may grow, which is exactly the Figure 14
	// trade-off.
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 50; iter++ {
		vals := genSeries(rng)
		prevValueBits := int64(-1)
		for k := 1; k <= 7; k++ {
			p := PlanParts(vals, k)
			var valueBits int64
			for c := 0; c < p.K; c++ {
				valueBits += int64(p.Counts[c]) * int64(p.Widths[c])
			}
			if prevValueBits >= 0 && p.K >= k && valueBits > prevValueBits {
				t.Fatalf("iter %d k=%d: value bits %d grew from %d", iter, k, valueBits, prevValueBits)
			}
			prevValueBits = valueBits
		}
	}
}

func TestPartsThreeBeatsOneOnFig1(t *testing.T) {
	p1 := PlanParts(Fig1Series, 1)
	p3 := PlanParts(Fig1Series, 3)
	if p3.CostBits >= p1.CostBits {
		t.Errorf("3 parts (%d bits) should beat 1 part (%d bits)", p3.CostBits, p1.CostBits)
	}
	// The encoded sizes must follow the planned ordering.
	e1 := EncodeBlockParts(nil, Fig1Series, 1)
	e3 := EncodeBlockParts(nil, Fig1Series, 3)
	if len(e3) >= len(e1) {
		t.Errorf("3-part block %d bytes, 1-part %d", len(e3), len(e1))
	}
}

func TestPartsCountsSumToN(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 50; iter++ {
		vals := genSeries(rng)
		for k := 1; k <= 5; k++ {
			p := PlanParts(vals, k)
			total := 0
			for _, c := range p.Counts {
				total += c
			}
			if total != len(vals) {
				t.Fatalf("iter %d k=%d: counts sum %d want %d", iter, k, total, len(vals))
			}
			for c := 1; c < p.K; c++ {
				if p.Bases[c] <= p.Maxes[c-1] {
					t.Fatalf("iter %d k=%d: classes overlap", iter, k)
				}
			}
		}
	}
}

func TestHuffmanLengths(t *testing.T) {
	cases := []struct {
		counts []int
		want   []uint
	}{
		{[]int{10}, []uint{0}},
		{[]int{5, 5}, []uint{1, 1}},
		{[]int{90, 5, 5}, []uint{1, 2, 2}}, // the paper's bitmap: center 1 bit, outliers 2
		{[]int{1, 1, 1, 1}, []uint{2, 2, 2, 2}},
	}
	for _, c := range cases {
		got := huffmanLengths(c.counts)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("huffmanLengths(%v) = %v want %v", c.counts, got, c.want)
				break
			}
		}
	}
}

func TestHuffmanKraft(t *testing.T) {
	// Kraft inequality must hold with equality for a Huffman code.
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		k := rng.Intn(7) + 1
		counts := make([]int, k)
		for i := range counts {
			counts[i] = rng.Intn(1000) + 1
		}
		lens := huffmanLengths(counts)
		if k == 1 {
			if lens[0] != 0 {
				t.Fatalf("single symbol len %d", lens[0])
			}
			continue
		}
		var kraft float64
		for _, l := range lens {
			kraft += 1 / float64(uint64(1)<<l)
		}
		if kraft < 0.999 || kraft > 1.001 {
			t.Fatalf("counts %v lens %v kraft %f", counts, lens, kraft)
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	lens := []uint{1, 2, 2}
	codes := canonicalCodes(lens)
	if codes[0] != 0 || codes[1] != 2 || codes[2] != 3 {
		t.Errorf("codes = %v", codes)
	}
}

func BenchmarkPlanParts(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(rng.NormFloat64() * 200)
	}
	for _, k := range []int{3, 5, 7} {
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PlanParts(vals, k)
			}
		})
	}
}
