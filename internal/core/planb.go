package core

import (
	"sort"

	"bos/internal/stats"
)

// PlanBitWidth implements BOS-B (Algorithm 2): exact bit-width separation.
// For every candidate lower threshold xl (each distinct value, plus "no lower
// outliers") it considers only the upper thresholds justified by
// Propositions 2 and 3:
//
//	xu = minXc + 2^beta   (Proposition 2, the beta <= gamma case)
//	xu = xmax - 2^gamma + 1  (Proposition 3, the beta > gamma case)
//
// for every feasible width, instead of every value of X. The propositions
// guarantee a candidate of one of these two shapes is never worse than any
// value-shaped solution with the same xl, so PlanBitWidth returns exactly the
// optimal cost found by PlanValue. O(m log(range) log m).
func PlanBitWidth(vals []int64) Plan {
	return planBitWidth(vals, true)
}

// PlanUpperOnly is the Figure 12 ablation: BOS-B with the lower-outlier loop
// disabled, i.e. only upper outliers may be separated (the PFOR regime).
func PlanUpperOnly(vals []int64) Plan {
	return planBitWidth(vals, false)
}

func planBitWidth(vals []int64, withLower bool) Plan {
	if len(vals) == 0 {
		return plainPlan(vals)
	}
	d := stats.NewDistinct(vals)
	best := plainPlan(vals)
	m := len(d.Values)
	xmax := d.Values[m-1]

	iMax := m - 1
	if !withLower {
		iMax = -1
	}
	for i := -1; i <= iMax; i++ {
		if i+1 >= m {
			// All values would be lower outliers; xu has no room.
			cand := partitionCost(d, i, m)
			if better(&cand, &best) {
				best = cand
			}
			continue
		}
		minXc := d.Values[i+1]
		maxWidth := classWidth(spread(minXc, xmax))

		// No upper outliers at all.
		if cand := partitionCost(d, i, m); i != -1 && better(&cand, &best) {
			best = cand
		}
		// All values above xl are upper outliers (empty center).
		if cand := partitionCost(d, i, i+1); better(&cand, &best) {
			best = cand
		}

		// Proposition 2 candidates: xu = minXc + 2^beta.
		for beta := uint(0); beta <= maxWidth; beta++ {
			xu, ok := addCap(minXc, beta, xmax)
			if !ok {
				break // xu beyond xmax: no upper outliers, handled above
			}
			j := firstGE(d, xu)
			if cand := partitionCost(d, i, j); better(&cand, &best) {
				best = cand
			}
		}
		// Proposition 3 candidates: xu = xmax - 2^gamma + 1.
		for gamma := uint(0); gamma <= maxWidth; gamma++ {
			xu, ok := subFloor(xmax, gamma, minXc)
			if !ok {
				break // xu at or below minXc: empty center, handled above
			}
			j := firstGE(d, xu)
			if j <= i+1 {
				continue
			}
			if cand := partitionCost(d, i, j); better(&cand, &best) {
				best = cand
			}
		}
	}
	return best
}

// firstGE returns the index of the first distinct value >= v (len if none).
func firstGE(d *stats.Distinct, v int64) int {
	return sort.Search(len(d.Values), func(i int) bool { return d.Values[i] >= v })
}

// addCap computes base + 2^w, reporting ok=false when the result exceeds cap.
// The arithmetic runs in the uint64 spread domain so that it is exact for the
// full int64 value range.
func addCap(base int64, w uint, cap int64) (int64, bool) {
	if w >= 64 {
		return 0, false
	}
	off := uint64(1) << w
	if off > spread(base, cap) {
		return 0, false
	}
	return int64(uint64(base) + off), true
}

// subFloor computes top - 2^w + 1, reporting ok=false when the result is at
// or below floor.
func subFloor(top int64, w uint, floor int64) (int64, bool) {
	if w >= 64 {
		return 0, false
	}
	off := uint64(1)<<w - 1
	if off >= spread(floor, top) {
		return 0, false
	}
	return int64(uint64(top) - off), true
}
