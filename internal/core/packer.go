package core

import "fmt"

// Packer adapts a separation strategy to the codec.Packer contract, making
// BOS a drop-in replacement for the bit-packing operator inside RLE, SPRINTZ,
// TS2DIFF and any other block codec.
type Packer struct {
	Sep Separation

	// sc is reused across Unpack calls so steady-state block decode does
	// not allocate. Packer instances are per-caller (the codec registry
	// hands out fresh ones via constructors), so this carries no
	// cross-goroutine state.
	sc Scratch
}

// NewPacker returns a Packer using the given separation strategy.
func NewPacker(sep Separation) *Packer { return &Packer{Sep: sep} }

// Name implements codec.Packer.
func (p *Packer) Name() string { return p.Sep.String() }

// Pack implements codec.Packer.
func (p *Packer) Pack(dst []byte, vals []int64) []byte {
	return EncodeBlock(dst, vals, p.Sep)
}

// Unpack implements codec.Packer.
func (p *Packer) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	return DecodeBlockScratch(src, out, &p.sc)
}

// PartsPacker packs blocks with the k-parts generalization of Figure 14.
type PartsPacker struct {
	K int
}

// Name implements codec.Packer.
func (p *PartsPacker) Name() string { return fmt.Sprintf("BOS-P%d", p.K) }

// Pack implements codec.Packer.
func (p *PartsPacker) Pack(dst []byte, vals []int64) []byte {
	return EncodeBlockParts(dst, vals, p.K)
}

// Unpack implements codec.Packer.
func (p *PartsPacker) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	return DecodeBlock(src, out)
}
