package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestSampledPlanRoundTripAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		p := PlanBitWidthSampled(vals, 64)
		plain := plainPlan(vals)
		opt := PlanValue(vals)
		if p.CostBits > plain.CostBits {
			t.Fatalf("iter %d: sampled %d worse than plain %d", iter, p.CostBits, plain.CostBits)
		}
		if p.CostBits < opt.CostBits {
			t.Fatalf("iter %d: sampled %d beats the optimum %d", iter, p.CostBits, opt.CostBits)
		}
		enc := EncodeBlockPlan(nil, vals, &p)
		got, rest, err := DecodeBlock(enc, nil)
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			t.Fatalf("iter %d: decode %v", iter, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("iter %d: value %d mismatch", iter, i)
			}
		}
	}
}

func TestSampledPlanSmallBlockIsExact(t *testing.T) {
	// Blocks at or below the sample size use the exact planner.
	p := PlanBitWidthSampled(introSeries, 1024)
	if p.CostBits != 24 {
		t.Errorf("cost = %d want 24", p.CostBits)
	}
}

func TestSampledPlanQualityOnLargeBlocks(t *testing.T) {
	// On a large outlier-rich block the sampled plan must capture most of
	// the separation benefit (the outlier structure is visible in any
	// stride sample) at a fraction of the planning cost.
	rng := rand.New(rand.NewSource(81))
	vals := make([]int64, 64*1024)
	for i := range vals {
		switch {
		case rng.Float64() < 0.02:
			vals[i] = rng.Int63n(1 << 40)
		case rng.Float64() < 0.04:
			vals[i] = -rng.Int63n(1 << 40)
		default:
			vals[i] = int64(rng.NormFloat64() * 500)
		}
	}
	startFull := time.Now()
	full := PlanBitWidth(vals)
	fullTime := time.Since(startFull)
	startSampled := time.Now()
	sampled := PlanBitWidthSampled(vals, 1024)
	sampledTime := time.Since(startSampled)

	if !sampled.Separated {
		t.Fatal("sampled plan did not separate")
	}
	// Within 10% of the optimal cost (stride sampling blurs the exact
	// threshold choice; the outlier structure itself always transfers).
	if float64(sampled.CostBits) > 1.10*float64(full.CostBits) {
		t.Errorf("sampled cost %d vs full %d (>10%% worse)", sampled.CostBits, full.CostBits)
	}
	// And meaningfully cheaper to plan (allow noise: require 2x).
	if sampledTime*2 > fullTime {
		t.Logf("sampled planning %v vs full %v — small win on this machine", sampledTime, fullTime)
	}
}

func TestSampledPlanEmpty(t *testing.T) {
	if p := PlanBitWidthSampled(nil, 16); p.Separated {
		t.Error("separated empty input")
	}
}

func BenchmarkPlanSampledVsFull64K(b *testing.B) {
	rng := rand.New(rand.NewSource(82))
	vals := make([]int64, 64*1024)
	for i := range vals {
		if rng.Float64() < 0.03 {
			vals[i] = rng.Int63n(1 << 40)
		} else {
			vals[i] = int64(rng.NormFloat64() * 500)
		}
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PlanBitWidth(vals)
		}
	})
	b.Run("sampled-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PlanBitWidthSampled(vals, 1024)
		}
	})
}
