package core

import (
	"errors"

	"bos/internal/bitio"
)

// Block stream modes (first byte after the count).
const (
	modePlain byte = 0 // plain bit-packing body
	modeBOS   byte = 1 // three-class outlier separation (Figure 7)
	modeParts byte = 2 // generalized k-part separation (Figure 14)
)

// errCorrupt wraps decode failures with a stable prefix.
var errCorrupt = errors.New("core: corrupt block")

// maxBlockLen caps the declared value count of a block; it mirrors
// codec.MaxBlockLen (core avoids the import to stay dependency-free).
const maxBlockLen = 1 << 22

// EncodeBlock packs vals into dst using the given separation strategy and
// returns the extended slice. The encoder always compares the separated plan
// against plain bit-packing and emits whichever is smaller, so a BOS block is
// never larger than the BP block plus the shared header.
//
// The layout follows Figure 7 of the paper: block metadata (counts, minima,
// bit-widths alpha/beta/gamma), the positional bitmap of Figure 2 ('0'
// center, '10' lower outlier, '11' upper outlier), then all values in
// original order, each stored relative to its class minimum at its class
// width.
func EncodeBlock(dst []byte, vals []int64, sep Separation) []byte {
	plan := PlanFor(vals, sep)
	return EncodeBlockPlan(dst, vals, &plan)
}

// PlanFor runs the planner selected by sep over vals.
func PlanFor(vals []int64, sep Separation) Plan {
	switch sep {
	case SeparationValue:
		return PlanValue(vals)
	case SeparationBitWidth:
		return PlanBitWidth(vals)
	case SeparationMedian:
		return PlanMedian(vals)
	case SeparationUpperOnly:
		return PlanUpperOnly(vals)
	default:
		return plainPlan(vals)
	}
}

// EncodeBlockPlan packs vals according to an already-computed plan.
func EncodeBlockPlan(dst []byte, vals []int64, plan *Plan) []byte {
	w := bitio.NewWriter(len(vals)*2 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	if !plan.Separated {
		encodePlain(w, vals, plan)
	} else {
		encodeBOS(w, vals, plan)
	}
	return append(dst, w.Bytes()...)
}

//bos:hotpath
func encodePlain(w *bitio.Writer, vals []int64, plan *Plan) {
	w.WriteBits(uint64(modePlain), 8)
	w.WriteVarint(plan.Xmin)
	width := bitio.WidthOf(spread(plan.Xmin, plan.Xmax))
	w.WriteBits(uint64(width), 8)
	// Fused frame-of-reference pack: WriteBulkInt64 computes
	// spread(plan.Xmin, v) per value itself, sparing the offsets scratch.
	w.WriteBulkInt64(vals, uint64(plan.Xmin), width)
}

//bos:hotpath
func encodeBOS(w *bitio.Writer, vals []int64, plan *Plan) {
	w.WriteBits(uint64(modeBOS), 8)
	w.WriteVarint(plan.Xmin)
	w.WriteUvarint(uint64(plan.NL))
	w.WriteUvarint(uint64(plan.NU))
	// Class minima as non-negative offsets from xmin.
	if plan.NC() > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXc))
	} else {
		w.WriteUvarint(0)
	}
	if plan.NU > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXu))
	} else {
		w.WriteUvarint(0)
	}
	w.WriteBits(uint64(plan.Alpha), 8)
	w.WriteBits(uint64(plan.Beta), 8)
	w.WriteBits(uint64(plan.Gamma), 8)

	// Classify once into a compact outlier mark list: position<<1 | class
	// bit, center positions implicit. At realistic outlier rates this is
	// orders of magnitude smaller than the per-value class slice it
	// replaces, and it hands both the bitmap and the value section their
	// run boundaries directly. Positions fit easily: decoders cap blocks
	// at maxBlockLen (1<<22) values.
	marks := make([]uint32, 0, plan.NL+plan.NU)
	for i, v := range vals {
		if c := classOf(plan, v); c != classCenter {
			marks = append(marks, uint32(i)<<1|uint32(c-classLower))
		}
	}
	// Positional bitmap (Figure 2), in original order: center gaps emit as
	// up-to-64-bit zero words, each outlier as its two-bit mark. The bit
	// sequence — and therefore every byte — is identical to the per-value
	// WriteBit form this replaces.
	prev := 0
	for _, m := range marks {
		for g := int(m>>1) - prev; g > 0; {
			c := g
			if c > 64 {
				c = 64
			}
			w.WriteBits(0, uint(c))
			g -= c
		}
		w.WriteBits(0b10|uint64(m&1), 2)
		prev = int(m>>1) + 1
	}
	for g := len(vals) - prev; g > 0; {
		c := g
		if c > 64 {
			c = 64
		}
		w.WriteBits(0, uint(c))
		g -= c
	}
	// Values in original order, relative to their class minimum. The runs
	// of center values between consecutive marks go through the fused bulk
	// writer (it computes spread(plan.MinXc, v) per value itself, and
	// stages blocks through the aligned kernels even mid-byte).
	prev = 0
	for _, m := range marks {
		p := int(m >> 1)
		if p > prev {
			w.WriteBulkInt64(vals[prev:p], uint64(plan.MinXc), plan.Beta)
		}
		if m&1 == 0 {
			w.WriteBits(spread(plan.Xmin, vals[p]), plan.Alpha)
		} else {
			w.WriteBits(spread(plan.MinXu, vals[p]), plan.Gamma)
		}
		prev = p + 1
	}
	if prev < len(vals) {
		w.WriteBulkInt64(vals[prev:], uint64(plan.MinXc), plan.Beta)
	}
}

type class int

const (
	classCenter class = iota
	classLower
	classUpper
)

//bos:hotpath
func classOf(plan *Plan, v int64) class {
	if plan.NL > 0 && v <= plan.MaxXl {
		return classLower
	}
	if plan.NU > 0 && v >= plan.MinXu {
		return classUpper
	}
	return classCenter
}

// Scratch carries reusable decode state across DecodeBlockScratch calls so
// steady-state block decode allocates nothing. marks is the compact outlier
// list the bitmap pass produces (position<<1 | class bit, 1 = upper); with
// blocks capped at maxBlockLen (1<<22) values a position always fits. A
// Scratch is single-goroutine state, like the Packer that owns one.
type Scratch struct {
	marks []uint32
}

// DecodeBlock decodes one block from the front of src, appends the values to
// out, and returns the grown slice and the unread remainder. It never panics
// on malformed input. Loop callers should prefer DecodeBlockScratch, which
// reuses the bitmap scratch across blocks.
func DecodeBlock(src []byte, out []int64) ([]int64, []byte, error) {
	var sc Scratch
	return DecodeBlockScratch(src, out, &sc)
}

// DecodeBlockScratch is DecodeBlock with caller-owned scratch.
//
//bos:hotpath
func DecodeBlockScratch(src []byte, out []int64, sc *Scratch) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		// Width-0 bodies pack arbitrarily many values into a few
		// header bytes, so the count can only be bounded by the
		// absolute block cap; beyond it is garbage.
		return out, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if n == 0 {
		return out, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		return decodePlain(r, n, out)
	case modeBOS:
		return decodeBOS(r, n, out, sc)
	case modeParts:
		return decodeParts(r, n, out)
	default:
		return out, nil, corruptn("unknown mode", int64(mode))
	}
}

//bos:hotpath
func decodePlain(r *bitio.Reader, n int, out []int64) ([]int64, []byte, error) {
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, corrupte("xmin", err)
	}
	width, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("width", err)
	}
	if width > 64 {
		return out, nil, corruptn("width", int64(width))
	}
	base := len(out)
	out = growInt64(out, n)
	if err := r.ReadBulkInt64(out[base:], uint(width), uint64(xmin)); err != nil {
		return out[:base], nil, corrupte("values", err)
	}
	return out, r.Rest(), nil
}

// growInt64 extends s by n elements without the temporary slice that
// `append(s, make([]int64, n)...)` materializes when capacity is short, and
// without touching memory at all when it is not. The extension is NOT zeroed:
// callers must either write every element or truncate back on error (all
// decode paths do both).
//
//bos:hotpath
func growInt64(s []int64, n int) []int64 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	ns := make([]int64, len(s)+n, len(s)+n+len(s)/2)
	copy(ns, s)
	return ns
}

// decodeBOS is the run-fused block decoder. The bitmap pass walks the
// positional bitmap word-at-a-time through a bitio.RunReader — ZeroRun's
// LeadingZeros64 jumps over whole center gaps in one instruction — and emits
// only the compact outlier mark list into sc (no per-value class slice). The
// value pass then reads straight off the same window: the marks delimit the
// center runs, short runs decode through the gather kernels, long runs
// through the bulk jump tables, and outliers come out of the cached window
// without per-call Reader entry cost.
//
//bos:hotpath
func decodeBOS(r *bitio.Reader, n int, out []int64, sc *Scratch) ([]int64, []byte, error) {
	fail := func(what string, err error) ([]int64, []byte, error) {
		return out, nil, corrupte(what, err)
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return fail("xmin", err)
	}
	nl64, err := r.ReadUvarint()
	if err != nil {
		return fail("nl", err)
	}
	nu64, err := r.ReadUvarint()
	if err != nil {
		return fail("nu", err)
	}
	if nl64+nu64 > uint64(n) {
		return out, nil, corruptn("outlier counts exceed block size", int64(nl64), int64(nu64), int64(n))
	}
	offC, err := r.ReadUvarint()
	if err != nil {
		return fail("minXc", err)
	}
	offU, err := r.ReadUvarint()
	if err != nil {
		return fail("minXu", err)
	}
	widths, err := r.ReadBits(24)
	if err != nil {
		return fail("widths", err)
	}
	alpha := uint(widths >> 16 & 0xff)
	beta := uint(widths >> 8 & 0xff)
	gamma := uint(widths & 0xff)
	if alpha > 64 || beta > 64 || gamma > 64 {
		return out, nil, corruptn("widths", int64(alpha), int64(beta), int64(gamma))
	}
	minXc := int64(uint64(xmin) + offC)
	minXu := int64(uint64(xmin) + offU)

	// First pass: the positional bitmap. Its exact length (n + nl + nu
	// bits) is known from the header, so bounds are checked once up front;
	// after that ZeroRun and ReadBits cannot run out mid-bitmap.
	if data, pos := r.Data(); pos+n+int(nl64+nu64) > len(data)*8 {
		return fail("bitmap", bitio.ErrUnexpectedEOF)
	}
	declared := int(nl64 + nu64)
	marks := sc.marks[:0]
	rr := r.Run()
	for i := 0; i < n; {
		i += rr.ZeroRun(n - i)
		if i >= n {
			break
		}
		// The next bit is an outlier mark and consumes a second bit; the
		// bounds check above only covers the declared outlier count, so
		// more marks than declared is corruption (and would otherwise
		// overrun the section).
		if len(marks) == declared {
			return out, nil, corruptn("bitmap marks more outliers than declared", int64(declared))
		}
		mb, err := rr.ReadBits(2)
		if err != nil {
			return fail("bitmap", err)
		}
		marks = append(marks, uint32(i)<<1|uint32(mb&1))
		i++
	}
	sc.marks = marks
	// Second pass: the values in original order, continuing on the same
	// stream window. The marks delimit the maximal center runs directly;
	// outliers decode individually, and a zero-width outlier class stores
	// nothing — every member IS its class minimum.
	base := len(out)
	out = growInt64(out, n)
	vals := out[base:]
	prev := 0
	for _, m := range marks {
		p := int(m >> 1)
		if p > prev {
			if err := rr.ReadRunInt64(vals[prev:p], beta, uint64(minXc)); err != nil {
				return out[:base], nil, corruptne("values at", int64(prev), err)
			}
		}
		var vbase uint64
		var width uint
		if m&1 == 0 {
			vbase, width = uint64(xmin), alpha
		} else {
			vbase, width = uint64(minXu), gamma
		}
		if width == 0 {
			vals[p] = int64(vbase)
		} else {
			d, err := rr.ReadBits(width)
			if err != nil {
				return out[:base], nil, corruptne("value", int64(p), err)
			}
			vals[p] = int64(vbase + d)
		}
		prev = p + 1
	}
	if prev < n {
		if err := rr.ReadRunInt64(vals[prev:], beta, uint64(minXc)); err != nil {
			return out[:base], nil, corruptne("values at", int64(prev), err)
		}
	}
	rr.Detach()
	return out, r.Rest(), nil
}
