package core

import (
	"errors"

	"bos/internal/bitio"
)

// Block stream modes (first byte after the count).
const (
	modePlain byte = 0 // plain bit-packing body
	modeBOS   byte = 1 // three-class outlier separation (Figure 7)
	modeParts byte = 2 // generalized k-part separation (Figure 14)
)

// errCorrupt wraps decode failures with a stable prefix.
var errCorrupt = errors.New("core: corrupt block")

// maxBlockLen caps the declared value count of a block; it mirrors
// codec.MaxBlockLen (core avoids the import to stay dependency-free).
const maxBlockLen = 1 << 22

// EncodeBlock packs vals into dst using the given separation strategy and
// returns the extended slice. The encoder always compares the separated plan
// against plain bit-packing and emits whichever is smaller, so a BOS block is
// never larger than the BP block plus the shared header.
//
// The layout follows Figure 7 of the paper: block metadata (counts, minima,
// bit-widths alpha/beta/gamma), the positional bitmap of Figure 2 ('0'
// center, '10' lower outlier, '11' upper outlier), then all values in
// original order, each stored relative to its class minimum at its class
// width.
func EncodeBlock(dst []byte, vals []int64, sep Separation) []byte {
	plan := PlanFor(vals, sep)
	return EncodeBlockPlan(dst, vals, &plan)
}

// PlanFor runs the planner selected by sep over vals.
func PlanFor(vals []int64, sep Separation) Plan {
	switch sep {
	case SeparationValue:
		return PlanValue(vals)
	case SeparationBitWidth:
		return PlanBitWidth(vals)
	case SeparationMedian:
		return PlanMedian(vals)
	case SeparationUpperOnly:
		return PlanUpperOnly(vals)
	default:
		return plainPlan(vals)
	}
}

// EncodeBlockPlan packs vals according to an already-computed plan.
func EncodeBlockPlan(dst []byte, vals []int64, plan *Plan) []byte {
	w := bitio.NewWriter(len(vals)*2 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	if !plan.Separated {
		encodePlain(w, vals, plan)
	} else {
		encodeBOS(w, vals, plan)
	}
	return append(dst, w.Bytes()...)
}

//bos:hotpath
func encodePlain(w *bitio.Writer, vals []int64, plan *Plan) {
	w.WriteBits(uint64(modePlain), 8)
	w.WriteVarint(plan.Xmin)
	width := bitio.WidthOf(spread(plan.Xmin, plan.Xmax))
	w.WriteBits(uint64(width), 8)
	// Fused frame-of-reference pack: WriteBulkInt64 computes
	// spread(plan.Xmin, v) per value itself, sparing the offsets scratch.
	w.WriteBulkInt64(vals, uint64(plan.Xmin), width)
}

//bos:hotpath
func encodeBOS(w *bitio.Writer, vals []int64, plan *Plan) {
	w.WriteBits(uint64(modeBOS), 8)
	w.WriteVarint(plan.Xmin)
	w.WriteUvarint(uint64(plan.NL))
	w.WriteUvarint(uint64(plan.NU))
	// Class minima as non-negative offsets from xmin.
	if plan.NC() > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXc))
	} else {
		w.WriteUvarint(0)
	}
	if plan.NU > 0 {
		w.WriteUvarint(spread(plan.Xmin, plan.MinXu))
	} else {
		w.WriteUvarint(0)
	}
	w.WriteBits(uint64(plan.Alpha), 8)
	w.WriteBits(uint64(plan.Beta), 8)
	w.WriteBits(uint64(plan.Gamma), 8)

	// Classify once; the bitmap and value sections reuse the result.
	classes := make([]class, len(vals))
	for i, v := range vals {
		classes[i] = classOf(plan, v)
	}
	// Positional bitmap (Figure 2), in original order.
	for _, c := range classes {
		switch c {
		case classCenter:
			w.WriteBit(0)
		case classLower:
			w.WriteBit(1)
			w.WriteBit(0)
		default:
			w.WriteBit(1)
			w.WriteBit(1)
		}
	}
	// Values in original order, relative to their class minimum; maximal
	// runs of center values go through the fused bulk writer (it computes
	// spread(plan.MinXc, v) per value itself, no scratch slice).
	for i := 0; i < len(vals); {
		if classes[i] == classCenter {
			j := i + 1
			for j < len(vals) && classes[j] == classCenter {
				j++
			}
			w.WriteBulkInt64(vals[i:j], uint64(plan.MinXc), plan.Beta)
			i = j
			continue
		}
		if classes[i] == classLower {
			w.WriteBits(spread(plan.Xmin, vals[i]), plan.Alpha)
		} else {
			w.WriteBits(spread(plan.MinXu, vals[i]), plan.Gamma)
		}
		i++
	}
}

type class int

const (
	classCenter class = iota
	classLower
	classUpper
)

//bos:hotpath
func classOf(plan *Plan, v int64) class {
	if plan.NL > 0 && v <= plan.MaxXl {
		return classLower
	}
	if plan.NU > 0 && v >= plan.MinXu {
		return classUpper
	}
	return classCenter
}

// DecodeBlock decodes one block from the front of src, appends the values to
// out, and returns the grown slice and the unread remainder. It never panics
// on malformed input.
//
//bos:hotpath
func DecodeBlock(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, corrupte("count", err)
	}
	if n64 > maxBlockLen {
		// Width-0 bodies pack arbitrarily many values into a few
		// header bytes, so the count can only be bounded by the
		// absolute block cap; beyond it is garbage.
		return out, nil, corruptn("implausible count", int64(n64))
	}
	n := int(n64)
	if n == 0 {
		return out, r.Rest(), nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("mode", err)
	}
	switch byte(mode) {
	case modePlain:
		return decodePlain(r, n, out)
	case modeBOS:
		return decodeBOS(r, n, out)
	case modeParts:
		return decodeParts(r, n, out)
	default:
		return out, nil, corruptn("unknown mode", int64(mode))
	}
}

//bos:hotpath
func decodePlain(r *bitio.Reader, n int, out []int64) ([]int64, []byte, error) {
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, corrupte("xmin", err)
	}
	width, err := r.ReadBits(8)
	if err != nil {
		return out, nil, corrupte("width", err)
	}
	if width > 64 {
		return out, nil, corruptn("width", int64(width))
	}
	base := len(out)
	out = append(out, make([]int64, n)...)
	if err := r.ReadBulkInt64(out[base:], uint(width), uint64(xmin)); err != nil {
		return out[:base], nil, corrupte("values", err)
	}
	return out, r.Rest(), nil
}

//bos:hotpath
func decodeBOS(r *bitio.Reader, n int, out []int64) ([]int64, []byte, error) {
	fail := func(what string, err error) ([]int64, []byte, error) {
		return out, nil, corrupte(what, err)
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return fail("xmin", err)
	}
	nl64, err := r.ReadUvarint()
	if err != nil {
		return fail("nl", err)
	}
	nu64, err := r.ReadUvarint()
	if err != nil {
		return fail("nu", err)
	}
	if nl64+nu64 > uint64(n) {
		return out, nil, corruptn("outlier counts exceed block size", int64(nl64), int64(nu64), int64(n))
	}
	offC, err := r.ReadUvarint()
	if err != nil {
		return fail("minXc", err)
	}
	offU, err := r.ReadUvarint()
	if err != nil {
		return fail("minXu", err)
	}
	widths, err := r.ReadBits(24)
	if err != nil {
		return fail("widths", err)
	}
	alpha := uint(widths >> 16 & 0xff)
	beta := uint(widths >> 8 & 0xff)
	gamma := uint(widths & 0xff)
	if alpha > 64 || beta > 64 || gamma > 64 {
		return out, nil, corruptn("widths", int64(alpha), int64(beta), int64(gamma))
	}
	minXc := int64(uint64(xmin) + offC)
	minXu := int64(uint64(xmin) + offU)

	// First pass: the positional bitmap. Its exact length (n + nl + nu
	// bits) is known from the header, so bounds are checked once and the
	// inner loop indexes the buffer directly.
	data, pos := r.Data()
	if pos+n+int(nl64+nu64) > len(data)*8 {
		return fail("bitmap", bitio.ErrUnexpectedEOF)
	}
	classes := make([]class, n)
	declared := int(nl64 + nu64)
	outliers := 0
	for i := 0; i < n; {
		// Fast path: an aligned all-zero byte is eight center values
		// (outliers are rare, so most of the bitmap is zero bytes).
		if pos&7 == 0 && i+8 <= n && data[pos>>3] == 0 {
			i += 8 // classes are zero-initialized to classCenter
			pos += 8
			continue
		}
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			pos++
			i++
			continue
		}
		// An outlier mark consumes a second bit; the bounds check above
		// only covers the declared outlier count, so more marks than
		// declared is corruption (and would otherwise overrun).
		if outliers == declared {
			return out, nil, corruptn("bitmap marks more outliers than declared", int64(declared))
		}
		outliers++
		pos++
		if data[pos>>3]>>(7-uint(pos&7))&1 == 0 {
			classes[i] = classLower
		} else {
			classes[i] = classUpper
		}
		pos++
		i++
	}
	r.SetBitPos(pos)
	// Second pass: the values in original order. Center values dominate
	// typical blocks, so maximal runs of them go through the bulk reader;
	// outliers decode individually.
	base := len(out)
	out = append(out, make([]int64, n)...)
	for i := 0; i < n; {
		if classes[i] == classCenter {
			j := i + 1
			for j < n && classes[j] == classCenter {
				j++
			}
			if err := r.ReadBulkInt64(out[base+i:base+j], beta, uint64(minXc)); err != nil {
				return out[:base], nil, corruptne("values at", int64(i), err)
			}
			i = j
			continue
		}
		var vbase uint64
		var width uint
		if classes[i] == classLower {
			vbase, width = uint64(xmin), alpha
		} else {
			vbase, width = uint64(minXu), gamma
		}
		d, err := r.ReadBits(width)
		if err != nil {
			return out[:base], nil, corruptne("value", int64(i), err)
		}
		out[base+i] = int64(vbase + d)
		i++
	}
	return out, r.Rest(), nil
}
