package core

import (
	"math"
	"math/rand"
	"testing"
)

// genBlockEncodings encodes vals under every separation strategy plus the
// k-parts generalization, returning the encoded blobs.
func genBlockEncodings(vals []int64) [][]byte {
	var encs [][]byte
	for _, sep := range allSeparations {
		encs = append(encs, EncodeBlock(nil, vals, sep))
	}
	for _, k := range []int{1, 3, 5} {
		encs = append(encs, EncodeBlockParts(nil, vals, k))
	}
	return encs
}

func TestSkipBlockEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		for _, enc := range genBlockEncodings(vals) {
			// A trailing payload proves the reported remainder is exact.
			enc = append(enc, 0xAB, 0xCD)
			want, wantRest, err := DecodeBlock(enc, nil)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			n, rest, err := SkipBlock(enc)
			if err != nil {
				t.Fatalf("skip: %v", err)
			}
			if n != len(want) {
				t.Fatalf("skip count %d, decode produced %d", n, len(want))
			}
			if len(rest) != len(wantRest) {
				t.Fatalf("skip rest %d bytes, decode rest %d", len(rest), len(wantRest))
			}
		}
	}
}

func TestSkipBlockEmpty(t *testing.T) {
	enc := EncodeBlock(nil, nil, SeparationMedian)
	enc = append(enc, 0x7F)
	n, rest, err := SkipBlock(enc)
	if err != nil || n != 0 || len(rest) != 1 {
		t.Fatalf("empty block: n=%d rest=%d err=%v", n, len(rest), err)
	}
}

func TestDecodeBlockRangeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		for _, enc := range genBlockEncodings(vals) {
			enc = append(enc, 0x55)
			want, wantRest, err := DecodeBlock(enc, nil)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// Random sub-range plus the degenerate and full ranges.
			lo := rng.Intn(len(vals) + 1)
			hi := lo + rng.Intn(len(vals)-lo+1)
			for _, r := range [][2]int{{lo, hi}, {0, len(vals)}, {0, 0}, {len(vals), len(vals)}, {-3, len(vals) + 3}} {
				got, rest, err := DecodeBlockRange(enc, nil, r[0], r[1])
				if err != nil {
					t.Fatalf("range [%d,%d): %v", r[0], r[1], err)
				}
				if len(rest) != len(wantRest) {
					t.Fatalf("range [%d,%d): rest %d bytes, want %d", r[0], r[1], len(rest), len(wantRest))
				}
				clo, chi := r[0], r[1]
				if clo < 0 {
					clo = 0
				}
				if chi > len(vals) {
					chi = len(vals)
				}
				if clo > chi {
					chi = clo
				}
				if len(got) != chi-clo {
					t.Fatalf("range [%d,%d): %d values, want %d", r[0], r[1], len(got), chi-clo)
				}
				for i := range got {
					if got[i] != want[clo+i] {
						t.Fatalf("range [%d,%d) value %d: got %d want %d", r[0], r[1], i, got[i], want[clo+i])
					}
				}
			}
		}
	}
}

// predicates worth probing: inside the center band, below everything, above
// everything, one-sided, full int64 range, empty, single exact value.
func genPredicates(rng *rand.Rand, vals []int64) [][2]int64 {
	preds := [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{0, 0},
		{1, -1}, // empty range
		{math.MinInt64, -1},
		{1, math.MaxInt64},
	}
	if len(vals) > 0 {
		v := vals[rng.Intn(len(vals))]
		preds = append(preds, [2]int64{v, v})
		lo, hi := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		if lo > hi {
			lo, hi = hi, lo
		}
		preds = append(preds, [2]int64{lo, hi})
	}
	preds = append(preds, [2]int64{int64(rng.NormFloat64() * 30), int64(rng.NormFloat64()*30) + 100})
	return preds
}

func TestFilterBlockEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for iter := 0; iter < 150; iter++ {
		vals := genSeries(rng)
		for _, enc := range genBlockEncodings(vals) {
			enc = append(enc, 0x99)
			want, wantRest, err := DecodeBlock(enc, nil)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			for _, pred := range genPredicates(rng, vals) {
				minV, maxV := pred[0], pred[1]
				type hit struct {
					i int
					v int64
				}
				var got []hit
				n, _, rest, err := FilterBlock(enc, minV, maxV, func(i int, v int64) {
					got = append(got, hit{i, v})
				})
				if err != nil {
					t.Fatalf("filter [%d,%d]: %v", minV, maxV, err)
				}
				if n != len(want) {
					t.Fatalf("filter n=%d, want %d", n, len(want))
				}
				if len(rest) != len(wantRest) {
					t.Fatalf("filter rest %d bytes, want %d", len(rest), len(wantRest))
				}
				var ref []hit
				for i, v := range want {
					if v >= minV && v <= maxV {
						ref = append(ref, hit{i, v})
					}
				}
				if len(got) != len(ref) {
					t.Fatalf("filter [%d,%d]: %d hits, want %d", minV, maxV, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("filter [%d,%d] hit %d: got %+v want %+v", minV, maxV, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestFilterBlockSkipsPlanes pins the point of the kernel: a predicate strictly
// inside the center band of a separated block must report the outlier planes
// skipped, and a predicate outside every band must skip without emitting.
func TestFilterBlockSkipsPlanes(t *testing.T) {
	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i % 50) // center band [0, 49]
	}
	vals[7] = -1 << 30 // lower outlier
	vals[99] = 1 << 40 // upper outlier
	enc := EncodeBlock(nil, vals, SeparationBitWidth)
	info, _, err := InspectBlock(enc)
	if err != nil || info.Mode != "bos" {
		t.Fatalf("expected a bos block, got %+v err=%v", info, err)
	}
	hits := 0
	_, skipped, _, err := FilterBlock(enc, 10, 20, func(i int, v int64) { hits++ })
	if err != nil {
		t.Fatalf("filter: %v", err)
	}
	if !skipped {
		t.Fatalf("center-band predicate did not skip the outlier planes")
	}
	if hits == 0 {
		t.Fatalf("center-band predicate emitted nothing")
	}
	_, skipped, _, err = FilterBlock(enc, 1<<50, 1<<51, func(i int, v int64) {
		t.Fatalf("disjoint predicate emitted %d", v)
	})
	if err != nil {
		t.Fatalf("filter: %v", err)
	}
	if !skipped {
		t.Fatalf("disjoint predicate did not skip")
	}
}

// TestPartialCorruptRobustness: truncations and bit flips must error or
// succeed, never panic, across all three partial kernels.
func TestPartialCorruptRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 40; iter++ {
		vals := genSeries(rng)
		for _, enc := range genBlockEncodings(vals) {
			for cut := 0; cut <= len(enc); cut += 1 + rng.Intn(4) {
				probePartial(enc[:cut])
			}
			mut := append([]byte(nil), enc...)
			for flips := 0; flips < 8; flips++ {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
				probePartial(mut)
			}
		}
	}
}

func probePartial(src []byte) {
	_, _, _ = SkipBlock(src)
	_, _, _ = DecodeBlockRange(src, nil, 1, 7)
	_, _, _, _ = FilterBlock(src, -100, 100, func(int, int64) {})
}

// TestSkipBlockChain walks a multi-block stream by header arithmetic alone
// and must land exactly where full decode lands.
func TestSkipBlockChain(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	var stream []byte
	var total int
	for b := 0; b < 10; b++ {
		vals := genSeries(rng)
		total += len(vals)
		stream = EncodeBlock(stream, vals, allSeparations[b%len(allSeparations)])
	}
	seen := 0
	for rest := stream; len(rest) > 0; {
		n, next, err := SkipBlock(rest)
		if err != nil {
			t.Fatalf("skip after %d values: %v", seen, err)
		}
		seen += n
		rest = next
	}
	if seen != total {
		t.Fatalf("skipped %d values, stream holds %d", seen, total)
	}
}
