package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitio"
)

var allSeparations = []Separation{
	SeparationNone, SeparationValue, SeparationBitWidth,
	SeparationMedian, SeparationUpperOnly,
}

func roundTrip(t *testing.T, vals []int64, sep Separation) []byte {
	t.Helper()
	enc := EncodeBlock(nil, vals, sep)
	got, rest, err := DecodeBlock(enc, nil)
	if err != nil {
		t.Fatalf("%v decode: %v", sep, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%v left %d undecoded bytes", sep, len(rest))
	}
	if len(got) != len(vals) {
		t.Fatalf("%v decoded %d values want %d", sep, len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%v value %d: got %d want %d", sep, i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{math.MinInt64},
		{math.MaxInt64},
		{math.MinInt64, math.MaxInt64},
		{7, 7, 7, 7, 7},
		{3, 2, 4, 5, 3, 2, 0, 8},
		{-5, -4, -3, 1000000, -2},
		Fig1Series,
	}
	for _, vals := range cases {
		for _, sep := range allSeparations {
			roundTrip(t, vals, sep)
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 300; iter++ {
		vals := genSeries(rng)
		for _, sep := range allSeparations {
			roundTrip(t, vals, sep)
		}
	}
}

func TestEncodedSizeMatchesPlan(t *testing.T) {
	// The payload beyond the small header must match the planned cost:
	// size_bytes <= ceil(cost/8) + header bound, and a separated block
	// must never exceed the BP block by more than the header difference.
	rng := rand.New(rand.NewSource(11))
	const headerBound = 40 // varints + widths, generous
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		for _, sep := range allSeparations {
			plan := PlanFor(vals, sep)
			enc := EncodeBlock(nil, vals, sep)
			maxLen := int(plan.CostBits/8) + headerBound
			if len(enc) > maxLen {
				t.Fatalf("iter %d %v: encoded %d bytes, plan cost %d bits (+header)",
					iter, sep, len(enc), plan.CostBits)
			}
			minLen := int(plan.CostBits / 8)
			if len(enc) < minLen {
				t.Fatalf("iter %d %v: encoded %d bytes below planned %d bits",
					iter, sep, len(enc), plan.CostBits)
			}
		}
	}
}

func TestBOSNeverMuchWorseThanBP(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		bp := EncodeBlock(nil, vals, SeparationNone)
		for _, sep := range []Separation{SeparationValue, SeparationBitWidth, SeparationMedian} {
			enc := EncodeBlock(nil, vals, sep)
			if len(enc) > len(bp)+24 {
				t.Fatalf("iter %d: %v block %d bytes, BP %d", iter, sep, len(enc), len(bp))
			}
		}
	}
}

func TestBOSVAndBOSBIdenticalOutput(t *testing.T) {
	// Figure 10b: "BOS-B shows exactly the same compression ratio as
	// BOS-V". Equal costs imply equal block sizes.
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		v := EncodeBlock(nil, vals, SeparationValue)
		b := EncodeBlock(nil, vals, SeparationBitWidth)
		if len(v) != len(b) {
			t.Fatalf("iter %d: BOS-V %d bytes, BOS-B %d bytes", iter, len(v), len(b))
		}
	}
}

func TestMultipleBlocksSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var enc []byte
	var want []int64
	for b := 0; b < 5; b++ {
		vals := genSeries(rng)
		want = append(want, vals...)
		enc = EncodeBlock(enc, vals, SeparationBitWidth)
	}
	var got []int64
	rest := enc
	var err error
	for len(rest) > 0 {
		got, rest, err = DecodeBlock(rest, got)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestDecodeEmptyInput(t *testing.T) {
	if _, _, err := DecodeBlock(nil, nil); err == nil {
		t.Error("decoding empty input should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := EncodeBlock(nil, Fig1Series, SeparationBitWidth)
	// Every strict prefix must fail cleanly: payload bits run out before
	// the final value, so the decoder must report ErrUnexpectedEOF-style
	// corruption, never panic and never return a full block.
	for cut := 0; cut < len(enc)-1; cut++ {
		out, _, err := DecodeBlock(enc[:cut], nil)
		if err == nil && len(out) == len(Fig1Series) {
			t.Fatalf("cut %d: truncated block decoded fully", cut)
		}
	}
}

func TestDecodeCorruptedNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	base := EncodeBlock(nil, Fig1Series, SeparationBitWidth)
	for iter := 0; iter < 2000; iter++ {
		cor := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		}
		cor = cor[:rng.Intn(len(cor)+1)]
		// Must not panic; errors are fine, bogus values are fine.
		DecodeBlock(cor, nil)
	}
	for iter := 0; iter < 2000; iter++ {
		junk := make([]byte, rng.Intn(64))
		rng.Read(junk)
		DecodeBlock(junk, nil)
	}
}

func TestDecodeImplausibleCount(t *testing.T) {
	// A count far beyond the input size must be rejected before any
	// allocation explosion.
	enc := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := DecodeBlock(enc, nil); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	enc := EncodeBlock(append([]byte(nil), prefix...), introSeries, SeparationValue)
	if !bytes.HasPrefix(enc, prefix) {
		t.Error("EncodeBlock did not append to dst")
	}
	got, _, err := DecodeBlock(enc[2:], nil)
	if err != nil || len(got) != len(introSeries) {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func BenchmarkEncodeBlockBOSB(b *testing.B) { benchEncode(b, SeparationBitWidth) }
func BenchmarkEncodeBlockBOSM(b *testing.B) { benchEncode(b, SeparationMedian) }
func BenchmarkEncodeBlockBP(b *testing.B)   { benchEncode(b, SeparationNone) }

func benchEncode(b *testing.B, sep Separation) {
	rng := rand.New(rand.NewSource(16))
	vals := make([]int64, 1024)
	for i := range vals {
		if rng.Float64() < 0.05 {
			vals[i] = rng.Int63n(1 << 30)
		} else {
			vals[i] = int64(rng.NormFloat64() * 100)
		}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = EncodeBlock(buf[:0], vals, sep)
	}
}

// BenchmarkDecodeBlock lives in bench_rates_test.go: it sweeps outlier rates
// and inlier widths (the decode cost drivers) instead of a single mix.

// TestZeroWidthOutlierClass pins the width-0 outlier short-circuit: when an
// outlier band is a single repeated value, a plan may set its class width
// (alpha or gamma) to 0 and the body stores nothing for those positions —
// the decoder must materialize the class minimum rather than touch the
// stream. The production planners clamp class widths to >= 1, so the blocks
// are built from hand plans; the format itself supports width 0.
func TestZeroWidthOutlierClass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkVals := func(n int, lower, upper bool) []int64 {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = 100 + rng.Int63n(200)
		}
		if lower {
			for i := 10; i < n; i += 97 {
				vals[i] = -77777
			}
		}
		if upper {
			for i := 7; i < n; i += 83 {
				vals[i] = 1 << 50
			}
		}
		return vals
	}
	mkPlan := func(vals []int64, lower, upper bool) Plan {
		p := Plan{N: len(vals), Separated: true}
		p.MinXc, p.MaxXc = int64(math.MaxInt64), int64(math.MinInt64)
		for _, v := range vals {
			switch {
			case lower && v == -77777:
				p.NL++
			case upper && v == 1<<50:
				p.NU++
			default:
				if v < p.MinXc {
					p.MinXc = v
				}
				if v > p.MaxXc {
					p.MaxXc = v
				}
			}
		}
		p.Xmin, p.Xmax = p.MinXc, p.MaxXc
		if lower {
			p.Xmin, p.MaxXl = -77777, -77777
		}
		if upper {
			p.Xmax, p.MinXu = 1<<50, 1<<50
		}
		p.Beta = bitio.WidthOf(spread(p.MinXc, p.MaxXc))
		return p // Alpha and Gamma stay 0: the bands are single values
	}
	check := func(t *testing.T, vals []int64, plan Plan) {
		t.Helper()
		enc := EncodeBlockPlan(nil, vals, &plan)
		got, rest, err := DecodeBlock(enc, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 || len(got) != len(vals) {
			t.Fatalf("decoded %d values, %d bytes left", len(got), len(rest))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d: got %d want %d", i, got[i], vals[i])
			}
		}
	}
	t.Run("alpha0", func(t *testing.T) {
		vals := mkVals(500, true, false)
		check(t, vals, mkPlan(vals, true, false))
	})
	t.Run("gamma0", func(t *testing.T) {
		vals := mkVals(500, false, true)
		check(t, vals, mkPlan(vals, false, true))
	})
	t.Run("both0", func(t *testing.T) {
		vals := mkVals(500, true, true)
		check(t, vals, mkPlan(vals, true, true))
	})
}
