package core

import (
	"math/rand"
	"testing"

	"bos/internal/bitio"
)

// These tests quantify the two storage-layout design choices the paper makes
// against the PFOR family (Section II-C): positions as a bitmap instead of
// an index list, and a 1/2-bit prefix code instead of fixed-width tags.

// positionCostBitmap is the paper's Figure 2 bitmap: one bit per value plus
// a second bit per outlier.
func positionCostBitmap(n, outliers int) int64 {
	return int64(n + outliers)
}

// positionCostIndexList is the PFOR-family alternative: ceil(log2 n) bits
// per outlier position.
func positionCostIndexList(n, outliers int) int64 {
	return int64(outliers) * int64(bitio.WidthOf(uint64(n-1)))
}

// TestPositionEncodingCrossover pins down where the bitmap beats the index
// list: with 1024-value blocks the index list costs 10 bits per outlier, so
// the bitmap wins once more than n/(10-1) ~ 11% of the block is separated —
// the "in some cases, bitmap could save the index storage" remark in
// Section II-C.
func TestPositionEncodingCrossover(t *testing.T) {
	const n = 1024
	crossover := -1
	for k := 0; k <= n; k++ {
		if positionCostBitmap(n, k) <= positionCostIndexList(n, k) {
			crossover = k
			break
		}
	}
	if crossover < n/10 || crossover > n/8 {
		t.Errorf("bitmap/index crossover at %d outliers, expected ~%d", crossover, n/9)
	}
	// Sanity at the extremes.
	if positionCostBitmap(n, n/2) >= positionCostIndexList(n, n/2) {
		t.Error("bitmap should win at 50% outliers")
	}
	if positionCostBitmap(n, 3) <= positionCostIndexList(n, 3) {
		t.Error("index list should win at 3 outliers")
	}
}

// TestPrefixTagsBeatFixedTags compares the Figure 2 prefix code (center '0',
// outliers '10'/'11') with a uniform 2-bit tag per value: with outliers in
// the minority the prefix code approaches half the tag cost.
func TestPrefixTagsBeatFixedTags(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for iter := 0; iter < 100; iter++ {
		vals := genSeries(rng)
		p := PlanBitWidth(vals)
		if !p.Separated {
			continue
		}
		prefix := int64(p.N + p.NL + p.NU) // Figure 2
		fixed := int64(2 * p.N)            // uniform 2-bit class tags
		if prefix > fixed {
			t.Fatalf("iter %d: prefix code %d bits > fixed %d with nl=%d nu=%d n=%d",
				iter, prefix, fixed, p.NL, p.NU, p.N)
		}
		if p.NL+p.NU < p.N/2 && prefix >= fixed {
			t.Fatalf("iter %d: minority outliers but no prefix win", iter)
		}
	}
}

// TestHuffmanTagsMatchPrefixForThreeParts confirms the k-parts Huffman tags
// reduce to the paper's 1/2-bit code whenever the center class dominates, so
// mode 2 with k=3 and mode 1 agree on tag cost.
func TestHuffmanTagsMatchPrefixForThreeParts(t *testing.T) {
	lens := huffmanLengths([]int{900, 60, 64})
	if lens[0] != 1 || lens[1] != 2 || lens[2] != 2 {
		t.Errorf("huffman lengths = %v, want [1 2 2]", lens)
	}
}

// BenchmarkAblationSeparationStrategies measures planning cost per strategy
// on the same outlier-rich block, the trade Figure 10b plots.
func BenchmarkAblationSeparationStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	vals := make([]int64, 1024)
	for i := range vals {
		switch {
		case rng.Float64() < 0.03:
			vals[i] = -rng.Int63n(1 << 35)
		case rng.Float64() < 0.06:
			vals[i] = rng.Int63n(1 << 35)
		default:
			vals[i] = int64(rng.NormFloat64() * 300)
		}
	}
	for _, sep := range []Separation{SeparationNone, SeparationUpperOnly, SeparationMedian, SeparationBitWidth, SeparationValue} {
		b.Run(sep.String(), func(b *testing.B) {
			b.ReportAllocs()
			var bits int64
			for i := 0; i < b.N; i++ {
				p := PlanFor(vals, sep)
				bits = p.CostBits
			}
			b.ReportMetric(float64(bits)/float64(len(vals)), "bits/value")
		})
	}
}

// BenchmarkAblationTwoSided quantifies what the lower-outlier loop buys over
// the PFOR-style upper-only regime (the Figure 12 claim) as a metric.
func BenchmarkAblationTwoSided(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	vals := make([]int64, 1024)
	for i := range vals {
		switch {
		case rng.Float64() < 0.04:
			vals[i] = rng.Int63n(100) // dropouts far below the band
		default:
			vals[i] = 1<<20 + int64(rng.NormFloat64()*200)
		}
	}
	full := PlanBitWidth(vals).CostBits
	upper := PlanUpperOnly(vals).CostBits
	b.Run("full-vs-upper-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PlanBitWidth(vals)
		}
		b.ReportMetric(float64(upper)/float64(full), "upper/full-cost-ratio")
	})
}
