package core

import (
	"math/rand"
	"testing"
)

func TestInspectBOSBlock(t *testing.T) {
	enc := EncodeBlock(nil, introSeries, SeparationValue)
	info, rest, err := InspectBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if info.Mode != "bos" || info.N != 8 {
		t.Fatalf("info = %+v", info)
	}
	if info.NL != 1 || info.NU != 1 {
		t.Errorf("nl/nu = %d/%d", info.NL, info.NU)
	}
	if info.Alpha != 1 || info.Beta != 2 || info.Gamma != 1 {
		t.Errorf("widths = %d/%d/%d", info.Alpha, info.Beta, info.Gamma)
	}
	if info.Xmin != 0 || info.MinXc != 2 || info.MinXu != 8 {
		t.Errorf("bounds = %d/%d/%d", info.Xmin, info.MinXc, info.MinXu)
	}
	if info.BodyBytes != len(enc) {
		t.Errorf("body = %d want %d", info.BodyBytes, len(enc))
	}
}

func TestInspectPlainBlock(t *testing.T) {
	enc := EncodeBlock(nil, []int64{10, 11, 12, 13}, SeparationNone)
	info, _, err := InspectBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "plain" || info.Xmin != 10 || info.Width != 2 {
		t.Fatalf("info = %+v", info)
	}
}

func TestInspectPartsBlock(t *testing.T) {
	enc := EncodeBlockParts(nil, Fig1Series, 4)
	info, _, err := InspectBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "parts" || info.K != 4 {
		t.Fatalf("info = %+v", info)
	}
}

func TestInspectSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	var enc []byte
	for b := 0; b < 5; b++ {
		enc = EncodeBlock(enc, genSeries(rng), SeparationBitWidth)
	}
	blocks := 0
	rest := enc
	for len(rest) > 0 {
		var err error
		_, rest, err = InspectBlock(rest)
		if err != nil {
			t.Fatal(err)
		}
		blocks++
	}
	if blocks != 5 {
		t.Fatalf("inspected %d blocks want 5", blocks)
	}
}

func TestInspectCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	base := EncodeBlock(nil, Fig1Series, SeparationBitWidth)
	for i := 0; i < 1000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		InspectBlock(cor)
	}
}
