package core

import (
	"math"
	"math/rand"
	"testing"
)

// introSeries is the motivating example from Section I of the paper.
var introSeries = []int64{3, 2, 4, 5, 3, 2, 0, 8}

func TestPlanValueIntroExample(t *testing.T) {
	// Separating the lower outlier 0 and the upper outlier 8 leaves the
	// center (3,2,4,5,3,2) at bit-width 2. The optimal cost is
	// 1*(1+1) + 1*(1+1) + 6*2 + 8 = 24 bits, versus 8*4 = 32 for BP.
	p := PlanValue(introSeries)
	if !p.Separated {
		t.Fatal("intro example should separate outliers")
	}
	if p.CostBits != 24 {
		t.Errorf("cost = %d want 24", p.CostBits)
	}
	if p.NL != 1 || p.NU != 1 {
		t.Errorf("nl=%d nu=%d want 1,1", p.NL, p.NU)
	}
	if p.Alpha != 1 || p.Beta != 2 || p.Gamma != 1 {
		t.Errorf("widths = %d/%d/%d want 1/2/1", p.Alpha, p.Beta, p.Gamma)
	}
	if p.MaxXl != 0 || p.MinXu != 8 || p.MinXc != 2 || p.MaxXc != 5 {
		t.Errorf("bounds = maxXl %d minXc %d maxXc %d minXu %d", p.MaxXl, p.MinXc, p.MaxXc, p.MinXu)
	}
}

func TestPlanBitWidthIntroExample(t *testing.T) {
	p := PlanBitWidth(introSeries)
	if p.CostBits != 24 {
		t.Errorf("BOS-B cost = %d want 24 (the BOS-V optimum)", p.CostBits)
	}
}

func TestPlanMedianIntroExample(t *testing.T) {
	p := PlanMedian(introSeries)
	// BOS-M restricted to symmetric thresholds around the median (3)
	// finds (-1, 7) and (2-like) candidates; its best is 26 bits —
	// between the optimum 24 and plain BP's 32.
	if !p.Separated {
		t.Fatal("BOS-M should separate on the intro example")
	}
	if p.CostBits != 26 {
		t.Errorf("BOS-M cost = %d want 26", p.CostBits)
	}
}

func TestPlanUpperOnlyIntroExample(t *testing.T) {
	p := PlanUpperOnly(introSeries)
	// Upper-only separation must keep 0 in the center. The best it can do
	// is upper = {4,5,8}: 3*(3+1) + 5*2 + 8 = 30 — still worse than the
	// two-sided optimum of 24.
	if p.CostBits != 30 {
		t.Errorf("upper-only cost = %d want 30", p.CostBits)
	}
	if p.NL != 0 {
		t.Errorf("upper-only plan separated %d lower outliers", p.NL)
	}
	if full := PlanBitWidth(introSeries); full.CostBits >= p.CostBits {
		t.Errorf("full BOS (%d) should beat upper-only (%d) here", full.CostBits, p.CostBits)
	}
}

func TestPlanPlainWhenUniform(t *testing.T) {
	// A perfectly uniform spread has no outliers worth separating: the
	// bitmap overhead (n bits) cannot be recovered.
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i)
	}
	for _, sep := range []Separation{SeparationValue, SeparationBitWidth, SeparationMedian, SeparationUpperOnly} {
		p := PlanFor(vals, sep)
		if p.Separated {
			t.Errorf("%v separated a uniform ramp (cost %d, plain %d)", sep, p.CostBits, plainCost(64, 0, 63))
		}
	}
}

func TestPlanConstant(t *testing.T) {
	vals := []int64{7, 7, 7, 7}
	for _, sep := range []Separation{SeparationNone, SeparationValue, SeparationBitWidth, SeparationMedian} {
		p := PlanFor(vals, sep)
		if p.Separated {
			t.Errorf("%v separated a constant block", sep)
		}
		if p.CostBits != 0 {
			t.Errorf("%v constant cost = %d want 0", sep, p.CostBits)
		}
	}
}

func TestPlanEmptyAndSingle(t *testing.T) {
	for _, sep := range []Separation{SeparationValue, SeparationBitWidth, SeparationMedian, SeparationUpperOnly} {
		if p := PlanFor(nil, sep); p.Separated || p.N != 0 {
			t.Errorf("%v empty plan = %+v", sep, p)
		}
		if p := PlanFor([]int64{42}, sep); p.Separated {
			t.Errorf("%v separated a single value", sep)
		}
	}
}

func TestFig1SeriesShape(t *testing.T) {
	if len(Fig1Series) != 100 {
		t.Fatalf("Fig1Series has %d values", len(Fig1Series))
	}
	// Example 1: with thresholds (620, 794) there are 5 lower and 4 upper
	// outliers and the bitmap costs n + nl + nu = 109 bits.
	nl, nu := 0, 0
	for _, v := range Fig1Series {
		if v <= 620 {
			nl++
		}
		if v >= 794 {
			nu++
		}
	}
	if nl != 5 || nu != 4 {
		t.Errorf("nl=%d nu=%d want 5,4", nl, nu)
	}
	if bitmap := len(Fig1Series) + nl + nu; bitmap != 109 {
		t.Errorf("bitmap bits = %d want 109", bitmap)
	}
}

func TestFig1PlansImprove(t *testing.T) {
	plain := plainCost(len(Fig1Series), 465, 935)
	v := PlanValue(Fig1Series)
	b := PlanBitWidth(Fig1Series)
	m := PlanMedian(Fig1Series)
	if !v.Separated {
		t.Fatal("BOS-V should separate on the Figure 1 series")
	}
	if v.CostBits >= plain {
		t.Errorf("BOS-V cost %d not better than plain %d", v.CostBits, plain)
	}
	if b.CostBits != v.CostBits {
		t.Errorf("BOS-B cost %d != BOS-V cost %d", b.CostBits, v.CostBits)
	}
	if m.CostBits < v.CostBits {
		t.Errorf("BOS-M cost %d beats the optimum %d", m.CostBits, v.CostBits)
	}
	if m.CostBits > plain {
		t.Errorf("BOS-M cost %d worse than plain %d", m.CostBits, plain)
	}
	// All nine engineered outliers should be separated by the optimum.
	if v.NL < 5 || v.NU < 4 {
		t.Errorf("BOS-V separated nl=%d nu=%d, want at least 5,4", v.NL, v.NU)
	}
}

// genSeries produces test series from a few qualitatively different
// distributions: the interesting regimes for outlier separation.
func genSeries(rng *rand.Rand) []int64 {
	n := rng.Intn(200) + 1
	vals := make([]int64, n)
	switch rng.Intn(6) {
	case 0: // pure normal-ish center
		for i := range vals {
			vals[i] = int64(rng.NormFloat64() * 50)
		}
	case 1: // center plus heavy two-sided outliers
		for i := range vals {
			switch r := rng.Float64(); {
			case r < 0.05:
				vals[i] = rng.Int63n(1 << 40)
			case r < 0.10:
				vals[i] = -rng.Int63n(1 << 40)
			default:
				vals[i] = int64(rng.NormFloat64() * 20)
			}
		}
	case 2: // uniform full int64
		for i := range vals {
			vals[i] = int64(rng.Uint64())
		}
	case 3: // small discrete alphabet (many duplicates)
		for i := range vals {
			vals[i] = int64(rng.Intn(4))
		}
	case 4: // constant with a single spike
		c := rng.Int63n(1000)
		for i := range vals {
			vals[i] = c
		}
		vals[rng.Intn(n)] = c + rng.Int63n(1<<30) + 1
	default: // clustered bimodal
		for i := range vals {
			base := int64(0)
			if rng.Intn(2) == 0 {
				base = 1 << 20
			}
			vals[i] = base + int64(rng.Intn(16))
		}
	}
	return vals
}

func TestBitWidthMatchesValueProperty(t *testing.T) {
	// Propositions 2 and 3: BOS-B must return exactly the optimal cost
	// found by the exhaustive BOS-V search.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		vals := genSeries(rng)
		v := PlanValue(vals)
		b := PlanBitWidth(vals)
		if v.CostBits != b.CostBits {
			t.Fatalf("iter %d: BOS-V=%d BOS-B=%d on %v", iter, v.CostBits, b.CostBits, vals)
		}
	}
}

func TestMedianNeverWorseThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		vals := genSeries(rng)
		m := PlanMedian(vals)
		v := PlanValue(vals)
		plain := plainPlan(vals)
		if m.CostBits > plain.CostBits {
			t.Fatalf("iter %d: BOS-M %d worse than plain %d", iter, m.CostBits, plain.CostBits)
		}
		if m.CostBits < v.CostBits {
			t.Fatalf("iter %d: BOS-M %d beats the optimum %d", iter, m.CostBits, v.CostBits)
		}
	}
}

func TestUpperOnlyBracketsFullBOS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		vals := genSeries(rng)
		u := PlanUpperOnly(vals)
		full := PlanBitWidth(vals)
		plain := plainPlan(vals)
		if u.CostBits < full.CostBits {
			t.Fatalf("iter %d: upper-only %d beats full BOS %d", iter, u.CostBits, full.CostBits)
		}
		if u.CostBits > plain.CostBits {
			t.Fatalf("iter %d: upper-only %d worse than plain %d", iter, u.CostBits, plain.CostBits)
		}
		if u.NL != 0 {
			t.Fatalf("iter %d: upper-only separated %d lower outliers", iter, u.NL)
		}
	}
}

func TestPlanExtremeRange(t *testing.T) {
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64, 3, 2, 5, 4, 2, 3, 3}
	v := PlanValue(vals)
	b := PlanBitWidth(vals)
	if v.CostBits != b.CostBits {
		t.Errorf("extreme range: BOS-V=%d BOS-B=%d", v.CostBits, b.CostBits)
	}
	if !v.Separated {
		t.Error("extreme range should separate")
	}
	m := PlanMedian(vals)
	if m.CostBits > plainPlan(vals).CostBits {
		t.Errorf("BOS-M %d worse than plain on extreme range", m.CostBits)
	}
}

// MedianApproxRatioNormal checks the Proposition 4 flavor of guarantee
// empirically: on normal data the BOS-M cost stays within a small factor of
// the optimum.
func TestMedianApproxRatioNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sigma := range []float64{1, 1.67, 5, 40, 300} {
		worst := 1.0
		for iter := 0; iter < 20; iter++ {
			vals := make([]int64, 512)
			for i := range vals {
				vals[i] = int64(rng.NormFloat64() * sigma)
			}
			opt := PlanValue(vals).CostBits
			approx := PlanMedian(vals).CostBits
			if opt == 0 {
				continue
			}
			if r := float64(approx) / float64(opt); r > worst {
				worst = r
			}
		}
		// Proposition 4 bounds the ratio by 2 for sigma <= 5/3 and
		// ceil(log2(3*sigma-1)) otherwise (with prob. 0.997); allow
		// the same order of slack.
		bound := 2.0
		if sigma > 5.0/3.0 {
			bound = math.Ceil(math.Log2(3*sigma - 1))
		}
		if worst > bound {
			t.Errorf("sigma=%v: worst ratio %.3f exceeds bound %.1f", sigma, worst, bound)
		}
	}
}

func BenchmarkPlanValue1024(b *testing.B)    { benchPlan(b, SeparationValue) }
func BenchmarkPlanBitWidth1024(b *testing.B) { benchPlan(b, SeparationBitWidth) }
func BenchmarkPlanMedian1024(b *testing.B)   { benchPlan(b, SeparationMedian) }

func benchPlan(b *testing.B, sep Separation) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 1024)
	for i := range vals {
		if rng.Float64() < 0.05 {
			vals[i] = rng.Int63n(1 << 30)
		} else {
			vals[i] = int64(rng.NormFloat64() * 100)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PlanFor(vals, sep)
	}
}

func TestMedianApproxBoundNormal(t *testing.T) {
	if got := MedianApproxBoundNormal(1.0); got != 2 {
		t.Errorf("bound(1) = %v", got)
	}
	if got := MedianApproxBoundNormal(5.0 / 3.0); got != 2 {
		t.Errorf("bound(5/3) = %v", got)
	}
	if got := MedianApproxBoundNormal(40); got != math.Ceil(math.Log2(119)) {
		t.Errorf("bound(40) = %v", got)
	}
	// The bound must be monotone non-decreasing past the knee.
	prev := 0.0
	for s := 2.0; s < 1000; s *= 2 {
		b := MedianApproxBoundNormal(s)
		if b < prev {
			t.Fatalf("bound not monotone at sigma=%v", s)
		}
		prev = b
	}
}
