package core

import "bos/internal/stats"

// PlanValue implements BOS-V (Algorithm 1): exact value separation. It
// enumerates every pair of distinct values as the lower and upper thresholds
// (xl, xu), plus the no-lower / no-upper sentinels, and returns the plan with
// the minimum storage cost. By Proposition 1 restricting thresholds to values
// of X preserves optimality. O(m^2) over m distinct values.
//
// The returned plan is plain bit-packing when no separation beats
// Definition 1's cost, mirroring the Cmin initialization in Algorithm 1.
func PlanValue(vals []int64) Plan {
	if len(vals) == 0 {
		return plainPlan(vals)
	}
	d := stats.NewDistinct(vals)
	best := plainPlan(vals)
	m := len(d.Values)
	// i indexes the largest lower outlier (-1: none); j indexes the
	// smallest upper outlier (m: none). Any i < j is a valid partition.
	for i := -1; i < m; i++ {
		for j := i + 1; j <= m; j++ {
			if i == -1 && j == m {
				continue // no separation: that is the plain baseline
			}
			if cand := partitionCost(d, i, j); better(&cand, &best) {
				best = cand
			}
		}
	}
	return best
}
