package core

// PlanBitWidthSampled runs the BOS-B planner over a deterministic stride
// sample of at most sampleSize values, then resolves the sampled plan's
// thresholds exactly against the full block. It trades the optimality
// guarantee for planning cost: on large blocks the O(m log m) search runs
// over the sample's distinct values only, while the emitted plan still
// carries exact class bounds and true storage cost for the whole block
// (so encoding remains correct and the BP fallback comparison stays honest).
//
// This is an engineering extension beyond the paper: its Figure 15 keeps
// blocks at 1024 values where full planning is cheap; systems that want
// larger blocks can sample instead of paying the full search.
func PlanBitWidthSampled(vals []int64, sampleSize int) Plan {
	if sampleSize <= 0 {
		sampleSize = 1024
	}
	if len(vals) <= sampleSize {
		return PlanBitWidth(vals)
	}
	stride := (len(vals) + sampleSize - 1) / sampleSize
	sample := make([]int64, 0, sampleSize)
	for i := 0; i < len(vals); i += stride {
		sample = append(sample, vals[i])
	}
	sampled := PlanBitWidth(sample)
	if !sampled.Separated {
		return plainPlan(vals)
	}
	// Re-derive the partition on the full block from the sampled
	// thresholds: lower outliers <= sampled.MaxXl, upper >= sampled.MinXu
	// (whichever classes the sampled plan used).
	full := resolveBounds(vals, sampled)
	plain := plainPlan(vals)
	if !full.Separated || full.CostBits >= plain.CostBits {
		return plain
	}
	return full
}

// resolveBounds classifies the full block by the sampled plan's thresholds
// and computes exact class bounds, widths and cost.
func resolveBounds(vals []int64, sampled Plan) Plan {
	return resolveClasses(vals,
		func(v int64) bool { return sampled.NL > 0 && v <= sampled.MaxXl },
		func(v int64) bool { return sampled.NU > 0 && v >= sampled.MinXu })
}

// resolveClasses builds the exact Plan for an arbitrary classification of
// values into lower outliers / upper outliers / center, shared by the
// sampled and paper-pseudocode planners.
func resolveClasses(vals []int64, isLow, isHigh func(int64) bool) Plan {
	n := len(vals)
	p := Plan{N: n, Separated: true}
	var haveL, haveU, haveC bool
	var xmin, xmax int64
	for i, v := range vals {
		if i == 0 || v < xmin {
			xmin = v
		}
		if i == 0 || v > xmax {
			xmax = v
		}
	}
	p.Xmin, p.Xmax = xmin, xmax
	for _, v := range vals {
		switch {
		case isLow(v):
			p.NL++
			if !haveL || v > p.MaxXl {
				p.MaxXl = v
			}
			haveL = true
		case isHigh(v):
			p.NU++
			if !haveU || v < p.MinXu {
				p.MinXu = v
			}
			haveU = true
		default:
			if !haveC || v < p.MinXc {
				p.MinXc = v
			}
			if !haveC || v > p.MaxXc {
				p.MaxXc = v
			}
			haveC = true
		}
	}
	if p.NL == 0 && p.NU == 0 {
		return plainPlan(vals)
	}
	var cost int64
	if haveL {
		p.Alpha = classWidth(spread(xmin, p.MaxXl))
		cost += int64(p.NL) * int64(p.Alpha+1)
	}
	if haveU {
		p.Gamma = classWidth(spread(p.MinXu, xmax))
		cost += int64(p.NU) * int64(p.Gamma+1)
	}
	if haveC {
		p.Beta = classWidth(spread(p.MinXc, p.MaxXc))
		cost += int64(p.NC()) * int64(p.Beta)
	}
	p.CostBits = cost + int64(n)
	return p
}
