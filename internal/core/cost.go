// Package core implements Bit-packing with Outlier Separation (BOS), the
// primary contribution of the paper (Sections III–VII): the storage-cost
// model of Definition 5, the three planners — exact value separation BOS-V
// (Algorithm 1), exact bit-width separation BOS-B (Algorithm 2), and the
// linear-time approximate median separation BOS-M (Algorithm 3) — the
// upper-only ablation of Figure 12, the k-parts generalization of Figure 14,
// and the self-describing block format of Figure 7.
package core

import (
	"bos/internal/bitio"
	"bos/internal/stats"
)

// Separation identifies which planner picks the outlier thresholds.
type Separation int

const (
	// SeparationNone disables outlier separation: plain bit-packing
	// (Definition 1).
	SeparationNone Separation = iota
	// SeparationValue is BOS-V: exact O(n^2) enumeration of value pairs.
	SeparationValue
	// SeparationBitWidth is BOS-B: exact O(n log n) bit-width enumeration.
	SeparationBitWidth
	// SeparationMedian is BOS-M: approximate O(n) median+bit-width search.
	SeparationMedian
	// SeparationUpperOnly is BOS-B restricted to upper outliers, the
	// PFOR-style ablation of Figure 12.
	SeparationUpperOnly
)

// String returns the paper's name for the separation strategy.
func (s Separation) String() string {
	switch s {
	case SeparationNone:
		return "BP"
	case SeparationValue:
		return "BOS-V"
	case SeparationBitWidth:
		return "BOS-B"
	case SeparationMedian:
		return "BOS-M"
	case SeparationUpperOnly:
		return "BOS-U"
	default:
		return "BOS-?"
	}
}

// Plan is a fully resolved outlier separation for one block: the class
// boundaries, counts, bit-widths and the exact storage cost of Definition 5.
// A Plan with Separated == false represents plain bit-packing.
type Plan struct {
	N         int
	Separated bool

	// Class boundaries. Lower outliers are values <= MaxXl (valid when
	// NL > 0), upper outliers are values >= MinXu (valid when NU > 0);
	// everything else is a center value in [MinXc, MaxXc].
	Xmin, Xmax   int64
	MaxXl, MinXu int64
	MinXc, MaxXc int64
	NL, NU       int

	// Bit-widths: Alpha for lower outliers, Beta for center values, Gamma
	// for upper outliers (Figure 1). A width is 0 only when its class is
	// empty.
	Alpha, Beta, Gamma uint

	// CostBits is the body cost in bits: Definition 5 for a separated
	// plan (values + positional bitmap), or n*ceil(log2(range+1)) for the
	// plain plan.
	CostBits int64
}

// NC returns the number of center values.
func (p *Plan) NC() int { return p.N - p.NL - p.NU }

// classWidth is the bit-width of a non-empty class spanning `spread`
// (max-min, computed wrap-safe as uint64). The paper pins the minimum class
// width at 1 ("if maxXl = xmin, the first term of C is 2nl"; "if maxXc =
// minXc, the third term is (n-nl-nu)").
func classWidth(spread uint64) uint {
	if w := bitio.WidthOf(spread); w > 1 {
		return w
	}
	return 1
}

// spread returns hi-lo as uint64, valid for any int64 pair with hi >= lo.
func spread(lo, hi int64) uint64 {
	return uint64(hi) - uint64(lo)
}

// plainCost is Definition 1: n * ceil(log2(xmax-xmin+1)) bits.
func plainCost(n int, xmin, xmax int64) int64 {
	return int64(n) * int64(bitio.WidthOf(spread(xmin, xmax)))
}

// plainPlan builds the no-separation Plan for a block.
func plainPlan(vals []int64) Plan {
	s := stats.Summarize(vals)
	return Plan{
		N:        s.N,
		Xmin:     s.Min,
		Xmax:     s.Max,
		MinXc:    s.Min,
		MaxXc:    s.Max,
		Beta:     bitio.WidthOf(spread(s.Min, s.Max)),
		CostBits: plainCost(s.N, s.Min, s.Max),
	}
}

// partitionCost evaluates Definition 5 (via the cumulative-count form of
// Formula 7) for the partition of d into lower outliers d.Values[0..i],
// upper outliers d.Values[j..m-1] and center values in between. i == -1
// means no lower outliers; j == len(d.Values) means no upper outliers.
// It returns the cost in bits and the resolved Plan.
func partitionCost(d *stats.Distinct, i, j int) Plan {
	m := len(d.Values)
	n := d.N
	p := Plan{
		N:         n,
		Separated: true,
		Xmin:      d.Values[0],
		Xmax:      d.Values[m-1],
	}
	var cost int64
	if i >= 0 {
		p.NL = d.CumLE[i]
		p.MaxXl = d.Values[i]
		p.Alpha = classWidth(spread(p.Xmin, p.MaxXl))
		cost += int64(p.NL) * int64(p.Alpha+1)
	}
	if j < m {
		cu := 0
		if j > 0 {
			cu = d.CumLE[j-1]
		}
		p.NU = n - cu
		p.MinXu = d.Values[j]
		p.Gamma = classWidth(spread(p.MinXu, p.Xmax))
		cost += int64(p.NU) * int64(p.Gamma+1)
	}
	if nc := p.NC(); nc > 0 {
		p.MinXc = d.Values[i+1]
		p.MaxXc = d.Values[j-1]
		p.Beta = classWidth(spread(p.MinXc, p.MaxXc))
		cost += int64(nc) * int64(p.Beta)
	}
	cost += int64(n) // first-level bitmap bit per value
	p.CostBits = cost
	return p
}

// better reports whether candidate (i, j) improves on the best cost so far,
// preferring fewer separated outliers on ties (cheaper headers, faster
// decode).
func better(cand, best *Plan) bool {
	if cand.CostBits != best.CostBits {
		return cand.CostBits < best.CostBits
	}
	return cand.NL+cand.NU < best.NL+best.NU
}
