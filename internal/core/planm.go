package core

import (
	"bos/internal/bitio"
	"bos/internal/stats"
)

// maxBuckets bounds the bucket index |beta|; an int64 spread fits in 64 bits.
const maxBuckets = 65

// PlanMedian implements BOS-M (Algorithm 3): approximate median separation in
// O(n) time. It finds the median with QuickSelect, divides the values into
// the bucket counts h(beta) / h(-beta) of Definition 7 (values at distance
// [2^(beta-1), 2^beta) above / below the median), and evaluates only the
// symmetric candidates
//
//	(xl, xu) = (median - 2^beta, median + 2^beta)
//
// for each feasible beta. Unlike the paper's pseudo-code, which estimates the
// class widths from the thresholds, this implementation tracks per-bucket
// minima and maxima so each candidate is charged its exact Definition 5 cost;
// the approximation comes only from the restricted candidate set.
func PlanMedian(vals []int64) Plan {
	n := len(vals)
	if n == 0 {
		return plainPlan(vals)
	}
	med := stats.Median(vals)

	// Bucket accounting. Index 0 is the median bucket; index b in [1,64]
	// holds values with distance d to the median where
	// 2^(b-1) <= d < 2^b (above for high, below for low).
	var (
		lowCnt, highCnt [maxBuckets]int
		lowMin, highMin [maxBuckets]int64
		lowMax, highMax [maxBuckets]int64
		lowSeen, hiSeen [maxBuckets]bool
		xmin, xmax      = vals[0], vals[0]
		medCount        int
	)
	for _, v := range vals {
		if v < xmin {
			xmin = v
		}
		if v > xmax {
			xmax = v
		}
		switch {
		case v == med:
			medCount++
		case v > med:
			b := int(bitio.WidthOf(spread(med, v)))
			highCnt[b]++
			if !hiSeen[b] || v < highMin[b] {
				highMin[b] = v
			}
			if !hiSeen[b] || v > highMax[b] {
				highMax[b] = v
			}
			hiSeen[b] = true
		default:
			b := int(bitio.WidthOf(spread(v, med)))
			lowCnt[b]++
			if !lowSeen[b] || v < lowMin[b] {
				lowMin[b] = v
			}
			if !lowSeen[b] || v > lowMax[b] {
				lowMax[b] = v
			}
			lowSeen[b] = true
		}
	}

	best := plainPlan(vals)
	maxBeta := int(bitio.WidthOf(spread(xmin, xmax)))
	if maxBeta >= maxBuckets {
		maxBeta = maxBuckets - 1
	}

	// Walk beta downward, accumulating outlier-side aggregates exactly as
	// Algorithm 3 accumulates nl and nu. At threshold beta the lower
	// outliers are the values <= med - 2^beta, i.e. buckets b > beta.
	var (
		nl, nu       int
		haveL, haveU bool
		maxXl, minXu int64
	)
	for beta := maxBeta; beta >= 1; beta-- {
		if b := beta + 1; b < maxBuckets {
			if lowSeen[b] {
				nl += lowCnt[b]
				if !haveL || lowMax[b] > maxXl {
					maxXl = lowMax[b]
				}
				haveL = true
			}
			if hiSeen[b] {
				nu += highCnt[b]
				if !haveU || highMin[b] < minXu {
					minXu = highMin[b]
				}
				haveU = true
			}
		}
		cand := medianCandidate(n, beta, med, medCount,
			&lowCnt, &lowMin, &lowMax, &lowSeen,
			&highCnt, &highMin, &highMax, &hiSeen,
			nl, nu, haveL, haveU, maxXl, minXu, xmin, xmax)
		if cand.Separated && better(&cand, &best) {
			best = cand
		}
	}
	return best
}

// medianCandidate resolves the exact Plan for thresholds
// (med - 2^beta, med + 2^beta) given the accumulated outlier aggregates.
func medianCandidate(n, beta int, med int64, medCount int,
	lowCnt *[maxBuckets]int, lowMin, lowMax *[maxBuckets]int64, lowSeen *[maxBuckets]bool,
	highCnt *[maxBuckets]int, highMin, highMax *[maxBuckets]int64, hiSeen *[maxBuckets]bool,
	nl, nu int, haveL, haveU bool, maxXl, minXu, xmin, xmax int64) Plan {

	if nl == 0 && nu == 0 {
		return Plan{} // nothing separated: the plain baseline wins anyway
	}
	p := Plan{N: n, Separated: true, Xmin: xmin, Xmax: xmax}
	var cost int64
	if haveL {
		p.NL = nl
		p.MaxXl = maxXl
		p.Alpha = classWidth(spread(xmin, maxXl))
		cost += int64(nl) * int64(p.Alpha+1)
	}
	if haveU {
		p.NU = nu
		p.MinXu = minXu
		p.Gamma = classWidth(spread(minXu, xmax))
		cost += int64(nu) * int64(p.Gamma+1)
	}
	if nc := p.NC(); nc > 0 {
		// Center bounds: the inner buckets b <= beta on both sides,
		// plus the median itself when present.
		minXc, maxXc := med, med
		haveC := medCount > 0
		for b := 1; b <= beta && b < maxBuckets; b++ {
			if lowSeen[b] {
				if !haveC || lowMin[b] < minXc {
					minXc = lowMin[b]
				}
				if !haveC || lowMax[b] > maxXc {
					maxXc = lowMax[b]
				}
				haveC = true
			}
			if hiSeen[b] {
				if !haveC || highMin[b] < minXc {
					minXc = highMin[b]
				}
				if !haveC || highMax[b] > maxXc {
					maxXc = highMax[b]
				}
				haveC = true
			}
		}
		p.MinXc, p.MaxXc = minXc, maxXc
		p.Beta = classWidth(spread(minXc, maxXc))
		cost += int64(nc) * int64(p.Beta)
	}
	cost += int64(n)
	p.CostBits = cost
	return p
}
