package core

import "fmt"

// Cold error constructors for the decode kernels. Corruption is the
// exceptional path, so all fmt work is funneled here, keeping the
// //bos:hotpath kernels themselves free of fmt (the hotpath analyzer bans it
// there). Fixed-arity signatures on purpose: a ...any funnel would box its
// arguments at the hot call sites.

// corrupt reports a malformed section.
func corrupt(what string) error {
	return fmt.Errorf("%w: %s", errCorrupt, what)
}

// corrupte reports a malformed section with its underlying read error.
func corrupte(what string, err error) error {
	return fmt.Errorf("%w: %s: %v", errCorrupt, what, err)
}

// corruptn reports a malformed section with the offending values.
func corruptn(what string, ns ...int64) error {
	return fmt.Errorf("%w: %s %v", errCorrupt, what, ns)
}

// corruptne reports a malformed value at an index with its read error.
func corruptne(what string, n int64, err error) error {
	return fmt.Errorf("%w: %s %d: %v", errCorrupt, what, n, err)
}
