package core

import (
	"math/rand"
	"testing"
)

func TestPlanMedianPaperRoundTripAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for iter := 0; iter < 300; iter++ {
		vals := genSeries(rng)
		paper := PlanMedianPaper(vals)
		exact := PlanMedian(vals)
		plain := plainPlan(vals)
		opt := PlanValue(vals)
		// Both BOS-M variants are bracketed by the optimum and plain BP.
		if paper.CostBits > plain.CostBits {
			t.Fatalf("iter %d: paper BOS-M %d worse than plain %d", iter, paper.CostBits, plain.CostBits)
		}
		if paper.CostBits < opt.CostBits {
			t.Fatalf("iter %d: paper BOS-M %d beats the optimum %d", iter, paper.CostBits, opt.CostBits)
		}
		// The exact-costing variant never picks a worse plan than the
		// estimate-based pseudo-code (the ablation claim).
		if exact.CostBits > paper.CostBits {
			t.Fatalf("iter %d: exact BOS-M %d worse than paper variant %d", iter, exact.CostBits, paper.CostBits)
		}
		// Plans must encode and decode.
		enc := EncodeBlockPlan(nil, vals, &paper)
		got, rest, err := DecodeBlock(enc, nil)
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			t.Fatalf("iter %d: decode %v", iter, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("iter %d: value %d mismatch", iter, i)
			}
		}
	}
}

func TestPlanMedianPaperIntroExample(t *testing.T) {
	p := PlanMedianPaper(introSeries)
	// The estimate-based search still finds a separation on the intro
	// series, within the [optimal, plain] bracket.
	if !p.Separated {
		t.Fatal("paper BOS-M should separate")
	}
	if p.CostBits < 24 || p.CostBits > 32 {
		t.Errorf("cost = %d, want within [24, 32]", p.CostBits)
	}
}

func TestPlanMedianPaperEmptyAndConstant(t *testing.T) {
	if p := PlanMedianPaper(nil); p.Separated {
		t.Error("separated empty input")
	}
	if p := PlanMedianPaper([]int64{7, 7, 7}); p.Separated {
		t.Error("separated constant input")
	}
}
