package pfor

import (
	"fmt"

	"bos/internal/bitio"
)

// FastPFOR chooses b by exact cost minimization and then classifies the
// exceptions by the width of their high bits: one bucket per distinct high
// width, each bucket packing its positions and high values at exactly that
// width. This mirrors the per-width exception pages of Lemire & Boytsov.
type FastPFOR struct{}

// Name implements codec.Packer.
func (FastPFOR) Name() string { return "FastPFOR" }

// fastWidth minimizes n*b + sum over exceptions of (idxWidth + width(u)-b),
// i.e. it charges each exception its actual high-bit width rather than the
// worst case, using the width histogram.
func fastWidth(f *frame, n int) uint {
	iw := int64(idxWidth(n))
	best, bestCost := f.wmax, int64(n)*int64(f.wmax)
	for b := uint(0); b < f.wmax; b++ {
		cost := int64(n) * int64(b)
		for wv := b + 1; wv <= f.wmax; wv++ {
			cost += int64(f.hist[wv]) * (iw + int64(wv-b))
		}
		// A small per-bucket header charge keeps the estimate honest.
		for wv := b + 1; wv <= f.wmax; wv++ {
			if f.hist[wv] > 0 {
				cost += 16
			}
		}
		if cost < bestCost {
			best, bestCost = b, cost
		}
	}
	return best
}

// Pack implements codec.Packer.
func (FastPFOR) Pack(dst []byte, vals []int64) []byte {
	f := newFrame(vals)
	n := len(vals)
	w := bitio.NewWriter(n*2 + 16)
	w.WriteUvarint(uint64(n))
	if n == 0 {
		return append(dst, w.Bytes()...)
	}
	b := fastWidth(f, n)
	// Bucket the exceptions by the width of their high part.
	var buckets [65][]int // buckets[h]: indexes whose high bits need h bits
	nBuckets := 0
	if b < 64 {
		limit := uint64(1) << b
		for i, u := range f.u {
			if u >= limit {
				h := bitio.WidthOf(u >> b)
				if len(buckets[h]) == 0 {
					nBuckets++
				}
				buckets[h] = append(buckets[h], i)
			}
		}
	}
	w.WriteVarint(f.xmin)
	w.WriteBits(uint64(b), 8)
	// WriteBulk masks each value to b bits itself (byte-identical to the
	// old WriteBits(u&mask, b) loop).
	w.WriteBulk(f.u, b)
	w.WriteUvarint(uint64(nBuckets))
	iw := idxWidth(n)
	for h := 1; h <= 64; h++ {
		idxs := buckets[h]
		if len(idxs) == 0 {
			continue
		}
		w.WriteBits(uint64(h), 8)
		w.WriteUvarint(uint64(len(idxs)))
		for _, idx := range idxs {
			w.WriteBits(uint64(idx), iw)
		}
		for _, idx := range idxs {
			w.WriteBits(f.u[idx]>>b, uint(h))
		}
	}
	return append(dst, w.Bytes()...)
}

// Unpack implements codec.Packer.
func (FastPFOR) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	n, err := sanityCount(n64, src)
	if err != nil {
		return out, nil, err
	}
	if n == 0 {
		return out, r.Rest(), nil
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
	}
	b64, err := r.ReadBits(8)
	if err != nil {
		return out, nil, fmt.Errorf("%w: width: %v", errCorrupt, err)
	}
	b := uint(b64)
	if b > 64 {
		return out, nil, fmt.Errorf("%w: width %d", errCorrupt, b)
	}
	base := len(out)
	out = append(out, make([]int64, n)...)
	if err := r.ReadBulkInt64(out[base:], b, uint64(xmin)); err != nil {
		return out[:base], nil, fmt.Errorf("%w: slots: %v", errCorrupt, err)
	}
	nBuckets, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: buckets: %v", errCorrupt, err)
	}
	if nBuckets > 64 {
		return out, nil, fmt.Errorf("%w: %d buckets", errCorrupt, nBuckets)
	}
	iw := idxWidth(n)
	for bk := uint64(0); bk < nBuckets; bk++ {
		h64, err := r.ReadBits(8)
		if err != nil {
			return out, nil, fmt.Errorf("%w: bucket width: %v", errCorrupt, err)
		}
		h := uint(h64)
		if h == 0 || h > 64 || b+h > 64 {
			return out, nil, fmt.Errorf("%w: bucket width %d (b=%d)", errCorrupt, h, b)
		}
		cnt64, err := r.ReadUvarint()
		if err != nil {
			return out, nil, fmt.Errorf("%w: bucket count: %v", errCorrupt, err)
		}
		if cnt64 > uint64(n) {
			return out, nil, fmt.Errorf("%w: bucket of %d in block of %d", errCorrupt, cnt64, n)
		}
		cnt := int(cnt64)
		idxs := make([]int, cnt)
		for k := range idxs {
			v, err := r.ReadBits(iw)
			if err != nil {
				return out, nil, fmt.Errorf("%w: position: %v", errCorrupt, err)
			}
			if v >= uint64(n) {
				return out, nil, fmt.Errorf("%w: position %d out of range", errCorrupt, v)
			}
			idxs[k] = int(v)
		}
		for _, idx := range idxs {
			hv, err := r.ReadBits(h)
			if err != nil {
				return out, nil, fmt.Errorf("%w: high bits: %v", errCorrupt, err)
			}
			out[base+idx] = int64(uint64(out[base+idx]) + hv<<b)
		}
	}
	return out, r.Rest(), nil
}
