package pfor

import (
	"fmt"

	"bos/internal/bitio"
	"bos/internal/simple8b"
)

// SimplePFOR stores the low b bits of every value in the slots and compresses
// the exception stream — position deltas followed by high bits — with
// Simple-8b, as in Lemire & Boytsov. The byte-aligned Simple-8b section sits
// after the bit-packed slots.
type SimplePFOR struct{}

// Name implements codec.Packer.
func (SimplePFOR) Name() string { return "SimplePFOR" }

// Pack implements codec.Packer.
func (SimplePFOR) Pack(dst []byte, vals []int64) []byte {
	f := newFrame(vals)
	n := len(vals)
	// Simple-8b holds at most 60-bit values, so the high parts must fit:
	// b >= wmax - 60.
	minB := uint(0)
	if f.wmax > 60 {
		minB = f.wmax - 60
	}
	b := optWidth(f, n)
	if b < minB {
		b = minB
	}
	w := bitio.NewWriter(n*2 + 16)
	w.WriteUvarint(uint64(n))
	if n == 0 {
		return append(dst, w.Bytes()...)
	}
	var excIdx []int
	if b < 64 {
		limit := uint64(1) << b
		for i, u := range f.u {
			if u >= limit {
				excIdx = append(excIdx, i)
			}
		}
	}
	w.WriteVarint(f.xmin)
	w.WriteBits(uint64(b), 8)
	// WriteBulk masks each value to b bits itself (byte-identical to the
	// old WriteBits(u&mask, b) loop).
	w.WriteBulk(f.u, b)
	w.AlignByte()
	dst = append(dst, w.Bytes()...)

	// Exception stream: delta-encoded positions then high bits, one
	// Simple-8b sequence.
	stream := make([]uint64, 0, 2*len(excIdx))
	prev := 0
	for _, idx := range excIdx {
		stream = append(stream, uint64(idx-prev))
		prev = idx
	}
	for _, idx := range excIdx {
		stream = append(stream, f.u[idx]>>b)
	}
	enc, err := simple8b.Encode(dst, stream)
	if err != nil {
		// Unreachable by construction (b >= wmax-60), but fall back
		// to a full-width re-pack rather than corrupting the stream.
		panic(fmt.Sprintf("pfor: simple8b rejected exception stream: %v", err))
	}
	return enc
}

// Unpack implements codec.Packer.
func (SimplePFOR) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	n, err := sanityCount(n64, src)
	if err != nil {
		return out, nil, err
	}
	if n == 0 {
		return out, r.Rest(), nil
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
	}
	b64, err := r.ReadBits(8)
	if err != nil {
		return out, nil, fmt.Errorf("%w: width: %v", errCorrupt, err)
	}
	b := uint(b64)
	if b > 64 {
		return out, nil, fmt.Errorf("%w: width %d", errCorrupt, b)
	}
	base := len(out)
	out = append(out, make([]int64, n)...)
	if err := r.ReadBulkInt64(out[base:], b, uint64(xmin)); err != nil {
		return out[:base], nil, fmt.Errorf("%w: slots: %v", errCorrupt, err)
	}
	stream, rest, err := simple8b.Decode(r.Rest(), nil)
	if err != nil {
		return out, nil, fmt.Errorf("%w: exception stream: %v", errCorrupt, err)
	}
	if len(stream)%2 != 0 {
		return out, nil, fmt.Errorf("%w: odd exception stream length %d", errCorrupt, len(stream))
	}
	nExc := len(stream) / 2
	idx := 0
	for k := 0; k < nExc; k++ {
		idx += int(stream[k])
		if idx < 0 || idx >= n {
			return out, nil, fmt.Errorf("%w: exception position %d out of range", errCorrupt, idx)
		}
		hv := stream[nExc+k]
		if b+bitio.WidthOf(hv) > 64 {
			return out, nil, fmt.Errorf("%w: exception overflows 64 bits", errCorrupt)
		}
		out[base+idx] = int64(uint64(out[base+idx]) + hv<<b)
	}
	return out, rest, nil
}
