// Package pfor implements the patched frame-of-reference family of
// outlier-aware bit-packers that BOS is evaluated against (Section II-C):
//
//   - PFOR (Zukowski et al.): exceptions stored at full width, positions kept
//     as an in-slot linked list, with compulsory exceptions when the gap
//     between two real exceptions overflows a slot.
//   - NewPFOR (Yan et al.): every slot keeps the low b bits; exception high
//     bits and positions are stored separately. b is the 90th-percentile
//     width ("top 10% of values as outliers").
//   - OptPFOR (Yan et al.): the NewPFOR layout with b chosen by exact cost
//     minimization over the bit-width histogram.
//   - FastPFOR (Lemire & Boytsov): cost-minimized b with exception high bits
//     classified into per-width buckets.
//   - SimplePFOR (Lemire & Boytsov): cost-minimized b with exception
//     positions and high bits compressed by Simple-8b.
//
// All five share the frame-of-reference transform (subtract the block
// minimum) so they handle arbitrary int64 input, and all satisfy
// codec.Packer. Like the originals — and unlike BOS — they only ever separate
// upper outliers.
package pfor

import (
	"errors"
	"fmt"

	"bos/internal/bitio"
	"bos/internal/codec"
)

var errCorrupt = errors.New("pfor: corrupt block")

// frame holds the frame-of-reference view of one block.
type frame struct {
	xmin  int64
	u     []uint64 // vals[i] - xmin
	wmax  uint     // width of the largest offset
	hist  [65]int  // hist[w]: how many offsets have width exactly w
	cumLE [65]int  // cumLE[w]: how many offsets have width <= w
}

func newFrame(vals []int64) *frame {
	f := &frame{u: make([]uint64, len(vals))}
	if len(vals) == 0 {
		return f
	}
	xmin := vals[0]
	for _, v := range vals {
		if v < xmin {
			xmin = v
		}
	}
	f.xmin = xmin
	for i, v := range vals {
		u := uint64(v) - uint64(xmin)
		f.u[i] = u
		w := bitio.WidthOf(u)
		if w > f.wmax {
			f.wmax = w
		}
		f.hist[w]++
	}
	run := 0
	for w := 0; w <= 64; w++ {
		run += f.hist[w]
		f.cumLE[w] = run
	}
	return f
}

// exceptions returns how many offsets need more than b bits.
func (f *frame) exceptions(b uint) int { return len(f.u) - f.cumLE[b] }

// percentileWidth returns the smallest width covering at least the given
// fraction of the block (the NewPFOR "top 10% are outliers" heuristic uses
// frac = 0.9).
func (f *frame) percentileWidth(frac float64) uint {
	need := int(frac * float64(len(f.u)))
	for w := uint(0); w <= f.wmax; w++ {
		if f.cumLE[w] >= need {
			return w
		}
	}
	return f.wmax
}

// idxWidth is the bit-width used for exception positions in a block of n.
func idxWidth(n int) uint {
	if n <= 1 {
		return 1
	}
	return bitio.WidthOf(uint64(n - 1))
}

// sanityCount validates a decoded block size. A block of width-0 slots packs
// arbitrarily many values into a handful of header bytes, so the only safe
// bound is the absolute cap shared by all block decoders.
func sanityCount(n64 uint64, _ []byte) (int, error) {
	if n64 > codec.MaxBlockLen {
		return 0, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	return int(n64), nil
}

// Packer is the original PFOR of Zukowski et al. Exceptions keep their full
// offset width and their positions form a linked list threaded through the
// slots: each exception's slot stores the distance to the next exception
// minus one. When two exceptions are more than 2^b apart a compulsory
// exception is inserted to keep the link representable.
type Packer struct{}

// Name implements codec.Packer.
func (Packer) Name() string { return "PFOR" }

// Pack implements codec.Packer.
func (Packer) Pack(dst []byte, vals []int64) []byte {
	f := newFrame(vals)
	w := bitio.NewWriter(len(vals)*2 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	b := f.percentileWidth(0.90)
	if f.exceptions(b) > 0 && b == 0 {
		b = 1
	}
	// Build the exception index list, inserting compulsory exceptions
	// wherever a gap exceeds the largest representable link 2^b.
	maxGap := 1 << 62
	if b < 62 {
		maxGap = 1 << b
	}
	var excIdx []int
	limit := uint64(1)
	if b < 64 {
		limit = uint64(1) << b
	} else {
		limit = 0 // b == 64: nothing is an exception
	}
	prev := -1
	for i, u := range f.u {
		isExc := b < 64 && u >= limit
		if !isExc {
			continue
		}
		for prev >= 0 && i-prev > maxGap {
			prev += maxGap
			excIdx = append(excIdx, prev) // compulsory
		}
		excIdx = append(excIdx, i)
		prev = i
	}
	w.WriteVarint(f.xmin)
	w.WriteBits(uint64(b), 8)
	w.WriteBits(uint64(f.wmax), 8)
	w.WriteUvarint(uint64(len(excIdx)))
	if len(excIdx) > 0 {
		w.WriteUvarint(uint64(excIdx[0]))
	}
	// Slots: center values store their offset, exception slots store the
	// link to the next exception.
	isExc := make([]bool, len(vals))
	next := make([]int, len(vals))
	for k, idx := range excIdx {
		isExc[idx] = true
		if k+1 < len(excIdx) {
			next[idx] = excIdx[k+1] - idx - 1
		}
	}
	slots := make([]uint64, len(vals))
	for i, u := range f.u {
		if isExc[i] {
			slots[i] = uint64(next[i])
		} else {
			slots[i] = u
		}
	}
	w.WriteBulk(slots, b)
	// Exception values at full offset width, in index order.
	for _, idx := range excIdx {
		w.WriteBits(f.u[idx], f.wmax)
	}
	return append(dst, w.Bytes()...)
}

// Unpack implements codec.Packer.
func (Packer) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	n, err := sanityCount(n64, src)
	if err != nil {
		return out, nil, err
	}
	if n == 0 {
		return out, r.Rest(), nil
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
	}
	hdr, err := r.ReadBits(16)
	if err != nil {
		return out, nil, fmt.Errorf("%w: widths: %v", errCorrupt, err)
	}
	b, wmax := uint(hdr>>8), uint(hdr&0xff)
	if b > 64 || wmax > 64 {
		return out, nil, fmt.Errorf("%w: widths %d/%d", errCorrupt, b, wmax)
	}
	nExc64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: nExc: %v", errCorrupt, err)
	}
	if nExc64 > uint64(n) {
		return out, nil, fmt.Errorf("%w: %d exceptions in block of %d", errCorrupt, nExc64, n)
	}
	nExc := int(nExc64)
	first := 0
	if nExc > 0 {
		f64, err := r.ReadUvarint()
		if err != nil {
			return out, nil, fmt.Errorf("%w: first exception: %v", errCorrupt, err)
		}
		if f64 >= uint64(n) {
			return out, nil, fmt.Errorf("%w: first exception %d out of range", errCorrupt, f64)
		}
		first = int(f64)
	}
	slots := make([]uint64, n)
	if _, err := r.ReadBulk(slots, b); err != nil {
		return out, nil, fmt.Errorf("%w: slots: %v", errCorrupt, err)
	}
	base := len(out)
	for _, s := range slots {
		out = append(out, int64(uint64(xmin)+s))
	}
	idx := first
	for k := 0; k < nExc; k++ {
		exc, err := r.ReadBits(wmax)
		if err != nil {
			return out, nil, fmt.Errorf("%w: exception %d: %v", errCorrupt, k, err)
		}
		if idx >= n {
			return out, nil, fmt.Errorf("%w: exception chain escaped the block", errCorrupt)
		}
		link := slots[idx]
		out[base+idx] = int64(uint64(xmin) + exc)
		idx += int(link) + 1
	}
	return out, r.Rest(), nil
}
