package pfor

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/codec"
)

var packers = []codec.Packer{Packer{}, NewPFOR{}, OptPFOR{}, FastPFOR{}, SimplePFOR{}}

func roundTrip(t *testing.T, p codec.Packer, vals []int64) []byte {
	t.Helper()
	enc := p.Pack(nil, vals)
	got, rest, err := p.Unpack(enc, nil)
	if err != nil {
		t.Fatalf("%s: decode: %v", p.Name(), err)
	}
	if len(rest) != 0 {
		t.Fatalf("%s: %d bytes left over", p.Name(), len(rest))
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", p.Name(), len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("%s: value %d: got %d want %d", p.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{42},
		{math.MinInt64},
		{math.MaxInt64},
		{math.MinInt64, math.MaxInt64},
		{7, 7, 7, 7},
		{3, 2, 4, 5, 3, 2, 0, 8},
		{-1000, 5, 6, 7, 5, 6, 7, 1000000},
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1 << 50}, // single huge outlier
	}
	for _, vals := range cases {
		for _, p := range packers {
			roundTrip(t, p, vals)
		}
	}
}

func genSeries(rng *rand.Rand) []int64 {
	n := rng.Intn(300) + 1
	vals := make([]int64, n)
	switch rng.Intn(5) {
	case 0:
		for i := range vals {
			vals[i] = int64(rng.NormFloat64() * 30)
		}
	case 1:
		for i := range vals {
			if rng.Float64() < 0.08 {
				vals[i] = rng.Int63n(1 << 45)
			} else {
				vals[i] = int64(rng.Intn(64))
			}
		}
	case 2:
		for i := range vals {
			vals[i] = int64(rng.Uint64())
		}
	case 3:
		c := rng.Int63()
		for i := range vals {
			vals[i] = c
		}
	default:
		for i := range vals {
			vals[i] = -rng.Int63n(1 << 40)
		}
	}
	return vals
}

func TestRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for iter := 0; iter < 400; iter++ {
		vals := genSeries(rng)
		for _, p := range packers {
			roundTrip(t, p, vals)
		}
	}
}

func TestCompulsoryExceptions(t *testing.T) {
	// Two far-apart exceptions with tiny b force PFOR's compulsory
	// exceptions: the gap (1000) cannot be linked in ~2 bits.
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i % 3)
	}
	vals[3] = 1 << 30
	vals[1020] = 1 << 30
	roundTrip(t, Packer{}, vals)
}

func TestExceptionHeavyBlocks(t *testing.T) {
	// ~40% exceptions stress every patch path.
	rng := rand.New(rand.NewSource(31))
	vals := make([]int64, 512)
	for i := range vals {
		if rng.Float64() < 0.4 {
			vals[i] = rng.Int63n(1 << 50)
		} else {
			vals[i] = rng.Int63n(8)
		}
	}
	for _, p := range packers {
		roundTrip(t, p, vals)
	}
}

func TestBeatsBPOnOutliers(t *testing.T) {
	// The PFOR family's raison d'etre: a few upper outliers must not blow
	// up the block the way they do under plain bit-packing.
	rng := rand.New(rand.NewSource(32))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(rng.Intn(16)) // 4 bits
	}
	for i := 0; i < 20; i++ {
		vals[rng.Intn(1024)] = 1 << 40
	}
	bp := bitpack.Packer{}.Pack(nil, vals)
	for _, p := range packers {
		enc := p.Pack(nil, vals)
		if len(enc) >= len(bp)/2 {
			t.Errorf("%s: %d bytes vs BP %d — expected at least 2x win", p.Name(), len(enc), len(bp))
		}
	}
}

func TestLowerOutliersHurtPFOR(t *testing.T) {
	// The paper's motivation for BOS: the PFOR family cannot separate
	// *lower* outliers, so a few tiny values inflate the center width.
	// Frame-of-reference packing anchors at xmin, so a handful of values
	// far below the mass forces a wide b for everyone.
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = 1<<20 + int64(i%16) // tight band, 4-bit spread
	}
	for i := 0; i < 8; i++ {
		vals[i*128] = int64(i) // lower outliers near zero
	}
	tight := make([]int64, 1024)
	for i := range tight {
		tight[i] = 1<<20 + int64(i%16)
	}
	for _, p := range packers {
		dirty := len(p.Pack(nil, vals))
		clean := len(p.Pack(nil, tight))
		if dirty < clean*2 {
			t.Errorf("%s unexpectedly resistant to lower outliers: %d vs %d bytes — is it separating them?",
				p.Name(), dirty, clean)
		}
	}
}

func TestCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	vals := genSeries(rng)
	for _, p := range packers {
		base := p.Pack(nil, vals)
		for i := 0; i < 1500; i++ {
			cor := append([]byte(nil), base...)
			for k := 0; k < 1+rng.Intn(3); k++ {
				cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
			}
			cor = cor[:rng.Intn(len(cor)+1)]
			p.Unpack(cor, nil)
		}
	}
}

func TestOptNeverWorseThanNew(t *testing.T) {
	// OptPFOR's exact minimization must not lose to NewPFOR's percentile
	// heuristic by more than rounding slack.
	rng := rand.New(rand.NewSource(34))
	for iter := 0; iter < 200; iter++ {
		vals := genSeries(rng)
		opt := len(OptPFOR{}.Pack(nil, vals))
		nw := len(NewPFOR{}.Pack(nil, vals))
		if opt > nw+2 {
			t.Fatalf("iter %d: OptPFOR %d bytes > NewPFOR %d", iter, opt, nw)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	vals := make([]int64, 1024)
	for i := range vals {
		if rng.Float64() < 0.05 {
			vals[i] = rng.Int63n(1 << 30)
		} else {
			vals[i] = int64(rng.Intn(256))
		}
	}
	for _, p := range packers {
		b.Run(p.Name(), func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = p.Pack(buf[:0], vals)
			}
		})
	}
}

func BenchmarkUnpack(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	vals := make([]int64, 1024)
	for i := range vals {
		if rng.Float64() < 0.05 {
			vals[i] = rng.Int63n(1 << 30)
		} else {
			vals[i] = int64(rng.Intn(256))
		}
	}
	for _, p := range packers {
		enc := p.Pack(nil, vals)
		b.Run(p.Name(), func(b *testing.B) {
			out := make([]int64, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				out, _, err = p.Unpack(enc, out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
