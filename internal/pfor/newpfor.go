package pfor

import (
	"fmt"

	"bos/internal/bitio"
)

// NewPFOR stores the low b bits of every value in its slot and patches
// exceptions from separately stored high bits and positions, avoiding
// PFOR's compulsory exceptions. b is the 90th-percentile width.
type NewPFOR struct{}

// Name implements codec.Packer.
func (NewPFOR) Name() string { return "NewPFOR" }

// Pack implements codec.Packer.
func (NewPFOR) Pack(dst []byte, vals []int64) []byte {
	f := newFrame(vals)
	b := f.percentileWidth(0.90)
	return packLowHigh(dst, f, b, "NewPFOR")
}

// Unpack implements codec.Packer.
func (NewPFOR) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	return unpackLowHigh(src, out)
}

// OptPFOR uses the same low-bits/high-bits layout as NewPFOR but chooses b by
// minimizing the exact storage cost over the block's bit-width histogram.
type OptPFOR struct{}

// Name implements codec.Packer.
func (OptPFOR) Name() string { return "OptPFOR" }

// Pack implements codec.Packer.
func (OptPFOR) Pack(dst []byte, vals []int64) []byte {
	f := newFrame(vals)
	b := optWidth(f, len(vals))
	return packLowHigh(dst, f, b, "OptPFOR")
}

// Unpack implements codec.Packer.
func (OptPFOR) Unpack(src []byte, out []int64) ([]int64, []byte, error) {
	return unpackLowHigh(src, out)
}

// optWidth minimizes n*b + nExc(b)*(idxWidth + (wmax-b)) over all b.
func optWidth(f *frame, n int) uint {
	iw := idxWidth(n)
	best, bestCost := f.wmax, int64(n)*int64(f.wmax)
	for b := uint(0); b < f.wmax; b++ {
		nExc := int64(f.exceptions(b))
		cost := int64(n)*int64(b) + nExc*int64(iw+(f.wmax-b))
		if cost < bestCost {
			best, bestCost = b, cost
		}
	}
	return best
}

// packLowHigh writes the shared NewPFOR/OptPFOR layout: slots hold the low b
// bits of every offset; exceptions contribute their position (idxWidth bits)
// and high bits (wmax-b bits) to separate arrays.
func packLowHigh(dst []byte, f *frame, b uint, _ string) []byte {
	n := len(f.u)
	w := bitio.NewWriter(n*2 + 16)
	w.WriteUvarint(uint64(n))
	if n == 0 {
		return append(dst, w.Bytes()...)
	}
	var excIdx []int
	if b < 64 {
		limit := uint64(1) << b
		for i, u := range f.u {
			if u >= limit {
				excIdx = append(excIdx, i)
			}
		}
	}
	high := f.wmax - b
	w.WriteVarint(f.xmin)
	w.WriteBits(uint64(b), 8)
	w.WriteBits(uint64(high), 8)
	w.WriteUvarint(uint64(len(excIdx)))
	// WriteBulk masks each value to b bits itself (byte-identical to the
	// old WriteBits(u&mask, b) loop).
	w.WriteBulk(f.u, b)
	iw := idxWidth(n)
	for _, idx := range excIdx {
		w.WriteBits(uint64(idx), iw)
	}
	for _, idx := range excIdx {
		w.WriteBits(f.u[idx]>>b, high)
	}
	return append(dst, w.Bytes()...)
}

// unpackLowHigh decodes the shared NewPFOR/OptPFOR layout.
func unpackLowHigh(src []byte, out []int64) ([]int64, []byte, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	n, err := sanityCount(n64, src)
	if err != nil {
		return out, nil, err
	}
	if n == 0 {
		return out, r.Rest(), nil
	}
	xmin, err := r.ReadVarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
	}
	hdr, err := r.ReadBits(16)
	if err != nil {
		return out, nil, fmt.Errorf("%w: widths: %v", errCorrupt, err)
	}
	b, high := uint(hdr>>8), uint(hdr&0xff)
	if b > 64 || high > 64 || b+high > 64 {
		return out, nil, fmt.Errorf("%w: widths %d/%d", errCorrupt, b, high)
	}
	nExc64, err := r.ReadUvarint()
	if err != nil {
		return out, nil, fmt.Errorf("%w: nExc: %v", errCorrupt, err)
	}
	if nExc64 > uint64(n) {
		return out, nil, fmt.Errorf("%w: %d exceptions in block of %d", errCorrupt, nExc64, n)
	}
	nExc := int(nExc64)
	base := len(out)
	out = append(out, make([]int64, n)...)
	if err := r.ReadBulkInt64(out[base:], b, uint64(xmin)); err != nil {
		return out[:base], nil, fmt.Errorf("%w: slots: %v", errCorrupt, err)
	}
	iw := idxWidth(n)
	idxs := make([]int, nExc)
	for k := range idxs {
		v, err := r.ReadBits(iw)
		if err != nil {
			return out, nil, fmt.Errorf("%w: position %d: %v", errCorrupt, k, err)
		}
		if v >= uint64(n) {
			return out, nil, fmt.Errorf("%w: position %d out of range", errCorrupt, v)
		}
		idxs[k] = int(v)
	}
	for _, idx := range idxs {
		hv, err := r.ReadBits(high)
		if err != nil {
			return out, nil, fmt.Errorf("%w: high bits: %v", errCorrupt, err)
		}
		out[base+idx] = int64(uint64(out[base+idx]) + hv<<b)
	}
	return out, r.Rest(), nil
}
