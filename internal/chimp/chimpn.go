package chimp

import (
	"fmt"
	"math"
	"math/bits"

	"bos/internal/bitio"
	"bos/internal/codec"
)

// CodecN is Chimp128 (the paper's "Chimp_N" with N previous values): each
// value XORs against the most promising of the last N stored values, found
// through a hash of its low bits, instead of only the immediately preceding
// one. Flag 00/01 payloads carry the log2(N)-bit index of the reference
// value. N must be a power of two; 128 reproduces the published variant.
type CodecN struct {
	N int
}

// NewChimp128 returns the published Chimp128 configuration.
func NewChimp128() CodecN { return CodecN{N: 128} }

func (c CodecN) n() int {
	if c.N <= 0 {
		return 128
	}
	return c.N
}

// Name implements codec.FloatCodec.
func (c CodecN) Name() string { return fmt.Sprintf("CHIMP%d", c.n()) }

// params derives the index width, trailing-zero threshold and hash mask.
func (c CodecN) params() (idxBits, threshold uint, mask uint64) {
	idxBits = bitio.WidthOf(uint64(c.n() - 1))
	threshold = 6 + idxBits
	mask = uint64(1)<<(threshold+1) - 1
	return
}

// Encode implements codec.FloatCodec.
func (c CodecN) Encode(dst []byte, vals []float64) []byte {
	w := bitio.NewWriter(len(vals)*8 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	n := c.n()
	idxBits, threshold, mask := c.params()
	stored := make([]uint64, n)
	indices := make([]int, mask+1)
	for i := range indices {
		indices[i] = -1 << 30
	}

	first := math.Float64bits(vals[0])
	w.WriteBits(first, 64)
	stored[0] = first
	indices[first&mask] = 0
	cur := 1
	prevLead := uint(255)
	for _, v := range vals[1:] {
		bitsV := math.Float64bits(v)
		key := bitsV & mask
		// Choose the reference: the hashed candidate when it is recent
		// and shares enough low bits, else the previous value.
		refIdx := (cur - 1) % n
		xor := stored[refIdx] ^ bitsV
		if cand := indices[key]; cur-cand < n && cand >= 0 {
			cXor := stored[cand%n] ^ bitsV
			if cXor == 0 || uint(bits.TrailingZeros64(cXor)) > threshold {
				refIdx = cand % n
				xor = cXor
			}
		}
		switch {
		case xor == 0:
			w.WriteBits(0, 2) // flag 00: identical to stored[refIdx]
			w.WriteBits(uint64(refIdx), idxBits)
		case uint(bits.TrailingZeros64(xor)) > threshold:
			// Flag 01: reference index + center bits.
			lead := uint(leadingRound[bits.LeadingZeros64(xor)])
			trail := uint(bits.TrailingZeros64(xor))
			center := 64 - lead - trail
			w.WriteBits(1, 2)
			w.WriteBits(uint64(refIdx), idxBits)
			w.WriteBits(uint64(leadingCode[lead]), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>trail, center)
			prevLead = lead
		default:
			// Previous-value XOR, exactly as base Chimp.
			xor = stored[(cur-1)%n] ^ bitsV
			lead := uint(leadingRound[bits.LeadingZeros64(xor)])
			if lead == prevLead {
				w.WriteBits(2, 2)
				w.WriteBits(xor, 64-lead)
			} else {
				w.WriteBits(3, 2)
				w.WriteBits(uint64(leadingCode[lead]), 3)
				w.WriteBits(xor, 64-lead)
				prevLead = lead
			}
		}
		stored[cur%n] = bitsV
		indices[key] = cur
		cur++
	}
	return append(dst, w.Bytes()...)
}

// Decode implements codec.FloatCodec.
func (c CodecN) Decode(src []byte) ([]float64, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > codec.MaxBlockLen {
		return nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	count := int(n64)
	out := make([]float64, 0, count)
	if count == 0 {
		return out, nil
	}
	n := c.n()
	//bos:nolint(checkederr): decode needs only the index width; threshold and mask are encode-side
	idxBits, _, _ := c.params()
	stored := make([]uint64, n)
	first, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: first value: %v", errCorrupt, err)
	}
	out = append(out, math.Float64frombits(first))
	stored[0] = first
	cur := 1
	var prevLead uint
	for i := 1; i < count; i++ {
		flag, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("%w: flag: %v", errCorrupt, err)
		}
		var bitsV uint64
		switch flag {
		case 0:
			idx, err := r.ReadBits(idxBits)
			if err != nil {
				return nil, fmt.Errorf("%w: index: %v", errCorrupt, err)
			}
			bitsV = stored[int(idx)%n]
		case 1:
			idx, err := r.ReadBits(idxBits)
			if err != nil {
				return nil, fmt.Errorf("%w: index: %v", errCorrupt, err)
			}
			hdr, err := r.ReadBits(9)
			if err != nil {
				return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
			}
			lead := uint(leadingValue[hdr>>6])
			center := uint(hdr & 0x3f)
			if lead+center > 64 {
				return nil, fmt.Errorf("%w: window %d+%d", errCorrupt, lead, center)
			}
			xor, err := r.ReadBits(center)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			bitsV = stored[int(idx)%n] ^ xor<<(64-lead-center)
			prevLead = lead
		case 2:
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			bitsV = stored[(cur-1)%n] ^ xor
		default:
			code, err := r.ReadBits(3)
			if err != nil {
				return nil, fmt.Errorf("%w: leading code: %v", errCorrupt, err)
			}
			prevLead = uint(leadingValue[code])
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			bitsV = stored[(cur-1)%n] ^ xor
		}
		out = append(out, math.Float64frombits(bitsV))
		stored[cur%n] = bitsV
		cur++
	}
	return out, nil
}
