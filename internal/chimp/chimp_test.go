package chimp

import (
	"math"
	"math/rand"
	"testing"

	"bos/internal/gorilla"
)

func roundTrip(t *testing.T, vals []float64) []byte {
	t.Helper()
	var c Codec
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{-1.5},
		{5, 5, 5, 5, 5},
		{1, 2, 4, 8, 16},
		{3.14159, 2.71828, 1.41421, 0.57721},
		{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestLeadingTables(t *testing.T) {
	// Rounding must never exceed the actual leading-zero count and the
	// code tables must invert each other.
	for lz := 0; lz <= 64; lz++ {
		r := int(leadingRound[lz])
		if r > lz {
			t.Errorf("leadingRound[%d] = %d exceeds actual", lz, r)
		}
		if int(leadingValue[leadingCode[lz]]) != r {
			t.Errorf("tables disagree at %d", lz)
		}
	}
}

func TestRoundTripRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 2000)
	v := -3.0
	for i := range vals {
		v += rng.NormFloat64() * 0.1
		vals[i] = v
	}
	roundTrip(t, vals)
}

func TestRoundTripAdversarialBits(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	roundTrip(t, vals)
}

func TestBeatsGorillaOnNoisyLowBits(t *testing.T) {
	// Chimp's flag-01 path targets XORs with moderate trailing zeros;
	// on typical sensor-like data it should be at least competitive.
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 4096)
	v := 20.0
	for i := range vals {
		v += rng.NormFloat64() * 0.01
		vals[i] = math.Round(v*100) / 100
	}
	var c Codec
	var g gorilla.Codec
	cl := len(c.Encode(nil, vals))
	gl := len(g.Encode(nil, vals))
	if cl > gl*3/2 {
		t.Errorf("chimp %d bytes vs gorilla %d — unexpectedly bad", cl, gl)
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var c Codec
	base := c.Encode(nil, []float64{1.5, 2.5, 3.75, 1e30, -2})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 1024)
	v := 50.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	var c Codec
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}

func roundTripN(t *testing.T, c CodecN, vals []float64) []byte {
	t.Helper()
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if len(got) != len(vals) {
		t.Fatalf("%s: decoded %d values want %d", c.Name(), len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("%s value %d: got %v want %v", c.Name(), i, got[i], vals[i])
		}
	}
	return enc
}

func TestChimp128RoundTripBasics(t *testing.T) {
	c := NewChimp128()
	cases := [][]float64{
		nil,
		{0},
		{-1.5},
		{5, 5, 5, 5, 5},
		{1, 2, 4, 8, 16},
		{3.14159, 2.71828, 1.41421, 0.57721},
		{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
		{math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for _, vals := range cases {
		roundTripN(t, c, vals)
	}
}

func TestChimp128RoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{8, 32} {
		c := CodecN{N: n}
		for iter := 0; iter < 20; iter++ {
			vals := make([]float64, rng.Intn(2000)+1)
			v := 100.0
			for i := range vals {
				v += rng.NormFloat64()
				vals[i] = math.Round(v*100) / 100
			}
			roundTripN(t, c, vals)
		}
	}
}

func TestChimp128BeatsChimpOnPeriodicData(t *testing.T) {
	// Chimp128's reason to exist: values that recur a few steps apart
	// (multi-channel interleaving, periodic processes) match an older
	// stored value exactly, which base Chimp cannot see.
	// Channels with rich low mantissa bits (decimal fractions), so the
	// low-bits hash actually distinguishes them, recurring every 4 steps.
	vals := make([]float64, 8192)
	channels := []float64{1.1, 220.7, 3300.3, 47.9}
	for i := range vals {
		vals[i] = channels[i%4]
		if i%512 == 0 && i > 0 {
			channels[i%4] *= 1.001 // occasional level shift
		}
	}
	c128 := len(NewChimp128().Encode(nil, vals))
	c1 := len(Codec{}.Encode(nil, vals))
	if c128 >= c1 {
		t.Errorf("CHIMP128 %d bytes >= CHIMP %d on periodic data", c128, c1)
	}
	roundTripN(t, NewChimp128(), vals)
}

func TestChimp128AdversarialBits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vals := make([]float64, 700)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	roundTripN(t, NewChimp128(), vals)
}

func TestChimp128CorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewChimp128()
	base := c.Encode(nil, []float64{1.5, 2.5, 3.75, 1e30, -2})
	for i := 0; i < 1500; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}
