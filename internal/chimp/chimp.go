// Package chimp implements the Chimp float compression of Liakos,
// Papakonstantinopoulou and Kotidis (VLDB 2022): a Gorilla-style XOR codec
// with a two-bit flag per value, rounded leading-zero buckets and a cheap
// path for XORs with few trailing zeros.
package chimp

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"bos/internal/bitio"
	"bos/internal/codec"
)

var errCorrupt = errors.New("chimp: corrupt stream")

// leadingRound buckets a leading-zero count into Chimp's 8 representative
// values.
var leadingRound = [65]uint8{}

// leadingCode maps a rounded leading-zero count to its 3-bit code, and
// leadingValue is the inverse.
var (
	leadingValue = [8]uint8{0, 8, 12, 16, 18, 20, 22, 24}
	leadingCode  [65]uint8
)

func init() {
	for lz := 0; lz <= 64; lz++ {
		code := 0
		for c := len(leadingValue) - 1; c >= 0; c-- {
			if lz >= int(leadingValue[c]) {
				code = c
				break
			}
		}
		leadingCode[lz] = uint8(code)
		leadingRound[lz] = leadingValue[code]
	}
}

// Codec is the Chimp float codec. It satisfies codec.FloatCodec.
type Codec struct{}

// Name implements codec.FloatCodec.
func (Codec) Name() string { return "CHIMP" }

// Encode implements codec.FloatCodec.
func (Codec) Encode(dst []byte, vals []float64) []byte {
	w := bitio.NewWriter(len(vals)*8 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	prev := math.Float64bits(vals[0])
	w.WriteBits(prev, 64)
	prevLead := uint(255) // impossible: forces flag 11 on first change
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBits(0, 2) // flag 00
			continue
		}
		lead := uint(leadingRound[bits.LeadingZeros64(xor)])
		trail := uint(bits.TrailingZeros64(xor))
		if trail > 6 {
			// Flag 01: center bits only, trailing zeros dropped.
			center := 64 - lead - trail
			w.WriteBits(1, 2)
			w.WriteBits(uint64(leadingCode[lead]), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>trail, center)
			prevLead = lead
			continue
		}
		if lead == prevLead {
			w.WriteBits(2, 2) // flag 10: reuse leading count
			w.WriteBits(xor, 64-lead)
			continue
		}
		w.WriteBits(3, 2) // flag 11: new leading count
		w.WriteBits(uint64(leadingCode[lead]), 3)
		w.WriteBits(xor, 64-lead)
		prevLead = lead
	}
	return append(dst, w.Bytes()...)
}

// Decode implements codec.FloatCodec.
func (Codec) Decode(src []byte) ([]float64, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > codec.MaxBlockLen {
		return nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	n := int(n64)
	out := make([]float64, 0, n)
	if n == 0 {
		return out, nil
	}
	prev, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: first value: %v", errCorrupt, err)
	}
	out = append(out, math.Float64frombits(prev))
	var prevLead uint
	for i := 1; i < n; i++ {
		flag, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("%w: flag: %v", errCorrupt, err)
		}
		switch flag {
		case 0:
			// Identical value.
		case 1:
			hdr, err := r.ReadBits(9)
			if err != nil {
				return nil, fmt.Errorf("%w: header: %v", errCorrupt, err)
			}
			lead := uint(leadingValue[hdr>>6])
			center := uint(hdr & 0x3f)
			if lead+center > 64 {
				return nil, fmt.Errorf("%w: window %d+%d", errCorrupt, lead, center)
			}
			xor, err := r.ReadBits(center)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			prev ^= xor << (64 - lead - center)
			prevLead = lead
		case 2:
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			prev ^= xor
		default:
			code, err := r.ReadBits(3)
			if err != nil {
				return nil, fmt.Errorf("%w: leading code: %v", errCorrupt, err)
			}
			prevLead = uint(leadingValue[code])
			xor, err := r.ReadBits(64 - prevLead)
			if err != nil {
				return nil, fmt.Errorf("%w: xor: %v", errCorrupt, err)
			}
			prev ^= xor
		}
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}
