// Package pushdown is the compressed-domain query executor: it answers
// windowed aggregates and value-filtered scans over tsfile chunks while
// decoding as little as possible, in three tiers.
//
//	tier 1 (stats)  — the chunk is fully inside the time range, lands in one
//	                  window, and carries v2 footer statistics: its
//	                  count/min/max/sum fold into the bucket with zero IO.
//	tier 2 (inlier) — only part of the chunk matters: the time column is
//	                  decoded, but the value column is touched only at the
//	                  needed positions (range decode) or the needed planes
//	                  (band-filtered decode that skips outlier or inlier
//	                  planes the predicate cannot reach).
//	tier 3 (full)   — everything else: classic full chunk decode.
//
// The package is deliberately engine-agnostic: internal/engine plans which
// chunks are safe to evaluate here (no overlap, no tombstones, no fresher
// memtable points) and routes the remainder through its merged scan.
package pushdown

import (
	"fmt"
	"sort"
	"sync/atomic"

	"bos/internal/tsfile"
)

// Tiers counts how chunks were answered, one tier per evaluated chunk.
// Safe for concurrent use.
type Tiers struct {
	Stats  atomic.Int64 // answered from footer statistics alone
	Inlier atomic.Int64 // partial decode: a position range or a plane subset
	Full   atomic.Int64 // full value-column decode
}

// Snapshot is a point-in-time copy of the counters, JSON-ready.
type Snapshot struct {
	Stats  int64 `json:"stats"`
	Inlier int64 `json:"inlier"`
	Full   int64 `json:"full"`
}

// Snapshot reads the counters.
func (t *Tiers) Snapshot() Snapshot {
	return Snapshot{Stats: t.Stats.Load(), Inlier: t.Inlier.Load(), Full: t.Full.Load()}
}

// Add folds another snapshot in (cluster stats rollup).
func (s *Snapshot) Add(o Snapshot) {
	s.Stats += o.Stats
	s.Inlier += o.Inlier
	s.Full += o.Full
}

// Bucket is one aggregation window. With window == 0 it is the whole-range
// aggregate. Sum wraps on overflow, like SQL engines over int64.
type Bucket struct {
	Start    int64 // window start timestamp (inclusive)
	Count    int
	Min, Max int64
	Sum      int64
}

// Avg returns the window mean.
func (b Bucket) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Sum) / float64(b.Count)
}

// Windows accumulates per-window aggregates keyed by window start, from any
// mix of raw points and whole-chunk statistics. Not safe for concurrent use;
// parallel evaluators each fill their own and Merge the results.
type Windows struct {
	minT   int64
	window int64 // <= 0: a single bucket spanning the whole range
	m      map[int64]*Bucket
}

// NewWindows returns an accumulator for windows of `window` timestamp units
// anchored at minT — the exact bucketing of engine.Downsample. window <= 0
// collapses everything into one bucket (a plain aggregate).
func NewWindows(minT, window int64) *Windows {
	return &Windows{minT: minT, window: window, m: map[int64]*Bucket{}}
}

// Start returns the window start for timestamp t, replicating
// engine.Downsample's formula.
func (w *Windows) Start(t int64) int64 {
	if w.window <= 0 {
		return w.minT
	}
	return w.minT + (t-w.minT)/w.window*w.window
}

// OneWindow reports whether [minT, maxT] falls inside a single window — the
// precondition for folding whole-chunk statistics into a bucket.
func (w *Windows) OneWindow(minT, maxT int64) bool {
	return w.Start(minT) == w.Start(maxT)
}

func (w *Windows) bucket(start int64) *Bucket {
	b := w.m[start]
	if b == nil {
		b = &Bucket{Start: start}
		w.m[start] = b
	}
	return b
}

// Add folds one point into its window.
func (w *Windows) Add(t, v int64) {
	b := w.bucket(w.Start(t))
	if b.Count == 0 || v < b.Min {
		b.Min = v
	}
	if b.Count == 0 || v > b.Max {
		b.Max = v
	}
	b.Count++
	b.Sum += v
}

// AddChunkStats folds a whole chunk's footer statistics into the window
// holding it. The caller must have checked OneWindow(m.MinT, m.MaxT) and
// m.HasStats.
func (w *Windows) AddChunkStats(m tsfile.ChunkMeta) {
	b := w.bucket(w.Start(m.MinT))
	if b.Count == 0 || m.MinV < b.Min {
		b.Min = m.MinV
	}
	if b.Count == 0 || m.MaxV > b.Max {
		b.Max = m.MaxV
	}
	b.Count += m.Count
	b.Sum = int64(uint64(b.Sum) + uint64(m.Sum))
}

// Merge folds another accumulator in (same minT and window).
func (w *Windows) Merge(o *Windows) {
	for start, ob := range o.m {
		b := w.bucket(start)
		if b.Count == 0 || ob.Min < b.Min {
			b.Min = ob.Min
		}
		if b.Count == 0 || ob.Max > b.Max {
			b.Max = ob.Max
		}
		b.Count += ob.Count
		b.Sum = int64(uint64(b.Sum) + uint64(ob.Sum))
	}
}

// Buckets returns the non-empty windows in time order.
func (w *Windows) Buckets() []Bucket {
	out := make([]Bucket, 0, len(w.m))
	for _, b := range w.m {
		if b.Count > 0 {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Evaluator aggregates the chunks of one series over [MinT, MaxT] into W,
// tier by tier. It assumes the caller has already established that each
// chunk it is handed may be answered from the file alone (no fresher
// overlapping data, no tombstones).
type Evaluator struct {
	R          *tsfile.Reader
	Series     string
	MinT, MaxT int64
	W          *Windows
	T          *Tiers
}

// EvalChunk folds chunk ci into the accumulator. Chunks whose footer time
// range is disjoint from the query are ignored without counting a tier.
func (e *Evaluator) EvalChunk(ci int, m tsfile.ChunkMeta) error {
	if m.MaxT < e.MinT || m.MinT > e.MaxT {
		return nil
	}
	if m.Kind != 0 {
		return fmt.Errorf("%w: chunk kind %d is not integer", tsfile.ErrKindMismatch, m.Kind)
	}
	covered := m.MinT >= e.MinT && m.MaxT <= e.MaxT
	if covered && m.HasStats && e.W.OneWindow(m.MinT, m.MaxT) {
		e.W.AddChunkStats(m)
		e.T.Stats.Add(1)
		return nil
	}
	h, err := e.R.OpenChunk(e.Series, ci)
	if err != nil {
		return err
	}
	times := h.Times()
	lo := sort.Search(len(times), func(i int) bool { return times[i] >= e.MinT })
	hi := sort.Search(len(times), func(i int) bool { return times[i] > e.MaxT })
	if lo >= hi {
		// The footer ranges overlapped but no timestamp actually falls in
		// the query window; no value bits were touched.
		e.T.Stats.Add(1)
		return nil
	}
	vals, partial, err := h.ValueRange(lo, hi)
	if err != nil {
		return err
	}
	if partial {
		e.T.Inlier.Add(1)
	} else {
		e.T.Full.Add(1)
	}
	for i, v := range vals {
		e.W.Add(times[lo+i], v)
	}
	return nil
}

// Filter streams the points of one series matching both a time range and a
// value predicate, skipping value planes the predicate cannot reach.
type Filter struct {
	R          *tsfile.Reader
	Series     string
	MinT, MaxT int64
	MinV, MaxV int64
	T          *Tiers
}

// FilterChunk streams chunk ci's matching points through emit in time order.
// Chunks disproved by footer statistics cost nothing; BOS-packed chunks
// decode only the value planes whose band intersects [MinV, MaxV].
func (f *Filter) FilterChunk(ci int, m tsfile.ChunkMeta, emit func(tsfile.Point) error) error {
	if m.MaxT < f.MinT || m.MinT > f.MaxT {
		return nil
	}
	if m.Kind != 0 {
		return fmt.Errorf("%w: chunk kind %d is not integer", tsfile.ErrKindMismatch, m.Kind)
	}
	if m.MaxV < f.MinV || m.MinV > f.MaxV {
		// Statistics disprove the whole chunk.
		f.T.Stats.Add(1)
		return nil
	}
	h, err := f.R.OpenChunk(f.Series, ci)
	if err != nil {
		return err
	}
	times := h.Times()
	lo := sort.Search(len(times), func(i int) bool { return times[i] >= f.MinT })
	hi := sort.Search(len(times), func(i int) bool { return times[i] > f.MaxT })
	if lo >= hi {
		f.T.Stats.Add(1)
		return nil
	}
	var emitErr error
	skipped, err := h.FilterValues(f.MinV, f.MaxV, func(i int, v int64) {
		if emitErr != nil || i < lo || i >= hi {
			return
		}
		emitErr = emit(tsfile.Point{T: times[i], V: v})
	})
	if err != nil {
		return err
	}
	if emitErr != nil {
		return emitErr
	}
	if skipped {
		f.T.Inlier.Add(1)
	} else {
		f.T.Full.Add(1)
	}
	return nil
}
