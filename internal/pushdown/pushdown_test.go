package pushdown

import (
	"bytes"
	"math/rand"
	"testing"

	"bos/internal/tsfile"
)

// buildFile writes one series of `chunks` chunks of `per` points each, one
// timestamp unit apart, values centered with occasional outliers.
func buildFile(t *testing.T, chunks, per int) (*tsfile.Reader, []tsfile.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	w := tsfile.NewWriter(&buf, tsfile.Options{})
	var all []tsfile.Point
	ts := int64(0)
	for c := 0; c < chunks; c++ {
		pts := make([]tsfile.Point, per)
		for i := range pts {
			v := int64(1000 + rng.Intn(64))
			if rng.Float64() < 0.02 {
				v += 1 << 30
			}
			pts[i] = tsfile.Point{T: ts, V: v}
			ts++
		}
		if err := w.Append("s", pts); err != nil {
			t.Fatal(err)
		}
		all = append(all, pts...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	file := bytes.NewReader(buf.Bytes())
	r, err := tsfile.OpenReader(file, file.Size(), tsfile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r, all
}

// refWindows replicates engine.Downsample's bucketing over raw points.
func refWindows(pts []tsfile.Point, minT, maxT, window int64) []Bucket {
	var out []Bucket
	var cur *Bucket
	for _, p := range pts {
		if p.T < minT || p.T > maxT {
			continue
		}
		start := minT
		if window > 0 {
			start = minT + (p.T-minT)/window*window
		}
		if cur == nil || cur.Start != start {
			out = append(out, Bucket{Start: start, Min: p.V, Max: p.V})
			cur = &out[len(out)-1]
		}
		cur.Count++
		if p.V < cur.Min {
			cur.Min = p.V
		}
		if p.V > cur.Max {
			cur.Max = p.V
		}
		cur.Sum += p.V
	}
	return out
}

func eval(t *testing.T, r *tsfile.Reader, minT, maxT, window int64) ([]Bucket, Snapshot) {
	t.Helper()
	var tiers Tiers
	w := NewWindows(minT, window)
	ev := &Evaluator{R: r, Series: "s", MinT: minT, MaxT: maxT, W: w, T: &tiers}
	chunks, err := r.Chunks("s")
	if err != nil {
		t.Fatal(err)
	}
	for ci, m := range chunks {
		if err := ev.EvalChunk(ci, m); err != nil {
			t.Fatal(err)
		}
	}
	return w.Buckets(), tiers.Snapshot()
}

func requireEqual(t *testing.T, got, want []Bucket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestEvalEquivalence(t *testing.T) {
	r, all := buildFile(t, 8, 512)
	total := int64(len(all))
	rng := rand.New(rand.NewSource(7))
	cases := [][3]int64{
		{0, total - 1, 1024},     // windows aligned with chunk pairs
		{0, total - 1, 512},      // windows == chunks
		{0, total - 1, 100},      // windows inside chunks
		{0, total - 1, 0},        // single aggregate
		{100, 3000, 700},         // partial boundary chunks
		{-500, total + 500, 999}, // range wider than data
		{513, 513, 10},           // single point
		{2000, 1000, 50},         // empty (inverted) range
	}
	for i := 0; i < 10; i++ {
		lo := rng.Int63n(total)
		cases = append(cases, [3]int64{lo, lo + rng.Int63n(total-lo), 1 + rng.Int63n(2000)})
	}
	for _, c := range cases {
		got, _ := eval(t, r, c[0], c[1], c[2])
		requireEqual(t, got, refWindows(all, c[0], c[1], c[2]))
	}
}

func TestEvalTiers(t *testing.T) {
	r, all := buildFile(t, 8, 512)
	total := int64(len(all))
	// Window of two chunks, range clipping half of the first chunk: the
	// clipped chunk must go tier-2, interior chunks tier-1.
	got, snap := eval(t, r, 256, total-1, 1024)
	requireEqual(t, got, refWindows(all, 256, total-1, 1024))
	if snap.Stats == 0 {
		t.Fatalf("no stats-tier chunks: %+v", snap)
	}
	if snap.Inlier == 0 {
		t.Fatalf("no inlier-tier chunks: %+v", snap)
	}
	// Windows smaller than chunks force full decodes.
	_, snap = eval(t, r, 0, total-1, 100)
	if snap.Full == 0 {
		t.Fatalf("no full-tier chunks: %+v", snap)
	}
}

func TestFilterEquivalence(t *testing.T) {
	r, all := buildFile(t, 6, 512)
	total := int64(len(all))
	var tiers Tiers
	cases := [][4]int64{
		{0, total - 1, 1000, 1063},        // inlier band only
		{0, total - 1, 1 << 29, 1 << 40},  // outliers only
		{100, 2500, 1010, 1020},           // narrow band, clipped time
		{0, total - 1, -1 << 40, 1 << 40}, // everything
		{0, total - 1, 5, 7},              // nothing (below all chunks)
	}
	for _, c := range cases {
		f := &Filter{R: r, Series: "s", MinT: c[0], MaxT: c[1], MinV: c[2], MaxV: c[3], T: &tiers}
		chunks, err := r.Chunks("s")
		if err != nil {
			t.Fatal(err)
		}
		var got []tsfile.Point
		for ci, m := range chunks {
			if err := f.FilterChunk(ci, m, func(p tsfile.Point) error {
				got = append(got, p)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		want, err := r.Query("s", c[0], c[1], c[2], c[3])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("case %v: %d points, want %d", c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %v point %d: got %+v want %+v", c, i, got[i], want[i])
			}
		}
	}
	snap := tiers.Snapshot()
	if snap.Stats == 0 || snap.Inlier == 0 {
		t.Fatalf("filter tiers not exercised: %+v", snap)
	}
}

func TestWindowsMerge(t *testing.T) {
	a := NewWindows(0, 100)
	b := NewWindows(0, 100)
	whole := NewWindows(0, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tm, v := rng.Int63n(1000), rng.Int63n(100)-50
		whole.Add(tm, v)
		if i%2 == 0 {
			a.Add(tm, v)
		} else {
			b.Add(tm, v)
		}
	}
	a.Merge(b)
	requireEqual(t, a.Buckets(), whole.Buckets())
}
