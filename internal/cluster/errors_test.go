package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bos/internal/engine"
	"bos/internal/server"
	"bos/internal/tsfile"
)

// stubShard is a scripted in-memory shard for failure-injection tests.
type stubShard struct {
	id        int
	pts       []tsfile.Point
	failAfter int // emit this many points, then fail with queryErr (-1 = never)
	queryErr  error
	healthErr error
}

func newStubShard(id int, pts []tsfile.Point) *stubShard {
	return &stubShard{id: id, pts: pts, failAfter: -1}
}

func (s *stubShard) Target() string { return fmt.Sprintf("stub-%d", s.id) }

func (s *stubShard) InsertGrouped(map[string][]tsfile.Point, map[string][]tsfile.FloatPoint) error {
	return nil
}

func (s *stubShard) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	emitted := 0
	for _, p := range s.pts {
		if s.failAfter >= 0 && emitted == s.failAfter {
			return s.queryErr
		}
		if p.T < minT || p.T > maxT {
			continue
		}
		if err := fn(p); err != nil {
			return err
		}
		emitted++
	}
	if s.failAfter >= 0 {
		return s.queryErr
	}
	return nil
}

func (s *stubShard) QueryFloats(string, int64, int64) ([]tsfile.FloatPoint, error) {
	return nil, nil
}

func (s *stubShard) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	return s.QueryEach(series, minT, maxT, func(p tsfile.Point) error {
		if p.V < minV || p.V > maxV {
			return nil
		}
		return fn(p)
	})
}

func (s *stubShard) Downsample(string, int64, int64, int64) ([]engine.Bucket, error) {
	return nil, nil
}

func (s *stubShard) Aggregate(series string, minT, maxT int64) (engine.Bucket, error) {
	b := engine.Bucket{Start: minT}
	err := s.QueryEach(series, minT, maxT, func(p tsfile.Point) error {
		if b.Count == 0 || p.V < b.Min {
			b.Min = p.V
		}
		if b.Count == 0 || p.V > b.Max {
			b.Max = p.V
		}
		b.Count++
		b.Sum += p.V
		return nil
	})
	return b, err
}

func (s *stubShard) Series() ([]string, error)                 { return []string{"root.stub"}, nil }
func (s *stubShard) SeriesKind(string) (string, error)         { return "int", nil }
func (s *stubShard) SeriesStats() ([]engine.SeriesStat, error) { return nil, nil }
func (s *stubShard) Stats() (engine.Stats, error)              { return engine.Stats{}, nil }
func (s *stubShard) CompactAll() (engine.CompactStats, error)  { return engine.CompactStats{}, nil }
func (s *stubShard) Flush() error                              { return nil }
func (s *stubShard) Health() error                             { return s.healthErr }
func (s *stubShard) Close() error                              { return nil }

func stubRouter(t *testing.T, shards ...Shard) *Router {
	t.Helper()
	r, err := New(DefaultManifest(len(shards)), shards)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func seqPoints(n int) []tsfile.Point {
	pts := make([]tsfile.Point, n)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i)}
	}
	return pts
}

// A shard failing mid-stream aborts the scatter-gather scan with its error.
func TestQueryEachShardErrorPropagates(t *testing.T) {
	boom := errors.New("shard exploded")
	bad := newStubShard(1, seqPoints(10))
	bad.failAfter, bad.queryErr = 3, boom
	r := stubRouter(t, newStubShard(0, seqPoints(10)), bad)

	err := r.QueryEach("root.stub", 0, 100, func(tsfile.Point) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the shard's error", err)
	}
}

// A consumer error aborts the scan — and the shard producer goroutines —
// without being swallowed or replaced.
func TestQueryEachConsumerErrorAborts(t *testing.T) {
	stop := errors.New("enough")
	r := stubRouter(t, newStubShard(0, seqPoints(10)), newStubShard(1, seqPoints(10)))
	seen := 0
	err := r.QueryEach("root.stub", 0, 100, func(tsfile.Point) error {
		if seen++; seen == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the consumer's error", err)
	}
	if seen != 2 {
		t.Fatalf("consumer saw %d points after aborting at 2", seen)
	}
}

// Through the HTTP layer, a mid-query shard failure turns /agg into a 500
// carrying the shard error, not a silently partial aggregate.
func TestAggShardErrorIs500(t *testing.T) {
	boom := errors.New("disk on fire")
	bad := newStubShard(1, seqPoints(10))
	bad.failAfter, bad.queryErr = 2, boom
	r := stubRouter(t, newStubShard(0, seqPoints(10)), bad)
	c, done := mount(t, r)
	defer done()

	_, err := c.Agg("root.stub", 0, 100)
	var se *server.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want a 500 StatusError", err)
	}
	if !strings.Contains(se.Message, "disk on fire") {
		t.Fatalf("error message %q lost the shard error", se.Message)
	}
}

// /healthz in cluster mode: all shards healthy answers 200 "ok" with the
// per-shard block; any unhealthy shard turns it 503 "degraded" with the
// failing shard's detail.
func TestHealthzAggregatesShardHealth(t *testing.T) {
	ok0, ok1 := newStubShard(0, nil), newStubShard(1, nil)
	r := stubRouter(t, ok0, ok1)
	api, err := server.New(server.Options{Backend: r})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	defer func() {
		ts.Close()
		if err := api.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}()
	if err := server.NewClient(ts.URL, ts.Client()).Health(); err != nil {
		t.Fatalf("healthy cluster reports: %v", err)
	}

	ok1.healthErr = errors.New("connection refused")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var hr server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || len(hr.Shards) != 2 {
		t.Fatalf("health = %+v", hr)
	}
	if hr.Shards[0].Healthy != true || hr.Shards[1].Healthy != false {
		t.Fatalf("per-shard health wrong: %+v", hr.Shards)
	}
	if !strings.Contains(hr.Shards[1].Error, "connection refused") {
		t.Fatalf("shard 1 error %q lost the cause", hr.Shards[1].Error)
	}
	// A degraded cluster fails the typed client's health check too.
	if err := server.NewClient(ts.URL, ts.Client()).Health(); err == nil {
		t.Fatal("client.Health passed on a degraded cluster")
	}
}
