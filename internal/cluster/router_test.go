package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"bos/internal/engine"
	"bos/internal/server"
	"bos/internal/tsfile"
)

// mount serves a backend over httptest and returns its typed client. The
// same HTTP layer fronts the single engine and the router, so comparing
// client responses compares the full serving stack byte for byte.
func mount(t *testing.T, be server.Backend) (*server.Client, func()) {
	t.Helper()
	api, err := server.New(server.Options{Backend: be, PackerName: "BOS-B"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	cleanup := func() {
		ts.Close()
		if err := api.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	}
	return server.NewClient(ts.URL, ts.Client()), cleanup
}

// testWorkload builds deterministic ingest payloads: intN integer series and
// floatN float series with shuffled timestamps and cross-payload duplicate
// timestamps (so last-write-wins ordering is exercised).
func testWorkload(intN, floatN, pointsPer int) (payloads [][]byte, intSeries, floatSeries []string) {
	rng := rand.New(rand.NewSource(42))
	var a, b bytes.Buffer
	for i := 0; i < intN; i++ {
		name := fmt.Sprintf("root.fleet.dev%02d.cnt", i)
		intSeries = append(intSeries, name)
		perm := rng.Perm(pointsPer)
		for _, ti := range perm {
			fmt.Fprintf(&a, "%s,%d,%d\n", name, ti, rng.Int63n(1<<20)-1<<10)
		}
		// Second payload overwrites a handful of timestamps.
		for j := 0; j < 5; j++ {
			fmt.Fprintf(&b, "%s,%d,%d\n", name, rng.Intn(pointsPer), rng.Int63n(1000))
		}
	}
	for i := 0; i < floatN; i++ {
		name := fmt.Sprintf("root.fleet.dev%02d.temp", i)
		floatSeries = append(floatSeries, name)
		for _, ti := range rng.Perm(pointsPer) {
			fmt.Fprintf(&a, "%s,%d,%.4f\n", name, ti, rng.NormFloat64()*40)
		}
		for j := 0; j < 5; j++ {
			fmt.Fprintf(&b, "%s,%d,%.4f\n", name, rng.Intn(pointsPer), rng.NormFloat64())
		}
	}
	return [][]byte{a.Bytes(), b.Bytes()}, intSeries, floatSeries
}

// compareBackends asserts the cluster client answers byte-identically to the
// single-engine client across the read API.
func compareBackends(t *testing.T, single, clustered *server.Client, intSeries, floatSeries []string, pointsPer int) {
	t.Helper()
	wantNames, err := single.Series()
	if err != nil {
		t.Fatal(err)
	}
	gotNames, err := clustered.Series()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Fatalf("series lists differ:\nsingle  %v\ncluster %v", wantNames, gotNames)
	}
	ranges := [][2]int64{{0, int64(pointsPer)}, {3, 17}, {int64(pointsPer / 2), int64(pointsPer)}}
	for _, name := range append(append([]string{}, intSeries...), floatSeries...) {
		for _, r := range ranges {
			want, err := single.QueryRaw(name, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := clustered.QueryRaw(name, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s [%d,%d]: CSV differs\nsingle:\n%scluster:\n%s", name, r[0], r[1], want, got)
			}
		}
		wantKind, err := single.SeriesKind(name)
		if err != nil {
			t.Fatal(err)
		}
		gotKind, err := clustered.SeriesKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if wantKind != gotKind {
			t.Fatalf("%s: kind %q vs %q", name, wantKind, gotKind)
		}
	}
	for _, name := range intSeries {
		wantAgg, err := single.Agg(name, 0, int64(pointsPer))
		if err != nil {
			t.Fatal(err)
		}
		gotAgg, err := clustered.Agg(name, 0, int64(pointsPer))
		if err != nil {
			t.Fatal(err)
		}
		if wantAgg != gotAgg {
			t.Fatalf("%s: agg %+v vs %+v", name, wantAgg, gotAgg)
		}
		wantDS, err := single.Downsample(name, 0, int64(pointsPer), 7)
		if err != nil {
			t.Fatal(err)
		}
		gotDS, err := clustered.Downsample(name, 0, int64(pointsPer), 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantDS, gotDS) {
			t.Fatalf("%s: downsample %+v vs %+v", name, wantDS, gotDS)
		}
		// The streaming windowed pushdown (/query?window=) must agree with
		// /downsample and across backends.
		collect := func(c *server.Client) []server.Bucket {
			var out []server.Bucket
			err := c.Window(name, 0, int64(pointsPer), 7, func(b server.Bucket) error {
				out = append(out, b)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		wantW, gotW := collect(single), collect(clustered)
		if !reflect.DeepEqual(wantW, gotW) {
			t.Fatalf("%s: window %+v vs %+v", name, wantW, gotW)
		}
		if len(wantW) != len(wantDS) {
			t.Fatalf("%s: window %d buckets vs downsample %d", name, len(wantW), len(wantDS))
		}
		for i, b := range wantW {
			d := wantDS[i]
			if b.Start != d.Start || b.Count != d.Count || b.Min != d.Min || b.Max != d.Max || b.Sum != d.Sum {
				t.Fatalf("%s: window bucket %d %+v != downsample %+v", name, i, b, d)
			}
		}
		// Value-filtered scans must agree across backends too.
		filt := func(c *server.Client) []string {
			var out []string
			err := c.QueryFilterEach(name, 0, int64(pointsPer), -1<<9, 1<<16, func(p tsfile.Point) error {
				out = append(out, fmt.Sprintf("%d,%d", p.T, p.V))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		wantF, gotF := filt(single), filt(clustered)
		if !reflect.DeepEqual(wantF, gotF) {
			t.Fatalf("%s: filtered scan differs\nsingle  %v\ncluster %v", name, wantF, gotF)
		}
	}
}

// The tentpole acceptance test: a 4-shard cluster answers every read
// byte-identically to a single engine fed the same ingest — through fresh
// writes, full compaction, and a close/reopen of every shard.
func TestRouterMatchesSingleEngine(t *testing.T) {
	const pointsPer = 60
	payloads, intSeries, floatSeries := testWorkload(12, 6, pointsPer)

	eng, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	single, singleDone := mount(t, server.NewEngineBackend(eng))
	defer singleDone()

	root := t.TempDir()
	man := DefaultManifest(4)
	router, err := Open(man, root, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clustered, clusterDone := mount(t, router)

	for _, p := range payloads {
		if _, err := single.IngestLines(p); err != nil {
			t.Fatal(err)
		}
		if _, err := clustered.IngestLines(p); err != nil {
			t.Fatal(err)
		}
		// Flush after each round so both sides hold multiple disk files and
		// the full compaction below has real merging to do.
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := router.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	compareBackends(t, single, clustered, intSeries, floatSeries, pointsPer)

	// Every series must be placed on its ring owner.
	for i, sh := range router.Shards() {
		names, err := sh.Series()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if own := router.Owner(name); own != i {
				t.Fatalf("series %q on shard %d, owner is %d", name, i, own)
			}
		}
	}

	// Full compaction on both sides must not change any answer.
	if _, err := single.Compact("full"); err != nil {
		t.Fatal(err)
	}
	cr, err := clustered.Compact("full")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Series == 0 || cr.Points == 0 {
		t.Fatalf("cluster compaction compacted nothing: %+v", cr)
	}
	compareBackends(t, single, clustered, intSeries, floatSeries, pointsPer)

	// Cluster health and per-shard stats.
	if err := clustered.Health(); err != nil {
		t.Fatal(err)
	}
	st, err := clustered.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d, want 4", len(st.Shards))
	}
	var shardPoints int
	for _, sh := range st.Shards {
		if !sh.Healthy {
			t.Fatalf("shard %d unhealthy: %s", sh.ID, sh.Error)
		}
		shardPoints += sh.MemPoints + sh.DiskPoints
	}
	if total := st.MemPoints + st.DiskPoints; shardPoints != total {
		t.Fatalf("per-shard points %d != rolled-up total %d", shardPoints, total)
	}

	// Close every shard and reopen the cluster from disk: WAL replay and
	// chunk reads must still answer identically.
	clusterDone()
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	router2, err := Open(man, root, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := router2.Close(); err != nil {
			t.Errorf("router close: %v", err)
		}
	}()
	clustered2, cluster2Done := mount(t, router2)
	defer cluster2Done()
	compareBackends(t, single, clustered2, intSeries, floatSeries, pointsPer)
}
