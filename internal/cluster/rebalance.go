package cluster

// Offline rebalance planning: diff two shard maps over a known series
// population and emit the per-series moves that bring placement in line with
// the new map. The planner is pure — it never touches data; an operator (or
// a future mover) replays each move by copying the series to its new owner
// and deleting it from the old one, while scatter-gather reads keep every
// series visible throughout.

// Move relocates one series from its old owning shard to its new one.
type Move struct {
	Series string `json:"series"`
	From   int    `json:"from"`
	To     int    `json:"to"`
}

// RebalancePlan is the full move list between two shard maps.
type RebalancePlan struct {
	Series int    `json:"series"` // total series considered
	Moves  []Move `json:"moves"`  // series whose owner changed, in input order
}

// PlanRebalance diffs placement of series between two validated manifests.
// Series whose owner is the same shard ID under both maps stay put; the rest
// become moves. Consistent hashing keeps the move list short: growing N
// shards to N+1 relocates roughly 1/(N+1) of the series.
func PlanRebalance(oldMan, newMan *Manifest, series []string) (*RebalancePlan, error) {
	if err := oldMan.Validate(); err != nil {
		return nil, err
	}
	if err := newMan.Validate(); err != nil {
		return nil, err
	}
	oldRing := oldMan.Ring()
	newRing := newMan.Ring()
	plan := &RebalancePlan{Series: len(series)}
	for _, name := range series {
		from := oldRing.Owner(name)
		to := newRing.Owner(name)
		if from != to {
			plan.Moves = append(plan.Moves, Move{Series: name, From: from, To: to})
		}
	}
	return plan, nil
}
