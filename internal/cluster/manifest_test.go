package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shardmap.json")
	m := DefaultManifest(4)
	m.Shards[2] = ShardSpec{ID: 2, Backend: BackendRemote, Addr: "http://127.0.0.1:9999"}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip:\nwant %+v\ngot  %+v", m, got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestManifestVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shardmap.json")

	m := DefaultManifest(2)
	m.Version = ManifestVersion + 1
	data := `{"format_version": 2, "hash": "fnv1a-ring-v1", "vnodes": 512,
		"shards": [{"id": 0, "backend": "local", "dir": "shard-000"}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrManifestVersion) {
		t.Fatalf("future version: err = %v, want ErrManifestVersion", err)
	}
	// Save refuses to write a mismatched manifest too.
	if err := m.Save(filepath.Join(dir, "bad.json")); !errors.Is(err, ErrManifestVersion) {
		t.Fatalf("save future version: err = %v, want ErrManifestVersion", err)
	}
}

func TestManifestHashMismatch(t *testing.T) {
	m := DefaultManifest(2)
	m.Hash = "xxhash-ring-v9"
	if err := m.Validate(); !errors.Is(err, ErrManifestVersion) {
		t.Fatalf("err = %v, want ErrManifestVersion", err)
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"vnodes zero", func(m *Manifest) { m.VNodes = 0 }, "vnodes"},
		{"no shards", func(m *Manifest) { m.Shards = nil }, "no shards"},
		{"ids out of order", func(m *Manifest) { m.Shards[1].ID = 5 }, "in order"},
		{"local without dir", func(m *Manifest) { m.Shards[0].Dir = "" }, "requires dir"},
		{"remote without addr", func(m *Manifest) {
			m.Shards[1] = ShardSpec{ID: 1, Backend: BackendRemote}
		}, "requires addr"},
		{"unknown backend", func(m *Manifest) { m.Shards[0].Backend = "carrier-pigeon" }, "unknown backend"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := DefaultManifest(2)
			tc.mut(m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if err := DefaultManifest(16).Validate(); err != nil {
		t.Fatalf("default manifest invalid: %v", err)
	}
}

func TestPlanRebalance(t *testing.T) {
	series := ringSeries(2000)
	oldMan, newMan := DefaultManifest(4), DefaultManifest(5)
	plan, err := PlanRebalance(oldMan, newMan, series)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Series != len(series) {
		t.Fatalf("plan.Series = %d, want %d", plan.Series, len(series))
	}
	if len(plan.Moves) == 0 || len(plan.Moves) > len(series)/2 {
		t.Fatalf("grow 4->5 planned %d moves of %d series", len(plan.Moves), len(series))
	}
	for _, mv := range plan.Moves {
		if mv.To != 4 {
			t.Fatalf("move %+v: growth may only move onto the new shard", mv)
		}
		if mv.From < 0 || mv.From > 3 || mv.From == mv.To {
			t.Fatalf("bad move %+v", mv)
		}
	}
	// Identical maps plan nothing.
	plan, err = PlanRebalance(oldMan, DefaultManifest(4), series)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Fatalf("identical maps planned %d moves", len(plan.Moves))
	}
	// Invalid manifests are rejected.
	bad := DefaultManifest(4)
	bad.Hash = "other"
	if _, err := PlanRebalance(oldMan, bad, series); err == nil {
		t.Fatal("invalid new manifest accepted")
	}
}
