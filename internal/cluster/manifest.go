package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The shard map is a small versioned JSON manifest on disk. It is the
// cluster's source of truth: which shards exist, where each lives (local
// data dir or remote base URL), and the exact hash layout (function name +
// vnode count) series were placed with. Serving refuses to start on a
// version or hash mismatch rather than silently routing reads away from
// where earlier writes landed.

// ManifestVersion is the format this code reads and writes.
const ManifestVersion = 1

// HashName identifies the placement function; a manifest naming any other
// hash is rejected instead of being reinterpreted.
const HashName = "fnv1a-ring-v1"

// Backend kinds a ShardSpec may name.
const (
	BackendLocal  = "local"
	BackendRemote = "remote"
)

// ShardSpec locates one shard.
type ShardSpec struct {
	ID      int    `json:"id"`
	Backend string `json:"backend"`        // "local" or "remote"
	Dir     string `json:"dir,omitempty"`  // local: data dir, relative to the cluster root
	Addr    string `json:"addr,omitempty"` // remote: base URL of a bosserver
}

// Manifest is the versioned shard map.
type Manifest struct {
	Version int         `json:"format_version"`
	Hash    string      `json:"hash"`
	VNodes  int         `json:"vnodes"`
	Shards  []ShardSpec `json:"shards"`
}

// DefaultManifest builds an all-local manifest for n shards with the default
// hash layout, dirs shard-000..shard-(n-1).
func DefaultManifest(n int) *Manifest {
	m := &Manifest{Version: ManifestVersion, Hash: HashName, VNodes: DefaultVNodes}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, ShardSpec{
			ID:      i,
			Backend: BackendLocal,
			Dir:     fmt.Sprintf("shard-%03d", i),
		})
	}
	return m
}

// ErrManifestVersion reports a manifest written by a different format
// version (or placed with a different hash function) — refusing it is what
// keeps reads routed where writes landed.
var ErrManifestVersion = errors.New("cluster: shard-map version or hash mismatch")

// Validate checks structural invariants: exactly version 1, the known hash,
// positive vnodes, and shard IDs 0..n-1 in order with each backend's
// location filled in.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("%w: format_version %d, want %d", ErrManifestVersion, m.Version, ManifestVersion)
	}
	if m.Hash != HashName {
		return fmt.Errorf("%w: hash %q, want %q", ErrManifestVersion, m.Hash, HashName)
	}
	if m.VNodes < 1 {
		return fmt.Errorf("cluster: shard map: vnodes %d, want >= 1", m.VNodes)
	}
	if len(m.Shards) == 0 {
		return errors.New("cluster: shard map has no shards")
	}
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("cluster: shard map: shards[%d] has id %d, want ids 0..%d in order", i, s.ID, len(m.Shards)-1)
		}
		switch s.Backend {
		case BackendLocal:
			if s.Dir == "" {
				return fmt.Errorf("cluster: shard %d: local backend requires dir", i)
			}
		case BackendRemote:
			if s.Addr == "" {
				return fmt.Errorf("cluster: shard %d: remote backend requires addr", i)
			}
		default:
			return fmt.Errorf("cluster: shard %d: unknown backend %q", i, s.Backend)
		}
	}
	return nil
}

// Ring builds the manifest's consistent-hash ring.
func (m *Manifest) Ring() *Ring {
	return NewRing(len(m.Shards), m.VNodes)
}

// LoadManifest reads and validates a shard map.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard map: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the manifest atomically (temp file + rename) so a crash
// mid-write never leaves a torn shard map behind.
func (m *Manifest) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: shard map: %w", err)
	}
	return nil
}

// ResolveDir joins a local shard's dir with the cluster root, leaving
// absolute dirs untouched.
func ResolveDir(root, dir string) string {
	if filepath.IsAbs(dir) {
		return dir
	}
	return filepath.Join(root, dir)
}
