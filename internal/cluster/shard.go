package cluster

import (
	"errors"
	"net/http"
	"time"

	"bos/internal/engine"
	"bos/internal/maintain"
	"bos/internal/server"
	"bos/internal/tsfile"
)

// Shard is one storage lane of the cluster. The Router only talks to this
// interface, so in-process engines and remote bosservers mix freely in one
// shard map.
type Shard interface {
	// Target identifies the shard for stats and error messages (the data
	// dir of a local shard, the base URL of a remote one).
	Target() string
	// InsertGrouped commits one per-shard slice of a commit group.
	InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error
	QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error
	QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error)
	// QueryFilterEach streams the shard's points with values in [minV, maxV],
	// in time order.
	QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error
	Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error)
	// Aggregate folds the shard's points over [minT, maxT] into one bucket.
	Aggregate(series string, minT, maxT int64) (engine.Bucket, error)
	Series() ([]string, error)
	SeriesKind(series string) (string, error)
	SeriesStats() ([]engine.SeriesStat, error)
	Stats() (engine.Stats, error)
	CompactAll() (engine.CompactStats, error)
	Flush() error
	// Health returns nil when the shard can serve.
	Health() error
	// Close releases resources the shard owns (a local shard's engine and
	// maintainer; a no-op for remote shards, whose server owns its engine).
	Close() error
}

// LocalShard is an in-process engine shard: its own data dir, WAL, flush
// pipeline, and optionally its own maintenance loop.
type LocalShard struct {
	eng   *engine.Engine
	maint *maintain.Maintainer
	dir   string
}

// NewLocalShard wraps an open engine. maint may be nil; when set, the caller
// has started it and Close stops it before closing the engine.
func NewLocalShard(eng *engine.Engine, maint *maintain.Maintainer, dir string) *LocalShard {
	return &LocalShard{eng: eng, maint: maint, dir: dir}
}

// Engine exposes the underlying engine (tests and the rebalance planner).
func (s *LocalShard) Engine() *engine.Engine { return s.eng }

func (s *LocalShard) Target() string { return s.dir }

func (s *LocalShard) InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error {
	for _, name := range sortedKeys(ints) {
		if err := s.eng.InsertBatch(name, ints[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(floats) {
		if err := s.eng.InsertFloatBatch(name, floats[name]); err != nil {
			return err
		}
	}
	return nil
}

func (s *LocalShard) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	return s.eng.QueryEach(series, minT, maxT, fn)
}

func (s *LocalShard) QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error) {
	return s.eng.QueryFloats(series, minT, maxT)
}

func (s *LocalShard) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	return s.eng.QueryFilterEach(series, minT, maxT, minV, maxV, fn)
}

func (s *LocalShard) Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error) {
	return s.eng.Downsample(series, minT, maxT, window)
}

func (s *LocalShard) Aggregate(series string, minT, maxT int64) (engine.Bucket, error) {
	return s.eng.Aggregate(series, minT, maxT)
}

func (s *LocalShard) Series() ([]string, error) { return s.eng.Series(), nil }

func (s *LocalShard) SeriesKind(series string) (string, error) {
	return s.eng.SeriesKind(series), nil
}

func (s *LocalShard) SeriesStats() ([]engine.SeriesStat, error) {
	return s.eng.SeriesStats(), nil
}

func (s *LocalShard) Stats() (engine.Stats, error) { return s.eng.Stats(), nil }

func (s *LocalShard) CompactAll() (engine.CompactStats, error) {
	if s.maint != nil {
		return s.maint.CompactAll()
	}
	return s.eng.CompactWith(nil)
}

func (s *LocalShard) Flush() error { return s.eng.Flush() }

// Health of an in-process shard is the process's health.
func (s *LocalShard) Health() error { return nil }

func (s *LocalShard) Close() error {
	if s.maint != nil {
		s.maint.Stop()
	}
	return s.eng.Close()
}

// RemoteShard serves a shard over the existing HTTP/line protocol through
// the typed client — the same wire format a human client speaks, so a remote
// shard is just another bosserver.
type RemoteShard struct {
	c    *server.Client
	addr string
}

// NewRemoteShard builds a shard over a bosserver at addr. Client options
// (e.g. server.WithRetry) pass through; a nil hc gets a connection-pooled
// default sized for scatter-gather fan-out.
func NewRemoteShard(addr string, hc *http.Client, opts ...server.ClientOption) *RemoteShard {
	if hc == nil {
		hc = defaultRemoteHTTPClient()
	}
	return &RemoteShard{c: server.NewClient(addr, hc, opts...), addr: addr}
}

func (s *RemoteShard) Target() string { return s.addr }

// notFound reports a 404 — for query paths, "this shard has no such series",
// which scatter-gather treats as an empty result rather than a failure.
func notFound(err error) bool {
	var se *server.StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

func (s *RemoteShard) InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error {
	if len(ints) == 0 && len(floats) == 0 {
		return nil
	}
	_, err := s.c.IngestBatch(ints, floats)
	return err
}

func (s *RemoteShard) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	err := s.c.QueryEach(series, minT, maxT, fn)
	if notFound(err) {
		return nil
	}
	return err
}

func (s *RemoteShard) QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error) {
	pts, err := s.c.QueryFloats(series, minT, maxT)
	if notFound(err) {
		return nil, nil
	}
	return pts, err
}

func (s *RemoteShard) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	err := s.c.QueryFilterEach(series, minT, maxT, minV, maxV, fn)
	if notFound(err) {
		return nil
	}
	return err
}

// Aggregate folds the remote /agg answer into a bucket anchored at minT, the
// same start a local shard's single-bucket aggregate reports.
func (s *RemoteShard) Aggregate(series string, minT, maxT int64) (engine.Bucket, error) {
	resp, err := s.c.Agg(series, minT, maxT)
	if notFound(err) {
		return engine.Bucket{Start: minT}, nil
	}
	if err != nil {
		return engine.Bucket{}, err
	}
	return engine.Bucket{Start: minT, Count: resp.Count, Min: resp.Min, Max: resp.Max, Sum: resp.Sum}, nil
}

func (s *RemoteShard) Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error) {
	buckets, err := s.c.Downsample(series, minT, maxT, window)
	if err != nil {
		return nil, err
	}
	out := make([]engine.Bucket, len(buckets))
	for i, b := range buckets {
		out[i] = engine.Bucket{Start: b.Start, Count: b.Count, Min: b.Min, Max: b.Max, Sum: b.Sum}
	}
	return out, nil
}

func (s *RemoteShard) Series() ([]string, error) { return s.c.Series() }

func (s *RemoteShard) SeriesKind(series string) (string, error) {
	return s.c.SeriesKind(series)
}

func (s *RemoteShard) SeriesStats() ([]engine.SeriesStat, error) {
	st, err := s.c.Stats()
	if err != nil {
		return nil, err
	}
	return st.Series, nil
}

func (s *RemoteShard) Stats() (engine.Stats, error) {
	st, err := s.c.Stats()
	if err != nil {
		return engine.Stats{}, err
	}
	out := engine.Stats{
		Files:             st.Files,
		MemPoints:         st.MemPoints,
		DiskPoints:        st.DiskPoints,
		DiskBytes:         st.DiskBytes,
		SeriesCount:       st.SeriesCount,
		Compactions:       st.Compactions,
		CompactedFiles:    st.CompactedFiles,
		CompactedBytesIn:  st.CompactedBytesIn,
		CompactedBytesOut: st.CompactedBytesOut,
		WALGroups:         st.WALGroups,
		WALRecords:        st.WALRecords,
	}
	out.Cache = st.Cache.Stats
	out.Pushdown = st.Pushdown
	return out, nil
}

func (s *RemoteShard) CompactAll() (engine.CompactStats, error) {
	resp, err := s.c.Compact("full")
	if err != nil {
		return engine.CompactStats{}, err
	}
	return engine.CompactStats{
		Files:         resp.Files,
		Series:        resp.Series,
		Points:        resp.Points,
		BytesBefore:   resp.BytesBefore,
		BytesAfter:    resp.BytesAfter,
		SeriesPackers: resp.SeriesPackers,
	}, nil
}

// Flush is a no-op: the remote bosserver owns its engine's flush lifecycle
// (its ingest path acknowledges only WAL-durable writes, and it flushes on
// its own shutdown).
func (s *RemoteShard) Flush() error { return nil }

func (s *RemoteShard) Health() error { return s.c.Health() }

// Close is a no-op: the remote server owns its engine.
func (s *RemoteShard) Close() error { return nil }

// defaultRemoteHTTPClient pools connections for scatter-gather fan-out.
func defaultRemoteHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
}
