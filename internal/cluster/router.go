package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bos/internal/engine"
	"bos/internal/server"
	"bos/internal/tsfile"
)

// Router consistent-hashes series across the manifest's shards and
// implements internal/server's Backend interface, so an HTTP server mounted
// on a Router serves the exact API a single engine does.
//
// Placement: every series is owned by exactly one shard (Ring.Owner), and
// ingest routes there. Reads, however, scatter to every shard and merge by
// timestamp — after the shard map grows, a series' history may still sit on
// its old shard until the rebalance moves it, and scatter-gather reads stay
// correct through that window (the owner shard wins timestamp collisions).
//
// The Router is immutable after New: no locks, safe for concurrent use.
type Router struct {
	man    *Manifest
	ring   *Ring
	shards []Shard
}

// The Router is a full sharded backend for internal/server: queries, grouped
// ingest, compaction, and per-shard health all route through it.
var (
	_ server.Backend       = (*Router)(nil)
	_ server.Compactor     = (*Router)(nil)
	_ server.ShardStatuser = (*Router)(nil)
)

// New wires a manifest to its shard backends. len(shards) must equal the
// manifest's shard count, index i serving manifest shard ID i.
func New(man *Manifest, shards []Shard) (*Router, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if len(shards) != len(man.Shards) {
		return nil, fmt.Errorf("cluster: %d shard backends for a %d-shard map", len(shards), len(man.Shards))
	}
	return &Router{man: man, ring: man.Ring(), shards: shards}, nil
}

// Open builds a Router of in-process engine shards from an all-local
// manifest: one engine per shard under root, sharing opt (Dir is overridden
// per shard). Remote specs are rejected — callers that mix backends
// construct the shard slice themselves and use New.
func Open(man *Manifest, root string, opt engine.Options) (*Router, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	shards := make([]Shard, 0, len(man.Shards))
	fail := func(err error) (*Router, error) {
		for _, s := range shards {
			s.Close() // best-effort unwind after a failed open
		}
		return nil, err
	}
	for _, spec := range man.Shards {
		if spec.Backend != BackendLocal {
			return fail(fmt.Errorf("cluster: Open supports local shards only; shard %d is %q", spec.ID, spec.Backend))
		}
		o := opt
		o.Dir = ResolveDir(root, spec.Dir)
		eng, err := engine.Open(o)
		if err != nil {
			return fail(fmt.Errorf("cluster: shard %d: %w", spec.ID, err))
		}
		shards = append(shards, NewLocalShard(eng, nil, o.Dir))
	}
	return New(man, shards)
}

// Manifest returns the shard map the router serves.
func (r *Router) Manifest() *Manifest { return r.man }

// Shards returns the shard backends, index = shard ID.
func (r *Router) Shards() []Shard { return r.shards }

// Owner returns the shard ID that owns a series.
func (r *Router) Owner(series string) int { return r.ring.Owner(series) }

// Close closes every shard (local engines flush and release; remote shards
// are no-ops), joining errors.
func (r *Router) Close() error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			errs[i] = sh.Close()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// fanOut runs fn per shard concurrently and joins the errors.
func (r *Router) fanOut(fn func(i int, sh Shard) error) error {
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			errs[i] = fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// InsertGrouped splits one commit group by owning shard — each series routed
// exactly once — and commits the per-shard slices in parallel. An error on
// any shard fails the group (partial application is safe: replays are
// last-write-wins), but every shard still gets its slice, so one slow or
// broken shard cannot hold another shard's data hostage.
func (r *Router) InsertGrouped(ints map[string][]tsfile.Point, floats map[string][]tsfile.FloatPoint) error {
	if len(r.shards) == 1 {
		return r.shards[0].InsertGrouped(ints, floats)
	}
	perInts := make([]map[string][]tsfile.Point, len(r.shards))
	perFloats := make([]map[string][]tsfile.FloatPoint, len(r.shards))
	for name, pts := range ints {
		i := r.ring.Owner(name)
		if perInts[i] == nil {
			perInts[i] = map[string][]tsfile.Point{}
		}
		perInts[i][name] = pts
	}
	for name, pts := range floats {
		i := r.ring.Owner(name)
		if perFloats[i] == nil {
			perFloats[i] = map[string][]tsfile.FloatPoint{}
		}
		perFloats[i][name] = pts
	}
	return r.fanOut(func(i int, sh Shard) error {
		if perInts[i] == nil && perFloats[i] == nil {
			return nil
		}
		return sh.InsertGrouped(perInts[i], perFloats[i])
	})
}

// streamPage is the point-batch size shard streams hand to the merge; big
// enough to amortize channel hops, small enough to bound buffered memory
// (shards × buffered pages × page size).
const streamPage = 2048

// errAbortStream tells a shard producer the merge stopped consuming; it is
// never surfaced to callers.
var errAbortStream = errors.New("cluster: stream aborted")

// shardStream is one shard's side of a scatter-gather scan: a producer
// goroutine batches the shard's points into pages; err is valid once ch
// closes.
type shardStream struct {
	ch  chan []tsfile.Point
	err error
}

// QueryEach scatter-gathers a range scan: every shard streams its points
// concurrently and the merge emits them in time order. On timestamp
// collisions across shards (possible only for series mid-move between
// shards) the owner shard's point wins, then the highest shard ID —
// deterministic either way. A shard error aborts the whole scan and is
// returned; fn errors abort and return likewise.
func (r *Router) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	if len(r.shards) == 1 {
		return r.shards[0].QueryEach(series, minT, maxT, fn)
	}
	return r.scatterMerge(r.ring.Owner(series), fn, func(sh Shard, emit func(tsfile.Point) error) error {
		return sh.QueryEach(series, minT, maxT, emit)
	})
}

// QueryFilterEach scatter-gathers a value-filtered scan with the same merge
// as QueryEach. The filter runs on each shard (that is the point: shards
// answer from chunk statistics and partial decode), so mid-move a shadowed
// stale point can pass a filter the owner's fresher point fails — the same
// documented window as Downsample's per-shard aggregation, exact once the
// rebalance completes.
func (r *Router) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	if len(r.shards) == 1 {
		return r.shards[0].QueryFilterEach(series, minT, maxT, minV, maxV, fn)
	}
	return r.scatterMerge(r.ring.Owner(series), fn, func(sh Shard, emit func(tsfile.Point) error) error {
		return sh.QueryFilterEach(series, minT, maxT, minV, maxV, emit)
	})
}

// scatterMerge runs query on every shard concurrently and k-way merges the
// streams into fn in time order; the owner shard wins timestamp collisions,
// then the highest shard ID.
func (r *Router) scatterMerge(owner int, fn func(tsfile.Point) error, query func(sh Shard, emit func(tsfile.Point) error) error) error {
	done := make(chan struct{})
	var closeDone sync.Once
	abort := func() { closeDone.Do(func() { close(done) }) }
	defer abort()

	streams := make([]*shardStream, len(r.shards))
	for i, sh := range r.shards {
		st := &shardStream{ch: make(chan []tsfile.Point, 4)}
		streams[i] = st
		go func(sh Shard) {
			defer close(st.ch)
			page := make([]tsfile.Point, 0, streamPage)
			err := query(sh, func(p tsfile.Point) error {
				page = append(page, p)
				if len(page) == streamPage {
					select {
					case st.ch <- page:
					case <-done:
						return errAbortStream
					}
					page = make([]tsfile.Point, 0, streamPage)
				}
				return nil
			})
			if err == nil && len(page) > 0 {
				select {
				case st.ch <- page:
				case <-done:
				}
			}
			if err != nil && !errors.Is(err, errAbortStream) {
				st.err = err
			}
		}(sh)
	}

	// k-way merge over the shard streams.
	heads := make([]tsfile.Point, len(streams))
	pages := make([][]tsfile.Point, len(streams))
	pos := make([]int, len(streams))
	alive := make([]bool, len(streams))
	advance := func(i int) error {
		for {
			if pos[i] < len(pages[i]) {
				heads[i] = pages[i][pos[i]]
				pos[i]++
				alive[i] = true
				return nil
			}
			page, ok := <-streams[i].ch
			if !ok {
				alive[i] = false
				return streams[i].err
			}
			pages[i], pos[i] = page, 0
		}
	}
	for i := range streams {
		if err := advance(i); err != nil {
			return err
		}
	}
	// prio breaks timestamp ties: the owner outranks everything, then higher
	// shard IDs.
	prio := func(i int) int {
		if i == owner {
			return len(streams)
		}
		return i
	}
	for {
		best := -1
		for i := range streams {
			if !alive[i] {
				continue
			}
			if best == -1 || heads[i].T < heads[best].T ||
				(heads[i].T == heads[best].T && prio(i) > prio(best)) {
				best = i
			}
		}
		if best == -1 {
			return nil
		}
		winner := heads[best]
		// Consume every shard's point at the emitted timestamp, so shadowed
		// duplicates (mid-move copies) are skipped, like the engine's merge.
		for i := range streams {
			if alive[i] && heads[i].T == winner.T {
				if err := advance(i); err != nil {
					return err
				}
			}
		}
		if err := fn(winner); err != nil {
			return err
		}
	}
}

// QueryFloats scatter-gathers a float range scan; same collision rule as
// QueryEach (owner wins, then highest shard ID).
func (r *Router) QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error) {
	if len(r.shards) == 1 {
		return r.shards[0].QueryFloats(series, minT, maxT)
	}
	owner := r.ring.Owner(series)
	results := make([][]tsfile.FloatPoint, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		pts, err := sh.QueryFloats(series, minT, maxT)
		results[i] = pts
		return err
	})
	if err != nil {
		return nil, err
	}
	// Apply shards in ascending tie priority so later writes win the map.
	order := make([]int, 0, len(results))
	for i := range results {
		if i != owner {
			order = append(order, i)
		}
	}
	order = append(order, owner)
	merged := map[int64]float64{}
	for _, i := range order {
		for _, p := range results[i] {
			merged[p.T] = p.V
		}
	}
	times := make([]int64, 0, len(merged))
	for t := range merged {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]tsfile.FloatPoint, len(times))
	for i, t := range times {
		out[i] = tsfile.FloatPoint{T: t, V: merged[t]}
	}
	return out, nil
}

// Aggregate fans the whole-range fold out per shard and merges the single
// buckets (summed count/sum, widened min/max — empty shards contribute
// nothing, so a lone-shard answer passes through untouched). Mid-move
// double-counting matches Downsample's documented tradeoff.
func (r *Router) Aggregate(series string, minT, maxT int64) (engine.Bucket, error) {
	if len(r.shards) == 1 {
		return r.shards[0].Aggregate(series, minT, maxT)
	}
	results := make([]engine.Bucket, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		b, err := sh.Aggregate(series, minT, maxT)
		results[i] = b
		return err
	})
	if err != nil {
		return engine.Bucket{}, err
	}
	sum := engine.Bucket{Start: minT}
	for _, b := range results {
		if b.Count == 0 {
			continue
		}
		if sum.Count == 0 {
			sum.Count, sum.Min, sum.Max, sum.Sum = b.Count, b.Min, b.Max, b.Sum
			continue
		}
		sum.Count += b.Count
		sum.Sum += b.Sum
		if b.Min < sum.Min {
			sum.Min = b.Min
		}
		if b.Max > sum.Max {
			sum.Max = b.Max
		}
	}
	return sum, nil
}

// Downsample fans the windowed aggregation out per shard and merges buckets
// by window start. In steady state a series lives on one shard and the merge
// is a pass-through; mid-move, points double-counted by two shards would
// inflate counts until the rebalance completes — the documented tradeoff for
// pushing aggregation down to the shards instead of re-streaming raw points.
func (r *Router) Downsample(series string, minT, maxT, window int64) ([]engine.Bucket, error) {
	if len(r.shards) == 1 {
		return r.shards[0].Downsample(series, minT, maxT, window)
	}
	if window <= 0 {
		return nil, engine.ErrBadWindow
	}
	results := make([][]engine.Bucket, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		buckets, err := sh.Downsample(series, minT, maxT, window)
		results[i] = buckets
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := map[int64]engine.Bucket{}
	for _, buckets := range results {
		for _, b := range buckets {
			cur, ok := merged[b.Start]
			if !ok {
				merged[b.Start] = b
				continue
			}
			cur.Count += b.Count
			cur.Sum += b.Sum
			if b.Min < cur.Min {
				cur.Min = b.Min
			}
			if b.Max > cur.Max {
				cur.Max = b.Max
			}
			merged[b.Start] = cur
		}
	}
	out := make([]engine.Bucket, 0, len(merged))
	for _, b := range merged {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// Series unions every shard's series names, sorted.
func (r *Router) Series() ([]string, error) {
	results := make([][]string, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		names, err := sh.Series()
		results[i] = names
		return err
	})
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, names := range results {
		for _, n := range names {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// SeriesKind asks every shard; the owner's answer wins, any other non-empty
// answer covers a series mid-move. Shard errors are ignored as long as some
// shard knows the series — a healthy answer beats a degraded unknown.
func (r *Router) SeriesKind(series string) (string, error) {
	owner := r.ring.Owner(series)
	kinds := make([]string, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			kinds[i], errs[i] = sh.SeriesKind(series)
		}(i, sh)
	}
	wg.Wait()
	if errs[owner] == nil && kinds[owner] != "" {
		return kinds[owner], nil
	}
	for i, k := range kinds {
		if errs[i] == nil && k != "" {
			return k, nil
		}
	}
	return "", errors.Join(errs...)
}

// SeriesStats merges per-series footprints across shards (summed sizes,
// widened time bounds), sorted by name.
func (r *Router) SeriesStats() ([]engine.SeriesStat, error) {
	results := make([][]engine.SeriesStat, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		stats, err := sh.SeriesStats()
		results[i] = stats
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := map[string]engine.SeriesStat{}
	for _, stats := range results {
		for _, st := range stats {
			cur, ok := merged[st.Name]
			if !ok {
				merged[st.Name] = st
				continue
			}
			cur.MemPoints += st.MemPoints
			cur.DiskPoints += st.DiskPoints
			cur.DiskBytes += st.DiskBytes
			cur.Chunks += st.Chunks
			if st.Kind == "float" {
				cur.Kind = "float"
			}
			if st.MinT < cur.MinT {
				cur.MinT = st.MinT
			}
			if st.MaxT > cur.MaxT {
				cur.MaxT = st.MaxT
			}
			merged[st.Name] = cur
		}
	}
	out := make([]engine.SeriesStat, 0, len(merged))
	for _, st := range merged {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Stats rolls every shard's footprint up into one engine.Stats. SeriesCount
// sums per-shard counts (exact in steady state, where a series lives on one
// shard).
func (r *Router) Stats() (engine.Stats, error) {
	stats := make([]engine.Stats, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		st, err := sh.Stats()
		stats[i] = st
		return err
	})
	if err != nil {
		return engine.Stats{}, err
	}
	var sum engine.Stats
	for _, st := range stats {
		sum.Files += st.Files
		sum.MemPoints += st.MemPoints
		sum.DiskPoints += st.DiskPoints
		sum.DiskBytes += st.DiskBytes
		sum.SeriesCount += st.SeriesCount
		sum.Compactions += st.Compactions
		sum.CompactedFiles += st.CompactedFiles
		sum.CompactedBytesIn += st.CompactedBytesIn
		sum.CompactedBytesOut += st.CompactedBytesOut
		sum.WALGroups += st.WALGroups
		sum.WALRecords += st.WALRecords
		sum.Cache.Hits += st.Cache.Hits
		sum.Cache.Misses += st.Cache.Misses
		sum.Cache.Evictions += st.Cache.Evictions
		sum.Cache.Invalidations += st.Cache.Invalidations
		sum.Cache.Entries += st.Cache.Entries
		sum.Cache.Bytes += st.Cache.Bytes
		sum.Cache.MaxBytes += st.Cache.MaxBytes
		sum.Pushdown.Add(st.Pushdown)
	}
	return sum, nil
}

// CompactAll compacts every shard in parallel and sums the results.
func (r *Router) CompactAll() (engine.CompactStats, error) {
	stats := make([]engine.CompactStats, len(r.shards))
	err := r.fanOut(func(i int, sh Shard) error {
		st, err := sh.CompactAll()
		stats[i] = st
		return err
	})
	if err != nil {
		return engine.CompactStats{}, err
	}
	var sum engine.CompactStats
	for _, st := range stats {
		sum.Files += st.Files
		sum.Series += st.Series
		sum.Points += st.Points
		sum.BytesBefore += st.BytesBefore
		sum.BytesAfter += st.BytesAfter
		for name, packer := range st.SeriesPackers {
			if sum.SeriesPackers == nil {
				sum.SeriesPackers = map[string]string{}
			}
			sum.SeriesPackers[name] = packer
		}
	}
	return sum, nil
}

// Flush flushes every shard in parallel.
func (r *Router) Flush() error {
	return r.fanOut(func(i int, sh Shard) error { return sh.Flush() })
}

// ShardStatuses reports per-shard health and footprint for /stats and
// /healthz. A shard that fails its health or stats probe reports unhealthy
// with the error; the others report normally.
func (r *Router) ShardStatuses() []server.ShardStatus {
	out := make([]server.ShardStatus, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			st := server.ShardStatus{
				ID:      i,
				Backend: r.man.Shards[i].Backend,
				Target:  sh.Target(),
				Healthy: true,
			}
			if err := sh.Health(); err != nil {
				st.Healthy = false
				st.Error = err.Error()
			} else if es, err := sh.Stats(); err != nil {
				st.Healthy = false
				st.Error = err.Error()
			} else {
				st.SeriesCount = es.SeriesCount
				st.MemPoints = es.MemPoints
				st.DiskPoints = es.DiskPoints
				st.DiskBytes = es.DiskBytes
				st.Files = es.Files
				st.CacheHits = es.Cache.Hits
				st.CacheMisses = es.Cache.Misses
				st.WALGroups = es.WALGroups
				st.WALRecords = es.WALRecords
			}
			out[i] = st
		}(i, sh)
	}
	wg.Wait()
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
