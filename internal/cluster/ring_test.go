package cluster

import (
	"fmt"
	"testing"
)

// ringSeries generates n distinct series names shaped like real metric paths.
func ringSeries(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("root.fleet.dev%04d.metric%d", i/8, i%8)
	}
	return out
}

// The acceptance bar for placement: 10k series over 16 shards land within
// ±20% of the even share.
func TestRingBalance(t *testing.T) {
	const shards, n = 16, 10000
	r := NewRing(shards, DefaultVNodes)
	counts := make([]int, shards)
	for _, s := range ringSeries(n) {
		counts[r.Owner(s)]++
	}
	even := float64(n) / shards
	lo, hi := even*0.8, even*1.2
	for id, c := range counts {
		if float64(c) < lo || float64(c) > hi {
			t.Errorf("shard %d owns %d series, outside [%.0f, %.0f] (±20%% of %.0f)", id, c, lo, hi, even)
		}
	}
	t.Logf("counts = %v (even share %.0f)", counts, even)
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(8, 64)
	b := NewRing(8, 64)
	for _, s := range ringSeries(1000) {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("same layout, different owner for %q", s)
		}
	}
}

// Growing the ring by one shard must only move series TO the new shard —
// the consistent-hashing contract that keeps rebalances minimal.
func TestRingGrowthStability(t *testing.T) {
	const n = 10000
	old := NewRing(4, DefaultVNodes)
	grown := NewRing(5, DefaultVNodes)
	moved := 0
	for _, s := range ringSeries(n) {
		was, is := old.Owner(s), grown.Owner(s)
		if was != is {
			moved++
			if is != 4 {
				t.Fatalf("series %q moved %d -> %d; growth may only move onto the new shard 4", s, was, is)
			}
		}
	}
	// Expect ~1/5 of series to move; allow a wide band around it.
	if moved < n/10 || moved > n*3/10 {
		t.Errorf("grow 4->5 moved %d of %d series, want roughly %d", moved, n, n/5)
	}
	t.Logf("grow 4->5 moved %d/%d series", moved, n)
}

func TestRingOwnerInRange(t *testing.T) {
	r := NewRing(3, 16)
	for _, s := range ringSeries(500) {
		if id := r.Owner(s); id < 0 || id > 2 {
			t.Fatalf("owner %d out of range", id)
		}
	}
}
