// Package cluster is the sharded-serving subsystem: a consistent-hash Router
// that spreads series across N storage shards (in-process engines or remote
// bosservers over the HTTP line protocol), a small versioned shard-map
// manifest that pins the layout to disk, scatter-gather query fan-out with
// merge-by-timestamp, shard-aware grouped ingest, and an offline rebalance
// planner that emits per-series move lists.
//
// The design promotes the engine's internal 16-way series striping from
// threads to whole engine instances: each shard owns its data directory, WAL,
// flush pipeline and maintenance loop, so shards scale the way independent
// lanes do — no shared locks, no shared fsync. The Router implements
// internal/server's Backend interface, which keeps the HTTP API identical
// whether it fronts one engine or sixteen.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard on the hash ring. More
// vnodes smooth the per-shard share of the keyspace (relative imbalance
// shrinks roughly with 1/sqrt(vnodes)); 512 keeps 16 shards within a few
// percent of even at negligible ring-build and lookup cost.
const DefaultVNodes = 512

// fnv1a64 is the 64-bit FNV-1a hash with an avalanche finalizer, inlined so
// series routing allocates nothing. Raw FNV-1a is too weak for ring
// placement: names differing only in a trailing character (dev0.metric0 …
// dev0.metric7) end hashes within a few multiples of the FNV prime of each
// other — closer than a ring gap — and all land on one shard. The
// multiply-xorshift finalizer diffuses every input bit across the word.
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type ringPoint struct {
	h     uint64
	shard int
}

// Ring is an immutable consistent-hash ring: vnodes pseudo-random points per
// shard, a series owned by the first point at or clockwise of its hash. It
// is safe for concurrent use (no mutation after construction).
type Ring struct {
	points []ringPoint
	shards int
	vnodes int
}

// NewRing builds a ring for shard IDs 0..shards-1 with vnodes points each.
// Construction is deterministic: the same (shards, vnodes) always yields the
// same ownership, which is what lets the manifest pin a layout and the
// rebalance planner diff two layouts.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes}
	r.points = make([]ringPoint, 0, shards*vnodes)
	var key []byte
	for id := 0; id < shards; id++ {
		for v := 0; v < vnodes; v++ {
			key = key[:0]
			key = append(key, "shard-"...)
			key = strconv.AppendInt(key, int64(id), 10)
			key = append(key, '#')
			key = strconv.AppendInt(key, int64(v), 10)
			r.points = append(r.points, ringPoint{h: fnv1a64(string(key)), shard: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash collisions resolve to the lower shard, deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a series name to its owning shard ID.
func (r *Ring) Owner(series string) int {
	h := fnv1a64(series)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].h >= h })
	if i == len(pts) {
		i = 0 // wrap: past the last point, ownership circles to the first
	}
	return pts[i].shard
}
