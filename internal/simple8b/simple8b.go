// Package simple8b implements the Simple-8b word-aligned integer encoding
// (Anh & Moffat), used by SimplePFOR to compress exception values: each
// 64-bit word carries a 4-bit selector and up to 60 unsigned integers packed
// at a uniform width.
package simple8b

import (
	"errors"
	"fmt"
)

// MaxValue is the largest encodable value (60 payload bits per word).
const MaxValue = 1<<60 - 1

// selector table: how many values fit in one word and at what width.
var selectors = [16]struct {
	count int
	width uint
}{
	{240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4}, {12, 5}, {10, 6},
	{8, 7}, {7, 8}, {6, 10}, {5, 12}, {4, 15}, {3, 20}, {2, 30}, {1, 60},
}

// ErrTooLarge reports a value above MaxValue.
var ErrTooLarge = errors.New("simple8b: value exceeds 60 bits")

var errCorrupt = errors.New("simple8b: corrupt stream")

// Encode appends vals to dst as a sequence of Simple-8b words preceded by a
// varint count. All values must be <= MaxValue.
func Encode(dst []byte, vals []uint64) ([]byte, error) {
	for _, v := range vals {
		if v > MaxValue {
			return dst, fmt.Errorf("%w: %d", ErrTooLarge, v)
		}
	}
	dst = appendUvarint(dst, uint64(len(vals)))
	for len(vals) > 0 {
		word, consumed := encodeWord(vals)
		dst = append(dst,
			byte(word>>56), byte(word>>48), byte(word>>40), byte(word>>32),
			byte(word>>24), byte(word>>16), byte(word>>8), byte(word))
		vals = vals[consumed:]
	}
	return dst, nil
}

// encodeWord greedily picks the densest selector that fits the next run of
// values and returns the packed word plus how many values it consumed.
func encodeWord(vals []uint64) (uint64, int) {
	// Try selectors from densest (240 zeros) to sparsest (1 x 60 bits).
	for sel, s := range selectors {
		n := s.count
		if n > len(vals) {
			// A partially filled word is only valid for width > 0
			// selectors; the run-of-zeros selectors need the full
			// count.
			if s.width == 0 {
				continue
			}
			n = len(vals)
		}
		fits := true
		for i := 0; i < n; i++ {
			if s.width == 0 {
				if vals[i] != 0 {
					fits = false
					break
				}
			} else if vals[i] >= 1<<s.width {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		word := uint64(sel) << 60
		if s.width > 0 {
			for i := 0; i < n; i++ {
				word |= vals[i] << (uint(i) * s.width)
			}
			// Mark unused trailing slots impossible? They decode as
			// zeros; the stream-level count trims them.
		}
		return word, n
	}
	// Unreachable: selector 15 always fits one value <= MaxValue.
	panic("simple8b: no selector fits")
}

// Decode consumes one Simple-8b sequence from src, appends the values to out
// and returns the remainder of src.
func Decode(src []byte, out []uint64) ([]uint64, []byte, error) {
	n, src, err := readUvarint(src)
	if err != nil {
		return out, nil, err
	}
	// A word is 8 bytes and decodes to at most 240 values, so anything
	// beyond 30 values per remaining byte is garbage.
	if n > uint64(len(src))*30 {
		return out, nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n)
	}
	remaining := int(n)
	for remaining > 0 {
		if len(src) < 8 {
			return out, nil, fmt.Errorf("%w: truncated word", errCorrupt)
		}
		word := uint64(src[0])<<56 | uint64(src[1])<<48 | uint64(src[2])<<40 |
			uint64(src[3])<<32 | uint64(src[4])<<24 | uint64(src[5])<<16 |
			uint64(src[6])<<8 | uint64(src[7])
		src = src[8:]
		s := selectors[word>>60]
		cnt := s.count
		if cnt > remaining {
			cnt = remaining
		}
		if s.width == 0 {
			for i := 0; i < cnt; i++ {
				out = append(out, 0)
			}
		} else {
			mask := uint64(1)<<s.width - 1
			for i := 0; i < cnt; i++ {
				out = append(out, word>>(uint(i)*s.width)&mask)
			}
		}
		remaining -= cnt
	}
	return out, src, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(src); i++ {
		b := src[i]
		if shift == 63 && b > 1 {
			return 0, nil, fmt.Errorf("%w: varint overflow", errCorrupt)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, src[i+1:], nil
		}
		shift += 7
		if shift > 63 {
			return 0, nil, fmt.Errorf("%w: varint overflow", errCorrupt)
		}
	}
	return 0, nil, fmt.Errorf("%w: truncated varint", errCorrupt)
}
