package simple8b

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []uint64) {
	t.Helper()
	enc, err := Encode(nil, vals)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, rest, err := Decode(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 || len(got) != len(vals) {
		t.Fatalf("got %d values, %d rest bytes", len(got), len(rest))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %d want %d", i, got[i], vals[i])
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{MaxValue},
		{1, 2, 3, 4, 5},
		make([]uint64, 240),            // one all-zero word
		make([]uint64, 300),            // 240 zeros + 60 zeros
		{0, 0, 0, 1 << 59, 0, 0},       // wide value mid-stream
		{1, 1 << 10, 1, 1 << 30, 1, 1}, // mixed widths
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestZeroRunCompression(t *testing.T) {
	// 240 zeros must fit in a single word plus the count varint.
	vals := make([]uint64, 240)
	enc, err := Encode(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 10 {
		t.Errorf("240 zeros encoded to %d bytes", len(enc))
	}
}

func TestTooLarge(t *testing.T) {
	if _, err := Encode(nil, []uint64{MaxValue + 1}); err == nil {
		t.Error("value above MaxValue accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = v & MaxValue
		}
		enc, err := Encode(nil, vals)
		if err != nil {
			return false
		}
		got, rest, err := Decode(enc, nil)
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmallValuesDense(t *testing.T) {
	// 600 values < 2 should use width-1 selectors: 10 words = 80 bytes.
	vals := make([]uint64, 600)
	for i := range vals {
		vals[i] = uint64(i % 2)
	}
	enc, err := Encode(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 90 {
		t.Errorf("600 bits encoded to %d bytes", len(enc))
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1000))
	}
	enc, _ := Encode(nil, vals)
	for i := 0; i < 1000; i++ {
		cor := append([]byte(nil), enc...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		Decode(cor, nil)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc, _ := Encode(nil, []uint64{1, 2, 3, 1 << 40})
	for cut := 0; cut < len(enc)-1; cut++ {
		out, _, err := Decode(enc[:cut], nil)
		if err == nil && len(out) == 4 {
			t.Fatalf("cut %d decoded fully", cut)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(rng.Intn(64))
	}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf, _ = Encode(buf[:0], vals)
	}
}
