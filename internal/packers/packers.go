// Package packers maps user-facing packer names to codec.Packer
// implementations. Every CLI that takes a -packer flag (bosdb, bosfile,
// bosserver) resolves it here, so the accepted vocabulary and the error text
// listing the valid values stay consistent across binaries.
package packers

import (
	"fmt"
	"sort"
	"strings"

	"bos/internal/bitpack"
	"bos/internal/codec"
	"bos/internal/core"
	"bos/internal/pfor"
)

// registry maps canonical names to constructors. Constructors (not shared
// values) so every caller gets its own packer instance: core.Packer carries
// planning state and must not be shared across goroutines.
var registry = map[string]func() codec.Packer{
	"bosb":       func() codec.Packer { return core.NewPacker(core.SeparationBitWidth) },
	"bosv":       func() codec.Packer { return core.NewPacker(core.SeparationValue) },
	"bosm":       func() codec.Packer { return core.NewPacker(core.SeparationMedian) },
	"bp":         func() codec.Packer { return bitpack.Packer{} },
	"pfor":       func() codec.Packer { return pfor.Packer{} },
	"newpfor":    func() codec.Packer { return pfor.NewPFOR{} },
	"optpfor":    func() codec.Packer { return pfor.OptPFOR{} },
	"fastpfor":   func() codec.Packer { return pfor.FastPFOR{} },
	"simplepfor": func() codec.Packer { return pfor.SimplePFOR{} },
}

// canonical lower-cases the name and strips '-'/'_' separators, so "BOS-B",
// "bos_b" and "bosb" all resolve to the same entry.
func canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.ReplaceAll(name, "-", "")
	return strings.ReplaceAll(name, "_", "")
}

// ByName resolves a packer name. Unknown names return an error listing every
// valid value.
func ByName(name string) (codec.Packer, error) {
	if f, ok := registry[canonical(name)]; ok {
		return f(), nil
	}
	return nil, fmt.Errorf("unknown packer %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Names lists the canonical packer names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
