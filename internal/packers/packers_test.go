package packers

import (
	"strings"
	"testing"
)

func TestByNameRoundTrip(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6, 1 << 40, -7}
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		enc := p.Pack(nil, vals)
		got, rest, err := p.Unpack(enc, nil)
		if err != nil {
			t.Fatalf("%s: Unpack: %v", name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d bytes left over", name, len(rest))
		}
		if len(got) != len(vals) {
			t.Fatalf("%s: got %d values, want %d", name, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s: value %d: got %d, want %d", name, i, got[i], vals[i])
			}
		}
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"bosb", "BOS-B", "bos_b", " BosB "} {
		p, err := ByName(alias)
		if err != nil {
			t.Fatalf("ByName(%q): %v", alias, err)
		}
		if p.Name() != "BOS-B" {
			t.Fatalf("ByName(%q).Name() = %q, want BOS-B", alias, p.Name())
		}
	}
}

func TestByNameUnknownListsValid(t *testing.T) {
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("want error for unknown packer")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention valid name %q", err, name)
		}
	}
}

func TestInstancesNotShared(t *testing.T) {
	a, _ := ByName("bosb")
	b, _ := ByName("bosb")
	if a == b {
		t.Fatal("ByName returned a shared packer instance")
	}
}
