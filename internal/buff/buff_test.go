package buff

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, vals []float64) []byte {
	t.Helper()
	var c Codec
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{1.25, 2.5, 3.75},
		{0.1, 0.2, 0.3},
		{-5.5, 1000000.25, 3},
		{math.Pi, 1.5, math.E}, // raw fallback
		{math.NaN(), math.Inf(1), 2.5},
		{7, 7, 7, 7},
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestSparseOutlierSplit(t *testing.T) {
	// 1% outliers must not inflate the other 99%.
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = float64(rng.Intn(100)) / 4 // 0..24.75 at p=2
	}
	clean := len(Codec{}.Encode(nil, vals))
	for i := 0; i < 20; i++ {
		vals[rng.Intn(len(vals))] = 1e6
	}
	dirty := len(Codec{}.Encode(nil, vals))
	if dirty > clean*2 {
		t.Errorf("20 outliers blew up BUFF: %d -> %d bytes", clean, dirty)
	}
	roundTrip(t, vals)
}

func TestRawFallbackLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
	}
	roundTrip(t, vals)
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var c Codec
	base := c.Encode(nil, []float64{1.5, 2.5, 3.75, 1e6, -2})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64()*10000) / 100
	}
	var c Codec
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}
