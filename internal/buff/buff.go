// Package buff implements a BUFF-style bounded float codec (Liu et al., VLDB
// 2021): floats are decomposed into fixed-point integers at the stream's
// decimal precision and the integer stream is packed with a frequency-based
// sparse split — the dominant low range at a narrow width, the infrequent
// outliers patched from a separate full-width area.
//
// As the paper notes, BUFF "only splits values into two parts, outliers and
// normal values according to frequency, and does not optimize the outlier
// separation" — that 99th-percentile heuristic is reproduced here. Streams
// that are not exactly representable as short decimals fall back to raw
// 64-bit storage to preserve losslessness.
package buff

import (
	"errors"
	"fmt"
	"math"

	"bos/internal/bitio"
	"bos/internal/codec"
	"bos/internal/floatconv"
)

var errCorrupt = errors.New("buff: corrupt stream")

const (
	modeScaled byte = 0
	modeRaw    byte = 1
)

// Codec is the bounded-float codec. It satisfies codec.FloatCodec.
type Codec struct{}

// Name implements codec.FloatCodec.
func (Codec) Name() string { return "BUFF" }

// Encode implements codec.FloatCodec.
func (Codec) Encode(dst []byte, vals []float64) []byte {
	w := bitio.NewWriter(len(vals)*4 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	p, ok := floatconv.DetectPrecision(vals)
	if !ok {
		w.WriteBits(uint64(modeRaw), 8)
		for _, v := range vals {
			w.WriteBits(math.Float64bits(v), 64)
		}
		return append(dst, w.Bytes()...)
	}
	scaled, err := floatconv.ToScaled(vals, p)
	if err != nil {
		// DetectPrecision succeeded, so this cannot happen; raw mode
		// keeps the encoder total either way.
		w.WriteBits(uint64(modeRaw), 8)
		for _, v := range vals {
			w.WriteBits(math.Float64bits(v), 64)
		}
		return append(dst, w.Bytes()...)
	}
	w.WriteBits(uint64(modeScaled), 8)
	w.WriteBits(uint64(p), 8)

	// Frame of reference plus frequency split at the 99th percentile.
	xmin := scaled[0]
	for _, s := range scaled {
		if s < xmin {
			xmin = s
		}
	}
	offsets := make([]uint64, len(scaled))
	var widths [65]int
	wmax := uint(0)
	for i, s := range scaled {
		u := uint64(s) - uint64(xmin)
		offsets[i] = u
		wd := bitio.WidthOf(u)
		widths[wd]++
		if wd > wmax {
			wmax = wd
		}
	}
	need := int(0.99 * float64(len(scaled)))
	b := wmax
	run := 0
	for wd := uint(0); wd <= wmax; wd++ {
		run += widths[wd]
		if run >= need {
			b = wd
			break
		}
	}
	w.WriteVarint(xmin)
	w.WriteBits(uint64(b), 8)
	w.WriteBits(uint64(wmax), 8)
	limit := uint64(1) << b
	if b >= 64 {
		limit = math.MaxUint64
	}
	// Outlier bitmap, then normals at b bits, then outliers at wmax bits.
	for _, u := range offsets {
		if b < 64 && u >= limit {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
	}
	for _, u := range offsets {
		if !(b < 64 && u >= limit) {
			w.WriteBits(u, b)
		}
	}
	for _, u := range offsets {
		if b < 64 && u >= limit {
			w.WriteBits(u, wmax)
		}
	}
	return append(dst, w.Bytes()...)
}

// Decode implements codec.FloatCodec.
func (Codec) Decode(src []byte) ([]float64, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > codec.MaxBlockLen {
		return nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	n := int(n64)
	if n == 0 {
		return []float64{}, nil
	}
	mode, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("%w: mode: %v", errCorrupt, err)
	}
	switch byte(mode) {
	case modeRaw:
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			b, err := r.ReadBits(64)
			if err != nil {
				return nil, fmt.Errorf("%w: value %d: %v", errCorrupt, i, err)
			}
			out = append(out, math.Float64frombits(b))
		}
		return out, nil
	case modeScaled:
		p64, err := r.ReadBits(8)
		if err != nil {
			return nil, fmt.Errorf("%w: precision: %v", errCorrupt, err)
		}
		p := int(p64)
		if p > floatconv.MaxPrecision {
			return nil, fmt.Errorf("%w: precision %d", errCorrupt, p)
		}
		xmin, err := r.ReadVarint()
		if err != nil {
			return nil, fmt.Errorf("%w: xmin: %v", errCorrupt, err)
		}
		hdr, err := r.ReadBits(16)
		if err != nil {
			return nil, fmt.Errorf("%w: widths: %v", errCorrupt, err)
		}
		b, wmax := uint(hdr>>8), uint(hdr&0xff)
		if b > 64 || wmax > 64 {
			return nil, fmt.Errorf("%w: widths %d/%d", errCorrupt, b, wmax)
		}
		isOut := make([]bool, n)
		for i := range isOut {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("%w: bitmap: %v", errCorrupt, err)
			}
			isOut[i] = bit == 1
		}
		scaled := make([]int64, n)
		for i := range scaled {
			if isOut[i] {
				continue
			}
			u, err := r.ReadBits(b)
			if err != nil {
				return nil, fmt.Errorf("%w: normal %d: %v", errCorrupt, i, err)
			}
			scaled[i] = int64(uint64(xmin) + u)
		}
		for i := range scaled {
			if !isOut[i] {
				continue
			}
			u, err := r.ReadBits(wmax)
			if err != nil {
				return nil, fmt.Errorf("%w: outlier %d: %v", errCorrupt, i, err)
			}
			scaled[i] = int64(uint64(xmin) + u)
		}
		return floatconv.FromScaled(scaled, p), nil
	default:
		return nil, fmt.Errorf("%w: mode %d", errCorrupt, mode)
	}
}
