package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"bos/internal/core"
	"bos/internal/stats"
	"bos/internal/ts2diff"
)

func TestAllDatasetsGenerate(t *testing.T) {
	ds := All()
	if len(ds) != 12 {
		t.Fatalf("have %d datasets, want 12", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Abbr] {
			t.Errorf("duplicate abbreviation %s", d.Abbr)
		}
		seen[d.Abbr] = true
		vals := d.Values(0)
		if len(vals) != d.N {
			t.Errorf("%s: generated %d values, want %d", d.Abbr, len(vals), d.N)
		}
		ints := d.Ints(1000)
		if len(ints) != 1000 {
			t.Errorf("%s: Ints(1000) returned %d", d.Abbr, len(ints))
		}
	}
}

func TestDeterministic(t *testing.T) {
	for _, d := range All() {
		a := d.Ints(500)
		b := d.Ints(500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: generation is not deterministic at %d", d.Abbr, i)
			}
		}
	}
}

func TestByAbbr(t *testing.T) {
	if d := ByAbbr("TC"); d == nil || d.Name != "TH-Climate" {
		t.Errorf("ByAbbr(TC) = %v", d)
	}
	if d := ByAbbr("nope"); d != nil {
		t.Errorf("ByAbbr(nope) = %v", d)
	}
}

func TestIntegerDatasetsHavePrecisionZero(t *testing.T) {
	for _, d := range All() {
		if !d.Float && d.Precision != 0 {
			t.Errorf("%s: integer dataset with precision %d", d.Abbr, d.Precision)
		}
		if d.Float && d.Precision == 0 {
			t.Errorf("%s: float dataset with precision 0", d.Abbr)
		}
	}
}

func TestShapesMatchFigure8And9(t *testing.T) {
	// The generators must reproduce the paper's qualitative shapes:
	// (a) deltas concentrate around zero (Figure 8: normal after TS2DIFF);
	// (b) BOS-V separates a nonzero but minority share of outliers
	//     (Figure 9: between a fraction of a percent and ~30%).
	for _, d := range All() {
		ints := d.Ints(20000)
		deltas := ts2diff.Deltas(ints)[1:]
		s := stats.Summarize(deltas)
		if s.Std == 0 {
			t.Errorf("%s: degenerate deltas", d.Abbr)
			continue
		}
		// Outlier share separated by BOS-V over 1024-blocks.
		nl, nu, n := 0, 0, 0
		for off := 0; off+1024 <= len(deltas); off += 1024 {
			p := core.PlanValue(deltas[off : off+1024])
			nl += p.NL
			nu += p.NU
			n += 1024
		}
		frac := float64(nl+nu) / float64(n)
		if frac <= 0 {
			t.Errorf("%s: BOS-V separated no outliers — dataset has no tail", d.Abbr)
		}
		if frac > 0.45 {
			t.Errorf("%s: BOS-V separated %.0f%% — outliers are not a minority", d.Abbr, frac*100)
		}
	}
}

func TestTHClimateIsSkewed(t *testing.T) {
	// TH-Climate must have its dense low-outlier cluster (the case where
	// BOS-M visibly trails BOS-V/B in Figure 10a).
	d := ByAbbr("TC")
	vals := d.Ints(20000)
	low := 0
	for _, v := range vals {
		if v <= 50 {
			low++
		}
	}
	frac := float64(low) / float64(len(vals))
	if frac < 0.08 || frac > 0.3 {
		t.Errorf("TC low-cluster fraction %.2f, want ~0.15", frac)
	}
}

func TestLoadFileAndOverrides(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "TC.txt")
	if err := os.WriteFile(path, []byte("# real data\n800\n801\n\n12\n799\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFile(path, "TH-Climate", "TC", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 4 {
		t.Fatalf("N = %d", d.N)
	}
	ints := d.Ints(6) // cycles past the end
	want := []int64{800, 801, 12, 799, 800, 801}
	for i := range want {
		if ints[i] != want[i] {
			t.Fatalf("ints = %v", ints)
		}
	}
	ds, err := AllWithOverrides(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Abbr == "TC" && d.N != 4 {
			t.Errorf("TC not overridden: N=%d", d.N)
		}
		if d.Abbr == "EE" && d.N == 4 {
			t.Errorf("EE wrongly overridden")
		}
	}
	if _, err := AllWithOverrides(""); err != nil {
		t.Errorf("empty dir: %v", err)
	}
}

func TestLoadFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadFile(filepath.Join(dir, "missing.txt"), "x", "X", false, 0); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("not-a-number\n"), 0o644)
	if _, err := LoadFile(bad, "x", "X", false, 0); err == nil {
		t.Error("bad value accepted")
	}
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("# only comments\n"), 0o644)
	if _, err := LoadFile(empty, "x", "X", false, 0); err == nil {
		t.Error("empty file accepted")
	}
}
