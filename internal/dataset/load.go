package dataset

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// LoadFile reads a real dataset from a text file (one decimal value per
// line; blank lines and '#' comments ignored) and wraps it as a Dataset so
// the experiment harness can run on actual data instead of the synthetic
// stand-ins. The declared precision must scale every value exactly.
func LoadFile(path, name, abbr string, isFloat bool, precision int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var vals []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: %w", path, line, err)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("dataset: %s is empty", path)
	}
	return &Dataset{
		Name: name, Abbr: abbr, Float: isFloat, Precision: precision,
		N: len(vals), loaded: vals,
	}, nil
}

// AllWithOverrides returns the twelve evaluation datasets, replacing each
// synthetic generator with real data when dir contains a file named
// <ABBR>.txt (e.g. TC.txt for TH-Climate). An empty dir returns All().
func AllWithOverrides(dir string) ([]*Dataset, error) {
	ds := All()
	if dir == "" {
		return ds, nil
	}
	for i, d := range ds {
		path := filepath.Join(dir, d.Abbr+".txt")
		if _, err := os.Stat(path); err != nil {
			continue // keep the synthetic stand-in
		}
		loaded, err := LoadFile(path, d.Name, d.Abbr, d.Float, d.Precision)
		if err != nil {
			return nil, err
		}
		ds[i] = loaded
	}
	return ds, nil
}
