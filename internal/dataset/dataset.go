// Package dataset provides seeded synthetic stand-ins for the twelve
// real-world evaluation datasets of Table III. The originals are either
// behind Kaggle/UCI downloads or proprietary industrial feeds, so each
// generator reproduces the *shape* that drives the paper's results instead:
// the post-TS2DIFF value distribution of Figure 8 (mostly normal, skewed for
// TH-Climate, heavy-tailed for the magnetic/stock data), the lower/upper
// outlier fractions of Figure 9, and the value magnitudes of the Figure 8
// x-axes. Sizes are scaled down so the full experiment grid runs on a laptop;
// see the substitution table in DESIGN.md.
package dataset

import (
	"math"
	"math/rand"

	"bos/internal/floatconv"
)

// Dataset is one synthetic evaluation series.
type Dataset struct {
	Name      string
	Abbr      string
	Float     bool // paper stores this dataset as floating point
	Precision int  // decimal precision for float datasets
	N         int  // default number of values

	seed   int64
	gen    func(rng *rand.Rand, n int) []float64
	loaded []float64 // real data loaded from disk, replacing the generator
}

// Values generates the canonical n-value series (the dataset default when
// n <= 0). Generation is deterministic: same dataset, same n, same output.
func (d *Dataset) Values(n int) []float64 {
	if n <= 0 {
		n = d.N
	}
	if d.loaded != nil {
		out := make([]float64, n)
		for i := range out {
			out[i] = d.loaded[i%len(d.loaded)]
		}
		return out
	}
	return d.gen(rand.New(rand.NewSource(d.seed)), n)
}

// Ints returns the series as scaled integers (the paper's 10^p scaling for
// float datasets; integer datasets scale by 10^0).
func (d *Dataset) Ints(n int) []int64 {
	vals := d.Values(n)
	scaled, err := floatconv.ToScaled(vals, d.Precision)
	if err != nil {
		// Generators emit rounded decimals by construction; a failure
		// here is a bug in the generator, not a data condition.
		panic("dataset " + d.Abbr + ": generator emitted non-decimal values: " + err.Error())
	}
	return scaled
}

// Floats returns the series as float64 values.
func (d *Dataset) Floats(n int) []float64 { return d.Values(n) }

// roundTo quantizes v to p decimal places.
func roundTo(v float64, p int) float64 {
	s := math.Pow(10, float64(p))
	return math.Round(v*s) / s
}

// clamp bounds v into [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// All returns the twelve datasets in the paper's order (Table III).
func All() []*Dataset {
	return []*Dataset{
		EPMEducation(), MetroTraffic(), VehicleCharge(), CSSensors(),
		THClimate(), TYTransport(), YZElectricity(), GWMagnetic(),
		USGSEarthquakes(), CyberVehicle(), TYFuel(), NiftyStocks(),
	}
}

// ByAbbr returns the dataset with the given abbreviation, or nil.
func ByAbbr(abbr string) *Dataset {
	for _, d := range All() {
		if d.Abbr == abbr {
			return d
		}
	}
	return nil
}

// EPMEducation (EE): integer interaction counters in [0, 150000]. A drifting
// random walk with bursts: near-normal deltas plus two-sided outliers.
func EPMEducation() *Dataset {
	return &Dataset{
		Name: "EPM-Education", Abbr: "EE", N: 40000, seed: 101,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 60000.0
			for i := range out {
				switch {
				case rng.Float64() < 0.015:
					v += rng.NormFloat64() * 20000 // session switch
				default:
					v += rng.NormFloat64() * 700
				}
				v = clamp(v, 0, 150000)
				out[i] = math.Round(v)
			}
			return out
		},
	}
}

// MetroTraffic (MT): hourly vehicle counts in [0, 10000] with a daily cycle,
// noise, and occasional incident spikes.
func MetroTraffic() *Dataset {
	return &Dataset{
		Name: "Metro-Traffic", Abbr: "MT", N: 20000, seed: 102,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				hour := i % 24
				var v float64
				if hour < 5 { // near-empty night hours: dense low cluster
					v = 80 + rng.NormFloat64()*30
				} else {
					base := 4200 + 1800*math.Sin(float64(hour-5)/19*math.Pi)
					v = base + rng.NormFloat64()*400
				}
				if rng.Float64() < 0.01 {
					v += rng.Float64() * 4000 // event surge
				}
				out[i] = math.Round(clamp(v, 0, 10000))
			}
			return out
		},
	}
}

// VehicleCharge (VC): charging power in [0, 3000]; ramps, plateaus and
// cutoffs. Small dataset (3396 points), as in Table III.
func VehicleCharge() *Dataset {
	return &Dataset{
		Name: "Vehicle-Charge", Abbr: "VC", N: 3396, seed: 103,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v, target := 0.0, 2200.0
			for i := range out {
				if rng.Float64() < 0.01 {
					target = 1800 + rng.Float64()*600 // new session setpoint
				}
				v += clamp(target-v, -60, 60) + rng.NormFloat64()*15
				v = clamp(v, 0, 3000)
				sample := v
				switch r := rng.Float64(); {
				case r < 0.006:
					sample = rng.Float64() * 50 // contactor dropout
				case r < 0.012:
					sample = 2950 + rng.Float64()*50 // inrush spike
				}
				out[i] = math.Round(sample)
			}
			return out
		},
	}
}

// CSSensors (CS): quantized sensor readings in [0, 6000]: a very narrow
// center band with frequent two-sided spikes. The narrow center is why BOS's
// two-sided separation roughly doubles the ratio here (Figure 10a).
func CSSensors() *Dataset {
	return &Dataset{
		Name: "CS-Sensors", Abbr: "CS", N: 30000, seed: 104,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				switch r := rng.Float64(); {
				case r < 0.025:
					out[i] = math.Round(rng.Float64() * 300) // sensor dropout low
				case r < 0.05:
					out[i] = math.Round(5000 + rng.Float64()*1000) // saturation high
				default:
					out[i] = math.Round(3000 + rng.NormFloat64()*6) // tight band
				}
			}
			return out
		},
	}
}

// THClimate (TC): temperature-and-humidity style values in [0, 1200]. The
// Figure 8(e) shape: a normal main mode plus a dense cluster of low outliers
// in a very small range, which defeats BOS-M's symmetric candidates.
func THClimate() *Dataset {
	return &Dataset{
		Name: "TH-Climate", Abbr: "TC", N: 30000, seed: 105,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				if rng.Float64() < 0.15 {
					out[i] = math.Round(rng.Float64() * 40) // stuck-at-low cluster
				} else {
					out[i] = math.Round(clamp(800+rng.NormFloat64()*35, 0, 1200))
				}
			}
			return out
		},
	}
}

// TYTransport (TT): vehicle speeds in [0, 120]; long plateaus, stops and
// accelerations, with high repeatability (the RLE-friendly dataset).
func TYTransport() *Dataset {
	return &Dataset{
		Name: "TY-Transport", Abbr: "TT", N: 40000, seed: 106,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 62.0
			hold := 0
			for i := range out {
				if hold == 0 {
					hold = 10 + rng.Intn(80)
					v = 52 + rng.Float64()*24 // new cruise speed
				}
				hold--
				sample := v + rng.NormFloat64()*0.8 // cruise jitter
				switch r := rng.Float64(); {
				case r < 0.02:
					sample = 0 // brief stop reading
				case r < 0.025:
					sample = 112 + rng.Float64()*8 // GPS burst high
				}
				out[i] = math.Round(clamp(sample, 0, 120))
			}
			return out
		},
	}
}

// YZElectricity (YE): float power readings in [0, 20000] at 2 decimals; a
// small series (10108 points) with load steps.
func YZElectricity() *Dataset {
	return &Dataset{
		Name: "YZ-Electricity", Abbr: "YE", Float: true, Precision: 2, N: 10108, seed: 107,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 8000.0
			for i := range out {
				if rng.Float64() < 0.008 {
					v = rng.Float64() * 20000 // load step
				}
				v = clamp(v+rng.NormFloat64()*30, 0, 20000)
				out[i] = roundTo(v, 2)
			}
			return out
		},
	}
}

// GWMagnetic (GM): geomagnetic field magnitudes in [0, 600000] at 3
// decimals; heavy-tailed disturbances over a quiet baseline.
func GWMagnetic() *Dataset {
	return &Dataset{
		Name: "GW-Magnetic", Abbr: "GM", Float: true, Precision: 3, N: 40000, seed: 108,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 48000.0
			for i := range out {
				step := rng.NormFloat64() * 8
				if rng.Float64() < 0.02 { // storm burst: heavy tail
					step = rng.NormFloat64() * 15000
				}
				v = clamp(v+step, 0, 600000)
				out[i] = roundTo(v, 3)
			}
			return out
		},
	}
}

// USGSEarthquakes (UE): event magnitudes/depths flattened to [0, 20000] at 2
// decimals; bursty with long quiet stretches.
func USGSEarthquakes() *Dataset {
	return &Dataset{
		Name: "USGS-Earthquakes", Abbr: "UE", Float: true, Precision: 2, N: 30000, seed: 109,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				v := 3000 + rng.NormFloat64()*80 // background microseisms
				switch r := rng.Float64(); {
				case r < 0.01:
					v = rng.Float64() * 100 // station dropout
				case r < 0.04:
					v = 4000 + rng.Float64()*rng.Float64()*16000 // quake burst
				}
				out[i] = roundTo(clamp(v, 0, 20000), 2)
			}
			return out
		},
	}
}

// CyberVehicle (CV): mixed CAN-bus style channels in [0, 200000] at 1
// decimal: interleaved slow-moving signals with mode switches.
func CyberVehicle() *Dataset {
	return &Dataset{
		Name: "Cyber-Vehicle", Abbr: "CV", Float: true, Precision: 1, N: 40000, seed: 110,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			levels := []float64{1200, 45000, 90000, 170000}
			v := levels[1]
			for i := range out {
				if rng.Float64() < 0.004 {
					v = levels[rng.Intn(len(levels))] // ECU mode switch
				}
				v = clamp(v+rng.NormFloat64()*40, 0, 200000)
				out[i] = roundTo(v, 1)
			}
			return out
		},
	}
}

// TYFuel (TF): fuel levels in [0, 150] at 1 decimal: slow drain with refuel
// jumps — near-normal deltas with rare large upper outliers.
func TYFuel() *Dataset {
	return &Dataset{
		Name: "TY-Fuel", Abbr: "TF", Float: true, Precision: 1, N: 40000, seed: 111,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 90.0
			for i := range out {
				v -= math.Abs(rng.NormFloat64()) * 0.02 // drain
				v += rng.NormFloat64() * 0.4            // slosh noise
				if v < 45 {
					v = 130 + rng.Float64()*20 // refuel jump
				}
				if rng.Float64() < 0.005 {
					v = rng.Float64() * 2 // sensor dropout to ~0
				}
				v = clamp(v, 0, 150)
				out[i] = roundTo(v, 1)
			}
			return out
		},
	}
}

// NiftyStocks (NS): stock prices in [0, 75000] at 2 decimals: multiplicative
// random walk with fat-tailed returns.
func NiftyStocks() *Dataset {
	return &Dataset{
		Name: "Nifty-Stocks", Abbr: "NS", Float: true, Precision: 2, N: 50000, seed: 112,
		gen: func(rng *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			v := 17500.0
			dip := 0 // ticks remaining in a flash-dip event
			base := v
			for i := range out {
				r := rng.NormFloat64() * 0.0004
				if rng.Float64() < 0.008 {
					r = rng.NormFloat64() * 0.02 // fat-tail move
				}
				v = clamp(v*(1+r), 1, 75000)
				if dip == 0 && rng.Float64() < 0.002 {
					dip = 5 + rng.Intn(10) // flash dip: low outliers
					base = v
					v *= 0.93
				} else if dip > 0 {
					if dip--; dip == 0 {
						v = base // recover
					}
				}
				out[i] = roundTo(v, 2)
			}
			return out
		},
	}
}
