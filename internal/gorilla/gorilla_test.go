package gorilla

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, vals []float64) []byte {
	t.Helper()
	var c Codec
	enc := c.Encode(nil, vals)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
	return enc
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{1.5},
		{1, 1, 1, 1},
		{1, 2, 3, 4, 5},
		{3.14159, 2.71828, 1.41421},
		{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)},
		{math.MaxFloat64, math.SmallestNonzeroFloat64, -math.MaxFloat64},
		{12.0, 12.0, 24.0, 15.0, 12.0},
	}
	for _, vals := range cases {
		roundTrip(t, vals)
	}
}

func TestNegativeZeroPreserved(t *testing.T) {
	var c Codec
	got, err := c.Decode(c.Encode(nil, []float64{math.Copysign(0, -1)}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[0]) != math.Float64bits(math.Copysign(0, -1)) {
		t.Error("negative zero not preserved")
	}
}

func TestRoundTripRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2000)
	v := 100.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	roundTrip(t, vals)
}

func TestConstantSeriesCompressesWell(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 42.5
	}
	enc := roundTrip(t, vals)
	// 1 bit per repeated value plus the 64-bit header.
	if len(enc) > 160 {
		t.Errorf("constant series encoded to %d bytes", len(enc))
	}
}

func TestSlowlyChangingCompresses(t *testing.T) {
	// Gorilla's sweet spot: values sharing exponent and high mantissa bits.
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 1000 + float64(i%7)
	}
	enc := roundTrip(t, vals)
	if len(enc) >= 8*len(vals)/2 {
		t.Errorf("slow series: %d bytes for %d values — no compression", len(enc), len(vals))
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var c Codec
	base := c.Encode(nil, []float64{1.5, 2.5, 3.75, 1e30, -2})
	for i := 0; i < 2000; i++ {
		cor := append([]byte(nil), base...)
		cor[rng.Intn(len(cor))] ^= byte(1 << rng.Intn(8))
		cor = cor[:rng.Intn(len(cor)+1)]
		c.Decode(cor)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var c Codec
	enc := c.Encode(nil, []float64{1.5, 2.5, 3.75})
	for cut := 0; cut < len(enc)-1; cut++ {
		if got, err := c.Decode(enc[:cut]); err == nil && len(got) == 3 {
			t.Fatalf("cut %d decoded fully", cut)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	v := 50.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	var c Codec
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.Encode(buf[:0], vals)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 1024)
	v := 50.0
	for i := range vals {
		v += rng.NormFloat64()
		vals[i] = v
	}
	var c Codec
	enc := c.Encode(nil, vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
