// Package gorilla implements the Gorilla time-series float compression of
// Pelkonen et al. (VLDB 2015): successive values are XORed and the non-zero
// XOR is stored as a (leading-zeros, meaningful-bits) window, reusing the
// previous window when it still fits.
package gorilla

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"bos/internal/bitio"
	"bos/internal/codec"
)

var errCorrupt = errors.New("gorilla: corrupt stream")

// Codec is the Gorilla XOR float codec. It satisfies codec.FloatCodec.
type Codec struct{}

// Name implements codec.FloatCodec.
func (Codec) Name() string { return "GORILLA" }

// Encode implements codec.FloatCodec.
func (Codec) Encode(dst []byte, vals []float64) []byte {
	w := bitio.NewWriter(len(vals)*8 + 16)
	w.WriteUvarint(uint64(len(vals)))
	if len(vals) == 0 {
		return append(dst, w.Bytes()...)
	}
	prev := math.Float64bits(vals[0])
	w.WriteBits(prev, 64)
	prevLead, prevMean := uint(0), uint(0)
	window := false
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31
		}
		trail := uint(bits.TrailingZeros64(xor))
		mean := 64 - lead - trail
		if window && lead >= prevLead && 64-prevLead-prevMean <= trail {
			// The previous window still covers the meaningful bits.
			w.WriteBit(0)
			w.WriteBits(xor>>(64-prevLead-prevMean), prevMean)
			continue
		}
		w.WriteBit(1)
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(mean-1), 6) // mean in [1,64] stored as mean-1
		w.WriteBits(xor>>trail, mean)
		prevLead, prevMean, window = lead, mean, true
	}
	return append(dst, w.Bytes()...)
}

// Decode implements codec.FloatCodec.
func (Codec) Decode(src []byte) ([]float64, error) {
	r := bitio.NewReader(src)
	n64, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", errCorrupt, err)
	}
	if n64 > codec.MaxBlockLen {
		return nil, fmt.Errorf("%w: implausible count %d", errCorrupt, n64)
	}
	n := int(n64)
	out := make([]float64, 0, n)
	if n == 0 {
		return out, nil
	}
	prev, err := r.ReadBits(64)
	if err != nil {
		return nil, fmt.Errorf("%w: first value: %v", errCorrupt, err)
	}
	out = append(out, math.Float64frombits(prev))
	var prevLead, prevMean uint
	for i := 1; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: control: %v", errCorrupt, err)
		}
		if b == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		b, err = r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: control: %v", errCorrupt, err)
		}
		if b == 1 {
			hdr, err := r.ReadBits(11)
			if err != nil {
				return nil, fmt.Errorf("%w: window: %v", errCorrupt, err)
			}
			prevLead = uint(hdr >> 6)
			prevMean = uint(hdr&0x3f) + 1
		}
		if prevLead+prevMean > 64 {
			return nil, fmt.Errorf("%w: window %d+%d", errCorrupt, prevLead, prevMean)
		}
		xor, err := r.ReadBits(prevMean)
		if err != nil {
			return nil, fmt.Errorf("%w: xor bits: %v", errCorrupt, err)
		}
		prev ^= xor << (64 - prevLead - prevMean)
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}
