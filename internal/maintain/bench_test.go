package maintain

import (
	"math/rand"
	"testing"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

// benchLoad fills an engine with nFiles flushed files of nSeries mixed
// distributions each — the workload a maintenance compaction actually sees.
func benchLoad(b *testing.B, e *engine.Engine, nFiles, nSeries, perChunk int) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	names := []string{"counter", "gauge", "noisy", "spiky"}
	for f := 0; f < nFiles; f++ {
		for s := 0; s < nSeries; s++ {
			pts := make([]tsfile.Point, perChunk)
			base := int64(f * perChunk)
			for i := range pts {
				t := base + int64(i)
				var v int64
				switch names[s%len(names)] {
				case "counter":
					v = t * 3
				case "gauge":
					v = rng.Int63n(128)
				case "noisy":
					v = int64(rng.NormFloat64() * 1000)
				default: // spiky: small body, rare huge outliers
					v = rng.Int63n(32)
					if rng.Intn(25) == 0 {
						v = rng.Int63n(1 << 42)
					}
				}
				pts[i] = tsfile.Point{T: t, V: v}
			}
			name := names[s%len(names)]
			if s >= len(names) {
				name = names[s%len(names)] + string(rune('a'+s/len(names)))
			}
			if err := e.InsertBatch(name, pts); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact measures a full maintenance compaction of N files × M
// series, with and without adaptive repacking. Checked-in baseline:
// BENCH_compact.json.
func BenchmarkCompact(b *testing.B) {
	const nFiles, nSeries, perChunk = 8, 8, 2000
	run := func(b *testing.B, adaptive bool) {
		var bytesAfter int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, err := engine.Open(engine.Options{Dir: b.TempDir(), DisableWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			benchLoad(b, e, nFiles, nSeries, perChunk)
			m := New(e, Config{Adaptive: adaptive})
			b.StartTimer()
			st, err := m.CompactAll()
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if st.Files != nFiles {
				b.Fatalf("compacted %d files, want %d", st.Files, nFiles)
			}
			bytesAfter = st.BytesAfter
			e.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(nFiles*nSeries*perChunk)/b.Elapsed().Seconds()/float64(b.N), "points/s")
		b.ReportMetric(float64(bytesAfter), "bytes_after")
	}
	b.Run("default", func(b *testing.B) { run(b, false) })
	b.Run("adaptive", func(b *testing.B) { run(b, true) })
}
