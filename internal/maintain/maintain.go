// Package maintain is the background storage-maintenance subsystem: it owns
// compaction policy and execution for an engine, separate from the engine's
// mechanism. A scheduler goroutine wakes at jittered intervals, picks a
// contiguous run of similar-sized data files (tiered, size-based — the LSM
// discipline), and drives the engine's snapshot/merge/commit cycle under a
// byte-budget rate limit so maintenance IO cannot starve foreground traffic.
//
// During each merge the subsystem repacks every series adaptively: it
// measures the candidate packing operators (internal/packers — the BOS
// family, plain bit-packing and the PFoR family) on the series' merged data
// and keeps the cheapest, exactly the storage-cost minimization the BOS cost
// model (paper Definition 5) performs per block, lifted to the per-series
// compaction decision. The winning layout is recorded per chunk in the file
// footer, so one merged file mixes operators freely.
package maintain

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"bos/internal/codec"
	"bos/internal/engine"
	"bos/internal/floatconv"
	"bos/internal/packers"
	"bos/internal/ts2diff"
)

// Config tunes the maintainer. The zero value gets sensible defaults from
// normalize.
type Config struct {
	// Interval is the base scheduler period (default 30s).
	Interval time.Duration
	// Jitter is the fraction of Interval randomized around each wake-up
	// (default 0.2, i.e. ±20%) so replicas don't compact in lockstep.
	Jitter float64
	// MinFiles is the smallest run worth merging (default 2).
	MinFiles int
	// MaxFiles caps the files merged per compaction (default 8).
	MaxFiles int
	// TierRatio bounds the size spread within one run: the largest file may
	// be at most TierRatio times the smallest (default 4). Keeping merges
	// within a size tier bounds write amplification.
	TierRatio float64
	// BytesPerSec is the maintenance rate limit: a token bucket of input
	// bytes refilled at this rate gates each run (0 = unlimited).
	BytesPerSec int64
	// Adaptive turns on per-series packer selection during merges.
	Adaptive bool
	// Packers lists the candidate operator names for adaptive repacking
	// (default: the full registry).
	Packers []string
	// BlockSize is the packing block size used when measuring candidates;
	// it should match the engine's file options (default 1024).
	BlockSize int
}

func (c Config) normalize() Config {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.MinFiles < 2 {
		c.MinFiles = 2
	}
	if c.MaxFiles <= 0 {
		c.MaxFiles = 8
	}
	if c.MaxFiles < c.MinFiles {
		c.MaxFiles = c.MinFiles
	}
	if c.TierRatio < 1 {
		c.TierRatio = 4
	}
	if len(c.Packers) == 0 {
		c.Packers = packers.Names()
	}
	if c.BlockSize <= 0 {
		c.BlockSize = codec.DefaultBlockSize
	}
	return c
}

// Stats is a snapshot of the maintainer's lifetime counters.
type Stats struct {
	Ticks       int64  `json:"ticks"`        // scheduler wake-ups
	Compactions int64  `json:"compactions"`  // committed maintenance runs
	Files       int64  `json:"files"`        // input files merged away
	BytesBefore int64  `json:"bytes_before"` // encoded bytes entering merges
	BytesAfter  int64  `json:"bytes_after"`  // encoded bytes after repacking
	RateLimited int64  `json:"rate_limited"` // runs deferred by the byte budget
	LastError   string `json:"last_error,omitempty"`
	// SeriesPackers records the most recent adaptive packer choice per
	// series ("" never appears; series on the default packer are absent).
	SeriesPackers map[string]string `json:"series_packers,omitempty"`
}

// Maintainer runs background maintenance for one engine.
type Maintainer struct {
	eng *engine.Engine
	cfg Config

	mu         sync.Mutex
	stats      Stats
	budget     float64 // token bucket, in input bytes
	lastRefill time.Time
	rng        *rand.Rand
	started    bool

	stop chan struct{}
	done chan struct{}
}

// New builds a Maintainer over eng. Call Start to launch the scheduler;
// RunOnce works without it.
func New(eng *engine.Engine, cfg Config) *Maintainer {
	return &Maintainer{
		eng:        eng,
		cfg:        cfg.normalize(),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		lastRefill: time.Now(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the scheduler goroutine. It may be called once.
func (m *Maintainer) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.loop()
}

// Stop shuts the scheduler down and waits for any in-flight run to finish.
// Safe to call before Start and more than once.
func (m *Maintainer) Stop() {
	m.mu.Lock()
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

func (m *Maintainer) loop() {
	defer close(m.done)
	timer := time.NewTimer(m.nextInterval())
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		}
		m.tick()
		timer.Reset(m.nextInterval())
	}
}

// nextInterval jitters the base period by ±Jitter.
func (m *Maintainer) nextInterval() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	spread := 1 + m.cfg.Jitter*(2*m.rng.Float64()-1)
	return time.Duration(float64(m.cfg.Interval) * spread)
}

// tick is one scheduler wake-up: refill the byte budget, consult the policy,
// and run a compaction if one is due and affordable.
func (m *Maintainer) tick() {
	m.mu.Lock()
	m.stats.Ticks++
	now := time.Now()
	if m.cfg.BytesPerSec > 0 {
		m.budget += float64(m.cfg.BytesPerSec) * now.Sub(m.lastRefill).Seconds()
		// Cap the bucket so long idle stretches don't bank an unbounded
		// burst (one minute of allowance).
		if lim := float64(m.cfg.BytesPerSec) * 60; m.budget > lim {
			m.budget = lim
		}
	}
	m.lastRefill = now
	m.mu.Unlock()

	_, _, err := m.runOnce(true)
	if err != nil && !errors.Is(err, engine.ErrCompacting) && !errors.Is(err, engine.ErrClosed) {
		m.mu.Lock()
		m.stats.LastError = err.Error()
		m.mu.Unlock()
	}
}

// RunOnce applies the policy and, if a run is due, executes one compaction
// immediately, bypassing the scheduler and the rate limit. It reports whether
// a compaction ran. This is the admin-endpoint and test entry point.
func (m *Maintainer) RunOnce() (engine.CompactStats, bool, error) {
	return m.runOnce(false)
}

func (m *Maintainer) runOnce(rateLimited bool) (engine.CompactStats, bool, error) {
	run, runBytes := pickRun(m.eng.FileInfos(), m.cfg)
	if len(run) == 0 {
		return engine.CompactStats{}, false, nil
	}
	if rateLimited && m.cfg.BytesPerSec > 0 {
		m.mu.Lock()
		if float64(runBytes) > m.budget {
			m.stats.RateLimited++
			m.mu.Unlock()
			return engine.CompactStats{}, false, nil
		}
		m.budget -= float64(runBytes)
		m.mu.Unlock()
	}
	c, err := m.eng.SnapshotCompaction(run)
	if err != nil {
		return engine.CompactStats{}, false, err
	}
	if err := c.Merge(m.chooser()); err != nil {
		c.Abort()
		return engine.CompactStats{}, false, err
	}
	if err := c.Commit(); err != nil {
		return engine.CompactStats{}, false, err
	}
	st := c.Stats()
	m.record(st)
	return st, true, nil
}

// record folds one committed compaction into the lifetime counters.
func (m *Maintainer) record(st engine.CompactStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Compactions++
	m.stats.Files += int64(st.Files)
	m.stats.BytesBefore += st.BytesBefore
	m.stats.BytesAfter += st.BytesAfter
	if len(st.SeriesPackers) > 0 {
		if m.stats.SeriesPackers == nil {
			m.stats.SeriesPackers = map[string]string{}
		}
		for s, p := range st.SeriesPackers {
			m.stats.SeriesPackers[s] = p
		}
	}
}

// CompactAll merges every data file in one full compaction, using the
// adaptive chooser when configured. It bypasses policy and rate limit — this
// is the explicit admin action behind the server's /compact endpoint.
func (m *Maintainer) CompactAll() (engine.CompactStats, error) {
	st, err := m.eng.CompactWith(m.chooser())
	if err != nil {
		return st, err
	}
	if st.Files > 0 {
		m.record(st)
	}
	return st, nil
}

// Stats returns a copy of the counters.
func (m *Maintainer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.stats
	if m.stats.SeriesPackers != nil {
		out.SeriesPackers = make(map[string]string, len(m.stats.SeriesPackers))
		for s, p := range m.stats.SeriesPackers {
			out.SeriesPackers[s] = p
		}
	}
	return out
}

// pickRun is the tiered size-based policy: among all contiguous windows of
// [MinFiles, MaxFiles] files whose size spread stays within TierRatio, pick
// the one with the most files, breaking ties toward fewer total bytes
// (cheapest merge first — small fresh files accumulate fastest and benefit
// most). Contiguity in file-list order is required by the engine so the
// merged output can splice in without reordering freshness.
func pickRun(infos []engine.FileInfo, cfg Config) (seqs []int, totalBytes int64) {
	bestLen, bestBytes := 0, int64(math.MaxInt64)
	for i := 0; i < len(infos); i++ {
		minB, maxB := int64(math.MaxInt64), int64(0)
		var sum int64
		for j := i; j < len(infos) && j-i < cfg.MaxFiles; j++ {
			b := infos[j].Bytes
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
			sum += b
			if minB > 0 && float64(maxB) > cfg.TierRatio*float64(minB) {
				break // window left the size tier; longer extensions only widen it
			}
			n := j - i + 1
			if n < cfg.MinFiles {
				continue
			}
			if n > bestLen || (n == bestLen && sum < bestBytes) {
				bestLen, bestBytes = n, sum
				seqs = seqs[:0]
				for k := i; k <= j; k++ {
					seqs = append(seqs, infos[k].Seq)
				}
				totalBytes = sum
			}
		}
	}
	return seqs, totalBytes
}

// chooser returns the adaptive per-series packer selector, or nil when
// adaptive repacking is off. The returned closure must stay safe for
// concurrent calls: compaction fans series across its encode workers, so
// several series may be measured at once (packers.ByName returns a fresh
// instance per call, and the closure itself only reads config).
func (m *Maintainer) chooser() engine.PackerChooser {
	if !m.cfg.Adaptive {
		return nil
	}
	cands := m.cfg.Packers
	blockSize := m.cfg.BlockSize
	return func(sd engine.SeriesData) string {
		times, vals, ok := seriesColumns(sd)
		if !ok {
			return ""
		}
		best, bestSize := "", math.MaxInt
		for _, name := range cands {
			p, err := packers.ByName(name)
			if err != nil {
				continue
			}
			if size := measure(p, blockSize, times, vals); size < bestSize {
				best, bestSize = name, size
			}
		}
		return best
	}
}

// seriesColumns converts one series' merged data into the integer columns the
// file format actually packs, mirroring tsfile's encoding: float values go
// through decimal scaling when lossless, raw IEEE bits otherwise.
func seriesColumns(sd engine.SeriesData) (times, vals []int64, ok bool) {
	switch {
	case len(sd.Points) > 0:
		times = make([]int64, len(sd.Points))
		vals = make([]int64, len(sd.Points))
		for i, p := range sd.Points {
			times[i], vals[i] = p.T, p.V
		}
	case len(sd.Floats) > 0:
		fvals := make([]float64, len(sd.Floats))
		times = make([]int64, len(sd.Floats))
		for i, p := range sd.Floats {
			times[i], fvals[i] = p.T, p.V
		}
		if p, detected := floatconv.DetectPrecision(fvals); detected {
			if scaled, err := floatconv.ToScaled(fvals, p); err == nil {
				vals = scaled
			}
		}
		if vals == nil {
			vals = make([]int64, len(fvals))
			for i, v := range fvals {
				vals[i] = int64(math.Float64bits(v))
			}
		}
	default:
		return nil, nil, false
	}
	return times, vals, true
}

// measure returns the encoded size, in bytes, of one series' two columns
// under a candidate packer — the same TS2DIFF-coded time column and blockwise
// value column tsfile writes, so the comparison reflects real storage cost.
func measure(p codec.Packer, blockSize int, times, vals []int64) int {
	tc := ts2diff.New(p, blockSize)
	vc := codec.NewBlockwise(p, blockSize)
	return len(tc.Encode(nil, times)) + len(vc.Encode(nil, vals))
}

// String renders a short human-readable summary (used by cmd logging).
func (s Stats) String() string {
	return fmt.Sprintf("ticks=%d compactions=%d files=%d bytes %d->%d rate_limited=%d",
		s.Ticks, s.Compactions, s.Files, s.BytesBefore, s.BytesAfter, s.RateLimited)
}
