package maintain

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"bos/internal/engine"
	"bos/internal/tsfile"
)

func openEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// flushFile flushes one file of n points for series.
func flushFile(t *testing.T, e *engine.Engine, series string, base int64, n int) {
	t.Helper()
	pts := make([]tsfile.Point, n)
	for i := range pts {
		pts[i] = tsfile.Point{T: base + int64(i), V: int64(i % 100)}
	}
	if err := e.InsertBatch(series, pts); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPickRunTiers(t *testing.T) {
	cfg := Config{}.normalize()
	mk := func(sizes ...int64) []engine.FileInfo {
		out := make([]engine.FileInfo, len(sizes))
		for i, b := range sizes {
			out[i] = engine.FileInfo{Seq: i, Bytes: b}
		}
		return out
	}
	cases := []struct {
		name  string
		infos []engine.FileInfo
		want  []int
	}{
		{"empty", nil, nil},
		{"single file", mk(100), nil},
		// A big old file must not drag into a merge of small fresh ones.
		{"tier break", mk(1_000_000, 100, 110, 90), []int{1, 2, 3}},
		{"all one tier", mk(100, 120, 100, 80), []int{0, 1, 2, 3}},
		// Two equal-length runs: the cheaper (fewer bytes) wins.
		{"cheapest tie-break", mk(1000, 1100, 50_000, 10, 12), []int{3, 4}},
		// Ratio boundary: 4x exactly is still one tier.
		{"ratio boundary", mk(100, 400), []int{0, 1}},
		{"ratio exceeded", mk(100, 401), nil},
	}
	for _, tc := range cases {
		got, _ := pickRun(tc.infos, cfg)
		if len(got) != len(tc.want) {
			t.Errorf("%s: pickRun = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("%s: pickRun = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

func TestPickRunMaxFiles(t *testing.T) {
	cfg := Config{MaxFiles: 3}.normalize()
	infos := make([]engine.FileInfo, 6)
	for i := range infos {
		infos[i] = engine.FileInfo{Seq: i, Bytes: 100}
	}
	got, _ := pickRun(infos, cfg)
	if len(got) != 3 {
		t.Fatalf("pickRun = %v, want a 3-file window", got)
	}
}

func TestRunOnceCompacts(t *testing.T) {
	e := openEngine(t)
	for i := 0; i < 4; i++ {
		flushFile(t, e, "s", int64(i*1000), 500)
	}
	m := New(e, Config{})
	st, ran, err := m.RunOnce()
	if err != nil || !ran {
		t.Fatalf("RunOnce: ran=%v err=%v", ran, err)
	}
	if st.Files != 4 {
		t.Fatalf("merged %d files, want 4", st.Files)
	}
	if got := e.Stats().Files; got != 1 {
		t.Fatalf("files after maintenance: %d", got)
	}
	ms := m.Stats()
	if ms.Compactions != 1 || ms.Files != 4 || ms.BytesBefore == 0 {
		t.Fatalf("maintainer stats: %+v", ms)
	}
	// Nothing left to do: a second run is a no-op, not an error.
	if _, ran, err := m.RunOnce(); err != nil || ran {
		t.Fatalf("idle RunOnce: ran=%v err=%v", ran, err)
	}
	pts, err := e.Query("s", 0, 1<<40)
	if err != nil || len(pts) != 2000 {
		t.Fatalf("data after maintenance: %d points err %v", len(pts), err)
	}
}

// TestAdaptiveRepackingBeatsSinglePacker is the acceptance check for adaptive
// repacking: on mixed-distribution data — some series packing-friendly, some
// outlier-heavy — letting each series pick its cheapest operator must not
// lose to any single fixed default, and the per-series choices must be
// visible in the maintenance stats.
func TestAdaptiveRepackingBeatsSinglePacker(t *testing.T) {
	load := func(e *engine.Engine) {
		rng := rand.New(rand.NewSource(42)) // same data into both engines
		for file := 0; file < 3; file++ {
			// Tight uniform values: plain bit-packing is ideal.
			tight := make([]tsfile.Point, 400)
			// Gaussian body with heavy outliers: BOS/PFoR territory.
			outliers := make([]tsfile.Point, 400)
			for i := range tight {
				tt := int64(file*1000 + i)
				tight[i] = tsfile.Point{T: tt, V: rng.Int63n(16)}
				v := int64(rng.NormFloat64() * 50)
				if rng.Intn(20) == 0 {
					v = rng.Int63n(1 << 40) // 5% wild outliers
				}
				outliers[i] = tsfile.Point{T: tt, V: v}
			}
			if err := e.InsertBatch("tight", tight); err != nil {
				t.Fatal(err)
			}
			if err := e.InsertBatch("outliers", outliers); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	baseline := openEngine(t)
	load(baseline)
	baseStats, err := baseline.CompactWith(nil)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := openEngine(t)
	load(adaptive)
	m := New(adaptive, Config{Adaptive: true})
	adStats, ran, err := m.RunOnce()
	if err != nil || !ran {
		t.Fatalf("adaptive RunOnce: ran=%v err=%v", ran, err)
	}
	if adStats.BytesAfter > baseStats.BytesAfter {
		t.Fatalf("adaptive repacking lost to single packer: %d > %d bytes",
			adStats.BytesAfter, baseStats.BytesAfter)
	}
	ms := m.Stats()
	if len(ms.SeriesPackers) == 0 {
		t.Fatal("no per-series packer choices recorded in maintenance stats")
	}
	for _, s := range []string{"tight", "outliers"} {
		if ms.SeriesPackers[s] == "" {
			t.Errorf("no packer recorded for %s: %v", s, ms.SeriesPackers)
		}
	}
	t.Logf("bytes: baseline=%d adaptive=%d choices=%v",
		baseStats.BytesAfter, adStats.BytesAfter, ms.SeriesPackers)

	// The repacked data must read back identically.
	for _, series := range []string{"tight", "outliers"} {
		b, err := baseline.Query(series, 0, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		a, err := adaptive.Query(series, 0, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d points vs baseline %d", series, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: point %d: %v vs %v", series, i, a[i], b[i])
			}
		}
	}
}

func TestRateLimitDefersRuns(t *testing.T) {
	e := openEngine(t)
	for i := 0; i < 3; i++ {
		flushFile(t, e, "s", int64(i*1000), 500)
	}
	// A 1 byte/s budget can never afford a multi-KB run.
	m := New(e, Config{BytesPerSec: 1})
	m.tick()
	if st := m.Stats(); st.Compactions != 0 || st.RateLimited != 1 || st.Ticks != 1 {
		t.Fatalf("stats under starvation budget: %+v", st)
	}
	if e.Stats().Files != 3 {
		t.Fatal("rate-limited tick still compacted")
	}
	// A generous budget lets the same tick through.
	m2 := New(e, Config{BytesPerSec: 1 << 30})
	m2.mu.Lock()
	m2.lastRefill = time.Now().Add(-time.Second)
	m2.mu.Unlock()
	m2.tick()
	if st := m2.Stats(); st.Compactions != 1 {
		t.Fatalf("funded tick did not compact: %+v", st)
	}
}

func TestSchedulerRunsAndStops(t *testing.T) {
	e := openEngine(t)
	for i := 0; i < 4; i++ {
		flushFile(t, e, "s", int64(i*1000), 200)
	}
	m := New(e, Config{Interval: 5 * time.Millisecond})
	m.Start()
	deadline := time.After(5 * time.Second)
	for m.Stats().Compactions == 0 {
		select {
		case <-deadline:
			t.Fatal("scheduler never compacted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.Stop()
	m.Stop() // idempotent
	after := m.Stats()
	time.Sleep(30 * time.Millisecond)
	if got := m.Stats(); got.Ticks != after.Ticks {
		t.Fatal("scheduler still ticking after Stop")
	}
	// The engine is untouched by shutdown and still serves.
	if _, err := e.Query("s", 0, 1<<40); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceUnderLoad is the -race stress test: a fast-ticking
// maintainer compacts while writers and readers hammer the engine. Nothing
// may race, block, or lose data.
func TestMaintenanceUnderLoad(t *testing.T) {
	e := openEngine(t)
	m := New(e, Config{Interval: time.Millisecond, Adaptive: true, MinFiles: 2})
	m.Start()
	defer m.Stop()

	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := []string{"a", "b"}[w%2]
			for i := 0; i < perWriter; i++ {
				tt := int64(w*perWriter + i)
				if err := e.Insert(series, tt, tt); err != nil {
					errs <- err
					return
				}
				if i%25 == 0 {
					if err := e.Flush(); err != nil {
						errs <- err
						return
					}
				}
				if i%10 == 0 {
					if _, err := e.Query(series, 0, 1<<40); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m.Stop()
	// Every write must be readable; timestamps are disjoint per writer pair.
	for _, series := range []string{"a", "b"} {
		pts, err := e.Query(series, 0, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 2*perWriter {
			t.Fatalf("%s: %d points, want %d", series, len(pts), 2*perWriter)
		}
	}
	if m.Stats().Compactions == 0 {
		t.Log("note: no compaction committed during the stress window")
	}
}
