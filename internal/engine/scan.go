package engine

import (
	"errors"
	"math"
	"sync"

	"bos/internal/tsfile"
)

// Streaming reads for the serving layer: QueryEach delivers a range scan
// through a callback with memory bounded by the scan page size, not the
// result size. Internally the merge runs in pages of scanPageSize points;
// each page holds the engine read lock only while it is being collected, so
// a slow consumer (a client on a congested connection) cannot stall inserts
// or flushes for the duration of the whole scan.
//
// The file iterators behind a scan are stateful: they persist across pages
// in a scanState, so page N+1 resumes decoding exactly where page N stopped
// instead of re-opening and re-seeking every file. The state is stamped with
// the engine generation at build time; flush, compaction commit, DeleteRange
// and Close bump the generation, and a page that observes a mismatch drops
// the cursors and rebuilds from the current cursor position. That keeps the
// paginated-snapshot guarantee of the stateless implementation: a write that
// lands between pages is observed by later pages only if its timestamp is
// past the cursor.

// scanPageSize is the number of points collected per locked merge pass.
const scanPageSize = 4096

// QueryEach streams the points of a series in [minT, maxT] in time order,
// merging files and memtable with newest-wins semantics and honoring
// tombstones, exactly like Query. fn returning an error aborts the scan and
// returns that error.
func (e *Engine) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	cursor := minT
	sc := &scanState{}
	for {
		pts, more, err := e.scanPage(series, sc, cursor, maxT, scanPageSize)
		if err != nil {
			return err
		}
		for _, p := range pts {
			if err := fn(p); err != nil {
				return err
			}
		}
		if !more || len(pts) == 0 {
			return nil
		}
		last := pts[len(pts)-1].T
		if last == math.MaxInt64 {
			return nil
		}
		cursor = last + 1
	}
}

// fileScan pulls points from one data file's chunk iterator, skipping
// tombstone-masked points.
type fileScan struct {
	it  *tsfile.Iterator
	seq int
}

// scanState carries one QueryEach call's file cursors across pages. heads
// hold each source's next candidate point; emitted-through positions are
// implicit in the iterators. valid is false until the first build and after
// any error; gen is compared against the engine generation each page.
type scanState struct {
	gen   uint64
	srcs  []*fileScan
	heads []tsfile.Point
	alive []bool
	valid bool
}

// advanceScan pulls the next unmasked point from a file source.
func advanceScan(s *fileScan, masked func(seq int, t int64) bool) (tsfile.Point, bool, error) {
	for s.it.Next() {
		p := s.it.Point()
		if masked(s.seq, p.T) {
			continue
		}
		return p, true, nil
	}
	return tsfile.Point{}, false, s.it.Err()
}

// rebuildScan (re)creates the per-file cursors starting at minT and positions
// each on its first unmasked point. When the scan spans two or more files the
// initial positioning runs in parallel — each source's first chunk decodes on
// its own goroutine — because that is where a cold scan pays its largest
// serial decode cost. Caller holds structMu (read suffices: the file list and
// generation are stable while held).
func (e *Engine) rebuildScan(sc *scanState, series string, minT, maxT int64, masked func(seq int, t int64) bool) error {
	sc.srcs = sc.srcs[:0]
	sc.valid = false
	for _, df := range e.files {
		it, err := df.reader.Iter(series, minT, maxT)
		if err != nil {
			if errors.Is(err, tsfile.ErrNoSeries) {
				continue
			}
			return err
		}
		sc.srcs = append(sc.srcs, &fileScan{it: it, seq: df.seq})
	}
	sc.heads = make([]tsfile.Point, len(sc.srcs))
	sc.alive = make([]bool, len(sc.srcs))
	if len(sc.srcs) >= 2 {
		errs := make([]error, len(sc.srcs))
		var wg sync.WaitGroup
		for i, s := range sc.srcs {
			wg.Add(1)
			go func(i int, s *fileScan) {
				defer wg.Done()
				sc.heads[i], sc.alive[i], errs[i] = advanceScan(s, masked)
			}(i, s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	} else {
		for i, s := range sc.srcs {
			p, ok, err := advanceScan(s, masked)
			if err != nil {
				return err
			}
			sc.heads[i], sc.alive[i] = p, ok
		}
	}
	sc.gen = e.gen
	sc.valid = true
	return nil
}

// scanPage collects up to limit merged points starting at minT. more reports
// whether the merge was cut short by the limit (points past the last one may
// remain). The memtable is re-snapshotted every page (it is mutable between
// pages); the file cursors persist in sc unless the engine generation moved.
func (e *Engine) scanPage(series string, sc *scanState, minT, maxT int64, limit int) ([]tsfile.Point, bool, error) {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	if e.closed.Load() {
		return nil, false, ErrClosed
	}
	tombs := e.tombstonesFor(series)
	masked := func(seq int, t int64) bool {
		for _, ts := range tombs {
			if ts.covers(seq, t) {
				return true
			}
		}
		return false
	}
	if !sc.valid || sc.gen != e.gen {
		if err := e.rebuildScan(sc, series, minT, maxT, masked); err != nil {
			return nil, false, err
		}
	}
	srcs, heads, alive := sc.srcs, sc.heads, sc.alive
	mem := e.memSnapshot(series, minT, maxT)
	memPos := 0
	var out []tsfile.Point
	for {
		// Find the minimum timestamp across live sources; on ties the
		// freshest source (memtable, then the latest file) wins.
		best := -1 // index into srcs; len(srcs) stands for the memtable
		var bestT int64
		for i := range srcs {
			if alive[i] && (best == -1 || heads[i].T <= bestT) {
				// <= : later files are fresher, so they take over ties.
				best, bestT = i, heads[i].T
			}
		}
		if memPos < len(mem) && (best == -1 || mem[memPos].T <= bestT) {
			best, bestT = len(srcs), mem[memPos].T
		}
		if best == -1 {
			return out, false, nil
		}
		var winner tsfile.Point
		if best == len(srcs) {
			winner = mem[memPos]
			memPos++
		} else {
			winner = heads[best]
		}
		// Advance every file source sitting on the emitted timestamp, so
		// overwritten duplicates are consumed without being emitted.
		for i, s := range srcs {
			if alive[i] && heads[i].T == bestT {
				p, ok, err := advanceScan(s, masked)
				if err != nil {
					sc.valid = false
					return nil, false, err
				}
				heads[i], alive[i] = p, ok
			}
		}
		if memPos < len(mem) && mem[memPos].T == bestT {
			memPos++
		}
		out = append(out, winner)
		if len(out) >= limit {
			return out, true, nil
		}
	}
}
