package engine

import (
	"errors"
	"math"

	"bos/internal/tsfile"
)

// Streaming reads for the serving layer: QueryEach delivers a range scan
// through a callback with memory bounded by the scan page size, not the
// result size. Internally the merge runs in pages of scanPageSize points;
// each page holds the engine read lock only while it is being collected, so
// a slow consumer (a client on a congested connection) cannot stall inserts
// or flushes for the duration of the whole scan. Each page is a consistent
// snapshot; a write that lands between pages is observed by later pages only
// if its timestamp is past the cursor — the same guarantee a paginated HTTP
// client would get from repeated Query calls.

// scanPageSize is the number of points collected per locked merge pass.
const scanPageSize = 4096

// QueryEach streams the points of a series in [minT, maxT] in time order,
// merging files and memtable with newest-wins semantics and honoring
// tombstones, exactly like Query. fn returning an error aborts the scan and
// returns that error.
func (e *Engine) QueryEach(series string, minT, maxT int64, fn func(tsfile.Point) error) error {
	cursor := minT
	for {
		pts, more, err := e.scanPage(series, cursor, maxT, scanPageSize)
		if err != nil {
			return err
		}
		for _, p := range pts {
			if err := fn(p); err != nil {
				return err
			}
		}
		if !more || len(pts) == 0 {
			return nil
		}
		last := pts[len(pts)-1].T
		if last == math.MaxInt64 {
			return nil
		}
		cursor = last + 1
	}
}

// fileScan pulls points from one data file's chunk iterator, skipping
// tombstone-masked points.
type fileScan struct {
	it  *tsfile.Iterator
	seq int
}

// scanPage collects up to limit merged points starting at minT. more reports
// whether the merge was cut short by the limit (points past the last one may
// remain).
func (e *Engine) scanPage(series string, minT, maxT int64, limit int) ([]tsfile.Point, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, false, ErrClosed
	}
	tombs := e.tombstonesFor(series)
	masked := func(seq int, t int64) bool {
		for _, ts := range tombs {
			if ts.covers(seq, t) {
				return true
			}
		}
		return false
	}
	// Sources in ascending freshness: files by position, memtable last.
	var srcs []*fileScan
	for _, df := range e.files {
		it, err := df.reader.Iter(series, minT, maxT)
		if err != nil {
			if errors.Is(err, tsfile.ErrNoSeries) {
				continue
			}
			return nil, false, err
		}
		srcs = append(srcs, &fileScan{it: it, seq: df.seq})
	}
	// advance pulls the next unmasked point from a file source.
	advance := func(s *fileScan) (tsfile.Point, bool, error) {
		for s.it.Next() {
			p := s.it.Point()
			if masked(s.seq, p.T) {
				continue
			}
			return p, true, nil
		}
		return tsfile.Point{}, false, s.it.Err()
	}
	heads := make([]tsfile.Point, len(srcs))
	alive := make([]bool, len(srcs))
	for i, s := range srcs {
		p, ok, err := advance(s)
		if err != nil {
			return nil, false, err
		}
		heads[i], alive[i] = p, ok
	}
	mem := dedupeSort(e.mem[series])
	memPos := 0
	for memPos < len(mem) && mem[memPos].T < minT {
		memPos++
	}
	var out []tsfile.Point
	for {
		// Find the minimum timestamp across live sources; on ties the
		// freshest source (memtable, then the latest file) wins.
		best := -1 // index into srcs; len(srcs) stands for the memtable
		var bestT int64
		for i := range srcs {
			if alive[i] && (best == -1 || heads[i].T <= bestT) {
				// <= : later files are fresher, so they take over ties.
				best, bestT = i, heads[i].T
			}
		}
		memLive := memPos < len(mem) && mem[memPos].T <= maxT
		if memLive && (best == -1 || mem[memPos].T <= bestT) {
			best, bestT = len(srcs), mem[memPos].T
		}
		if best == -1 {
			return out, false, nil
		}
		var winner tsfile.Point
		if best == len(srcs) {
			winner = mem[memPos]
			memPos++
		} else {
			winner = heads[best]
		}
		// Advance every file source sitting on the emitted timestamp, so
		// overwritten duplicates are consumed without being emitted.
		for i, s := range srcs {
			if alive[i] && heads[i].T == bestT {
				p, ok, err := advance(s)
				if err != nil {
					return nil, false, err
				}
				heads[i], alive[i] = p, ok
			}
		}
		if memPos < len(mem) && mem[memPos].T == bestT {
			memPos++
		}
		out = append(out, winner)
		if len(out) >= limit {
			return out, true, nil
		}
	}
}
