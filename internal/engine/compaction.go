package engine

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"bos/internal/tsfile"
)

// Compaction is split into three phases so the merge — the expensive part —
// runs without the engine lock and concurrent inserts/queries proceed:
//
//  1. SnapshotCompaction (brief write lock): pin a contiguous run of data
//     files and the tombstones known so far.
//  2. Compaction.Merge (no lock): stream the run through a newest-wins merge
//     into a .tmp file, applying snapshot tombstones and, per series, an
//     optional adaptive packer choice (internal/maintain supplies one built
//     on the BOS cost model / size measurement).
//  3. Compaction.Commit (brief write lock): conflict-check, atomically rename
//     the .tmp over the run's newest file and splice the file list.
//
// The merged output reuses the sequence number (and path) of the newest input
// file. That keeps two invariants that a fresh sequence would break for
// partial runs: file-name sort order equals freshness order after a restart,
// and a crash or failed open after the rename can never make a later flush
// reuse the output's sequence and clobber it (the old Compact bug — the
// output sequence already exists, and nextSeq stays strictly above it).
//
// Tombstones created while a merge is in flight are not applied to it; they
// keep masking the output because the output's sequence predates them. A
// tombstone is dropped at commit only when no remaining file has a smaller
// sequence, i.e. when it can no longer mask anything.

// ErrCompacting reports a second compaction while one is in flight;
// compactions are serialized.
var ErrCompacting = errors.New("engine: compaction already in flight")

// ErrCompactConflict reports that the engine's file list changed incompatibly
// between snapshot and commit (e.g. the engine was closed and reopened).
var ErrCompactConflict = errors.New("engine: compaction conflict: snapshot files no longer present")

// testOpenDataFileErr, when set (tests only), injects an open failure for a
// given path so error paths after the atomic rename can be exercised.
var testOpenDataFileErr func(path string) error

// FileInfo describes one data file for compaction policy decisions.
type FileInfo struct {
	Seq    int
	Bytes  int64
	Series int
}

// FileInfos lists the data files in freshness order (ascending sequence).
func (e *Engine) FileInfos() []FileInfo {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	out := make([]FileInfo, 0, len(e.files))
	for _, df := range e.files {
		info := FileInfo{Seq: df.seq, Series: len(df.reader.Series())}
		if st, err := df.f.Stat(); err == nil {
			info.Bytes = st.Size()
		}
		out = append(out, info)
	}
	return out
}

// SeriesData is the merged content of one series handed to a PackerChooser.
// Exactly one of Points / Floats is non-nil.
type SeriesData struct {
	Name   string
	Points []tsfile.Point
	Floats []tsfile.FloatPoint
}

// PackerChooser picks the packing operator for one compacted series. It
// returns a packer name from the shared registry, or "" to keep the file's
// default packer. It is called outside the engine lock, and must be safe
// for concurrent calls: the merge fans series across encode workers.
type PackerChooser func(SeriesData) string

// CompactStats summarizes one committed compaction.
type CompactStats struct {
	Files       int   // input files merged
	Series      int   // series written
	Points      int   // points written
	BytesBefore int64 // encoded chunk payload bytes across the inputs
	BytesAfter  int64 // encoded chunk payload bytes in the output
	// SeriesPackers maps each series to the packer chosen by the
	// PackerChooser; series left on the file default are absent.
	SeriesPackers map[string]string
}

// Compaction is one in-flight snapshot/merge/commit cycle.
type Compaction struct {
	e       *Engine
	files   []*dataFile // the pinned contiguous run, freshness order
	tombs   []tombstone // tombstones at snapshot time (applied during merge)
	outSeq  int
	outPath string
	tmpPath string
	stats   CompactStats
	merged  bool
	done    bool
}

// SnapshotCompaction pins the data files with the given sequence numbers for
// merging. The files must form a contiguous run of the engine's file list so
// the merged output can take the run's place without reordering freshness.
// Only one compaction may be in flight per engine.
func (e *Engine) SnapshotCompaction(seqs []int) (*Compaction, error) {
	if len(seqs) == 0 {
		return nil, errors.New("engine: empty compaction run")
	}
	e.structMu.Lock()
	defer e.structMu.Unlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.compacting {
		return nil, ErrCompacting
	}
	pos := make([]int, 0, len(seqs))
	bySeq := map[int]int{}
	for i, df := range e.files {
		bySeq[df.seq] = i
	}
	for _, seq := range seqs {
		i, ok := bySeq[seq]
		if !ok {
			return nil, fmt.Errorf("engine: compaction run: no data file with seq %d", seq)
		}
		pos = append(pos, i)
	}
	sort.Ints(pos)
	for k := 1; k < len(pos); k++ {
		if pos[k] == pos[k-1] {
			return nil, fmt.Errorf("engine: compaction run: duplicate seq")
		}
		if pos[k] != pos[k-1]+1 {
			return nil, fmt.Errorf("engine: compaction run: files %d and %d are not adjacent", e.files[pos[k-1]].seq, e.files[pos[k]].seq)
		}
	}
	run := e.files[pos[0] : pos[len(pos)-1]+1]
	last := run[len(run)-1]
	c := &Compaction{
		e:       e,
		files:   append([]*dataFile(nil), run...),
		tombs:   append([]tombstone(nil), e.tombs...),
		outSeq:  last.seq,
		outPath: last.path,
		tmpPath: last.path + ".compact.tmp",
	}
	e.compacting = true
	return c, nil
}

// masked mirrors Engine.masked over the snapshot's tombstones.
func (c *Compaction) masked(series string, seq int, t int64) bool {
	for _, ts := range c.tombs {
		if ts.series == series && ts.covers(seq, t) {
			return true
		}
	}
	return false
}

// seriesIsFloat reports whether any snapshot file stores float chunks for the
// series.
func (c *Compaction) seriesIsFloat(name string) bool {
	for _, df := range c.files {
		chunks, err := df.reader.Chunks(name)
		if err != nil {
			continue
		}
		for _, m := range chunks {
			if m.Kind != 0 {
				return true
			}
		}
	}
	return false
}

// Merge builds the merged output as a temporary file. It runs entirely
// outside the engine lock: the snapshot readers are immutable and their file
// handles support concurrent reads. Series are merged and encoded in
// parallel across Options.EncodeWorkers, then written in sorted-name order,
// so the output bytes are identical to a serial merge. choose, when non-nil,
// picks the packer for each series (adaptive repacking); nil keeps the
// engine's default.
func (c *Compaction) Merge(choose PackerChooser) error {
	if c.merged || c.done {
		return errors.New("engine: compaction already merged or finished")
	}
	f, err := os.Create(c.tmpPath)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(c.tmpPath)
		return err
	}
	names := map[string]bool{}
	for _, df := range c.files {
		for _, s := range df.reader.Series() {
			names[s] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for s := range names {
		sorted = append(sorted, s)
	}
	sort.Strings(sorted)
	c.stats = CompactStats{Files: len(c.files), SeriesPackers: map[string]string{}}
	type mergedSeries struct {
		chunk      tsfile.EncodedChunk
		packerName string
		count      int
		err        error
	}
	results := make([]mergedSeries, len(sorted))
	fanOut(c.e.opt.encodeWorkers(), len(sorted), func(i int) {
		name := sorted[i]
		r := &results[i]
		if c.seriesIsFloat(name) {
			pts, err := c.collectFloatSeries(name)
			if err != nil || len(pts) == 0 {
				r.err = err
				return
			}
			if choose != nil {
				r.packerName = choose(SeriesData{Name: name, Floats: pts})
			}
			r.count = len(pts)
			r.chunk, r.err = tsfile.EncodeFloatSeries(c.e.opt.File, pts, r.packerName)
		} else {
			pts, err := c.collectIntSeries(name)
			if err != nil || len(pts) == 0 {
				r.err = err
				return
			}
			if choose != nil {
				r.packerName = choose(SeriesData{Name: name, Points: pts})
			}
			r.count = len(pts)
			r.chunk, r.err = tsfile.EncodeSeries(c.e.opt.File, pts, r.packerName)
		}
		if r.err != nil {
			r.err = fmt.Errorf("engine: compact %s: %w", name, r.err)
		}
	})
	w := tsfile.NewWriter(f, c.e.opt.File)
	for i, name := range sorted {
		for _, df := range c.files {
			chunks, err := df.reader.Chunks(name)
			if err != nil {
				continue
			}
			for _, m := range chunks {
				c.stats.BytesBefore += int64(m.EncodedBytes)
			}
		}
		r := &results[i]
		if r.err != nil {
			return fail(r.err)
		}
		if r.count == 0 {
			continue // fully overwritten or tombstoned series vanish
		}
		if err := w.AppendEncoded(name, r.chunk); err != nil {
			return fail(fmt.Errorf("engine: %w", err))
		}
		c.stats.BytesAfter += int64(r.chunk.Meta.EncodedBytes)
		c.recordSeries(name, r.packerName, r.count)
	}
	if err := w.Close(); err != nil {
		return fail(fmt.Errorf("engine: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("engine: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(c.tmpPath)
		return fmt.Errorf("engine: %w", err)
	}
	c.merged = true
	return nil
}

// collectIntSeries folds one integer series across the snapshot files,
// newest file winning timestamp collisions, tombstoned points dropped.
func (c *Compaction) collectIntSeries(name string) ([]tsfile.Point, error) {
	const full = int64(^uint64(0) >> 1)
	merged := map[int64]int64{}
	var order []int64
	for _, df := range c.files {
		pts, err := df.reader.Query(name, -full-1, full, -full-1, full)
		if err != nil && !errors.Is(err, tsfile.ErrNoSeries) {
			return nil, err
		}
		for _, p := range pts {
			if c.masked(name, df.seq, p.T) {
				continue // compaction reclaims deleted ranges
			}
			if _, seen := merged[p.T]; !seen {
				order = append(order, p.T)
			}
			merged[p.T] = p.V
		}
	}
	if len(order) == 0 {
		return nil, nil
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	pts := make([]tsfile.Point, 0, len(order))
	for _, t := range order {
		pts = append(pts, tsfile.Point{T: t, V: merged[t]})
	}
	return pts, nil
}

// collectFloatSeries is collectIntSeries for float series.
func (c *Compaction) collectFloatSeries(name string) ([]tsfile.FloatPoint, error) {
	const full = int64(^uint64(0) >> 1)
	merged := map[int64]float64{}
	var order []int64
	for _, df := range c.files {
		pts, err := df.reader.QueryFloats(name, -full-1, full, math.Inf(-1), math.Inf(1))
		if err != nil && !errors.Is(err, tsfile.ErrNoSeries) {
			return nil, err
		}
		for _, p := range pts {
			if c.masked(name, df.seq, p.T) {
				continue
			}
			if _, seen := merged[p.T]; !seen {
				order = append(order, p.T)
			}
			merged[p.T] = p.V
		}
	}
	if len(order) == 0 {
		return nil, nil
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	pts := make([]tsfile.FloatPoint, 0, len(order))
	for _, t := range order {
		pts = append(pts, tsfile.FloatPoint{T: t, V: merged[t]})
	}
	return pts, nil
}

func (c *Compaction) recordSeries(name, packerName string, points int) {
	c.stats.Series++
	c.stats.Points += points
	if packerName != "" {
		c.stats.SeriesPackers[name] = packerName
	}
}

// Stats returns the merge summary (valid after Merge).
func (c *Compaction) Stats() CompactStats { return c.stats }

// Commit atomically installs the merged file: under the engine lock it
// verifies the snapshot files are still live (conflict check against
// anything that changed the file list mid-build), renames the temporary file
// over the run's newest input, splices the file list, garbage-collects dead
// tombstones, and deletes the replaced inputs.
func (c *Compaction) Commit() error {
	if !c.merged {
		return errors.New("engine: commit before merge")
	}
	e := c.e
	e.structMu.Lock()
	defer e.structMu.Unlock()
	defer func() {
		e.compacting = false
		c.done = true
	}()
	if e.closed.Load() {
		os.Remove(c.tmpPath)
		return ErrClosed
	}
	// Conflict check: the snapshot run must still sit, intact and adjacent,
	// in the live file list. Flushes only append and compactions are
	// serialized, so a mismatch means something external (close, reopen)
	// invalidated the snapshot.
	start := -1
	for i, df := range e.files {
		if df == c.files[0] {
			start = i
			break
		}
	}
	if start < 0 || start+len(c.files) > len(e.files) {
		os.Remove(c.tmpPath)
		return ErrCompactConflict
	}
	for k, df := range c.files {
		if e.files[start+k] != df {
			os.Remove(c.tmpPath)
			return ErrCompactConflict
		}
	}
	if err := os.Rename(c.tmpPath, c.outPath); err != nil {
		os.Remove(c.tmpPath)
		return fmt.Errorf("engine: %w", err)
	}
	df, err := e.openDataFile(c.outPath)
	if err != nil {
		// The rename already happened, but the live readers still hold the
		// old inodes and nextSeq is above outSeq, so the engine stays
		// consistent: queries keep serving the pre-compaction files and no
		// later flush can clobber the merged file. The next compaction or
		// reopen converges on the merged state.
		return err
	}
	out := make([]*dataFile, 0, len(e.files)-len(c.files)+1)
	out = append(out, e.files[:start]...)
	out = append(out, df)
	out = append(out, e.files[start+len(c.files):]...)
	e.files = out
	for _, old := range c.files {
		// The replaced readers die with the splice; drop their cached chunks
		// so the cache never serves decoded columns for a dead file ID. The
		// output file got a fresh ID from openDataFile, so its entries can
		// never collide with a replaced input's.
		e.cache.InvalidateFile(old.id)
		old.f.Close()
		if old.path != c.outPath {
			os.Remove(old.path)
		}
	}
	e.gen++ // in-flight scan cursors must rebuild over the spliced file list
	// Tombstone GC: a tombstone only masks files with a smaller sequence;
	// once none remain it can never mask anything again (later flushes get
	// larger sequences) and its physical effect is already in the output.
	minSeq := math.MaxInt
	for _, df := range e.files {
		if df.seq < minSeq {
			minSeq = df.seq
		}
	}
	kept := e.tombs[:0]
	for _, ts := range e.tombs {
		if minSeq < ts.seq {
			kept = append(kept, ts)
		}
	}
	e.tombs = kept
	e.compactions++
	e.compactedFiles += int64(c.stats.Files)
	e.compactedBytesIn += c.stats.BytesBefore
	e.compactedBytesOut += c.stats.BytesAfter
	return nil
}

// Abort releases the snapshot without committing and removes the temporary
// file. Safe to call after a failed Merge or instead of Commit.
func (c *Compaction) Abort() {
	e := c.e
	e.structMu.Lock()
	if !c.done {
		e.compacting = false
		c.done = true
	}
	e.structMu.Unlock()
	os.Remove(c.tmpPath)
}

// Compact merges every data file (and the memtable, via a flush) into a
// single file, dropping overwritten and deleted points. Unlike the
// pre-maintenance implementation it no longer holds the engine lock for the
// whole merge: inserts and queries proceed while it runs, and only the brief
// snapshot and commit phases block.
func (e *Engine) Compact() error {
	_, err := e.CompactWith(nil)
	return err
}

// CompactWith is Compact with an adaptive per-series packer choice (nil
// keeps the engine default) and a stats report. It returns a zero
// CompactStats without error when there is nothing to merge.
func (e *Engine) CompactWith(choose PackerChooser) (CompactStats, error) {
	if err := e.Flush(); err != nil {
		return CompactStats{}, err
	}
	var seqs []int
	e.structMu.RLock()
	for _, df := range e.files {
		seqs = append(seqs, df.seq)
	}
	e.structMu.RUnlock()
	if len(seqs) <= 1 {
		return CompactStats{}, nil
	}
	c, err := e.SnapshotCompaction(seqs)
	if err != nil {
		return CompactStats{}, err
	}
	if err := c.Merge(choose); err != nil {
		c.Abort()
		return CompactStats{}, err
	}
	if err := c.Commit(); err != nil {
		return CompactStats{}, err
	}
	return c.Stats(), nil
}
