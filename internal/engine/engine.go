// Package engine implements a small IoT time-series storage engine in the
// mold of Apache IoTDB, the system the paper deploys BOS into: inserts
// accumulate in a per-series memtable, flush into immutable TsFile-style
// block files (internal/tsfile) with BOS as the storage operator, and
// queries merge the memtable with every on-disk file, newest data winning on
// timestamp collisions. Compaction folds all files into one.
//
// The engine exists to exercise BOS end-to-end in its production role — the
// write path (plan + pack on flush), the read path (footer-pruned chunk
// scans, decoded-chunk cache, stateful scan cursors) and the background path
// (compaction re-encodes everything) all run through the packing operator
// under test.
//
// Locking. The engine has no single global lock. State is split four ways:
//
//   - flushMu serializes the flush pipeline (flush.go): one snapshot in
//     flight at a time, and threshold-crossing writers bail out on TryLock
//     instead of queueing.
//   - structMu guards the structural state: the data-file list, sequence
//     numbers, tombstones, the scan generation counter and the maintenance
//     counters. Queries take it shared; snapshot, commit, compaction commit
//     and range deletes take it exclusive, briefly.
//   - The memtable is sharded into stripeCount stripes, each with its own
//     RWMutex; a series maps to one stripe by hash. Writers on different
//     stripes do not contend with each other or with queries on other
//     stripes. The snapshot swap (and close) locks every stripe, which
//     makes it a global barrier for buffered writes — but only for the
//     O(stripes) pointer swaps, never for the encoding.
//   - walMu guards the shared write-ahead log's structure. The log bytes
//     themselves are written by one group-commit leader at a time
//     (groupcommit.go) with walMu released and the walBusy token held, so
//     no lock is held across WAL I/O; walCond (paired with walMu) signals
//     commit completion and walBusy hand-offs.
//
// The lock hierarchy is formal and machine-checked: cmd/bosvet's lockorder
// analyzer (configured in internal/analysis/config.go, which mirrors this
// table — the two must change together) verifies every function in this
// package against it.
//
//	level 0  Engine.flushMu    the flush pipeline (one snapshot in flight)
//	level 1  Engine.structMu   structural state (file list, tombstones,
//	                           sequence numbers, scan generation)
//	level 2  memStripe.mu      memtable stripes; the all-stripe barrier is
//	                           Engine.lockStripes / Engine.unlockStripes,
//	                           which lock in ascending stripe index —
//	                           never take two stripes directly
//	level 3  Engine.walMu      the shared write-ahead log's structure
//
// Locks are acquired in strictly increasing level order. A path may skip
// levels (e.g. take walMu without structMu) but must never acquire a lower
// or equal level while holding a higher one, and must release before any
// return on paths where the acquisition is not deferred.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bos/internal/chunkcache"
	"bos/internal/pushdown"
	"bos/internal/tsfile"
)

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// FlushThreshold is the total buffered point count that triggers an
	// automatic flush (default 16384).
	FlushThreshold int
	// File configures the underlying block files (packer, block size).
	File tsfile.Options
	// DisableWAL turns off the write-ahead log; inserts buffered in the
	// memtable are then lost on a crash before flush.
	DisableWAL bool
	// SyncWAL fsyncs the log on every insert batch (durable against
	// machine crashes, not just process crashes). Off by default.
	SyncWAL bool
	// CacheBytes bounds the decoded-chunk cache (0 = the 64 MiB default,
	// negative = cache disabled). The cache keeps bit-unpacked chunk columns
	// resident so repeated scans and paged reads decode each chunk once.
	CacheBytes int64
	// EncodeWorkers bounds the goroutines that encode chunks during flush
	// and compaction (0 = GOMAXPROCS, 1 = serial). Output bytes are
	// identical at every setting.
	EncodeWorkers int
}

func (o Options) flushThreshold() int {
	if o.FlushThreshold <= 0 {
		return 16384
	}
	return o.FlushThreshold
}

func (o Options) cacheBytes() int64 {
	if o.CacheBytes == 0 {
		return 64 << 20
	}
	if o.CacheBytes < 0 {
		return 0
	}
	return o.CacheBytes
}

func (o Options) encodeWorkers() int {
	if o.EncodeWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.EncodeWorkers
}

// stripeCount is the number of memtable lock stripes. Power of two so the
// series hash maps with a mask; 16 stripes keep contention negligible well
// past the writer counts the serving layer runs.
const stripeCount = 16

// memStripe is one lock-striped shard of the memtable.
type memStripe struct {
	mu   sync.RWMutex
	mem  map[string][]tsfile.Point      // integer series buffer
	memF map[string][]tsfile.FloatPoint // float series buffer
	// flush/flushF hold the snapshot being encoded while a flush is in
	// flight (nil otherwise). They are immutable for the flight's duration:
	// queries merge them under mu.RLock, and the encoder reads them with no
	// lock at all.
	flush  map[string][]tsfile.Point
	flushF map[string][]tsfile.FloatPoint
}

// stripeFor hashes a series name onto its stripe (FNV-1a).
func stripeFor(series string) int {
	h := uint32(2166136261)
	for i := 0; i < len(series); i++ {
		h ^= uint32(series[i])
		h *= 16777619
	}
	return int(h & (stripeCount - 1))
}

// Engine is a single-node, single-process storage engine. All methods are
// safe for concurrent use.
type Engine struct {
	opt     Options
	stripes [stripeCount]memStripe
	memPts  atomic.Int64 // total buffered points across stripes, both kinds
	closed  atomic.Bool  // set under structMu + all stripe locks

	flushMu sync.Mutex // serializes the flush pipeline (flush.go)

	structMu   sync.RWMutex
	files      []*dataFile // ascending sequence = ascending freshness
	nextSeq    int
	nextFileID uint64      // chunk-cache identity; never reused, unlike seq
	gen        uint64      // bumped on any file-list or tombstone change
	tombs      []tombstone // pending range deletes, applied at query/compaction
	flushSeq   int         // sequence of the most recent snapshot

	walMu    sync.Mutex
	walCond  *sync.Cond // paired with walMu (group commit, groupcommit.go)
	walGroup *walGroup  // the forming group (walMu)
	walBusy  bool       // a leader is writing with walMu released (walMu)
	log      *wal       // nil when Options.DisableWAL

	// Lifetime group-commit counters, reported in Stats.
	walGroups  atomic.Int64 // committed groups (= fsyncs under SyncWAL)
	walRecords atomic.Int64 // records across all groups

	cache *chunkcache.Cache // nil when disabled

	// Lifetime pushdown tier counters (internal/pushdown), reported in Stats:
	// how chunks routed through the compressed-domain executor were answered.
	ptiers pushdown.Tiers

	compacting bool // one snapshot/merge/commit cycle at a time
	// Lifetime maintenance counters, reported in Stats.
	compactions       int64
	compactedFiles    int64
	compactedBytesIn  int64
	compactedBytesOut int64
}

func (e *Engine) stripe(series string) *memStripe {
	return &e.stripes[stripeFor(series)]
}

// lockStripes acquires every stripe write lock in index order (the global
// memtable barrier used by flush and close).
func (e *Engine) lockStripes() {
	for i := range e.stripes {
		e.stripes[i].mu.Lock()
	}
}

func (e *Engine) unlockStripes() {
	for i := range e.stripes {
		e.stripes[i].mu.Unlock()
	}
}

// dataFile is one immutable on-disk block file.
type dataFile struct {
	path   string
	seq    int
	id     uint64 // chunk-cache identity
	f      *os.File
	reader *tsfile.Reader
}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("engine: closed")

// Open opens (or creates) an engine over dir, loading any existing data
// files.
func Open(opt Options) (*Engine, error) {
	if opt.Dir == "" {
		return nil, errors.New("engine: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{opt: opt, cache: chunkcache.New(opt.cacheBytes())}
	e.walCond = sync.NewCond(&e.walMu)
	for i := range e.stripes {
		e.stripes[i].mem = map[string][]tsfile.Point{}
		e.stripes[i].memF = map[string][]tsfile.FloatPoint{}
	}
	// Startup hygiene: a crash between writing a temporary file (flush or
	// compaction merge) and its atomic rename leaves an orphaned *.tmp that
	// no reader references — delete them before loading the real files.
	if orphans, err := filepath.Glob(filepath.Join(opt.Dir, "data-*.tsf*.tmp")); err == nil {
		for _, tmp := range orphans {
			os.Remove(tmp)
		}
	}
	entries, err := filepath.Glob(filepath.Join(opt.Dir, "data-*.tsf"))
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sort.Strings(entries)
	for _, path := range entries {
		df, err := e.openDataFile(path)
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		e.files = append(e.files, df)
		if df.seq >= e.nextSeq {
			e.nextSeq = df.seq + 1
		}
	}
	if !opt.DisableWAL {
		// A sealed segment can outlive a failed flush (rollback keeps it on
		// disk, covering the restored points). Its sequence is burned:
		// rotating onto the same name again would clobber live records, so
		// nextSeq must move past every surviving segment too.
		segs, err := filepath.Glob(filepath.Join(opt.Dir, "wal-*.log"))
		if err != nil {
			e.closeFiles()
			return nil, fmt.Errorf("engine: %w", err)
		}
		for _, s := range segs {
			var seq int
			if _, err := fmt.Sscanf(filepath.Base(s), "wal-%06d.log", &seq); err == nil && seq >= e.nextSeq {
				e.nextSeq = seq + 1
			}
		}
		// Recover inserts and deletes that never made it into data files.
		err = replayWAL(opt.Dir,
			func(series string, pts []tsfile.Point) {
				st := e.stripe(series)
				st.mem[series] = append(st.mem[series], pts...)
				e.memPts.Add(int64(len(pts)))
			},
			func(ts tombstone) {
				e.tombs = append(e.tombs, ts)
			},
			func(series string, pts []tsfile.FloatPoint) {
				st := e.stripe(series)
				st.memF[series] = append(st.memF[series], pts...)
				e.memPts.Add(int64(len(pts)))
			})
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		if e.log, err = openWAL(opt.Dir); err != nil {
			e.closeFiles()
			return nil, err
		}
	}
	return e, nil
}

// openDataFile opens one data file and wires it into the chunk cache under a
// fresh identity. Called with structMu held exclusively (or before the
// engine is shared).
func (e *Engine) openDataFile(path string) (*dataFile, error) {
	if testOpenDataFileErr != nil {
		if err := testOpenDataFileErr(path); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: %w", err)
	}
	r, err := tsfile.OpenReader(f, info.Size(), e.opt.File)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: %s: %w", path, err)
	}
	var seq int
	if _, err := fmt.Sscanf(filepath.Base(path), "data-%06d.tsf", &seq); err != nil {
		// Unconventionally named files still open; they sort before any
		// numbered file (seq 0) instead of being silently misordered.
		seq = 0
	}
	e.nextFileID++
	df := &dataFile{path: path, seq: seq, id: e.nextFileID, f: f, reader: r}
	if e.cache != nil {
		r.SetCache(e.cache, df.id)
	}
	return df, nil
}

// Insert adds one point. Out-of-order and duplicate timestamps are accepted;
// the last write for a timestamp wins.
func (e *Engine) Insert(series string, t, v int64) error {
	return e.InsertBatch(series, []tsfile.Point{{T: t, V: v}})
}

// InsertBatch adds many points to one series. Writers on series that hash to
// different stripes proceed in parallel; the WAL record is framed into the
// forming commit group under the stripe lock (memory only) and made durable
// by the group's leader after every lock is released, so a slow WAL sync
// never blocks writers on other stripes. If the WAL write fails the points
// remain buffered (and flushable) but the error is returned, so callers know
// durability was not achieved.
func (e *Engine) InsertBatch(series string, pts []tsfile.Point) error {
	if len(pts) == 0 {
		return nil
	}
	st := e.stripe(series)
	st.mu.Lock()
	if e.closed.Load() {
		st.mu.Unlock()
		return ErrClosed
	}
	if len(st.memF[series]) > 0 || len(st.flushF[series]) > 0 {
		st.mu.Unlock()
		return fmt.Errorf("%w: %q has float points", ErrSeriesKind, series)
	}
	var g *walGroup
	var leader bool
	if e.log != nil {
		g, leader = e.walEnqueue(func(dst []byte) []byte {
			return appendInsertPayload(dst, series, pts)
		})
	}
	st.mem[series] = append(st.mem[series], pts...)
	total := e.memPts.Add(int64(len(pts)))
	st.mu.Unlock()
	if g != nil {
		if err := e.walAwait(g, leader); err != nil {
			return err
		}
	}
	if total >= int64(e.opt.flushThreshold()) {
		return e.maybeFlush()
	}
	return nil
}

// dedupeSort sorts points by time, keeping the last inserted value for each
// timestamp (stable sort preserves insertion order within equal times).
func dedupeSort(pts []tsfile.Point) []tsfile.Point {
	sorted := append([]tsfile.Point(nil), pts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	out := sorted[:0]
	for _, p := range sorted {
		if len(out) > 0 && out[len(out)-1].T == p.T {
			out[len(out)-1] = p // last write wins
			continue
		}
		out = append(out, p)
	}
	return out
}

// memSnapshot returns a deduped, sorted copy of the series' buffered integer
// points within [minT, maxT], taken under the stripe read lock. While a
// flush is in flight, the snapshot being encoded is merged in ahead of the
// live buffer (it is older, so the live buffer wins timestamp collisions),
// masked by any tombstone that arrived after the snapshot was taken —
// DeleteRange cannot prune the in-flight maps. Callers hold structMu shared
// (masked reads e.tombs and e.flushSeq).
func (e *Engine) memSnapshot(series string, minT, maxT int64) []tsfile.Point {
	st := e.stripe(series)
	st.mu.RLock()
	defer st.mu.RUnlock()
	buf := st.mem[series]
	flush := st.flush[series]
	filtered := make([]tsfile.Point, 0, len(buf)+len(flush))
	for _, p := range flush {
		if p.T >= minT && p.T <= maxT && !e.masked(series, e.flushSeq, p.T) {
			filtered = append(filtered, p)
		}
	}
	for _, p := range buf {
		if p.T >= minT && p.T <= maxT {
			filtered = append(filtered, p)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool { return filtered[i].T < filtered[j].T })
	out := filtered[:0]
	for _, p := range filtered {
		if len(out) > 0 && out[len(out)-1].T == p.T {
			out[len(out)-1] = p
			continue
		}
		out = append(out, p)
	}
	return out
}

// Query returns the points of a series in [minT, maxT], in time order,
// merging every data file and the memtable with newest-wins semantics.
func (e *Engine) Query(series string, minT, maxT int64) ([]tsfile.Point, error) {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	return e.queryLocked(series, minT, maxT)
}

// queryLocked is Query's merge body; the caller holds structMu (read
// suffices) and has checked closed. The pushdown planner routes non-exclusive
// time intervals through it so the merged-scan semantics stay in one place.
func (e *Engine) queryLocked(series string, minT, maxT int64) ([]tsfile.Point, error) {
	// Collect sources oldest to newest; later sources override equal
	// timestamps by overwriting in the merge map pass.
	merged := map[int64]int64{}
	var order []int64
	apply := func(pts []tsfile.Point) {
		for _, p := range pts {
			if p.T < minT || p.T > maxT {
				continue
			}
			if _, seen := merged[p.T]; !seen {
				order = append(order, p.T)
			}
			merged[p.T] = p.V
		}
	}
	const full = int64(^uint64(0) >> 1)
	for _, df := range e.files {
		pts, err := df.reader.Query(series, minT, maxT, -full-1, full)
		if err != nil && !errors.Is(err, tsfile.ErrNoSeries) {
			return nil, err
		}
		if len(e.tombs) > 0 {
			kept := pts[:0]
			for _, p := range pts {
				if !e.masked(series, df.seq, p.T) {
					kept = append(kept, p)
				}
			}
			pts = kept
		}
		apply(pts)
	}
	apply(e.memSnapshot(series, minT, maxT))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]tsfile.Point, 0, len(order))
	for _, t := range order {
		out = append(out, tsfile.Point{T: t, V: merged[t]})
	}
	return out, nil
}

// Series lists every known series name, sorted.
func (e *Engine) Series() []string {
	e.structMu.RLock()
	set := map[string]bool{}
	for _, df := range e.files {
		for _, s := range df.reader.Series() {
			set[s] = true
		}
	}
	e.structMu.RUnlock()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for _, m := range []map[string][]tsfile.Point{st.mem, st.flush} {
			for s, pts := range m {
				if len(pts) > 0 {
					set[s] = true
				}
			}
		}
		for _, m := range []map[string][]tsfile.FloatPoint{st.memF, st.flushF} {
			for s, pts := range m {
				if len(pts) > 0 {
					set[s] = true
				}
			}
		}
		st.mu.RUnlock()
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the engine's footprint.
type Stats struct {
	Files       int
	MemPoints   int
	DiskPoints  int
	DiskBytes   int64
	SeriesCount int
	// Lifetime compaction counters since Open.
	Compactions       int64
	CompactedFiles    int64
	CompactedBytesIn  int64 // encoded chunk bytes entering committed compactions
	CompactedBytesOut int64 // encoded chunk bytes after repacking
	// Lifetime WAL group-commit counters since Open: WALRecords/WALGroups
	// is the achieved batching factor (fsyncs amortized per group under
	// SyncWAL).
	WALGroups  int64
	WALRecords int64
	// Cache reports the decoded-chunk cache (zero when disabled).
	Cache chunkcache.Stats
	// Pushdown reports the compressed-domain query executor's tier hits:
	// chunks answered from footer stats alone, from partial (inlier-plane)
	// decode, and from full decode.
	Pushdown pushdown.Snapshot
}

// Stats reports the current footprint.
func (e *Engine) Stats() Stats {
	e.structMu.RLock()
	s := Stats{
		Files:             len(e.files),
		MemPoints:         int(e.memPts.Load()),
		Compactions:       e.compactions,
		CompactedFiles:    e.compactedFiles,
		CompactedBytesIn:  e.compactedBytesIn,
		CompactedBytesOut: e.compactedBytesOut,
		WALGroups:         e.walGroups.Load(),
		WALRecords:        e.walRecords.Load(),
		Pushdown:          e.ptiers.Snapshot(),
	}
	set := map[string]bool{}
	for _, df := range e.files {
		for _, name := range df.reader.Series() {
			set[name] = true
		}
	}
	for _, df := range e.files {
		if info, err := df.f.Stat(); err == nil {
			s.DiskBytes += info.Size()
		}
		for _, name := range df.reader.Series() {
			chunks, err := df.reader.Chunks(name)
			if err != nil {
				continue
			}
			for _, c := range chunks {
				s.DiskPoints += c.Count
			}
		}
	}
	e.structMu.RUnlock()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for _, m := range []map[string][]tsfile.Point{st.mem, st.flush} {
			for name, pts := range m {
				if len(pts) > 0 {
					set[name] = true
				}
			}
		}
		for _, m := range []map[string][]tsfile.FloatPoint{st.memF, st.flushF} {
			for name, pts := range m {
				if len(pts) > 0 {
					set[name] = true
				}
			}
		}
		st.mu.RUnlock()
	}
	s.SeriesCount = len(set)
	s.Cache = e.cache.Stats()
	return s
}

func (e *Engine) closeFiles() {
	for _, df := range e.files {
		df.f.Close()
		e.cache.InvalidateFile(df.id)
	}
	e.files = nil
}

// Close flushes and releases the engine.
func (e *Engine) Close() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.structMu.Lock()
	if e.closed.Load() {
		e.structMu.Unlock()
		return nil
	}
	// closed flips first, while every stripe is held, so no insert can get
	// past its check afterwards — the final flush below then sees a frozen
	// memtable, and no new WAL group can form under the closing log.
	e.lockStripes()
	e.closed.Store(true)
	e.unlockStripes()
	e.structMu.Unlock()
	if err := e.flushSnapshot(true); err != nil {
		return err
	}
	e.structMu.Lock()
	defer e.structMu.Unlock()
	e.gen++
	e.closeFiles()
	if e.log != nil {
		e.walMu.Lock()
		// A group enqueued before closed flipped may still be in flight
		// (its leader commits it without structMu); wait it out so the
		// file handle is not yanked from under the leader.
		for e.walBusy || e.walGroup != nil {
			e.walCond.Wait()
		}
		err := e.log.close()
		e.log = nil
		e.walMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
