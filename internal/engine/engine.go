// Package engine implements a small IoT time-series storage engine in the
// mold of Apache IoTDB, the system the paper deploys BOS into: inserts
// accumulate in a per-series memtable, flush into immutable TsFile-style
// block files (internal/tsfile) with BOS as the storage operator, and
// queries merge the memtable with every on-disk file, newest data winning on
// timestamp collisions. Compaction folds all files into one.
//
// The engine exists to exercise BOS end-to-end in its production role — the
// write path (plan + pack on flush), the read path (footer-pruned chunk
// scans) and the background path (compaction re-encodes everything) all run
// through the packing operator under test.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"bos/internal/tsfile"
)

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// FlushThreshold is the total buffered point count that triggers an
	// automatic flush (default 16384).
	FlushThreshold int
	// File configures the underlying block files (packer, block size).
	File tsfile.Options
	// DisableWAL turns off the write-ahead log; inserts buffered in the
	// memtable are then lost on a crash before flush.
	DisableWAL bool
	// SyncWAL fsyncs the log on every insert batch (durable against
	// machine crashes, not just process crashes). Off by default.
	SyncWAL bool
}

func (o Options) flushThreshold() int {
	if o.FlushThreshold <= 0 {
		return 16384
	}
	return o.FlushThreshold
}

// Engine is a single-node, single-process storage engine. All methods are
// safe for concurrent use.
type Engine struct {
	mu      sync.RWMutex
	opt     Options
	mem     map[string][]tsfile.Point      // integer series buffer
	memF    map[string][]tsfile.FloatPoint // float series buffer
	memPts  int                            // total buffered points, both kinds
	files   []*dataFile                    // ascending sequence = ascending freshness
	nextSeq int
	tombs   []tombstone // pending range deletes, applied at query/compaction
	log     *wal        // nil when Options.DisableWAL
	closed  bool

	compacting bool // one snapshot/merge/commit cycle at a time
	// Lifetime maintenance counters, reported in Stats.
	compactions       int64
	compactedFiles    int64
	compactedBytesIn  int64
	compactedBytesOut int64
}

// dataFile is one immutable on-disk block file.
type dataFile struct {
	path   string
	seq    int
	f      *os.File
	reader *tsfile.Reader
}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("engine: closed")

// Open opens (or creates) an engine over dir, loading any existing data
// files.
func Open(opt Options) (*Engine, error) {
	if opt.Dir == "" {
		return nil, errors.New("engine: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		opt:  opt,
		mem:  map[string][]tsfile.Point{},
		memF: map[string][]tsfile.FloatPoint{},
	}
	// Startup hygiene: a crash between writing a temporary file (flush or
	// compaction merge) and its atomic rename leaves an orphaned *.tmp that
	// no reader references — delete them before loading the real files.
	if orphans, err := filepath.Glob(filepath.Join(opt.Dir, "data-*.tsf*.tmp")); err == nil {
		for _, tmp := range orphans {
			os.Remove(tmp)
		}
	}
	entries, err := filepath.Glob(filepath.Join(opt.Dir, "data-*.tsf"))
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sort.Strings(entries)
	for _, path := range entries {
		df, err := openDataFile(path, opt.File)
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		e.files = append(e.files, df)
		if df.seq >= e.nextSeq {
			e.nextSeq = df.seq + 1
		}
	}
	if !opt.DisableWAL {
		// Recover inserts and deletes that never made it into data files.
		err := replayWAL(opt.Dir,
			func(series string, pts []tsfile.Point) {
				e.mem[series] = append(e.mem[series], pts...)
				e.memPts += len(pts)
			},
			func(ts tombstone) {
				e.tombs = append(e.tombs, ts)
			},
			func(series string, pts []tsfile.FloatPoint) {
				e.memF[series] = append(e.memF[series], pts...)
				e.memPts += len(pts)
			})
		if err != nil {
			e.closeFiles()
			return nil, err
		}
		if e.log, err = openWAL(opt.Dir); err != nil {
			e.closeFiles()
			return nil, err
		}
	}
	return e, nil
}

func openDataFile(path string, opt tsfile.Options) (*dataFile, error) {
	if testOpenDataFileErr != nil {
		if err := testOpenDataFileErr(path); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: %w", err)
	}
	r, err := tsfile.OpenReader(f, info.Size(), opt)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: %s: %w", path, err)
	}
	var seq int
	fmt.Sscanf(filepath.Base(path), "data-%06d.tsf", &seq)
	return &dataFile{path: path, seq: seq, f: f, reader: r}, nil
}

// Insert adds one point. Out-of-order and duplicate timestamps are accepted;
// the last write for a timestamp wins.
func (e *Engine) Insert(series string, t, v int64) error {
	return e.InsertBatch(series, []tsfile.Point{{T: t, V: v}})
}

// InsertBatch adds many points to one series.
func (e *Engine) InsertBatch(series string, pts []tsfile.Point) error {
	if len(pts) == 0 {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if len(e.memF[series]) > 0 {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q has float points", ErrSeriesKind, series)
	}
	if e.log != nil {
		if err := e.log.append(series, pts); err != nil {
			e.mu.Unlock()
			return err
		}
		if e.opt.SyncWAL {
			if err := e.log.sync(); err != nil {
				e.mu.Unlock()
				return err
			}
		}
	}
	e.mem[series] = append(e.mem[series], pts...)
	e.memPts += len(pts)
	needFlush := e.memPts >= e.opt.flushThreshold()
	e.mu.Unlock()
	if needFlush {
		return e.Flush()
	}
	return nil
}

// Flush writes the memtable to a new data file. A no-op when empty.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	if e.closed {
		return ErrClosed
	}
	if e.memPts == 0 {
		return nil
	}
	seq := e.nextSeq
	path := filepath.Join(e.opt.Dir, fmt.Sprintf("data-%06d.tsf", seq))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	w := tsfile.NewWriter(f, e.opt.File)
	names := make([]string, 0, len(e.mem))
	for name := range e.mem {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := dedupeSort(e.mem[name])
		if err := w.Append(name, pts); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("engine: flush %s: %w", name, err)
		}
	}
	fnames := make([]string, 0, len(e.memF))
	for name := range e.memF {
		fnames = append(fnames, name)
	}
	sort.Strings(fnames)
	for _, name := range fnames {
		pts := dedupeSortFloat(e.memF[name])
		if err := w.AppendFloats(name, pts); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("engine: flush %s: %w", name, err)
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("engine: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: %w", err)
	}
	df, err := openDataFile(path, e.opt.File)
	if err != nil {
		return err
	}
	e.files = append(e.files, df)
	e.nextSeq = seq + 1
	e.mem = map[string][]tsfile.Point{}
	e.memF = map[string][]tsfile.FloatPoint{}
	e.memPts = 0
	if e.log != nil {
		// The memtable is on disk; the log restarts with only the still
		// pending tombstones (they mask file data until compaction).
		if err := e.log.reset(); err != nil {
			return err
		}
		for _, ts := range e.tombs {
			if err := e.log.appendTombstone(ts); err != nil {
				return err
			}
		}
	}
	return nil
}

// dedupeSort sorts points by time, keeping the last inserted value for each
// timestamp (stable sort preserves insertion order within equal times).
func dedupeSort(pts []tsfile.Point) []tsfile.Point {
	sorted := append([]tsfile.Point(nil), pts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	out := sorted[:0]
	for _, p := range sorted {
		if len(out) > 0 && out[len(out)-1].T == p.T {
			out[len(out)-1] = p // last write wins
			continue
		}
		out = append(out, p)
	}
	return out
}

// Query returns the points of a series in [minT, maxT], in time order,
// merging every data file and the memtable with newest-wins semantics.
func (e *Engine) Query(series string, minT, maxT int64) ([]tsfile.Point, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	// Collect sources oldest to newest; later sources override equal
	// timestamps by overwriting in the merge map pass.
	merged := map[int64]int64{}
	var order []int64
	apply := func(pts []tsfile.Point) {
		for _, p := range pts {
			if p.T < minT || p.T > maxT {
				continue
			}
			if _, seen := merged[p.T]; !seen {
				order = append(order, p.T)
			}
			merged[p.T] = p.V
		}
	}
	const full = int64(^uint64(0) >> 1)
	for _, df := range e.files {
		pts, err := df.reader.Query(series, minT, maxT, -full-1, full)
		if err != nil && !errors.Is(err, tsfile.ErrNoSeries) {
			return nil, err
		}
		if len(e.tombs) > 0 {
			kept := pts[:0]
			for _, p := range pts {
				if !e.masked(series, df.seq, p.T) {
					kept = append(kept, p)
				}
			}
			pts = kept
		}
		apply(pts)
	}
	apply(dedupeSort(e.mem[series]))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]tsfile.Point, 0, len(order))
	for _, t := range order {
		out = append(out, tsfile.Point{T: t, V: merged[t]})
	}
	return out, nil
}

// Series lists every known series name, sorted.
func (e *Engine) Series() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	set := map[string]bool{}
	for _, df := range e.files {
		for _, s := range df.reader.Series() {
			set[s] = true
		}
	}
	for s, pts := range e.mem {
		if len(pts) > 0 {
			set[s] = true
		}
	}
	for s, pts := range e.memF {
		if len(pts) > 0 {
			set[s] = true
		}
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the engine's footprint.
type Stats struct {
	Files       int
	MemPoints   int
	DiskPoints  int
	DiskBytes   int64
	SeriesCount int
	// Lifetime compaction counters since Open.
	Compactions       int64
	CompactedFiles    int64
	CompactedBytesIn  int64 // encoded chunk bytes entering committed compactions
	CompactedBytesOut int64 // encoded chunk bytes after repacking
}

// Stats reports the current footprint.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := Stats{
		Files:             len(e.files),
		MemPoints:         e.memPts,
		Compactions:       e.compactions,
		CompactedFiles:    e.compactedFiles,
		CompactedBytesIn:  e.compactedBytesIn,
		CompactedBytesOut: e.compactedBytesOut,
	}
	set := map[string]bool{}
	for _, df := range e.files {
		for _, name := range df.reader.Series() {
			set[name] = true
		}
	}
	for name, pts := range e.mem {
		if len(pts) > 0 {
			set[name] = true
		}
	}
	for name, pts := range e.memF {
		if len(pts) > 0 {
			set[name] = true
		}
	}
	s.SeriesCount = len(set)
	for _, df := range e.files {
		if info, err := df.f.Stat(); err == nil {
			s.DiskBytes += info.Size()
		}
		for _, name := range df.reader.Series() {
			chunks, err := df.reader.Chunks(name)
			if err != nil {
				continue
			}
			for _, c := range chunks {
				s.DiskPoints += c.Count
			}
		}
	}
	return s
}

func (e *Engine) closeFiles() {
	for _, df := range e.files {
		df.f.Close()
	}
	e.files = nil
}

// Close flushes and releases the engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if err := e.flushLocked(); err != nil {
		return err
	}
	e.closeFiles()
	if e.log != nil {
		if err := e.log.close(); err != nil {
			return err
		}
		e.log = nil
	}
	e.closed = true
	return nil
}
