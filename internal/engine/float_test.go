package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bos/internal/tsfile"
)

func makeFloats(rng *rand.Rand, n int) []tsfile.FloatPoint {
	pts := make([]tsfile.FloatPoint, n)
	v := 20.0
	for i := range pts {
		v += rng.NormFloat64() * 0.3
		pts[i] = tsfile.FloatPoint{T: int64(i), V: math.Round(v*100) / 100}
	}
	return pts
}

func TestFloatInsertQueryAcrossFlush(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 500})
	defer e.Close()
	rng := rand.New(rand.NewSource(1))
	want := makeFloats(rng, 2000)
	if err := e.InsertFloatBatch("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := e.QueryFloats("f", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d points want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || math.Float64bits(got[i].V) != math.Float64bits(want[i].V) {
			t.Fatalf("point %d: %v vs %v", i, got[i], want[i])
		}
	}
	if e.Stats().Files == 0 {
		t.Error("expected flushes")
	}
}

func TestFloatWALRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	want := makeFloats(rng, 300)
	e.InsertFloatBatch("f", want)
	e.closeFiles() // crash before flush
	e.log.close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.QueryFloats("f", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d points want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i].V) != math.Float64bits(want[i].V) {
			t.Fatalf("point %d not bit-exact", i)
		}
	}
}

func TestFloatKindConflicts(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.Insert("ints", 1, 1)
	if err := e.InsertFloat("ints", 2, 2.5); !errors.Is(err, ErrSeriesKind) {
		t.Errorf("float into int series: %v", err)
	}
	e.InsertFloat("floats", 1, 1.5)
	if err := e.Insert("floats", 2, 2); !errors.Is(err, ErrSeriesKind) {
		t.Errorf("int into float series: %v", err)
	}
}

func TestFloatDeleteAndCompact(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	e.InsertFloatBatch("f", makeFloats(rng, 1000))
	e.Flush()
	e.Insert("i", 1, 1)
	e.Flush()
	if err := e.DeleteRange("f", 100, 899); err != nil {
		t.Fatal(err)
	}
	got, err := e.QueryFloats("f", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d points want 200 after delete", len(got))
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err = e.QueryFloats("f", 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("got %d points want 200 after compaction", len(got))
	}
	ipts, err := e.Query("i", 0, 10)
	if err != nil || len(ipts) != 1 {
		t.Fatalf("int series lost in mixed compaction: %v err %v", ipts, err)
	}
}

func TestFloatOverwriteNewestWins(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.InsertFloat("f", 5, 1.5)
	e.Flush()
	e.InsertFloat("f", 5, 2.5)
	got, err := e.QueryFloats("f", 0, 10)
	if err != nil || len(got) != 1 || got[0].V != 2.5 {
		t.Fatalf("got %v err %v", got, err)
	}
}
