package engine

import (
	"errors"

	"bos/internal/tsfile"
)

// Bucket is one downsampled window.
type Bucket struct {
	Start    int64 // window start timestamp (inclusive)
	Count    int
	Min, Max int64
	Sum      int64
}

// Avg returns the window mean.
func (b Bucket) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return float64(b.Sum) / float64(b.Count)
}

// ErrBadWindow reports a non-positive downsampling window.
var ErrBadWindow = errors.New("engine: window must be positive")

// Downsample aggregates a series into fixed windows of `window` timestamp
// units over [minT, maxT] — the classic dashboard query. Empty windows are
// omitted.
func (e *Engine) Downsample(series string, minT, maxT, window int64) ([]Bucket, error) {
	if window <= 0 {
		return nil, ErrBadWindow
	}
	pts, err := e.Query(series, minT, maxT)
	if err != nil {
		return nil, err
	}
	var out []Bucket
	var cur *Bucket
	for _, p := range pts {
		start := minT + (p.T-minT)/window*window
		if cur == nil || cur.Start != start {
			out = append(out, Bucket{Start: start, Min: p.V, Max: p.V})
			cur = &out[len(out)-1]
		}
		cur.Count++
		if p.V < cur.Min {
			cur.Min = p.V
		}
		if p.V > cur.Max {
			cur.Max = p.V
		}
		cur.Sum += p.V
	}
	return out, nil
}

// DownsampleAvg is a convenience wrapper returning (window start, mean)
// points, ready to plot.
func (e *Engine) DownsampleAvg(series string, minT, maxT, window int64) ([]tsfile.Point, error) {
	buckets, err := e.Downsample(series, minT, maxT, window)
	if err != nil {
		return nil, err
	}
	out := make([]tsfile.Point, len(buckets))
	for i, b := range buckets {
		out[i] = tsfile.Point{T: b.Start, V: int64(b.Avg())}
	}
	return out, nil
}
