package engine

import (
	"errors"

	"bos/internal/pushdown"
	"bos/internal/tsfile"
)

// Bucket is one downsampled window. It is internal/pushdown's bucket type:
// the compressed-domain executor fills the same shape whether a window was
// answered from footer statistics, partial decode, or a merged scan.
type Bucket = pushdown.Bucket

// ErrBadWindow reports a non-positive downsampling window.
var ErrBadWindow = errors.New("engine: window must be positive")

// Downsample aggregates a series into fixed windows of `window` timestamp
// units over [minT, maxT] — the classic dashboard query. Empty windows are
// omitted. It runs on the compressed-domain executor: chunks that sit alone
// in their time range fold in from footer statistics or inlier-plane partial
// decode, and only the intervals where files, memtable or tombstones overlap
// pay for the classic merged scan.
func (e *Engine) Downsample(series string, minT, maxT, window int64) ([]Bucket, error) {
	if window <= 0 {
		return nil, ErrBadWindow
	}
	return e.WindowAgg(series, minT, maxT, window)
}

// DownsampleAvg is a convenience wrapper returning (window start, mean)
// points, ready to plot.
func (e *Engine) DownsampleAvg(series string, minT, maxT, window int64) ([]tsfile.Point, error) {
	buckets, err := e.Downsample(series, minT, maxT, window)
	if err != nil {
		return nil, err
	}
	out := make([]tsfile.Point, len(buckets))
	for i, b := range buckets {
		out[i] = tsfile.Point{T: b.Start, V: int64(b.Avg())}
	}
	return out, nil
}
