package engine

import (
	"errors"
	"testing"
)

func TestDownsample(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	// Two windows of 10: t in [0,10) and [10,20).
	for _, p := range []struct{ t, v int64 }{
		{0, 4}, {3, 8}, {9, 6}, // window 0: count 3, min 4, max 8, sum 18
		{10, 100}, {15, 50}, // window 10: count 2, min 50, max 100, sum 150
		{25, 7}, // window 20: singleton
	} {
		e.Insert("s", p.t, p.v)
	}
	buckets, err := e.Downsample("s", 0, 29, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 3 {
		t.Fatalf("buckets = %+v", buckets)
	}
	b := buckets[0]
	if b.Start != 0 || b.Count != 3 || b.Min != 4 || b.Max != 8 || b.Sum != 18 {
		t.Errorf("window 0 = %+v", b)
	}
	if buckets[1].Avg() != 75 {
		t.Errorf("window 10 avg = %v", buckets[1].Avg())
	}
	if buckets[2].Start != 20 || buckets[2].Count != 1 {
		t.Errorf("window 20 = %+v", buckets[2])
	}

	avg, err := e.DownsampleAvg("s", 0, 29, 10)
	if err != nil || len(avg) != 3 || avg[1].V != 75 {
		t.Fatalf("avg = %v err %v", avg, err)
	}
}

func TestDownsampleSkipsEmptyWindows(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.Insert("s", 0, 1)
	e.Insert("s", 100, 2)
	buckets, err := e.Downsample("s", 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
}

func TestDownsampleBadWindow(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	if _, err := e.Downsample("s", 0, 10, 0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.Downsample("s", 0, 10, -5); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v", err)
	}
}

func TestDownsampleSpansFlushBoundary(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 100; i++ {
		e.Insert("s", i, i)
	}
	e.Flush()
	for i := int64(100); i < 200; i++ {
		e.Insert("s", i, i)
	}
	buckets, err := e.Downsample("s", 0, 199, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("%d buckets", len(buckets))
	}
	for i, b := range buckets {
		if b.Count != 50 {
			t.Errorf("bucket %d count %d", i, b.Count)
		}
	}
}
