package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"bos/internal/tsfile"
)

// BenchmarkIngest measures the write path end to end through the public API:
// concurrent writers inserting 100-point batches into per-writer series, with
// the WAL in async and fsync-per-commit modes. Flushes trigger at the default
// threshold, so the numbers include snapshot/encode time. One iteration = one
// inserted batch; points/s is the headline metric.
//
// This file is self-contained so the identical benchmark can be compiled
// against an older engine revision for before/after comparisons
// (BENCH_write.json).
func BenchmarkIngest(b *testing.B) {
	for _, syncWAL := range []bool{false, true} {
		for _, writers := range []int{1, 4, 16} {
			name := fmt.Sprintf("sync=%v/writers=%d", syncWAL, writers)
			b.Run(name, func(b *testing.B) { benchIngest(b, syncWAL, writers) })
		}
	}
}

func benchIngest(b *testing.B, syncWAL bool, writers int) {
	e, err := Open(Options{Dir: b.TempDir(), SyncWAL: syncWAL})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	const batch = 100
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("bench-%02d", w)
			buf := make([]tsfile.Point, batch)
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				base := n * batch
				for i := range buf {
					t := base + int64(i)
					buf[i] = tsfile.Point{T: t, V: t & 1023}
				}
				if err := e.InsertBatch(series, buf); err != nil {
					b.Error(err)
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() {
		return
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*batch/secs, "points/s")
	}
}
