package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"bos/internal/tsfile"
)

// Read-path benchmarks. They use only the public engine API so the same
// code measures the engine before and after read-path changes; BENCH_query.json
// records both sides.

// benchFill creates `files` on-disk data files of `perFile` points each for
// series "bench.scan". layout "sequential" gives each file a consecutive time
// range (in-order ingest); "overlapping" interleaves timestamps so every file
// spans the whole range (out-of-order ingest, worst case for the merge).
func benchFill(b *testing.B, dir, layout string, files, perFile int) *Engine {
	b.Helper()
	e, err := Open(Options{Dir: dir, FlushThreshold: 1 << 30, DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	for f := 0; f < files; f++ {
		pts := make([]tsfile.Point, perFile)
		for i := range pts {
			var t int64
			if layout == "sequential" {
				t = int64(f*perFile + i)
			} else {
				t = int64(i*files + f)
			}
			pts[i] = tsfile.Point{T: t, V: t % 1000}
		}
		if err := e.InsertBatch("bench.scan", pts); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkQueryEach measures long-range streaming scan throughput across
// multiple data files.
func BenchmarkQueryEach(b *testing.B) {
	const files, perFile = 6, 40000
	total := int64(files * perFile)
	for _, layout := range []string{"sequential", "overlapping"} {
		b.Run(layout, func(b *testing.B) {
			e := benchFill(b, b.TempDir(), layout, files, perFile)
			defer e.Close()
			b.ResetTimer()
			var points int64
			for i := 0; i < b.N; i++ {
				n := int64(0)
				err := e.QueryEach("bench.scan", 0, total, func(p tsfile.Point) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != total {
					b.Fatalf("scan returned %d points, want %d", n, total)
				}
				points += n
			}
			b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkConcurrentIngestQuery measures mixed-load throughput: scans of one
// series while concurrent writers insert into other series — the cross-series
// contention profile the serving layer sees. Both sides are reported:
// scan_points/s for the reader and write_points/s for the combined writers,
// because a locking change can trade one against the other.
func BenchmarkConcurrentIngestQuery(b *testing.B) {
	const files, perFile, writers = 4, 25000, 4
	total := int64(files * perFile)
	dir := b.TempDir()
	e := benchFill(b, dir, "sequential", files, perFile)
	// Reopen with a bounded flush threshold so writer memtables drain to
	// disk as they would in production instead of growing without bound.
	if err := e.Close(); err != nil {
		b.Fatal(err)
	}
	e, err := Open(Options{Dir: dir, FlushThreshold: 4 << 20, DisableWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var written atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("bench.w%d", w)
			batch := make([]tsfile.Point, 500)
			next := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = tsfile.Point{T: next, V: next}
					next++
				}
				if err := e.InsertBatch(series, batch); err != nil {
					return
				}
				written.Add(int64(len(batch)))
			}
		}(w)
	}
	b.ResetTimer()
	var points int64
	for i := 0; i < b.N; i++ {
		n := int64(0)
		err := e.QueryEach("bench.scan", 0, total, func(p tsfile.Point) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		points += n
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "scan_points/s")
	b.ReportMetric(float64(written.Load())/b.Elapsed().Seconds(), "write_points/s")
}
