package engine

import (
	"fmt"
	"sync"
	"testing"

	"bos/internal/tsfile"
)

// Regression tests for the decoded-chunk cache and stateful scan cursors:
// every structural change that replaces or reshapes on-disk chunks
// (compaction commit, range delete, crash-reopen) must leave subsequent
// scans correct, never serving stale decoded columns.

// scanAll collects a full QueryEach scan.
func scanAll(t *testing.T, e *Engine, series string) []tsfile.Point {
	t.Helper()
	var out []tsfile.Point
	err := e.QueryEach(series, -(1 << 40), 1<<40, func(p tsfile.Point) error {
		out = append(out, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanAfterCompactionCommit(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	mk := func(n int, base, v int64) []tsfile.Point {
		pts := make([]tsfile.Point, n)
		for i := range pts {
			pts[i] = tsfile.Point{T: base + int64(i), V: v}
		}
		return pts
	}
	flushSeries(t, e, "s", mk(100, 0, 1)...)
	flushSeries(t, e, "s", mk(100, 0, 2)...) // overwrites the first file
	flushSeries(t, e, "s", mk(100, 100, 3)...)

	check := func(stage string) {
		pts := scanAll(t, e, "s")
		if len(pts) != 200 {
			t.Fatalf("%s: %d points, want 200", stage, len(pts))
		}
		for i, p := range pts {
			wantT := int64(i)
			wantV := int64(2)
			if i >= 100 {
				wantV = 3
			}
			if p.T != wantT || p.V != wantV {
				t.Fatalf("%s: point %d = %+v, want {%d %d}", stage, i, p, wantT, wantV)
			}
		}
	}
	check("before compact")
	check("warm cache") // second scan decodes from the cache
	if st := e.Stats().Cache; st.Hits == 0 {
		t.Fatalf("warm scan did not hit the cache: %+v", st)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats().Cache
	if st.Invalidations == 0 {
		t.Fatalf("compaction commit did not invalidate cached chunks: %+v", st)
	}
	check("after compact")
	check("after compact, warm")
}

func TestScanAfterDeleteRange(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	pts := make([]tsfile.Point, 200)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i)}
	}
	flushSeries(t, e, "s", pts...)

	if got := scanAll(t, e, "s"); len(got) != 200 {
		t.Fatalf("warm scan: %d points", len(got))
	}
	scanAll(t, e, "s") // populate + hit the cache
	if err := e.DeleteRange("s", 50, 149); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats().Cache; st.Invalidations == 0 {
		t.Fatalf("delete did not invalidate cached chunks: %+v", st)
	}
	got := scanAll(t, e, "s")
	if len(got) != 100 {
		t.Fatalf("after delete: %d points, want 100", len(got))
	}
	for _, p := range got {
		if p.T >= 50 && p.T <= 149 {
			t.Fatalf("deleted point survived: %+v", p)
		}
	}
}

func TestScanAfterCrashReopen(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	pts := make([]tsfile.Point, 100)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i * 2)}
	}
	flushSeries(t, e, "s", pts...)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(100 + i), V: int64(i)}
	}
	if err := e.InsertBatch("s", pts); err != nil { // WAL only, not flushed
		t.Fatal(err)
	}
	scanAll(t, e, "s") // warm the first engine's cache
	e.closeFiles()     // crash without Close: WAL and files stay on disk
	e.log.close()

	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	got := scanAll(t, e2, "s")
	if len(got) != 200 {
		t.Fatalf("after crash-reopen: %d points, want 200", len(got))
	}
	for i, p := range got {
		if p.T != int64(i) {
			t.Fatalf("after crash-reopen: point %d has T=%d", i, p.T)
		}
	}
}

// TestConcurrentScanIngestCompact drives writers, streaming scans, range
// deletes and compactions against one engine at once. Run under -race it
// exercises the stripe / structure / WAL lock split; the scan callback
// checks the merge's time-ordering invariant on every page boundary.
func TestConcurrentScanIngestCompact(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 2000})
	defer e.Close()
	const writers, batches, batchLen = 3, 40, 100

	var writeWG, compWG, scanWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			series := fmt.Sprintf("st.w%d", w)
			for b := 0; b < batches; b++ {
				pts := make([]tsfile.Point, batchLen)
				for i := range pts {
					n := int64(b*batchLen + i)
					pts[i] = tsfile.Point{T: n, V: n * 2}
				}
				if err := e.InsertBatch(series, pts); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if b%13 == 5 {
					if err := e.DeleteRange(series, int64(b*batchLen), int64(b*batchLen+9)); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	compWG.Add(1)
	go func() { // background compactor, like the maintainer would run
		defer compWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		scanWG.Add(1)
		go func(r int) {
			defer scanWG.Done()
			for k := 0; k < 30; k++ {
				series := fmt.Sprintf("st.w%d", (r+k)%writers)
				last := int64(-1)
				err := e.QueryEach(series, 0, 1<<40, func(p tsfile.Point) error {
					if p.T <= last {
						return fmt.Errorf("scan went backwards: %d after %d", p.T, last)
					}
					last = p.T
					return nil
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}(r)
	}
	scanWG.Wait()
	writeWG.Wait()
	close(stop)
	compWG.Wait()

	// Quiesced: every surviving point must be present exactly once.
	for w := 0; w < writers; w++ {
		series := fmt.Sprintf("st.w%d", w)
		got := scanAll(t, e, series)
		want := map[int64]bool{}
		for b := 0; b < batches; b++ {
			for i := 0; i < batchLen; i++ {
				want[int64(b*batchLen+i)] = true
			}
			if b%13 == 5 {
				for d := 0; d < 10; d++ {
					delete(want, int64(b*batchLen+d))
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d points, want %d", series, len(got), len(want))
		}
		for _, p := range got {
			if !want[p.T] || p.V != p.T*2 {
				t.Fatalf("%s: unexpected point %+v", series, p)
			}
		}
	}
}
