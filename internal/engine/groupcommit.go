package engine

import "runtime"

// WAL group commit: concurrent insert batches enqueue framed records into a
// forming group under walMu, and exactly one of them — the leader, the
// caller that created the group — writes and fsyncs the whole group with
// walMu released (holding the walBusy token instead). Followers wait on the
// group's done channel. While a leader is on the disk, the next group keeps
// forming, so the log runs at one fsync per group of concurrent batches and
// no stripe lock is ever held across WAL I/O.
//
// The invariants, all under walMu:
//
//   - walGroup is the forming group; records are appended to it only while
//     it is the forming group, so the leader reads its buffer race-free
//     after detaching it.
//   - walBusy is true exactly while a detached group is being written with
//     walMu released. Everything else that touches the wal struct (seal,
//     rotate, tombstone re-append, close) must first wait for !walBusy.
//   - walCond (paired with walMu) broadcasts every commit and walBusy
//     hand-off.

// walGroup is one group of framed records committed by a single leader.
type walGroup struct {
	buf       []byte // framed records, appended under walMu while forming
	recs      int
	err       error
	committed bool
	done      chan struct{} // closed once err/committed are final
}

// walEnqueue frames one record into the forming group, creating the group —
// and becoming its leader — if none is forming. The payload is built into
// the wal's reusable scratch buffer by build. Called with the caller's
// stripe lock (or structMu) held; walMu sits above both in the hierarchy,
// and only memory is touched here, never the disk.
func (e *Engine) walEnqueue(build func(dst []byte) []byte) (g *walGroup, leader bool) {
	e.walMu.Lock()
	l := e.log
	l.scratch = build(l.scratch[:0])
	g = e.walGroup
	if g == nil {
		g = &walGroup{buf: l.groupBuf[:0], done: make(chan struct{})}
		l.groupBuf = nil
		e.walGroup = g
		leader = true
	}
	g.buf = frameRecord(g.buf, l.scratch)
	g.recs++
	e.walMu.Unlock()
	return g, leader
}

// walAwait blocks until the caller's group is durable (per Options.SyncWAL)
// and returns the commit error. The leader performs the write; it is called
// after every lock is released, so a slow disk stalls only the batches in
// the group, not writers on other stripes or queries.
func (e *Engine) walAwait(g *walGroup, leader bool) error {
	if !leader {
		<-g.done
		return g.err
	}
	// With SyncWAL, give concurrently arriving writers one scheduling window
	// to join the group before it detaches: runnable writers enqueue now and
	// share this commit's fsync; without the yield, a leader that reaches an
	// idle log commits alone even under heavy concurrency (acutely so on few
	// cores, where the leader's fsync starves the joiners). Async commits
	// skip it — their write is a cheap buffered append, so a scheduling
	// round-trip per group would cost more than the batching saves.
	if e.opt.SyncWAL {
		runtime.Gosched()
	}
	e.walMu.Lock()
	// A previous group may still be on the disk; and a concurrent flush may
	// seal this group for us while we wait (then committed is set).
	for !g.committed && e.walBusy {
		e.walCond.Wait()
	}
	if g.committed {
		e.walMu.Unlock()
		return g.err
	}
	e.walGroup = nil // no further enqueues; the buffer is now ours alone
	e.walBusy = true
	l := e.log
	doSync := e.opt.SyncWAL
	e.walMu.Unlock()

	err := l.writeBuf(g.buf)
	if testWALSyncHook != nil {
		testWALSyncHook()
	}
	if err == nil && doSync {
		err = l.sync()
	}

	e.walMu.Lock()
	e.walBusy = false
	g.err = err
	g.committed = true
	l.groupBuf = g.buf
	e.walGroups.Add(1)
	e.walRecords.Add(int64(g.recs))
	close(g.done)
	e.walCond.Broadcast()
	e.walMu.Unlock()
	return err
}

// sealFormingGroup commits any forming group inline, on the current segment.
// The flush pipeline calls it before rotating the log: every record enqueued
// so far belongs to points already in the memtable (enqueue and memtable
// append happen under the same stripe lock, and the caller holds every
// stripe), so they are part of the snapshot and must land in the segment the
// snapshot's data file supersedes — otherwise a clean shutdown would replay
// them from the new segment and resurrect flushed points. Caller holds walMu
// with walBusy false.
func (e *Engine) sealFormingGroup() error {
	g := e.walGroup
	if g == nil {
		return nil
	}
	e.walGroup = nil
	err := e.log.writeBuf(g.buf)
	if err == nil && e.opt.SyncWAL {
		err = e.log.sync()
	}
	g.err = err
	g.committed = true
	e.log.groupBuf = g.buf
	e.walGroups.Add(1)
	e.walRecords.Add(int64(g.recs))
	close(g.done)
	e.walCond.Broadcast()
	return err
}
