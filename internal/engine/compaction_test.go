package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bos/internal/tsfile"
)

// flushSeries inserts pts into series and flushes them into their own file.
func flushSeries(t *testing.T, e *Engine, series string, pts ...tsfile.Point) {
	t.Helper()
	if err := e.InsertBatch(series, pts); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

func queryAll(t *testing.T, e *Engine, series string) []tsfile.Point {
	t.Helper()
	pts, err := e.Query(series, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestCompactOpenFailureDoesNotClobber is the regression test for the old
// Compact bug: when opening the merged file failed after the rename, the
// sequence counter had not advanced, so the next flush reused the compacted
// file's name and silently overwrote it. The phased compaction gives the
// output an already-allocated sequence, so no later flush can collide.
func TestCompactOpenFailureDoesNotClobber(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	flushSeries(t, e, "a", tsfile.Point{T: 1, V: 10})
	flushSeries(t, e, "b", tsfile.Point{T: 2, V: 20})

	boom := errors.New("injected open failure")
	outPath := filepath.Join(dir, "data-000001.tsf")
	testOpenDataFileErr = func(path string) error {
		if path == outPath {
			return boom
		}
		return nil
	}
	defer func() { testOpenDataFileErr = nil }()
	if _, err := e.CompactWith(nil); !errors.Is(err, boom) {
		t.Fatalf("CompactWith error = %v, want injected failure", err)
	}
	testOpenDataFileErr = nil

	// The engine must stay fully usable: old readers still serve, and a new
	// flush must NOT reuse the merged file's sequence.
	flushSeries(t, e, "c", tsfile.Point{T: 3, V: 30})
	for series, want := range map[string]int64{"a": 10, "b": 20, "c": 30} {
		pts := queryAll(t, e, series)
		if len(pts) != 1 || pts[0].V != want {
			t.Fatalf("%s after failed commit: %v", series, pts)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "data-000002.tsf")); err != nil {
		t.Fatalf("post-failure flush did not get a fresh sequence: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// After reopen the renamed merged file is picked up; nothing is lost.
	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	for series, want := range map[string]int64{"a": 10, "b": 20, "c": 30} {
		pts := queryAll(t, e2, series)
		if len(pts) != 1 || pts[0].V != want {
			t.Fatalf("%s after reopen: %v", series, pts)
		}
	}
}

// TestCompactCrashBeforeCommit kills a compaction between writing the merge
// output and the atomic rename: the orphaned .tmp must be swept on reopen and
// the engine must serve exactly the pre-compaction data.
func TestCompactCrashBeforeCommit(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	flushSeries(t, e, "s", tsfile.Point{T: 1, V: 1}, tsfile.Point{T: 2, V: 2})
	flushSeries(t, e, "s", tsfile.Point{T: 2, V: 22}, tsfile.Point{T: 3, V: 3})

	c, err := e.SnapshotCompaction([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 1 {
		t.Fatalf("expected one merge tmp file, found %v", tmps)
	}
	// Crash: no Commit, no Abort — just drop the process state.
	e.closeFiles()
	e.log.close()

	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("orphaned tmp files survived reopen: %v", tmps)
	}
	pts := queryAll(t, e2, "s")
	want := []tsfile.Point{{T: 1, V: 1}, {T: 2, V: 22}, {T: 3, V: 3}}
	if len(pts) != len(want) {
		t.Fatalf("got %v want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d: got %v want %v", i, pts[i], want[i])
		}
	}
}

// TestCompactPartialRun merges a contiguous run in the middle of the file
// list and verifies newest-wins ordering is preserved both live and after a
// restart (the merged output reuses the run's newest sequence, keeping
// file-name order equal to freshness order).
func TestCompactPartialRun(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	// Four files, all overwriting t=100; freshest file wins.
	for seq := 0; seq < 4; seq++ {
		flushSeries(t, e, "s",
			tsfile.Point{T: 100, V: int64(seq)},
			tsfile.Point{T: int64(10 + seq), V: int64(seq)})
	}
	c, err := e.SnapshotCompaction([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Files != 3 || st.Compactions != 1 || st.CompactedFiles != 2 {
		t.Fatalf("stats after partial run: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "data-000001.tsf")); !os.IsNotExist(err) {
		t.Fatalf("replaced input data-000001.tsf still present (err=%v)", err)
	}
	check := func(e *Engine, when string) {
		t.Helper()
		pts := queryAll(t, e, "s")
		// t=100 must come from file 3 (freshest); the per-file markers at
		// t=10..13 must all survive.
		byT := map[int64]int64{}
		for _, p := range pts {
			byT[p.T] = p.V
		}
		if byT[100] != 3 {
			t.Fatalf("%s: t=100 = %d, want 3 (newest file)", when, byT[100])
		}
		for seq := int64(0); seq < 4; seq++ {
			if byT[10+seq] != seq {
				t.Fatalf("%s: marker %d = %d, want %d", when, 10+seq, byT[10+seq], seq)
			}
		}
	}
	check(e, "live")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	check(e2, "reopened")
}

// TestCompactRunValidation rejects runs that would break the freshness
// invariant or collide with an in-flight compaction.
func TestCompactRunValidation(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for seq := 0; seq < 3; seq++ {
		flushSeries(t, e, "s", tsfile.Point{T: int64(seq), V: 1})
	}
	if _, err := e.SnapshotCompaction([]int{0, 2}); err == nil {
		t.Error("non-adjacent run accepted")
	}
	if _, err := e.SnapshotCompaction([]int{7}); err == nil {
		t.Error("unknown sequence accepted")
	}
	if _, err := e.SnapshotCompaction(nil); err == nil {
		t.Error("empty run accepted")
	}
	c, err := e.SnapshotCompaction([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SnapshotCompaction([]int{1, 2}); !errors.Is(err, ErrCompacting) {
		t.Errorf("second snapshot while compacting: %v", err)
	}
	if err := c.Commit(); err == nil {
		t.Error("commit before merge accepted")
	}
	c.Abort()
	// After Abort the engine accepts a new compaction again.
	c2, err := e.SnapshotCompaction([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c2.Abort()
}

// TestCompactConcurrentFlushAndDelete runs the mutation paths compaction must
// tolerate mid-build: a flush appends a new file and a range delete lands
// while the merge is running. The committed output must not resurrect the
// deleted points (the tombstone outlives the compaction because its sequence
// is above the output's) and the flushed file must survive the splice.
func TestCompactConcurrentFlushAndDelete(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	flushSeries(t, e, "s", tsfile.Point{T: 1, V: 1}, tsfile.Point{T: 2, V: 2})
	flushSeries(t, e, "s", tsfile.Point{T: 3, V: 3}, tsfile.Point{T: 4, V: 4})

	c, err := e.SnapshotCompaction([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	// Mid-build mutations, after the merge already ran.
	flushSeries(t, e, "s", tsfile.Point{T: 5, V: 5})
	if err := e.DeleteRange("s", 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	pts := queryAll(t, e, "s")
	want := []tsfile.Point{{T: 1, V: 1}, {T: 4, V: 4}, {T: 5, V: 5}}
	if fmt.Sprint(pts) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", pts, want)
	}
	// A second, full compaction physically applies the late tombstone.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	pts = queryAll(t, e, "s")
	if fmt.Sprint(pts) != fmt.Sprint(want) {
		t.Fatalf("after full compact: got %v want %v", pts, want)
	}
}

// TestCompactCommitAfterClose verifies a compaction racing engine shutdown
// fails cleanly instead of writing into a closed engine.
func TestCompactCommitAfterClose(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	flushSeries(t, e, "s", tsfile.Point{T: 1, V: 1})
	flushSeries(t, e, "s", tsfile.Point{T: 2, V: 2})
	c, err := e.SnapshotCompaction([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("commit after close leaked tmp files: %v", tmps)
	}
}

// TestCompactAdaptiveStats exercises the per-series packer choice: the
// chooser's picks must be encoded into the output (visible in the chunk
// footers), reported in CompactStats and accumulated into engine stats.
func TestCompactAdaptiveStats(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := 0; i < 2; i++ {
		base := int64(i * 100)
		flushSeries(t, e, "ints", tsfile.Point{T: base + 1, V: 7}, tsfile.Point{T: base + 2, V: 9})
		if err := e.InsertFloatBatch("floats", []tsfile.FloatPoint{{T: base + 1, V: 1.5}}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	choose := func(sd SeriesData) string {
		if sd.Name == "ints" {
			if len(sd.Points) != 4 {
				t.Errorf("chooser saw %d int points, want 4", len(sd.Points))
			}
			return "bp"
		}
		if len(sd.Floats) != 2 {
			t.Errorf("chooser saw %d float points, want 2", len(sd.Floats))
		}
		return "pfor"
	}
	stats, err := e.CompactWith(choose)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Series != 2 || stats.Points != 6 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.SeriesPackers["ints"] != "bp" || stats.SeriesPackers["floats"] != "pfor" {
		t.Fatalf("packer choices: %v", stats.SeriesPackers)
	}
	if stats.BytesBefore <= 0 || stats.BytesAfter <= 0 {
		t.Fatalf("byte accounting: %+v", stats)
	}
	st := e.Stats()
	if st.Compactions != 1 || st.CompactedBytesIn != stats.BytesBefore || st.CompactedBytesOut != stats.BytesAfter {
		t.Fatalf("engine counters: %+v", st)
	}
	// The chosen packers are recorded per chunk in the merged file.
	e.structMu.RLock()
	chunks, err := e.files[0].reader.Chunks("ints")
	e.structMu.RUnlock()
	if err != nil || len(chunks) == 0 || chunks[0].Packer != "bp" {
		t.Fatalf("merged chunk packer: %v err %v", chunks, err)
	}
	pts := queryAll(t, e, "ints")
	if len(pts) != 4 {
		t.Fatalf("ints after adaptive compact: %v", pts)
	}
	fpts, err := e.QueryFloats("floats", 0, 1<<40)
	if err != nil || len(fpts) != 2 {
		t.Fatalf("floats after adaptive compact: %v err %v", fpts, err)
	}
}

// TestCompactNonBlocking proves the acceptance property of the phased design:
// inserts and queries complete while a compaction merge is in flight. The
// chooser blocks the merge until the test has pushed traffic through the
// engine; under the old whole-lock Compact this deadlocks.
func TestCompactNonBlocking(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	flushSeries(t, e, "s", tsfile.Point{T: 1, V: 1})
	flushSeries(t, e, "s", tsfile.Point{T: 2, V: 2})

	merging := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	choose := func(SeriesData) string {
		once.Do(func() { close(merging) })
		<-release
		return ""
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.CompactWith(choose)
		done <- err
	}()

	select {
	case <-merging:
	case <-time.After(5 * time.Second):
		t.Fatal("merge never started")
	}
	// The merge is now parked inside Merge (no engine lock). Foreground
	// operations must complete promptly.
	var ops atomic.Int64
	fg := make(chan error, 1)
	go func() {
		for i := int64(0); i < 50; i++ {
			if err := e.Insert("live", 100+i, i); err != nil {
				fg <- err
				return
			}
			if _, err := e.Query("live", 0, 1<<40); err != nil {
				fg <- err
				return
			}
			ops.Add(2)
		}
		fg <- nil
	}()
	select {
	case err := <-fg:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("foreground traffic blocked during merge (completed %d ops)", ops.Load())
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pts := queryAll(t, e, "live")
	if len(pts) != 50 {
		t.Fatalf("live series lost writes during compaction: %d points", len(pts))
	}
}
