package engine

import (
	"testing"

	"bos/internal/tsfile"
)

// Satellite coverage for range deletes on float series: the integer paths in
// delete_test.go have no float counterparts for the memtable-flush, WAL
// replay and compaction cases.

func floatTimes(pts []tsfile.FloatPoint) []int64 {
	out := make([]int64, len(pts))
	for i, p := range pts {
		out[i] = p.T
	}
	return out
}

// TestFloatDeleteMasksMemtableAcrossFlush deletes float points that are still
// buffered: they must not reappear when the buffer flushes (float buffers
// flush with a sequence the tombstone does not mask, so they are pruned at
// delete time).
func TestFloatDeleteMasksMemtableAcrossFlush(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(1); i <= 10; i++ {
		if err := e.InsertFloat("f", i, float64(i)/2); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DeleteRange("f", 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := e.QueryFloats("f", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 8, 9, 10}
	ts := floatTimes(got)
	if len(ts) != len(want) {
		t.Fatalf("times %v want %v", ts, want)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("times %v want %v", ts, want)
		}
	}
}

// TestFloatDeleteSurvivesRestart checks the WAL replay path: a float delete
// over flushed data must still mask after a crash, and float points inserted
// after the delete must survive both the delete and the restart.
func TestFloatDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	for i := int64(1); i <= 10; i++ {
		e.InsertFloat("f", i, float64(i))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteRange("f", 1, 5); err != nil {
		t.Fatal(err)
	}
	// Re-insert inside the deleted range after the delete: must survive.
	if err := e.InsertFloat("f", 2, 2.5); err != nil {
		t.Fatal(err)
	}
	// Crash without a clean close: the tombstone and the re-insert exist
	// only in the WAL.
	e.closeFiles()
	e.log.close()

	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	got, err := e2.QueryFloats("f", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{2: 2.5, 6: 6, 7: 7, 8: 8, 9: 9, 10: 10}
	if len(got) != len(want) {
		t.Fatalf("got %v want times %v", got, want)
	}
	for _, p := range got {
		if want[p.T] != p.V {
			t.Fatalf("point %v, want V=%v", p, want[p.T])
		}
	}

	// Compaction physically reclaims the deleted floats; results must be
	// identical live and after another restart.
	if err := e2.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err = e2.QueryFloats("f", 0, 100)
	if err != nil || len(got) != len(want) {
		t.Fatalf("after compact: %v err %v", got, err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := openTest(t, Options{Dir: dir})
	defer e3.Close()
	got, err = e3.QueryFloats("f", 0, 100)
	if err != nil || len(got) != len(want) {
		t.Fatalf("after compact+reopen: %v err %v", got, err)
	}
	for _, p := range got {
		if want[p.T] != p.V {
			t.Fatalf("after compact+reopen: point %v, want V=%v", p, want[p.T])
		}
	}
}

// TestFloatDeleteAcrossFilesAndCompaction masks float points spread over
// several files, compacts a partial run, and verifies the tombstone keeps
// masking the merged output (its sequence predates the delete).
func TestFloatDeleteAcrossFilesAndCompaction(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for file := int64(0); file < 3; file++ {
		for i := int64(0); i < 4; i++ {
			if err := e.InsertFloat("f", file*10+i, float64(file)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a window spanning files 0 and 1.
	if err := e.DeleteRange("f", 2, 11); err != nil {
		t.Fatal(err)
	}
	wantTimes := []int64{0, 1, 12, 13, 20, 21, 22, 23}
	check := func(when string) {
		t.Helper()
		got, err := e.QueryFloats("f", 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		ts := floatTimes(got)
		if len(ts) != len(wantTimes) {
			t.Fatalf("%s: times %v want %v", when, ts, wantTimes)
		}
		for i := range wantTimes {
			if ts[i] != wantTimes[i] {
				t.Fatalf("%s: times %v want %v", when, ts, wantTimes)
			}
		}
	}
	check("before compaction")
	c, err := e.SnapshotCompaction([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	check("after partial compaction")
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after full compaction")
}
