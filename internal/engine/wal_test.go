package engine

import (
	"os"
	"path/filepath"
	"testing"

	"bos/internal/tsfile"
)

// TestWALRecoversUnflushedInserts simulates a crash: insert without flushing,
// abandon the engine (no Close), reopen — the data must come back.
func TestWALRecoversUnflushedInserts(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := e.Insert("s", i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the engine without Flush/Close. The WAL file carries
	// everything.
	e.closeFiles()
	e.log.close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 499)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("recovered %d points want 500", len(got))
	}
	for i, p := range got {
		if p.T != int64(i) || p.V != int64(i)*7 {
			t.Fatalf("point %d = %v", i, p)
		}
	}
}

// TestWALTruncatedAfterFlush: a flush must reset the log so replay does not
// double-apply.
func TestWALTruncatedAfterFlush(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("s", 1, 10)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("wal is %d bytes after flush, want 0", info.Size())
	}
	e.Insert("s", 2, 20) // only this should be in the log now
	series, err := sortedWALSeries(dir)
	if err != nil || len(series) != 1 {
		t.Fatalf("wal series = %v err %v", series, err)
	}
	e.closeFiles()
	e.log.close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].V != 10 || got[1].V != 20 {
		t.Fatalf("got %v", got)
	}
}

// TestWALTornTailDropped: a partially written final record (torn write) must
// be dropped while every preceding record survives.
func TestWALTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("s", 1, 100)
	e.Insert("s", 2, 200)
	e.closeFiles()
	e.log.close()

	// Tear the last few bytes off the log.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (tsfile.Point{T: 1, V: 100}) {
		t.Fatalf("got %v", got)
	}
}

// TestWALCorruptRecordStopsReplay: a bit flip in a record's payload must stop
// replay at that record without error.
func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("s", 1, 100)
	e.Insert("s", 2, 200)
	e.Insert("s", 3, 300)
	e.closeFiles()
	e.log.close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // lands in record 2 of 3
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= 3 {
		t.Fatalf("got %d points, want the prefix before the corruption", len(got))
	}
}

// TestDisableWAL: with the log off, unflushed inserts are lost on crash —
// and no wal file exists.
func TestDisableWAL(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Insert("s", 1, 100)
	e.closeFiles() // crash without flush

	if _, err := os.Stat(filepath.Join(dir, walName)); !os.IsNotExist(err) {
		t.Fatalf("wal file exists with DisableWAL: %v", err)
	}
	e2, err := Open(Options{Dir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v without a WAL", got)
	}
}

// TestWALSyncOption exercises the fsync path.
func TestWALSyncOption(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := int64(0); i < 50; i++ {
		if err := e.Insert("s", i, i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.Query("s", 0, 100)
	if err != nil || len(got) != 50 {
		t.Fatalf("got %d err %v", len(got), err)
	}
}
