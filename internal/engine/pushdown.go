package engine

import (
	"errors"
	"math"
	"runtime"
	"sort"

	"bos/internal/pushdown"
	"bos/internal/tsfile"
)

// The engine's side of the compressed-domain executor: planning. The
// internal/pushdown evaluator is only correct for a chunk whose points are
// exactly the query result over the chunk's time interval — no other chunk,
// no memtable point, and no tombstone may override or mask anything in it.
// planPushdown partitions a query range accordingly: "exclusive" chunks are
// handed to the evaluator (stats fold / partial decode), and the complement
// intervals run through the classic merged scan (queryLocked), so the two
// paths compose into exactly the result a full merged scan would produce.
//
// In the steady state the engine produces — time-ordered ingest flushed into
// files with disjoint time ranges, memtable drained, deletes compacted away —
// every chunk is exclusive and the merged scan never runs.

// chunkRef is one on-disk chunk considered by the planner. lo/hi is the
// chunk's footer time interval clipped to the query range.
type chunkRef struct {
	df     *dataFile
	ci     int
	meta   tsfile.ChunkMeta
	lo, hi int64
}

// planPushdown splits [minT, maxT] into exclusive chunks (evaluated in the
// compressed domain) and gap intervals (evaluated by the merged scan). Caller
// holds structMu (read suffices) with closed checked; minT <= maxT.
func (e *Engine) planPushdown(series string, minT, maxT int64) ([]chunkRef, [][2]int64, error) {
	var refs []chunkRef
	for _, df := range e.files {
		chunks, err := df.reader.Chunks(series)
		if err != nil {
			if errors.Is(err, tsfile.ErrNoSeries) {
				continue
			}
			return nil, nil, err
		}
		for ci, m := range chunks {
			if m.MaxT < minT || m.MinT > maxT {
				continue
			}
			lo, hi := m.MinT, m.MaxT
			if lo < minT {
				lo = minT
			}
			if hi > maxT {
				hi = maxT
			}
			refs = append(refs, chunkRef{df: df, ci: ci, meta: m, lo: lo, hi: hi})
		}
	}
	if len(refs) == 0 {
		return nil, [][2]int64{{minT, maxT}}, nil
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].lo < refs[j].lo })
	blocked := make([]bool, len(refs))
	// Chunk-vs-chunk: any interval overlap means newest-wins merging is
	// required, which the evaluator cannot do. Chunk counts per series are
	// bounded by the file count, so the pairwise sweep stays cheap.
	for i := range refs {
		for j := i + 1; j < len(refs) && refs[j].lo <= refs[i].hi; j++ {
			blocked[i], blocked[j] = true, true
		}
	}
	// Chunk-vs-memtable: a buffered point inside a chunk's interval is fresher
	// than the chunk. memSnapshot is sorted and already tombstone-masked, so
	// it is exactly what the merged scan would add.
	mem := e.memSnapshot(series, minT, maxT)
	for i, ref := range refs {
		if blocked[i] || len(mem) == 0 {
			continue
		}
		k := sort.Search(len(mem), func(k int) bool { return mem[k].T >= ref.lo })
		if k < len(mem) && mem[k].T <= ref.hi {
			blocked[i] = true
		}
	}
	// Chunk-vs-tombstone: a tombstone with a later sequence than the chunk's
	// file masks points the evaluator would count.
	for _, ts := range e.tombs {
		if ts.series != series {
			continue
		}
		for i, ref := range refs {
			if !blocked[i] && ref.df.seq < ts.seq && ts.minT <= ref.hi && ts.maxT >= ref.lo {
				blocked[i] = true
			}
		}
	}
	excl := make([]chunkRef, 0, len(refs))
	cursor := minT
	var gaps [][2]int64
	done := false
	for i, ref := range refs {
		if blocked[i] {
			continue
		}
		if ref.lo > cursor {
			gaps = append(gaps, [2]int64{cursor, ref.lo - 1})
		}
		excl = append(excl, ref)
		if ref.hi == math.MaxInt64 {
			done = true
			break
		}
		cursor = ref.hi + 1
	}
	if !done && cursor <= maxT {
		gaps = append(gaps, [2]int64{cursor, maxT})
	}
	return excl, gaps, nil
}

// WindowAgg aggregates a series into fixed windows of `window` timestamp
// units anchored at minT, in the compressed domain where the data allows.
// window <= 0 collapses the whole range into a single bucket (Aggregate).
// Exclusive chunks are evaluated in parallel per file run; the results are
// value-identical to bucketing a full merged scan.
func (e *Engine) WindowAgg(series string, minT, maxT, window int64) ([]Bucket, error) {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if minT > maxT {
		return nil, nil
	}
	excl, gaps, err := e.planPushdown(series, minT, maxT)
	if err != nil {
		return nil, err
	}
	w := pushdown.NewWindows(minT, window)
	groups := groupByFile(excl)
	if len(groups) > 0 {
		parts := make([]*pushdown.Windows, len(groups))
		errs := make([]error, len(groups))
		fanOut(runtime.GOMAXPROCS(0), len(groups), func(i int) {
			part := pushdown.NewWindows(minT, window)
			ev := &pushdown.Evaluator{
				R: groups[i][0].df.reader, Series: series,
				MinT: minT, MaxT: maxT, W: part, T: &e.ptiers,
			}
			for _, ref := range groups[i] {
				if errs[i] = ev.EvalChunk(ref.ci, ref.meta); errs[i] != nil {
					return
				}
			}
			parts[i] = part
		})
		for i, part := range parts {
			if errs[i] != nil {
				return nil, errs[i]
			}
			w.Merge(part)
		}
	}
	for _, g := range gaps {
		pts, err := e.queryLocked(series, g[0], g[1])
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			w.Add(p.T, p.V)
		}
	}
	return w.Buckets(), nil
}

// groupByFile splits the exclusive chunks into per-file runs, preserving file
// order (the planner's refs arrive time-sorted, which within one file is also
// chunk order for engine-written files).
func groupByFile(refs []chunkRef) [][]chunkRef {
	var groups [][]chunkRef
	idx := map[*dataFile]int{}
	for _, ref := range refs {
		i, ok := idx[ref.df]
		if !ok {
			i = len(groups)
			idx[ref.df] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], ref)
	}
	return groups
}

// Aggregate returns the count/min/max/sum of a series over [minT, maxT] as a
// single bucket (Count 0 when the range is empty), answered from chunk
// statistics and partial decode where possible.
func (e *Engine) Aggregate(series string, minT, maxT int64) (Bucket, error) {
	buckets, err := e.WindowAgg(series, minT, maxT, 0)
	if err != nil {
		return Bucket{}, err
	}
	if len(buckets) == 0 {
		return Bucket{Start: minT}, nil
	}
	return buckets[0], nil
}

// QueryFilterEach streams the points of a series with minT <= T <= maxT and
// minV <= V <= maxV through fn in time order. Chunks disproved by footer
// statistics cost nothing; BOS-packed exclusive chunks decode only the value
// planes the predicate can reach. The matching points are collected under the
// engine read lock and fn runs after it is released, so a slow consumer
// cannot stall writes (the result is bounded by the filtered size, not the
// scanned size).
func (e *Engine) QueryFilterEach(series string, minT, maxT, minV, maxV int64, fn func(tsfile.Point) error) error {
	pts, err := e.queryFilter(series, minT, maxT, minV, maxV)
	if err != nil {
		return err
	}
	for _, p := range pts {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) queryFilter(series string, minT, maxT, minV, maxV int64) ([]tsfile.Point, error) {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if minT > maxT || minV > maxV {
		return nil, nil
	}
	excl, gaps, err := e.planPushdown(series, minT, maxT)
	if err != nil {
		return nil, err
	}
	// Exclusive chunk intervals and gaps tile the range disjointly, so
	// walking the segments in start order yields global time order.
	type segment struct {
		start int64
		ref   *chunkRef
		gap   [2]int64
	}
	segs := make([]segment, 0, len(excl)+len(gaps))
	for i := range excl {
		segs = append(segs, segment{start: excl[i].lo, ref: &excl[i]})
	}
	for _, g := range gaps {
		segs = append(segs, segment{start: g[0], gap: g})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	var out []tsfile.Point
	f := &pushdown.Filter{
		Series: series, MinT: minT, MaxT: maxT,
		MinV: minV, MaxV: maxV, T: &e.ptiers,
	}
	for _, seg := range segs {
		if seg.ref != nil {
			f.R = seg.ref.df.reader
			err := f.FilterChunk(seg.ref.ci, seg.ref.meta, func(p tsfile.Point) error {
				out = append(out, p)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		pts, err := e.queryLocked(series, seg.gap[0], seg.gap[1])
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if p.V >= minV && p.V <= maxV {
				out = append(out, p)
			}
		}
	}
	return out, nil
}
