package engine

import (
	"math"
	"sort"

	"bos/internal/tsfile"
)

// Per-series statistics: the serving layer's /stats endpoint reports these so
// operators can see which series dominate memory and disk, and which value
// kind (int vs float) each series holds.

// SeriesStat summarizes one series' footprint across the memtable and every
// data file.
type SeriesStat struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"` // "int" or "float"
	MemPoints  int    `json:"mem_points"`
	DiskPoints int    `json:"disk_points"`
	DiskBytes  int64  `json:"disk_bytes"` // encoded chunk payload bytes
	Chunks     int    `json:"chunks"`
	MinT       int64  `json:"min_t"` // meaningful only when the series has points
	MaxT       int64  `json:"max_t"`
}

// SeriesStats reports per-series footprints, sorted by name.
func (e *Engine) SeriesStats() []SeriesStat {
	if e.closed.Load() {
		return nil
	}
	stats := map[string]*SeriesStat{}
	get := func(name string) *SeriesStat {
		s, ok := stats[name]
		if !ok {
			s = &SeriesStat{Name: name, Kind: "int", MinT: math.MaxInt64, MaxT: math.MinInt64}
			stats[name] = s
		}
		return s
	}
	e.structMu.RLock()
	for _, df := range e.files {
		for _, name := range df.reader.Series() {
			chunks, err := df.reader.Chunks(name)
			if err != nil {
				continue
			}
			s := get(name)
			for _, c := range chunks {
				s.DiskPoints += c.Count
				s.DiskBytes += int64(c.EncodedBytes)
				s.Chunks++
				if c.Kind != 0 {
					s.Kind = "float"
				}
				if c.MinT < s.MinT {
					s.MinT = c.MinT
				}
				if c.MaxT > s.MaxT {
					s.MaxT = c.MaxT
				}
			}
		}
	}
	e.structMu.RUnlock()
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		// An in-flight flush snapshot still counts as buffered memory.
		for _, m := range []map[string][]tsfile.Point{st.mem, st.flush} {
			for name, pts := range m {
				if len(pts) == 0 {
					continue
				}
				s := get(name)
				s.MemPoints += len(pts)
				for _, p := range pts {
					if p.T < s.MinT {
						s.MinT = p.T
					}
					if p.T > s.MaxT {
						s.MaxT = p.T
					}
				}
			}
		}
		for _, m := range []map[string][]tsfile.FloatPoint{st.memF, st.flushF} {
			for name, pts := range m {
				if len(pts) == 0 {
					continue
				}
				s := get(name)
				s.Kind = "float"
				s.MemPoints += len(pts)
				for _, p := range pts {
					if p.T < s.MinT {
						s.MinT = p.T
					}
					if p.T > s.MaxT {
						s.MaxT = p.T
					}
				}
			}
		}
		st.mu.RUnlock()
	}
	out := make([]SeriesStat, 0, len(stats))
	for _, s := range stats {
		if s.MemPoints == 0 && s.DiskPoints == 0 {
			continue
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SeriesKind reports the value kind of a series: "int", "float", or "" when
// the series is unknown.
func (e *Engine) SeriesKind(series string) string {
	if e.closed.Load() {
		return ""
	}
	st := e.stripe(series)
	st.mu.RLock()
	memF := len(st.memF[series]) + len(st.flushF[series])
	mem := len(st.mem[series]) + len(st.flush[series])
	st.mu.RUnlock()
	if memF > 0 {
		return "float"
	}
	if mem > 0 {
		return "int"
	}
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	known := false
	for _, df := range e.files {
		chunks, err := df.reader.Chunks(series)
		if err != nil {
			continue
		}
		for _, c := range chunks {
			known = true
			if c.Kind != 0 {
				return "float"
			}
		}
	}
	if known {
		return "int"
	}
	return ""
}
