package engine

import (
	"math/rand"
	"testing"

	"bos/internal/tsfile"
)

// collectEach drains QueryEach into a slice.
func collectEach(t *testing.T, e *Engine, series string, minT, maxT int64) []tsfile.Point {
	t.Helper()
	var out []tsfile.Point
	if err := e.QueryEach(series, minT, maxT, func(p tsfile.Point) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatalf("QueryEach: %v", err)
	}
	return out
}

func samePoints(t *testing.T, got, want []tsfile.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestQueryEachMatchesQuery drives a randomized workload of inserts,
// overwrites, flushes and deletes, checking that the streaming scan returns
// exactly what the buffering Query returns, including with a page size small
// enough to force many scan pages.
func TestQueryEachMatchesQuery(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(7))
	const series = "root.d1.s1"
	for round := 0; round < 6; round++ {
		pts := make([]tsfile.Point, 0, 500)
		for i := 0; i < 500; i++ {
			pts = append(pts, tsfile.Point{
				T: int64(rng.Intn(2000)), // heavy duplicate timestamps
				V: rng.Int63n(1 << 30),
			})
		}
		if err := e.InsertBatch(series, pts); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			if err := e.Flush(); err != nil { // spread the data over files
				t.Fatal(err)
			}
		}
		if round == 3 {
			if err := e.DeleteRange(series, 300, 600); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, r := range [][2]int64{{0, 2000}, {100, 150}, {599, 601}, {1999, 5000}, {50, 49}} {
		want, err := e.Query(series, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, collectEach(t, e, series, r[0], r[1]), want)
	}
	// Unknown series streams nothing.
	if got := collectEach(t, e, "no.such.series", 0, 100); len(got) != 0 {
		t.Fatalf("unknown series returned %d points", len(got))
	}
}

// TestQueryEachSmallPages forces the pagination path by scanning more points
// than one page holds.
func TestQueryEachSmallPages(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 3000})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const series = "s"
	n := scanPageSize*2 + 123
	pts := make([]tsfile.Point, n)
	for i := range pts {
		pts[i] = tsfile.Point{T: int64(i), V: int64(i * 3)}
	}
	if err := e.InsertBatch(series, pts); err != nil {
		t.Fatal(err)
	}
	got := collectEach(t, e, series, 0, int64(n))
	want, err := e.Query(series, 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, got, want)
}

func TestSeriesStatsAndKind(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InsertBatch("ints", []tsfile.Point{{T: 1, V: 10}, {T: 2, V: 20}}); err != nil {
		t.Fatal(err)
	}
	if err := e.InsertFloat("floats", 5, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("ints", 3, 30); err != nil { // memtable on top of disk
		t.Fatal(err)
	}
	stats := e.SeriesStats()
	if len(stats) != 2 {
		t.Fatalf("got %d series stats, want 2", len(stats))
	}
	f, i := stats[0], stats[1]
	if f.Name != "floats" || f.Kind != "float" || f.DiskPoints != 1 {
		t.Fatalf("float stat: %+v", f)
	}
	if i.Name != "ints" || i.Kind != "int" || i.DiskPoints != 2 || i.MemPoints != 1 {
		t.Fatalf("int stat: %+v", i)
	}
	if i.MinT != 1 || i.MaxT != 3 {
		t.Fatalf("int stat time range: %+v", i)
	}
	if i.DiskBytes <= 0 || i.Chunks == 0 {
		t.Fatalf("int stat disk footprint: %+v", i)
	}
	if k := e.SeriesKind("ints"); k != "int" {
		t.Fatalf("SeriesKind(ints) = %q", k)
	}
	if k := e.SeriesKind("floats"); k != "float" {
		t.Fatalf("SeriesKind(floats) = %q", k)
	}
	if k := e.SeriesKind("missing"); k != "" {
		t.Fatalf("SeriesKind(missing) = %q", k)
	}
}
