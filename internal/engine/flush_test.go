package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bos/internal/tsfile"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFlushDoesNotBlockInserts pins the tentpole property: while the flush
// pipeline is encoding (stalled via the test hook), inserts and queries
// proceed, and queries see both the in-flight snapshot and the new points.
func TestFlushDoesNotBlockInserts(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 100; i++ {
		if err := e.Insert("s", i, i*2); err != nil {
			t.Fatal(err)
		}
	}

	encoding := make(chan struct{})
	release := make(chan struct{})
	testFlushHook = func(stage string) error {
		if stage == "encode" {
			close(encoding)
			<-release
		}
		return nil
	}
	defer func() { testFlushHook = nil }()

	flushErr := make(chan error, 1)
	go func() { flushErr <- e.Flush() }()
	<-encoding

	// The snapshot is in flight and the encoder is stalled. Every stripe
	// lock is free: inserts on any series must complete...
	done := make(chan error, 1)
	go func() {
		for i := int64(100); i < 200; i++ {
			if err := e.Insert("s", i, i*2); err != nil {
				done <- err
				return
			}
		}
		done <- e.Insert("other", 1, 42)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert blocked by in-flight flush")
	}

	// ...and queries see the snapshot merged with the fresh memtable.
	got, err := e.Query("s", 0, 299)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("mid-flush query got %d points, want 200", len(got))
	}
	for i, p := range got {
		if p.T != int64(i) || p.V != int64(i)*2 {
			t.Fatalf("point %d = %v", i, p)
		}
	}

	close(release)
	if err := <-flushErr; err != nil {
		t.Fatal(err)
	}
	got, err = e.Query("s", 0, 299)
	if err != nil || len(got) != 200 {
		t.Fatalf("post-flush query got %d points err %v", len(got), err)
	}
	if st := e.Stats(); st.Files != 1 {
		t.Fatalf("files = %d want 1", st.Files)
	}
}

// TestSlowWALSyncDoesNotBlockStripes pins the group-commit property that no
// stripe lock is held across WAL I/O: while the commit leader is stalled in
// its write+sync, writers on other stripes still reach the memtable (their
// points become visible to queries) even though their durability ack waits.
func TestSlowWALSyncDoesNotBlockStripes(t *testing.T) {
	e := openTest(t, Options{SyncWAL: true})
	defer e.Close()

	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	testWALSyncHook = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() { testWALSyncHook = nil }()

	lead := make(chan error, 1)
	go func() { lead <- e.Insert("leader", 1, 1) }()
	<-entered // the leader is now stalled mid-commit, off every stripe lock

	var follow sync.WaitGroup
	followErrs := make([]error, 8)
	for i := range followErrs {
		follow.Add(1)
		go func(i int) {
			defer follow.Done()
			followErrs[i] = e.Insert(fmt.Sprintf("f-%d", i), 1, int64(i))
		}(i)
	}

	// Each follower appends to its stripe before waiting on the group: the
	// points must become queryable while the leader's sync is still stalled.
	for i := range followErrs {
		series := fmt.Sprintf("f-%d", i)
		waitFor(t, series+" visible during slow sync", func() bool {
			pts, err := e.Query(series, 0, 10)
			return err == nil && len(pts) == 1
		})
	}

	close(release)
	if err := <-lead; err != nil {
		t.Fatal(err)
	}
	follow.Wait()
	for i, err := range followErrs {
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.WALRecords != 9 {
		t.Fatalf("WALRecords = %d want 9", st.WALRecords)
	}
	if st.WALGroups < 1 || st.WALGroups > st.WALRecords {
		t.Fatalf("WALGroups = %d (records %d)", st.WALGroups, st.WALRecords)
	}
}

// TestGroupCommitBatchesFsyncs drives many concurrent sync writers and
// checks the commit groups actually batch: fewer groups than records.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	e := openTest(t, Options{SyncWAL: true})
	defer e.Close()
	const writers, batches = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("w-%d", w)
			for i := 0; i < batches; i++ {
				if err := e.Insert(series, int64(i), int64(i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	st := e.Stats()
	if st.WALRecords != writers*batches {
		t.Fatalf("WALRecords = %d want %d", st.WALRecords, writers*batches)
	}
	if st.WALGroups < 1 || st.WALGroups > st.WALRecords {
		t.Fatalf("WALGroups = %d out of range (records %d)", st.WALGroups, st.WALRecords)
	}
	t.Logf("group commit: %d records in %d groups", st.WALRecords, st.WALGroups)
}

// TestFlushCrashInjection aborts the flush pipeline at each stage and checks
// the engine rolls back to a queryable state, keeps working, and recovers the
// same data after a crash+reopen (the sealed WAL segments cover the rolled
// back points; a file orphaned after the durable rename is adopted).
func TestFlushCrashInjection(t *testing.T) {
	for _, stage := range []string{"snapshot", "encode", "encoded", "renamed"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			e := openTest(t, Options{Dir: dir})
			want := map[int64]int64{}
			for i := int64(0); i < 300; i++ {
				if err := e.Insert("s", i, i*5); err != nil {
					t.Fatal(err)
				}
				want[i] = i * 5
			}
			if err := e.InsertFloat("fs", 1, 2.5); err != nil {
				t.Fatal(err)
			}

			boom := errors.New("injected: " + stage)
			testFlushHook = func(s string) error {
				if s == stage {
					return boom
				}
				return nil
			}
			if err := e.Flush(); !errors.Is(err, boom) {
				testFlushHook = nil
				t.Fatalf("Flush err = %v, want injected failure", err)
			}
			testFlushHook = nil

			// Rolled back: everything still queryable, engine still writable.
			got, err := e.Query("s", 0, 999)
			if err != nil || len(got) != 300 {
				t.Fatalf("after rollback: %d points err %v", len(got), err)
			}
			if err := e.Insert("s", 1000, 7); err != nil {
				t.Fatal(err)
			}
			want[1000] = 7

			// Crash without a clean Close; reopen must see every point
			// exactly once (sealed segments replay; after "renamed" the
			// orphaned data file is also loaded and newest-wins dedupes).
			e.closeFiles()
			e.log.close()
			e2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			got, err = e2.Query("s", 0, 9999)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("recovered %d points want %d", len(got), len(want))
			}
			for _, p := range got {
				if want[p.T] != p.V {
					t.Fatalf("recovered %v want v=%d", p, want[p.T])
				}
			}
			fpts, err := e2.QueryFloats("fs", 0, 10)
			if err != nil || len(fpts) != 1 || fpts[0].V != 2.5 {
				t.Fatalf("recovered floats %v err %v", fpts, err)
			}
			// The engine must flush cleanly after recovery.
			if err := e2.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, _ = e2.Query("s", 0, 9999); len(got) != len(want) {
				t.Fatalf("post-recovery flush lost points: %d want %d", len(got), len(want))
			}
		})
	}
}

// TestTombstoneDuringFlushRollback deletes a range while the snapshot is in
// flight, then fails the flush: the rollback must apply the tombstone to the
// restored points instead of resurrecting them.
func TestTombstoneDuringFlushRollback(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 100; i++ {
		if err := e.Insert("s", i, i); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("injected")
	testFlushHook = func(stage string) error {
		if stage != "encode" {
			return nil
		}
		// Runs off every engine lock: a delete must go through mid-flight.
		if err := e.DeleteRange("s", 0, 49); err != nil {
			return fmt.Errorf("mid-flight delete: %w", err)
		}
		return boom
	}
	err := e.Flush()
	testFlushHook = nil
	if !errors.Is(err, boom) {
		t.Fatalf("Flush err = %v", err)
	}
	got, err := e.Query("s", 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 || got[0].T != 50 {
		t.Fatalf("after rollback+delete: %d points, first %v", len(got), got[0])
	}
}

// TestFlushEncodeDeterminism pins byte-identical output across encode worker
// counts, for both the flush file and a subsequent compaction.
func TestFlushEncodeDeterminism(t *testing.T) {
	files := func(workers int) (flushed, compacted []byte) {
		dir := t.TempDir()
		e := openTest(t, Options{Dir: dir, EncodeWorkers: workers})
		defer e.Close()
		for s := 0; s < 8; s++ {
			series := fmt.Sprintf("series-%02d", s)
			for i := int64(0); i < 200; i++ {
				if err := e.Insert(series, i*3+int64(s), i*int64(s+1)-7*(i%5)); err != nil {
					t.Fatal(err)
				}
			}
			fseries := fmt.Sprintf("float-%02d", s)
			for i := int64(0); i < 100; i++ {
				if err := e.InsertFloat(fseries, i, float64(i)*0.25+float64(s)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		first, err := filepath.Glob(filepath.Join(dir, "data-*.tsf"))
		if err != nil || len(first) != 1 {
			t.Fatalf("after flush: files %v err %v", first, err)
		}
		flushed, err = os.ReadFile(first[0])
		if err != nil {
			t.Fatal(err)
		}
		// Second layer plus a merge: compaction fans out the same way.
		for s := 0; s < 8; s++ {
			series := fmt.Sprintf("series-%02d", s)
			for i := int64(500); i < 600; i++ {
				if err := e.Insert(series, i, i); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
		names, err := filepath.Glob(filepath.Join(dir, "data-*.tsf"))
		if err != nil || len(names) != 1 {
			t.Fatalf("after compact: files %v err %v", names, err)
		}
		compacted, err = os.ReadFile(names[0])
		if err != nil {
			t.Fatal(err)
		}
		return flushed, compacted
	}
	serialFlush, serialCompact := files(1)
	parallelFlush, parallelCompact := files(8)
	if !bytes.Equal(serialFlush, parallelFlush) {
		t.Error("flush output differs between 1 and 8 encode workers")
	}
	if !bytes.Equal(serialCompact, parallelCompact) {
		t.Error("compaction output differs between 1 and 8 encode workers")
	}
}

// TestConcurrentFlushInsertQueryCompact is a -race stress: every write-path
// phase runs at once against one engine.
func TestConcurrentFlushInsertQueryCompact(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 500, SyncWAL: true})
	defer e.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	report := func(err error) {
		if err != nil && !errors.Is(err, ErrClosed) {
			select {
			case errCh <- err:
			default:
			}
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("stress-%d", w)
			pts := make([]tsfile.Point, 20)
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range pts {
					pts[j] = tsfile.Point{T: i*20 + int64(j), V: i}
				}
				report(e.InsertBatch(series, pts))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			report(e.InsertFloat("stress-f", i, float64(i)))
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := e.Query(fmt.Sprintf("stress-%d", r), 0, 1<<40)
				report(err)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			report(e.Flush())
			report(e.Compact())
			report(e.DeleteRange("stress-0", 0, 10))
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Everything must still be intact and queryable.
	if _, err := e.Query("stress-1", 0, 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
