package engine

import (
	"testing"

	"bos/internal/tsfile"
)

func TestDeleteRangeMemtable(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 10; i++ {
		e.Insert("s", i, i*10)
	}
	if err := e.DeleteRange("s", 3, 6); err != nil {
		t.Fatal(err)
	}
	got, err := e.Query("s", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %v", got)
	}
	for _, p := range got {
		if p.T >= 3 && p.T <= 6 {
			t.Fatalf("deleted point survived: %v", p)
		}
	}
}

func TestDeleteRangeMasksFiles(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 100; i++ {
		e.Insert("s", i, i)
	}
	e.Flush() // data now on disk
	if err := e.DeleteRange("s", 20, 79); err != nil {
		t.Fatal(err)
	}
	got, err := e.Query("s", 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d points want 40", len(got))
	}
}

func TestInsertAfterDeleteSurvivesFlush(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.Insert("s", 5, 100)
	e.Flush()
	e.DeleteRange("s", 0, 10)
	e.Insert("s", 5, 200) // newer than the delete
	e.Flush()             // the new point lands in a file with seq >= tombstone seq
	got, err := e.Query("s", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (tsfile.Point{T: 5, V: 200}) {
		t.Fatalf("got %v", got)
	}
}

func TestDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		e.Insert("s", i, i)
	}
	e.Flush()
	e.DeleteRange("s", 10, 39)
	// Crash without compaction: the tombstone lives only in the WAL.
	e.closeFiles()
	e.log.close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d points want 20 after restart", len(got))
	}
}

func TestCompactionReclaimsDeletes(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	for i := int64(0); i < 2000; i++ {
		e.Insert("s", i, i)
	}
	e.Flush()
	e.Insert("s2", 1, 1) // second file so Compact has work
	e.Flush()
	before := e.Stats().DiskBytes
	if err := e.DeleteRange("s", 0, 1499); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.DiskBytes >= before {
		t.Errorf("compaction did not reclaim: %d -> %d bytes", before, after.DiskBytes)
	}
	got, err := e.Query("s", 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("got %d points want 500", len(got))
	}
	// Tombstones are gone: a full re-query after another flush cycle
	// still sees the surviving points.
	e.Insert("s", 10, 777) // re-insert into a previously deleted slot
	got, _ = e.Query("s", 10, 10)
	if len(got) != 1 || got[0].V != 777 {
		t.Fatalf("post-compaction insert lost: %v", got)
	}
}

func TestDeleteRangeValidation(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	if err := e.DeleteRange("s", 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDeleteFlushPreservesTombstones(t *testing.T) {
	// Flushing resets the WAL; pending tombstones must be rewritten so a
	// crash after the flush still honors the delete.
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		e.Insert("s", i, i)
	}
	e.Flush()
	e.DeleteRange("s", 0, 9)
	e.Insert("s", 100, 100)
	e.Flush() // WAL reset happens here; tombstone must be re-logged
	e.closeFiles()
	e.log.close()

	e2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Query("s", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("deleted points resurrected after flush+restart: %v", got)
	}
	got, _ = e2.Query("s", 100, 100)
	if len(got) != 1 {
		t.Fatalf("post-delete insert lost: %v", got)
	}
}
