package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bos/internal/tsfile"
)

// TestConcurrentStress hammers one engine from parallel inserters (int and
// float), queriers (buffered and streaming), flushers, compactors and
// deleters. Run under -race it documents the locking contract the serving
// layer depends on; the final verification checks that every acknowledged
// insert outside deleted ranges is readable.
func TestConcurrentStress(t *testing.T) {
	e, err := Open(Options{Dir: t.TempDir(), FlushThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const (
		writers  = 8
		readers  = 4
		perBatch = 25
		batches  = 20
	)
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}

	// Writers: each owns one series so the final contents are deterministic.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := fmt.Sprintf("root.sg.w%d", w)
			for b := 0; b < batches; b++ {
				if w%2 == 0 {
					pts := make([]tsfile.Point, perBatch)
					for i := range pts {
						t := int64(b*perBatch + i)
						pts[i] = tsfile.Point{T: t, V: t * 10}
					}
					if err := e.InsertBatch(series, pts); err != nil {
						fail("writer %d: %v", w, err)
						return
					}
				} else {
					pts := make([]tsfile.FloatPoint, perBatch)
					for i := range pts {
						t := int64(b*perBatch + i)
						pts[i] = tsfile.FloatPoint{T: t, V: float64(t) / 2}
					}
					if err := e.InsertFloatBatch(series, pts); err != nil {
						fail("writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: random range queries must never error or go backwards in time.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 60; i++ {
				w := rng.Intn(writers)
				series := fmt.Sprintf("root.sg.w%d", w)
				lo := int64(rng.Intn(300))
				hi := lo + int64(rng.Intn(300))
				if w%2 == 0 {
					var prev int64 = -1
					err := e.QueryEach(series, lo, hi, func(p tsfile.Point) error {
						if p.T <= prev {
							return fmt.Errorf("time went backwards: %d after %d", p.T, prev)
						}
						prev = p.T
						return nil
					})
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					if _, err := e.Query(series, lo, hi); err != nil {
						fail("reader %d: %v", r, err)
						return
					}
				} else {
					if _, err := e.QueryFloats(series, lo, hi); err != nil {
						fail("reader %d: %v", r, err)
						return
					}
				}
				e.Stats()
				e.SeriesStats()
			}
		}(r)
	}

	// Background maintenance racing the foreground traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := e.Flush(); err != nil {
				fail("flush: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := e.Compact(); err != nil {
				fail("compact: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Delete a range of writer 0's series; points inserted afterwards
		// survive, so only assert the engine stays consistent, not counts.
		if err := e.DeleteRange("root.sg.w0", 100, 120); err != nil {
			fail("delete: %v", err)
		}
	}()

	wg.Wait()
	if failed.Load() {
		return
	}

	// Every acknowledged write of the non-deleted writers must be readable.
	total := int64(batches * perBatch)
	for w := 1; w < writers; w++ {
		series := fmt.Sprintf("root.sg.w%d", w)
		if w%2 == 0 {
			pts, err := e.Query(series, 0, total)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != int(total) {
				t.Fatalf("%s: %d points, want %d", series, len(pts), total)
			}
			for _, p := range pts {
				if p.V != p.T*10 {
					t.Fatalf("%s: point %+v corrupted", series, p)
				}
			}
		} else {
			pts, err := e.QueryFloats(series, 0, total)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) != int(total) {
				t.Fatalf("%s: %d float points, want %d", series, len(pts), total)
			}
			for _, p := range pts {
				if p.V != float64(p.T)/2 {
					t.Fatalf("%s: point %+v corrupted", series, p)
				}
			}
		}
	}
}
