package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"bos/internal/bitpack"
	"bos/internal/tsfile"
)

func openTest(t *testing.T, opt Options) *Engine {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	e, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInsertQueryAcrossFlush(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 100})
	defer e.Close()
	want := map[int64]int64{}
	for i := int64(0); i < 1000; i++ {
		v := i * 3
		if err := e.Insert("s", i, v); err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	// Several automatic flushes have happened; data spans files + memtable.
	got, err := e.Query("s", 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("got %d points want 1000", len(got))
	}
	for i, p := range got {
		if p.T != int64(i) || p.V != want[p.T] {
			t.Fatalf("point %d = %v", i, p)
		}
	}
	st := e.Stats()
	if st.Files == 0 {
		t.Error("expected automatic flushes to create files")
	}
}

func TestOutOfOrderAndOverwrite(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.Insert("s", 10, 1)
	e.Insert("s", 5, 2)
	e.Insert("s", 10, 3) // overwrite in memtable
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Insert("s", 5, 4) // overwrite from a newer layer
	got, err := e.Query("s", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0] != (tsfile.Point{T: 5, V: 4}) || got[1] != (tsfile.Point{T: 10, V: 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	rng := rand.New(rand.NewSource(1))
	var want []tsfile.Point
	for i := int64(0); i < 5000; i++ {
		p := tsfile.Point{T: i, V: rng.Int63n(1 << 30)}
		want = append(want, p)
		e.Insert("root.d.m", p.T, p.V)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	got, err := e2.Query("root.d.m", 0, 4999)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d points want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestCompact(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 64})
	defer e.Close()
	rng := rand.New(rand.NewSource(2))
	want := map[string]map[int64]int64{}
	for _, s := range []string{"a", "b", "c"} {
		want[s] = map[int64]int64{}
		for i := 0; i < 700; i++ {
			tt := rng.Int63n(2000) // duplicates across flushes on purpose
			v := rng.Int63n(1000)
			e.Insert(s, tt, v)
			want[s][tt] = v
		}
	}
	before := e.Stats()
	if before.Files < 2 {
		t.Fatalf("want multiple files before compaction, got %d", before.Files)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Files != 1 {
		t.Fatalf("want 1 file after compaction, got %d", after.Files)
	}
	for s, m := range want {
		got, err := e.Query(s, 0, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(m) {
			t.Fatalf("%s: %d points want %d", s, len(got), len(m))
		}
		for _, p := range got {
			if m[p.T] != p.V {
				t.Fatalf("%s: t=%d got %d want %d", s, p.T, p.V, m[p.T])
			}
		}
	}
}

func TestSeriesListing(t *testing.T) {
	e := openTest(t, Options{})
	defer e.Close()
	e.Insert("b", 1, 1)
	e.Insert("a", 1, 1)
	e.Flush()
	e.Insert("c", 1, 1)
	got := e.Series()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("series = %v", got)
	}
}

func TestClosedErrors(t *testing.T) {
	e := openTest(t, Options{})
	e.Insert("s", 1, 1)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("s", 2, 2); !errors.Is(err, ErrClosed) {
		t.Errorf("insert after close: %v", err)
	}
	if _, err := e.Query("s", 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("query after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestConcurrentInsertQuery(t *testing.T) {
	e := openTest(t, Options{FlushThreshold: 500})
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			series := string(rune('a' + g))
			for i := int64(0); i < 2000; i++ {
				if err := e.Insert(series, i, i*int64(g+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.Query("a", 0, 1<<40)
			e.Stats()
		}
	}()
	wg.Wait()
	for g := 0; g < 4; g++ {
		series := string(rune('a' + g))
		got, err := e.Query(series, 0, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2000 {
			t.Fatalf("%s: %d points want 2000", series, len(got))
		}
		for i, p := range got {
			if p.V != int64(i)*int64(g+1) {
				t.Fatalf("%s point %d = %v", series, i, p)
			}
		}
	}
}

func TestBOSFilesSmallerThanBP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]tsfile.Point, 30000)
	v := int64(1 << 20)
	for i := range pts {
		if rng.Float64() < 0.01 {
			v += rng.Int63n(1<<28) - 1<<27
		} else {
			v += rng.Int63n(9) - 4
		}
		pts[i] = tsfile.Point{T: int64(i), V: v}
	}
	size := func(opt tsfile.Options) int64 {
		e := openTest(t, Options{File: opt})
		defer e.Close()
		e.InsertBatch("s", pts)
		e.Flush()
		return e.Stats().DiskBytes
	}
	bos := size(tsfile.Options{})
	bp := size(tsfile.Options{Packer: bitpack.Packer{}})
	if bos >= bp {
		t.Errorf("BOS engine %d bytes >= BP engine %d", bos, bp)
	}
}

func BenchmarkInsertFlushQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]tsfile.Point, 10000)
	v := int64(0)
	for i := range pts {
		v += rng.Int63n(17) - 8
		pts[i] = tsfile.Point{T: int64(i), V: v}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		e, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		e.InsertBatch("s", pts)
		e.Flush()
		if _, err := e.Query("s", 2000, 8000); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}
