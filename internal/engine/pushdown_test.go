package engine

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bos/internal/tsfile"
)

// refBuckets replicates the pre-pushdown Downsample: bucket an already-merged
// scan result. pts must be time-sorted and within [minT, maxT].
func refBuckets(pts []tsfile.Point, minT, window int64) []Bucket {
	var out []Bucket
	var cur *Bucket
	for _, p := range pts {
		start := minT
		if window > 0 {
			start = minT + (p.T-minT)/window*window
		}
		if cur == nil || cur.Start != start {
			out = append(out, Bucket{Start: start, Min: p.V, Max: p.V})
			cur = &out[len(out)-1]
		}
		cur.Count++
		if p.V < cur.Min {
			cur.Min = p.V
		}
		if p.V > cur.Max {
			cur.Max = p.V
		}
		cur.Sum += p.V
	}
	return out
}

func requireBuckets(t *testing.T, what string, got, want []Bucket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d buckets, want %d\n got: %+v\nwant: %+v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bucket %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// checkPushdown asserts WindowAgg, Aggregate and QueryFilterEach agree with
// the merged scan on one series/range/window/predicate combination.
func checkPushdown(t *testing.T, e *Engine, series string, minT, maxT, window, minV, maxV int64) {
	t.Helper()
	ref, err := e.Query(series, minT, maxT)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.WindowAgg(series, minT, maxT, window)
	if err != nil {
		t.Fatal(err)
	}
	requireBuckets(t, "WindowAgg", got, refBuckets(ref, minT, window))

	agg, err := e.Aggregate(series, minT, maxT)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := Bucket{Start: minT}
	if len(ref) > 0 {
		wantAgg = refBuckets(ref, minT, 0)[0]
	}
	if agg != wantAgg {
		t.Fatalf("Aggregate = %+v, want %+v", agg, wantAgg)
	}

	var fgot []tsfile.Point
	err = e.QueryFilterEach(series, minT, maxT, minV, maxV, func(p tsfile.Point) error {
		fgot = append(fgot, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var fwant []tsfile.Point
	for _, p := range ref {
		if p.V >= minV && p.V <= maxV {
			fwant = append(fwant, p)
		}
	}
	if len(fgot) != len(fwant) {
		t.Fatalf("QueryFilterEach [%d,%d]: %d points, want %d", minV, maxV, len(fgot), len(fwant))
	}
	for i := range fgot {
		if fgot[i] != fwant[i] {
			t.Fatalf("QueryFilterEach point %d = %+v, want %+v", i, fgot[i], fwant[i])
		}
	}
}

// fillChunks inserts `chunks` flushed batches of `per` sequential points each
// (one chunk per flush), values in a small band with sparse large outliers.
func fillChunks(t *testing.T, e *Engine, series string, chunks, per int, rng *rand.Rand) []tsfile.Point {
	t.Helper()
	var all []tsfile.Point
	ts := int64(0)
	for c := 0; c < chunks; c++ {
		pts := make([]tsfile.Point, per)
		for i := range pts {
			v := int64(1000 + rng.Intn(64))
			if rng.Float64() < 0.02 {
				v += 1 << 30
			}
			pts[i] = tsfile.Point{T: ts, V: v}
			ts++
		}
		if err := e.InsertBatch(series, pts); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		all = append(all, pts...)
	}
	return all
}

func TestWindowAggTiersAndEquivalence(t *testing.T) {
	// Cache disabled: a chunk-cache hit is (correctly) counted as a full
	// decode, and the reference Query would warm every chunk.
	e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30, CacheBytes: -1})
	defer e.Close()
	rng := rand.New(rand.NewSource(11))
	all := fillChunks(t, e, "s", 6, 1000, rng)
	total := int64(len(all))

	// Disjoint time-ordered files: every chunk is exclusive. Chunk-aligned
	// windows answer interior chunks from stats; the range clip makes the
	// first chunk partial (inlier tier).
	checkPushdown(t, e, "s", 500, total-1, 1000, 1000, 1063)
	st := e.Stats().Pushdown
	if st.Stats == 0 {
		t.Fatalf("no stats-tier hits: %+v", st)
	}
	if st.Inlier == 0 {
		t.Fatalf("no inlier-tier hits: %+v", st)
	}

	// Sub-chunk windows and narrow value predicates still agree.
	checkPushdown(t, e, "s", 0, total-1, 300, 1010, 1020)
	checkPushdown(t, e, "s", 0, total-1, 0, -1<<40, 1<<40)

	// Buffered points over a chunk force that chunk back onto the merged
	// scan; results stay identical.
	if err := e.InsertBatch("s", []tsfile.Point{{T: 1500, V: -7}, {T: total + 10, V: 8}}); err != nil {
		t.Fatal(err)
	}
	checkPushdown(t, e, "s", 0, total+20, 1000, -10, 2000)

	// A tombstone over another chunk does the same.
	if err := e.DeleteRange("s", 2100, 2200); err != nil {
		t.Fatal(err)
	}
	checkPushdown(t, e, "s", 0, total+20, 1000, -10, 2000)
	checkPushdown(t, e, "s", 2000, 2300, 50, 1000, 1063)
}

func TestWindowAggOverlappingFiles(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30})
	defer e.Close()
	// Two files covering the same range with different values: newest must
	// win everywhere, which only the merged scan can decide.
	flushSeries(t, e, "s", tsfile.Point{T: 1, V: 10}, tsfile.Point{T: 2, V: 20}, tsfile.Point{T: 3, V: 30})
	flushSeries(t, e, "s", tsfile.Point{T: 2, V: 99})
	checkPushdown(t, e, "s", 0, 10, 2, 0, 100)
	agg, err := e.Aggregate("s", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 3 || agg.Sum != 10+99+30 || agg.Min != 10 || agg.Max != 99 {
		t.Fatalf("overlap aggregate = %+v", agg)
	}
}

func TestWindowAggFloatSeries(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30})
	defer e.Close()
	if err := e.InsertFloatBatch("f", []tsfile.FloatPoint{{T: 1, V: 1.5}, {T: 2, V: 2.5}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Int-path reads of a float series fail identically on both executors.
	if _, err := e.Query("f", 0, 10); !errors.Is(err, tsfile.ErrKindMismatch) {
		t.Fatalf("Query on float series: %v", err)
	}
	if _, err := e.WindowAgg("f", 0, 10, 5); !errors.Is(err, tsfile.ErrKindMismatch) {
		t.Fatalf("WindowAgg on float series: %v", err)
	}
	err := e.QueryFilterEach("f", 0, 10, -1, 1, func(tsfile.Point) error { return nil })
	if !errors.Is(err, tsfile.ErrKindMismatch) {
		t.Fatalf("QueryFilterEach on float series: %v", err)
	}
}

// verifyFileStats checks every integer chunk's footer statistics against its
// decoded columns — the invariant flush, compaction and repacking must keep.
func verifyFileStats(t *testing.T, e *Engine) {
	t.Helper()
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	for _, df := range e.files {
		for _, name := range df.reader.Series() {
			chunks, err := df.reader.Chunks(name)
			if err != nil {
				t.Fatal(err)
			}
			for ci, m := range chunks {
				if m.Kind != 0 {
					continue
				}
				if !m.HasStats {
					t.Fatalf("%s: %s chunk %d has no stats", df.path, name, ci)
				}
				times, vals, err := df.reader.ChunkColumns(name, ci)
				if err != nil {
					t.Fatal(err)
				}
				var sum int64
				minV, maxV := vals[0], vals[0]
				for _, v := range vals {
					sum += v
					if v < minV {
						minV = v
					}
					if v > maxV {
						maxV = v
					}
				}
				if m.Count != len(times) || m.Sum != sum || m.MinV != minV || m.MaxV != maxV {
					t.Fatalf("%s: %s chunk %d stats %+v, decoded count=%d sum=%d min=%d max=%d",
						df.path, name, ci, m, len(times), sum, minV, maxV)
				}
			}
		}
	}
}

func TestCompactionRewritesChunkStats(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30})
	defer e.Close()
	rng := rand.New(rand.NewSource(21))
	fillChunks(t, e, "s", 3, 800, rng)
	// Overwrites and a delete change the merged content, so the compacted
	// chunk's stats differ from any input chunk's.
	flushSeries(t, e, "s", tsfile.Point{T: 100, V: -5}, tsfile.Point{T: 101, V: 1 << 40})
	if err := e.DeleteRange("s", 700, 900); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	verifyFileStats(t, e)
	checkPushdown(t, e, "s", 0, 2399, 400, 0, 2000)
}

func TestRepackRewritesChunkStats(t *testing.T) {
	e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30})
	defer e.Close()
	rng := rand.New(rand.NewSource(22))
	fillChunks(t, e, "s", 3, 500, rng)
	st, err := e.CompactWith(func(SeriesData) string { return "bp" })
	if err != nil {
		t.Fatal(err)
	}
	if st.SeriesPackers["s"] != "bp" {
		t.Fatalf("repack did not choose bp: %+v", st.SeriesPackers)
	}
	verifyFileStats(t, e)
	// The bitpack packer has no partial kernels; pushdown must still agree
	// through the full-decode fallback.
	checkPushdown(t, e, "s", 100, 1400, 250, 1000, 1063)
}

func TestCrashReopenStatsConsistent(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, Options{Dir: dir})
	rng := rand.New(rand.NewSource(23))
	fillChunks(t, e, "s", 3, 600, rng)

	// Crash mid-compact: the merged file is renamed into place but its open
	// fails, as after a process kill between rename and splice.
	boom := errors.New("injected open failure")
	outPath := filepath.Join(dir, "data-000002.tsf")
	testOpenDataFileErr = func(path string) error {
		if path == outPath {
			return boom
		}
		return nil
	}
	defer func() { testOpenDataFileErr = nil }()
	if _, err := e.CompactWith(nil); !errors.Is(err, boom) {
		t.Fatalf("CompactWith error = %v, want injected failure", err)
	}
	testOpenDataFileErr = nil
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatalf("merged file missing after crash: %v", err)
	}

	// Reopen picks the merged file up; its stats must match its data.
	e2 := openTest(t, Options{Dir: dir})
	defer e2.Close()
	verifyFileStats(t, e2)
	checkPushdown(t, e2, "s", 0, 1799, 600, 1000, 1063)
}

// FuzzPushdownEquivalence is the differential fuzz: for arbitrary data
// layouts (disjoint files, overlapping files, memtable leftovers, a tombstone)
// and arbitrary ranges, windows and value predicates, the compressed-domain
// executor must produce exactly the merged scan's answer, and float series
// must fail identically on both paths.
func FuzzPushdownEquivalence(f *testing.F) {
	f.Add(int64(1), int64(0), int64(4000), int64(256), int64(990), int64(1100), int64(500), int64(700))
	f.Add(int64(2), int64(100), int64(900), int64(1), int64(-1<<35), int64(1<<35), int64(0), int64(0))
	f.Add(int64(3), int64(3000), int64(200), int64(1000), int64(1000), int64(1063), int64(2900), int64(3300))
	f.Add(int64(4), int64(-50), int64(5000), int64(4096), int64(1<<29), int64(1<<40), int64(4000), int64(4500))
	f.Add(int64(5), int64(1500), int64(1500), int64(7), int64(5), int64(7), int64(1499), int64(1501))
	f.Fuzz(func(t *testing.T, seed, qlo, qhi, window, vlo, vhi, dlo, dhi int64) {
		const span = int64(4200)
		clamp := func(x int64) int64 {
			x %= span
			if x < 0 {
				x += span
			}
			return x
		}
		if qlo > qhi {
			qlo, qhi = qhi, qlo
		}
		if vlo > vhi {
			vlo, vhi = vhi, vlo
		}
		// Keep the window anchor arithmetic far from int64 overflow.
		if qlo < -span || qlo > 2*span {
			qlo = clamp(qlo)
		}
		if qhi < qlo || qhi > 2*span {
			qhi = qlo + clamp(qhi)
		}
		window = clamp(window)

		rng := rand.New(rand.NewSource(seed))
		e := openTest(t, Options{DisableWAL: true, FlushThreshold: 1 << 30})
		defer e.Close()
		insert := func(lo, n int64) {
			pts := make([]tsfile.Point, 0, n)
			for i := int64(0); i < n; i++ {
				v := int64(1000 + rng.Intn(64))
				switch rng.Intn(40) {
				case 0:
					v += 1 << 30
				case 1:
					v = -v
				}
				pts = append(pts, tsfile.Point{T: lo + i, V: v})
			}
			if err := e.InsertBatch("s", pts); err != nil {
				t.Fatal(err)
			}
		}
		flush := func() {
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		// Two disjoint time-ordered files, one file at a random (usually
		// overlapping) position, one float chunk, a tombstone, and a
		// memtable remainder.
		insert(0, 1400)
		flush()
		insert(1400, 1400)
		flush()
		insert(rng.Int63n(span), 400)
		if err := e.InsertFloatBatch("f", []tsfile.FloatPoint{{T: 10, V: 0.5}, {T: 20, V: -3.25}}); err != nil {
			t.Fatal(err)
		}
		flush()
		if dlo > dhi {
			dlo, dhi = dhi, dlo
		}
		if dhi-dlo < span && dlo >= -span && dhi <= 2*span {
			if err := e.DeleteRange("s", dlo, dhi); err != nil {
				t.Fatal(err)
			}
		}
		insert(rng.Int63n(span), 200)

		checkPushdown(t, e, "s", qlo, qhi, window, vlo, vhi)
		checkPushdown(t, e, "s", qlo, qhi, 0, vlo, vhi)

		// Float series: both executors must agree on failure.
		_, qerr := e.Query("f", qlo, qhi)
		_, werr := e.WindowAgg("f", qlo, qhi, window)
		if (qerr == nil) != (werr == nil) {
			t.Fatalf("float divergence: Query err=%v, WindowAgg err=%v", qerr, werr)
		}
	})
}
