package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"bos/internal/tsfile"
)

// The flush pipeline: snapshot -> encode -> commit.
//
// takeSnapshot swaps every stripe's memtable maps into the stripe's flush
// maps — O(stripes) pointer swaps under the locks — seals and rotates the
// WAL, and releases everything, so inserts and queries proceed while
// encodeSnapshot does the expensive work (packing every series, fanned out
// across encode workers) with no engine lock held. commitSnapshot then takes
// structMu once more, briefly, to splice the new file in. The flush maps
// stay visible to queries for the whole flight (memSnapshot merges them
// under the stripe read lock), and on failure rollbackSnapshot merges them
// back into the memtable, applying any tombstone that arrived mid-flight.
// flushMu serializes the pipeline: one snapshot in flight at a time, and
// threshold-crossing writers skip out on TryLock instead of piling up.

// testFlushHook, when set, is called between pipeline stages ("snapshot",
// "encode", "encoded", "renamed"); a returned error aborts the flush there
// (crash-injection and stall tests).
var testFlushHook func(stage string) error

// testWALSyncHook, when set, runs between the group-commit leader's write
// and its return (slow-disk tests).
var testWALSyncHook func()

func flushHook(stage string) error {
	if testFlushHook != nil {
		return testFlushHook(stage)
	}
	return nil
}

// flushSnap describes one in-flight snapshot.
type flushSnap struct {
	seq       int   // sequence of the data file being written
	count     int64 // points captured across all stripes
	installed bool  // the data file made it into the file list
}

// Flush writes the memtable to a new data file. A no-op when empty. Inserts
// are blocked only for the snapshot swap, not for the encoding.
func (e *Engine) Flush() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	return e.flushSnapshot(false)
}

// maybeFlush is the threshold-crossing writer's entry point: if a flush is
// already in flight, the points will ride the next one — don't queue up.
// The threshold is re-checked under flushMu: the caller's crossing may be
// stale by a whole commit (it was observed before the WAL wait), and a
// cascade of stale crossings would otherwise grind out tiny files.
func (e *Engine) maybeFlush() error {
	if !e.flushMu.TryLock() {
		return nil
	}
	defer e.flushMu.Unlock()
	if e.memPts.Load() < int64(e.opt.flushThreshold()) {
		return nil
	}
	return e.flushSnapshot(false)
}

// flushSnapshot runs one snapshot/encode/commit cycle. Caller holds flushMu.
// final is Close's last flush, which runs with the closed flag already set.
func (e *Engine) flushSnapshot(final bool) error {
	snap, err := e.takeSnapshot(final)
	if err != nil || snap == nil {
		return err
	}
	err = flushHook("snapshot")
	var path string
	if err == nil {
		path, err = e.encodeSnapshot(snap)
	}
	if err == nil {
		err = e.commitSnapshot(snap, path)
	}
	if err != nil && !snap.installed {
		e.rollbackSnapshot(snap)
	}
	return err
}

// takeSnapshot captures the memtable under the locks and rotates the WAL.
// Returns (nil, nil) when there is nothing to flush.
func (e *Engine) takeSnapshot(final bool) (*flushSnap, error) {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	if e.closed.Load() && !final {
		return nil, ErrClosed
	}
	e.lockStripes()
	count := e.memPts.Load()
	if count == 0 {
		e.unlockStripes()
		return nil, nil
	}
	seq := e.nextSeq
	e.nextSeq++
	if e.log != nil {
		e.walMu.Lock()
		for e.walBusy {
			e.walCond.Wait()
		}
		// Seal the forming group onto the old segment, then rotate: the
		// snapshot includes those points, so their records must live (and
		// die) with the segment this data file replaces.
		err := e.sealFormingGroup()
		if err == nil {
			err = e.log.rotate(seq)
		}
		e.walMu.Unlock()
		if err != nil {
			e.nextSeq = seq
			e.unlockStripes()
			return nil, err
		}
	}
	for i := range e.stripes {
		st := &e.stripes[i]
		st.flush, st.mem = st.mem, map[string][]tsfile.Point{}
		st.flushF, st.memF = st.memF, map[string][]tsfile.FloatPoint{}
	}
	e.flushSeq = seq
	e.unlockStripes()
	return &flushSnap{seq: seq, count: count}, nil
}

// encodeSnapshot packs the snapshot into a durable temporary file and
// renames it into place. No engine lock is held: the flush maps are
// immutable while the snapshot is in flight (inserts go to the fresh
// memtable maps; DeleteRange prunes only those), so reading them without
// the stripe locks is safe.
func (e *Engine) encodeSnapshot(snap *flushSnap) (string, error) {
	path := filepath.Join(e.opt.Dir, fmt.Sprintf("data-%06d.tsf", snap.seq))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("engine: %w", err)
	}
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	var names, fnames []string
	for i := range e.stripes {
		for name := range e.stripes[i].flush {
			names = append(names, name)
		}
		for name := range e.stripes[i].flushF {
			fnames = append(fnames, name)
		}
	}
	sort.Strings(names)
	sort.Strings(fnames)
	// Encode in parallel, write in sorted order (ints then floats, exactly
	// the order a serial flush appends), so the file bytes are identical to
	// serial output regardless of worker count.
	chunks := make([]tsfile.EncodedChunk, len(names)+len(fnames))
	errs := make([]error, len(chunks))
	fanOut(e.opt.encodeWorkers(), len(chunks), func(i int) {
		if i < len(names) {
			pts := dedupeSort(e.stripe(names[i]).flush[names[i]])
			chunks[i], errs[i] = tsfile.EncodeSeries(e.opt.File, pts, "")
		} else {
			name := fnames[i-len(names)]
			pts := dedupeSortFloat(e.stripe(name).flushF[name])
			chunks[i], errs[i] = tsfile.EncodeFloatSeries(e.opt.File, pts, "")
		}
	})
	if err := flushHook("encode"); err != nil {
		return fail(err)
	}
	w := tsfile.NewWriter(f, e.opt.File)
	for i, c := range chunks {
		name := ""
		if i < len(names) {
			name = names[i]
		} else {
			name = fnames[i-len(names)]
		}
		if errs[i] != nil {
			return fail(fmt.Errorf("engine: flush %s: %w", name, errs[i]))
		}
		if err := w.AppendEncoded(name, c); err != nil {
			return fail(fmt.Errorf("engine: %w", err))
		}
	}
	if err := w.Close(); err != nil {
		return fail(fmt.Errorf("engine: %w", err))
	}
	if err := flushHook("encoded"); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("engine: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("engine: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("engine: %w", err)
	}
	// The "renamed" stage simulates a crash after the durable rename: the
	// file stays on disk (as it would), and recovery must handle it.
	if err := flushHook("renamed"); err != nil {
		return "", err
	}
	return path, nil
}

// commitSnapshot installs the flushed file — the only phase that takes
// structMu, and it holds the locks just long enough to splice the file in,
// clear the flush maps and retire the sealed WAL segments.
func (e *Engine) commitSnapshot(snap *flushSnap, path string) error {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	df, err := e.openDataFile(path)
	if err != nil {
		return err
	}
	e.files = append(e.files, df)
	e.gen++ // in-flight scan cursors revalidate against the new file list
	e.lockStripes()
	for i := range e.stripes {
		e.stripes[i].flush = nil
		e.stripes[i].flushF = nil
	}
	e.unlockStripes()
	e.memPts.Add(-snap.count)
	snap.installed = true
	if e.log == nil {
		return nil
	}
	// The data file covers every record in the sealed segments; the fresh
	// log restarts with only the still-pending tombstones (they mask file
	// data until compaction).
	e.walMu.Lock()
	var werr error
	for e.walBusy {
		e.walCond.Wait()
	}
	for _, ts := range e.tombs {
		if werr = e.log.appendTombstone(ts); werr != nil {
			break
		}
	}
	e.log.removeSealed()
	e.walMu.Unlock()
	return werr
}

// rollbackSnapshot merges the flush maps back into the memtable after a
// failed encode or commit. Restored points sit in front of (older than) any
// point inserted mid-flight, and tombstones that arrived mid-flight are
// applied to them — DeleteRange could not prune the flush maps while the
// encoder was reading them. The sealed WAL segments stay on disk covering
// the restored points; the next successful flush retires them.
func (e *Engine) rollbackSnapshot(snap *flushSnap) {
	e.structMu.Lock()
	defer e.structMu.Unlock()
	e.lockStripes()
	var dropped int64
	for i := range e.stripes {
		st := &e.stripes[i]
		for name, pts := range st.flush {
			kept := pts[:0]
			for _, p := range pts {
				if e.masked(name, snap.seq, p.T) {
					dropped++
					continue
				}
				kept = append(kept, p)
			}
			if len(kept) > 0 {
				st.mem[name] = append(kept, st.mem[name]...)
			}
		}
		st.flush = nil
		for name, pts := range st.flushF {
			kept := pts[:0]
			for _, p := range pts {
				if e.masked(name, snap.seq, p.T) {
					dropped++
					continue
				}
				kept = append(kept, p)
			}
			if len(kept) > 0 {
				st.memF[name] = append(kept, st.memF[name]...)
			}
		}
		st.flushF = nil
	}
	e.memPts.Add(-dropped)
	e.unlockStripes()
}

// fanOut runs fn(i) for every i in [0, n) across at most workers
// goroutines. Callers write results into per-index slots, so assignment
// order does not matter.
//
//bos:hotpath
func fanOut(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					wg.Done()
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
