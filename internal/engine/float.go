package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"bos/internal/tsfile"
)

// Float series live beside integer series: one engine holds both, each
// series locked to one kind at first insert. Float points flow through the
// same WAL / memtable / flush / merge / tombstone machinery; on disk they
// use tsfile's scaled or raw float chunks.

// ErrSeriesKind reports an int operation on a float series or vice versa.
var ErrSeriesKind = errors.New("engine: series holds the other value kind")

// InsertFloat adds one float point.
func (e *Engine) InsertFloat(series string, t int64, v float64) error {
	return e.InsertFloatBatch(series, []tsfile.FloatPoint{{T: t, V: v}})
}

// InsertFloatBatch adds many float points to one series, with the same
// group-commit durability protocol as InsertBatch.
func (e *Engine) InsertFloatBatch(series string, pts []tsfile.FloatPoint) error {
	if len(pts) == 0 {
		return nil
	}
	st := e.stripe(series)
	st.mu.Lock()
	if e.closed.Load() {
		st.mu.Unlock()
		return ErrClosed
	}
	if len(st.mem[series]) > 0 || len(st.flush[series]) > 0 {
		st.mu.Unlock()
		return fmt.Errorf("%w: %q has integer points", ErrSeriesKind, series)
	}
	var g *walGroup
	var leader bool
	if e.log != nil {
		g, leader = e.walEnqueue(func(dst []byte) []byte {
			return appendFloatPayload(dst, series, pts)
		})
	}
	st.memF[series] = append(st.memF[series], pts...)
	total := e.memPts.Add(int64(len(pts)))
	st.mu.Unlock()
	if g != nil {
		if err := e.walAwait(g, leader); err != nil {
			return err
		}
	}
	if total >= int64(e.opt.flushThreshold()) {
		return e.maybeFlush()
	}
	return nil
}

// QueryFloats returns the float points of a series in [minT, maxT], merging
// files and the memtable with newest-wins semantics and honoring tombstones.
func (e *Engine) QueryFloats(series string, minT, maxT int64) ([]tsfile.FloatPoint, error) {
	e.structMu.RLock()
	defer e.structMu.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	merged := map[int64]float64{}
	var order []int64
	apply := func(pts []tsfile.FloatPoint) {
		for _, p := range pts {
			if p.T < minT || p.T > maxT {
				continue
			}
			if _, seen := merged[p.T]; !seen {
				order = append(order, p.T)
			}
			merged[p.T] = p.V
		}
	}
	for _, df := range e.files {
		pts, err := df.reader.QueryFloats(series, minT, maxT, math.Inf(-1), math.Inf(1))
		if err != nil {
			if errors.Is(err, tsfile.ErrNoSeries) {
				continue
			}
			return nil, err
		}
		if len(e.tombs) > 0 {
			kept := pts[:0]
			for _, p := range pts {
				if !e.masked(series, df.seq, p.T) {
					kept = append(kept, p)
				}
			}
			pts = kept
		}
		apply(pts)
	}
	apply(e.memSnapshotFloat(series))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]tsfile.FloatPoint, 0, len(order))
	for _, t := range order {
		out = append(out, tsfile.FloatPoint{T: t, V: merged[t]})
	}
	return out, nil
}

// memSnapshotFloat returns a deduped, sorted copy of the series' buffered
// float points, taken under the stripe read lock. Like memSnapshot it merges
// an in-flight flush snapshot ahead of the live buffer, applying mid-flight
// tombstones to the snapshot points; callers hold structMu shared.
func (e *Engine) memSnapshotFloat(series string) []tsfile.FloatPoint {
	st := e.stripe(series)
	st.mu.RLock()
	defer st.mu.RUnlock()
	flush := st.flushF[series]
	if len(flush) == 0 {
		return dedupeSortFloat(st.memF[series])
	}
	merged := make([]tsfile.FloatPoint, 0, len(flush)+len(st.memF[series]))
	for _, p := range flush {
		if !e.masked(series, e.flushSeq, p.T) {
			merged = append(merged, p)
		}
	}
	merged = append(merged, st.memF[series]...)
	return dedupeSortFloat(merged)
}

// dedupeSortFloat mirrors dedupeSort for float points.
func dedupeSortFloat(pts []tsfile.FloatPoint) []tsfile.FloatPoint {
	sorted := append([]tsfile.FloatPoint(nil), pts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	out := sorted[:0]
	for _, p := range sorted {
		if len(out) > 0 && out[len(out)-1].T == p.T {
			out[len(out)-1] = p
			continue
		}
		out = append(out, p)
	}
	return out
}

// walFloat is the WAL record kind for float insert batches.
const walFloat byte = 2

// appendFloatPayload builds one float insert record payload (values as raw
// bits) into dst.
//
//bos:hotpath
func appendFloatPayload(dst []byte, series string, pts []tsfile.FloatPoint) []byte {
	dst = append(dst, walFloat)
	dst = binary.AppendUvarint(dst, uint64(len(series)))
	dst = append(dst, series...)
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = binary.AppendVarint(dst, p.T)
		dst = binary.AppendUvarint(dst, math.Float64bits(p.V))
	}
	return dst
}

func decodeFloatPayload(payload []byte) (string, []tsfile.FloatPoint, bool) {
	nameLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < nameLen {
		return "", nil, false
	}
	payload = payload[n:]
	name := string(payload[:nameLen])
	payload = payload[nameLen:]
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return "", nil, false
	}
	payload = payload[n:]
	pts := make([]tsfile.FloatPoint, 0, count)
	for i := uint64(0); i < count; i++ {
		t, k := binary.Varint(payload)
		if k <= 0 {
			return "", nil, false
		}
		payload = payload[k:]
		bits, k := binary.Uvarint(payload)
		if k <= 0 {
			return "", nil, false
		}
		payload = payload[k:]
		pts = append(pts, tsfile.FloatPoint{T: t, V: math.Float64frombits(bits)})
	}
	return name, pts, true
}
