package engine

import (
	"encoding/binary"
	"fmt"
)

// tombstone marks a deleted time range of one series. seq is the file
// sequence number at creation time: only data files with a smaller sequence
// (i.e. written before the delete) are masked, so inserts made after the
// delete survive their flush. Compaction applies tombstones and drops them.
type tombstone struct {
	series     string
	minT, maxT int64
	seq        int
}

func (ts tombstone) covers(seq int, t int64) bool {
	return seq < ts.seq && t >= ts.minT && t <= ts.maxT
}

// DeleteRange removes every stored point of series with minT <= T <= maxT.
// Points inserted after the delete are unaffected. The delete is durable
// (WAL, via the shared commit group) and survives restarts; compaction
// physically reclaims the space. An in-flight flush snapshot is not pruned
// here (the encoder is reading it) — the tombstone's sequence covers the
// file that snapshot becomes, and queries apply it to the snapshot points.
func (e *Engine) DeleteRange(series string, minT, maxT int64) error {
	if minT > maxT {
		return fmt.Errorf("engine: empty delete range [%d, %d]", minT, maxT)
	}
	e.structMu.Lock()
	if e.closed.Load() {
		e.structMu.Unlock()
		return ErrClosed
	}
	ts := tombstone{series: series, minT: minT, maxT: maxT, seq: e.nextSeq}
	st := e.stripe(series)
	st.mu.Lock()
	var g *walGroup
	var leader bool
	if e.log != nil {
		g, leader = e.walEnqueue(func(dst []byte) []byte {
			return appendTombstonePayload(dst, ts)
		})
	}
	// The memtable is newer than any file but older than the delete:
	// drop matching buffered points directly.
	removed := int64(0)
	if pts := st.mem[series]; len(pts) > 0 {
		kept := pts[:0]
		for _, p := range pts {
			if p.T >= minT && p.T <= maxT {
				removed++
				continue
			}
			kept = append(kept, p)
		}
		st.mem[series] = kept
	}
	if pts := st.memF[series]; len(pts) > 0 {
		// Float buffers flush with a sequence at or above the tombstone's,
		// so they must be pruned here or the delete would miss them.
		kept := pts[:0]
		for _, p := range pts {
			if p.T >= minT && p.T <= maxT {
				removed++
				continue
			}
			kept = append(kept, p)
		}
		st.memF[series] = kept
	}
	e.memPts.Add(-removed)
	st.mu.Unlock()
	e.tombs = append(e.tombs, ts)
	e.gen++ // in-flight scan cursors must observe the new tombstone
	// Tombstones mask at scan time, so cached chunks are not stale — but a
	// deleted range's decoded columns are mostly dead weight; evict them.
	e.cache.InvalidateSeries(series)
	e.structMu.Unlock()
	if g != nil {
		return e.walAwait(g, leader)
	}
	return nil
}

// masked reports whether a point from the file with the given sequence is
// hidden by a tombstone.
func (e *Engine) masked(series string, seq int, t int64) bool {
	for _, ts := range e.tombs {
		if ts.series == series && ts.covers(seq, t) {
			return true
		}
	}
	return false
}

// tombstonesFor returns the tombstones of one series (engine mutex held).
func (e *Engine) tombstonesFor(series string) []tombstone {
	var out []tombstone
	for _, ts := range e.tombs {
		if ts.series == series {
			out = append(out, ts)
		}
	}
	return out
}

// WAL record kinds (first payload byte after the record framing).
const (
	walInsert    byte = 0
	walTombstone byte = 1
)

// appendTombstonePayload builds one delete record payload into dst.
func appendTombstonePayload(dst []byte, ts tombstone) []byte {
	dst = append(dst, walTombstone)
	dst = binary.AppendUvarint(dst, uint64(len(ts.series)))
	dst = append(dst, ts.series...)
	dst = binary.AppendVarint(dst, ts.minT)
	dst = binary.AppendVarint(dst, ts.maxT)
	dst = binary.AppendUvarint(dst, uint64(ts.seq))
	return dst
}

// appendTombstone writes a durable delete record directly (the flush-commit
// re-append path, under walMu with walBusy waited out).
func (l *wal) appendTombstone(ts tombstone) error {
	l.scratch = appendTombstonePayload(l.scratch[:0], ts)
	return l.appendPayload(l.scratch)
}

func decodeTombstonePayload(payload []byte) (tombstone, bool) {
	var ts tombstone
	nameLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < nameLen {
		return ts, false
	}
	payload = payload[n:]
	ts.series = string(payload[:nameLen])
	payload = payload[nameLen:]
	var k int
	if ts.minT, k = binary.Varint(payload); k <= 0 {
		return ts, false
	}
	payload = payload[k:]
	if ts.maxT, k = binary.Varint(payload); k <= 0 {
		return ts, false
	}
	payload = payload[k:]
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return ts, false
	}
	ts.seq = int(seq)
	return ts, true
}
