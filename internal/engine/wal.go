package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bos/internal/tsfile"
)

// The write-ahead log makes the memtable durable: every InsertBatch appends
// one length-prefixed, CRC-protected record before the insert is
// acknowledged, and the log is truncated after a successful flush. On Open
// the engine replays any surviving log, so a crash between insert and flush
// loses nothing. A torn final record (the only corruption a crash can
// produce under append semantics) is detected by its CRC and dropped.
//
// Record layout:
//
//	varint total length | crc32 (4 bytes, IEEE, over the payload) | payload
//	payload: kind byte (walInsert | walTombstone), then
//	  insert:    varint series-name length | name | varint count | count x
//	             (zigzag-varint t, zigzag-varint v)
//	  tombstone: varint series-name length | name | zigzag-varint minT |
//	             zigzag-varint maxT | varint seq

const walName = "wal.log"

// wal is the append-only log. Methods are called under the engine mutex.
type wal struct {
	path string
	f    *os.File
	w    *bufio.Writer
}

func openWAL(dir string) (*wal, error) {
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	return &wal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// append writes one durable insert record.
func (l *wal) append(series string, pts []tsfile.Point) error {
	payload := make([]byte, 0, 17+len(series)+len(pts)*6)
	payload = append(payload, walInsert)
	payload = binary.AppendUvarint(payload, uint64(len(series)))
	payload = append(payload, series...)
	payload = binary.AppendUvarint(payload, uint64(len(pts)))
	for _, p := range pts {
		payload = binary.AppendVarint(payload, p.T)
		payload = binary.AppendVarint(payload, p.V)
	}
	return l.appendPayload(payload)
}

// appendPayload frames and writes one CRC-protected record.
func (l *wal) appendPayload(payload []byte) error {
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := l.w.Write(crc[:]); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	return nil
}

// sync forces the log to stable storage.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// reset truncates the log after a successful flush.
func (l *wal) reset() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	l.w.Reset(l.f)
	return nil
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// replayWAL reads every intact record of a log file, in order. A record with
// a bad CRC or a truncated tail ends the replay cleanly (crash semantics).
func replayWAL(dir string, applyInsert func(series string, pts []tsfile.Point), applyTombstone func(tombstone), applyFloat func(series string, pts []tsfile.FloatPoint)) error {
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	for len(data) > 0 {
		plen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < plen+4 {
			return nil // torn tail
		}
		data = data[n:]
		crc := binary.LittleEndian.Uint32(data[:4])
		payload := data[4 : 4+plen]
		data = data[4+plen:]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt record: stop, as after a crash
		}
		if len(payload) == 0 {
			return nil
		}
		kind := payload[0]
		body := payload[1:]
		switch kind {
		case walInsert:
			series, pts, ok := decodeWALPayload(body)
			if !ok {
				return nil
			}
			applyInsert(series, pts)
		case walTombstone:
			ts, ok := decodeTombstonePayload(body)
			if !ok {
				return nil
			}
			applyTombstone(ts)
		case walFloat:
			series, pts, ok := decodeFloatPayload(body)
			if !ok {
				return nil
			}
			applyFloat(series, pts)
		default:
			return nil // unknown record kind: stop as after a crash
		}
	}
	return nil
}

func decodeWALPayload(payload []byte) (string, []tsfile.Point, bool) {
	nameLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < nameLen {
		return "", nil, false
	}
	payload = payload[n:]
	name := string(payload[:nameLen])
	payload = payload[nameLen:]
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return "", nil, false
	}
	payload = payload[n:]
	pts := make([]tsfile.Point, 0, count)
	for i := uint64(0); i < count; i++ {
		t, n := binary.Varint(payload)
		if n <= 0 {
			return "", nil, false
		}
		payload = payload[n:]
		v, n := binary.Varint(payload)
		if n <= 0 {
			return "", nil, false
		}
		payload = payload[n:]
		pts = append(pts, tsfile.Point{T: t, V: v})
	}
	return name, pts, true
}

// sortedWALSeries is a test helper: the series names present in a log.
func sortedWALSeries(dir string) ([]string, error) {
	set := map[string]bool{}
	err := replayWAL(dir,
		func(series string, _ []tsfile.Point) { set[series] = true },
		func(ts tombstone) { set[ts.series] = true },
		func(series string, _ []tsfile.FloatPoint) { set[series] = true })
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}
