package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"bos/internal/tsfile"
)

// The write-ahead log makes the memtable durable: every insert batch appends
// one length-prefixed, CRC-protected record before the insert is
// acknowledged. Records are framed by the writers (group commit, see
// groupcommit.go) and written by one leader per group, so SyncWAL costs one
// fsync per group of concurrent batches rather than one per batch.
//
// The log is segmented at flush time: when a snapshot is taken, the current
// wal.log is sealed by renaming it to wal-NNNNNN.log (NNNNNN = the sequence
// of the data file the snapshot becomes) and a fresh wal.log starts. Sealed
// segments are deleted once the data file is durably installed; if the flush
// fails, they survive and keep covering the restored memtable. On Open the
// engine replays sealed segments in sequence order, then wal.log, so a crash
// at any point of the flush pipeline loses nothing. A torn final record (the
// only corruption a crash can produce under append semantics) is detected by
// its CRC and ends the replay, as after a crash.
//
// Record layout:
//
//	varint total length | crc32 (4 bytes, IEEE, over the payload) | payload
//	payload: kind byte (walInsert | walTombstone | walFloat), then
//	  insert:    varint series-name length | name | varint count | count x
//	             (zigzag-varint t, zigzag-varint v)
//	  tombstone: varint series-name length | name | zigzag-varint minT |
//	             zigzag-varint maxT | varint seq
//	  float:     varint series-name length | name | varint count | count x
//	             (zigzag-varint t, uvarint float bits)

const walName = "wal.log"

// wal is the append-only log. Methods are called under walMu (or by the one
// group-commit leader that holds the walBusy token).
type wal struct {
	dir  string
	path string
	f    *os.File
	w    *bufio.Writer
	// scratch is the reusable payload build buffer: record framing borrows
	// it under walMu instead of allocating a fresh payload slice per batch.
	scratch []byte
	// groupBuf recycles the framed-record buffer of the last committed
	// group into the next one.
	groupBuf []byte
}

func openWAL(dir string) (*wal, error) {
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	return &wal{dir: dir, path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// writeBuf appends pre-framed record bytes to the current segment.
func (l *wal) writeBuf(buf []byte) error {
	if _, err := l.w.Write(buf); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	return nil
}

// appendPayload frames and writes one CRC-protected record directly (the
// non-grouped path used for tombstone re-appends at flush commit).
func (l *wal) appendPayload(payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := l.w.Write(crc[:]); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	return nil
}

// sync forces the log to stable storage.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// rotate seals the current log as the numbered segment paired with the
// snapshot's data file and starts a fresh wal.log. On rename failure the old
// log is reopened so the engine stays usable and the flush aborts.
func (l *wal) rotate(seq int) error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	reopen := func() error {
		f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("engine: wal: %w", err)
		}
		l.f = f
		l.w.Reset(f)
		return nil
	}
	sealed := filepath.Join(l.dir, fmt.Sprintf("wal-%06d.log", seq))
	if err := os.Rename(l.path, sealed); err != nil {
		if rerr := reopen(); rerr != nil {
			return rerr
		}
		return fmt.Errorf("engine: wal: %w", err)
	}
	return reopen()
}

// removeSealed deletes every sealed segment; called once the data file that
// replaces their records is durably installed.
func (l *wal) removeSealed() {
	segs, err := filepath.Glob(filepath.Join(l.dir, "wal-*.log"))
	if err != nil {
		return
	}
	for _, s := range segs {
		os.Remove(s)
	}
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// frameRecord appends one framed record (varint length, CRC, payload) to
// dst — the group-commit framing kernel, run under walMu per batch.
//
//bos:hotpath
func frameRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// appendInsertPayload builds one insert record payload into dst.
//
//bos:hotpath
func appendInsertPayload(dst []byte, series string, pts []tsfile.Point) []byte {
	dst = append(dst, walInsert)
	dst = binary.AppendUvarint(dst, uint64(len(series)))
	dst = append(dst, series...)
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = binary.AppendVarint(dst, p.T)
		dst = binary.AppendVarint(dst, p.V)
	}
	return dst
}

// replayWAL reads every intact record of the sealed segments (in sequence
// order) and then the active log. A record with a bad CRC or a truncated
// tail ends the whole replay cleanly (crash semantics): nothing after the
// tear can be trusted to be older than it.
func replayWAL(dir string, applyInsert func(series string, pts []tsfile.Point), applyTombstone func(tombstone), applyFloat func(series string, pts []tsfile.FloatPoint)) error {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	sort.Strings(segs) // zero-padded names sort in sequence order
	for _, path := range segs {
		clean, err := replayWALFile(path, applyInsert, applyTombstone, applyFloat)
		if err != nil {
			return err
		}
		if !clean {
			return nil
		}
	}
	_, err = replayWALFile(filepath.Join(dir, walName), applyInsert, applyTombstone, applyFloat)
	return err
}

// replayWALFile replays one log file. clean reports whether the file ended
// at a record boundary (false = torn tail or corruption stopped the replay).
func replayWALFile(path string, applyInsert func(series string, pts []tsfile.Point), applyTombstone func(tombstone), applyFloat func(series string, pts []tsfile.FloatPoint)) (clean bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("engine: wal: %w", err)
	}
	for len(data) > 0 {
		plen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < plen+4 {
			return false, nil // torn tail
		}
		data = data[n:]
		crc := binary.LittleEndian.Uint32(data[:4])
		payload := data[4 : 4+plen]
		data = data[4+plen:]
		if crc32.ChecksumIEEE(payload) != crc {
			return false, nil // corrupt record: stop, as after a crash
		}
		if len(payload) == 0 {
			return false, nil
		}
		kind := payload[0]
		body := payload[1:]
		switch kind {
		case walInsert:
			series, pts, ok := decodeWALPayload(body)
			if !ok {
				return false, nil
			}
			applyInsert(series, pts)
		case walTombstone:
			ts, ok := decodeTombstonePayload(body)
			if !ok {
				return false, nil
			}
			applyTombstone(ts)
		case walFloat:
			series, pts, ok := decodeFloatPayload(body)
			if !ok {
				return false, nil
			}
			applyFloat(series, pts)
		default:
			return false, nil // unknown record kind: stop as after a crash
		}
	}
	return true, nil
}

func decodeWALPayload(payload []byte) (string, []tsfile.Point, bool) {
	nameLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < nameLen {
		return "", nil, false
	}
	payload = payload[n:]
	name := string(payload[:nameLen])
	payload = payload[nameLen:]
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return "", nil, false
	}
	payload = payload[n:]
	pts := make([]tsfile.Point, 0, count)
	for i := uint64(0); i < count; i++ {
		t, n := binary.Varint(payload)
		if n <= 0 {
			return "", nil, false
		}
		payload = payload[n:]
		v, n := binary.Varint(payload)
		if n <= 0 {
			return "", nil, false
		}
		payload = payload[n:]
		pts = append(pts, tsfile.Point{T: t, V: v})
	}
	return name, pts, true
}

// sortedWALSeries is a test helper: the series names present in the log
// (sealed segments included).
func sortedWALSeries(dir string) ([]string, error) {
	set := map[string]bool{}
	err := replayWAL(dir,
		func(series string, _ []tsfile.Point) { set[series] = true },
		func(ts tombstone) { set[ts.series] = true },
		func(series string, _ []tsfile.FloatPoint) { set[series] = true })
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}
