package bitio

import (
	"errors"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of stream")

// ErrOverflow is returned when a read would exceed 64 bits: a malformed or
// oversized varint, or a requested bit width greater than 64.
var ErrOverflow = errors.New("bitio: value overflows 64 bits")

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	data []byte
	pos  int // absolute bit position
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// ReadBit consumes and returns one bit.
//
//bos:hotpath
func (r *Reader) ReadBit() (uint64, error) {
	if r.pos >= len(r.data)*8 {
		return 0, ErrUnexpectedEOF
	}
	b := r.data[r.pos>>3]
	bit := uint64(b>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits consumes `width` bits (MSB-first) and returns them right-aligned.
// width must be in [0, 64]; width 0 returns 0 without consuming anything.
//
//bos:hotpath
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		return 0, ErrOverflow
	}
	if r.pos+int(width) > len(r.data)*8 {
		return 0, ErrUnexpectedEOF
	}
	var v uint64
	pos := r.pos
	for width > 0 {
		rem := 8 - uint(pos&7) // bits remaining in current byte
		take := rem
		if take > width {
			take = width
		}
		b := uint64(r.data[pos>>3])
		b >>= rem - take
		b &= (1 << take) - 1
		v = v<<take | b
		pos += int(take)
		width -= take
	}
	r.pos = pos
	return v, nil
}

// ReadUvarint consumes a base-128 varint written by Writer.WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		g, err := r.ReadBits(8)
		if err != nil {
			return 0, err
		}
		if shift == 63 && g > 1 {
			return 0, ErrOverflow
		}
		v |= (g & 0x7f) << shift
		if g < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, ErrOverflow
		}
	}
}

// ReadVarint consumes a zigzag varint written by Writer.WriteVarint.
func (r *Reader) ReadVarint() (int64, error) {
	u, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	return UnZigZag(u), nil
}

// AlignByte skips ahead to the next byte boundary.
func (r *Reader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitPos reports the current absolute bit position.
func (r *Reader) BitPos() int { return r.pos }

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Rest returns the unread suffix of the underlying buffer, rounding the
// current position up to a byte boundary first. It is used to hand the tail
// of a multi-section stream to another decoder.
func (r *Reader) Rest() []byte {
	r.AlignByte()
	return r.data[r.pos>>3:]
}

// Data exposes the underlying buffer and the current bit position for
// callers that decode a bounds-checked region with their own inner loop
// (e.g. the BOS bitmap). Pair with SetBitPos to resume normal reads.
func (r *Reader) Data() ([]byte, int) { return r.data, r.pos }

// SetBitPos moves the cursor to an absolute bit position previously derived
// from Data. Positions beyond the buffer are clamped to its end.
func (r *Reader) SetBitPos(pos int) {
	if pos < 0 {
		pos = 0
	}
	if max := len(r.data) * 8; pos > max {
		pos = max
	}
	r.pos = pos
}
