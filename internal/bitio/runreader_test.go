package bitio

import (
	"math/rand"
	"testing"
)

// refZeroRun is the bit-at-a-time reference for RunReader.ZeroRun: count
// zeros up to lim, stopping before a 1 bit or at the stream end.
func refZeroRun(r *Reader, lim int) int {
	n := 0
	for n < lim {
		pos := r.BitPos()
		b, err := r.ReadBit()
		if err != nil {
			return n
		}
		if b != 0 {
			r.SetBitPos(pos)
			return n
		}
		n++
	}
	return n
}

// TestRunReaderDifferential drives a RunReader and a plain Reader over the
// same stream with random interleavings of ReadBits, ReadRunInt64 and
// ZeroRun, checking values and — at every resume point — exact bit
// positions. This is the resumability contract: a RunReader can be detached
// and re-attached anywhere, and its reads are indistinguishable from the
// scalar Reader's.
func TestRunReaderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 400; iter++ {
		data := make([]byte, 1+rng.Intn(400))
		rng.Read(data)
		if iter%3 == 0 {
			// Sparse streams give ZeroRun long jumps.
			for i := range data {
				if rng.Intn(4) > 0 {
					data[i] = 0
				}
			}
		}
		ref := NewReader(data)
		run := NewReader(data)
		if lead := uint(rng.Intn(8)); lead > 0 {
			if _, err := ref.ReadBits(lead); err != nil {
				continue
			}
			if _, err := run.ReadBits(lead); err != nil {
				t.Fatal(err)
			}
		}
		rr := run.Run()
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0: // single value read
				width := uint(rng.Intn(65))
				want, wantErr := ref.ReadBits(width)
				got, gotErr := rr.ReadBits(width)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("iter %d op %d: ReadBits(%d) err %v vs %v", iter, op, width, gotErr, wantErr)
				}
				if wantErr != nil {
					op = 60 // positions may differ after EOF; stop comparing
					break
				}
				if got != want {
					t.Fatalf("iter %d op %d: ReadBits(%d) = %#x want %#x", iter, op, width, got, want)
				}
			case 1: // short-to-long run read
				n := rng.Intn(20)
				width := uint(rng.Intn(65))
				base := rng.Uint64()
				want := make([]int64, n)
				got := make([]int64, n)
				wantErr := ref.ReadBulkInt64(want, width, base)
				gotErr := rr.ReadRunInt64(got, width, base)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("iter %d op %d: ReadRunInt64(n=%d w=%d) err %v vs %v",
						iter, op, n, width, gotErr, wantErr)
				}
				if wantErr != nil {
					op = 60
					break
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("iter %d op %d: run value %d: got %d want %d (n=%d w=%d)",
							iter, op, i, got[i], want[i], n, width)
					}
				}
			case 2: // zero-run jump
				lim := rng.Intn(200)
				want := refZeroRun(ref, lim)
				got := rr.ZeroRun(lim)
				if got != want {
					t.Fatalf("iter %d op %d: ZeroRun(%d) = %d want %d", iter, op, lim, got, want)
				}
			case 3: // resume point: detach, compare positions, re-attach
				rr.Detach()
				if run.BitPos() != ref.BitPos() {
					t.Fatalf("iter %d op %d: position %d vs %d", iter, op, run.BitPos(), ref.BitPos())
				}
				rr = run.Run()
			}
			if op >= 60 {
				break
			}
		}
	}
}

// TestRunReaderGatherMatchesScalar pins every gather kernel against the
// scalar reader for every width and count it handles, at every lead offset.
func TestRunReaderGatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for width := uint(1); width <= 64; width++ {
		maxN := int(gatherMax[width])
		for n := 1; n <= 7; n++ {
			for lead := uint(0); lead < 8; lead++ {
				vals := make([]uint64, n)
				mask := ^uint64(0)
				if width < 64 {
					mask = 1<<width - 1
				}
				for i := range vals {
					vals[i] = rng.Uint64() & mask
				}
				w := NewWriter(64)
				w.WriteBits(1, lead)
				w.WriteBulk(vals, width)
				data := w.Bytes()

				r := NewReader(data)
				if _, err := r.ReadBits(lead); err != nil {
					t.Fatal(err)
				}
				rr := r.Run()
				const base = uint64(9000)
				got := make([]int64, n)
				if err := rr.ReadRunInt64(got, width, base); err != nil {
					t.Fatalf("w%d n%d lead%d: %v", width, n, lead, err)
				}
				for i := range vals {
					if want := int64(base + vals[i]); got[i] != want {
						t.Fatalf("w%d n%d lead%d (maxN %d): value %d: got %d want %d",
							width, n, lead, maxN, i, got[i], want)
					}
				}
				rr.Detach()
				if want := int(lead) + n*int(width); r.BitPos() != want {
					t.Fatalf("w%d n%d lead%d: BitPos %d want %d", width, n, lead, r.BitPos(), want)
				}
			}
		}
	}
}

// TestRunReaderShortStream pins EOF behavior: a run that does not fit fails
// with ErrUnexpectedEOF, like ReadBulkInt64.
func TestRunReaderShortStream(t *testing.T) {
	r := NewReader([]byte{0xff}) // 8 bits
	rr := r.Run()
	out := make([]int64, 3)
	if err := rr.ReadRunInt64(out, 5, 0); err != ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	r = NewReader([]byte{0xff})
	rr = r.Run()
	if _, err := rr.ReadBits(9); err != ErrUnexpectedEOF {
		t.Fatalf("ReadBits(9) err = %v, want ErrUnexpectedEOF", err)
	}
	// Zero width needs no stream at all.
	r = NewReader(nil)
	rr = r.Run()
	if err := rr.ReadRunInt64(out, 0, 7); err != nil || out[0] != 7 {
		t.Fatalf("zero width: %v %v", out, err)
	}
}

func BenchmarkRunReaderShortRuns(b *testing.B) {
	// 1% outlier shape: runs of ~99 8-bit values split by 24-bit outliers.
	w := NewWriter(1 << 14)
	w.WriteBits(1, 3) // misalign like a bitmap would
	const runs = 128
	for i := 0; i < runs; i++ {
		for j := 0; j < 6; j++ {
			w.WriteBits(uint64(i+j)&0xff, 8)
		}
		w.WriteBits(uint64(i)<<10, 24)
	}
	data := w.Bytes()
	out := make([]int64, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		if _, err := r.ReadBits(3); err != nil {
			b.Fatal(err)
		}
		rr := r.Run()
		for j := 0; j < runs; j++ {
			if err := rr.ReadRunInt64(out, 8, 100); err != nil {
				b.Fatal(err)
			}
			if _, err := rr.ReadBits(24); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunReaderShortRunsScalar is the same access pattern through the
// plain Reader front doors (the pre-RunReader decode shape).
func BenchmarkRunReaderShortRunsScalar(b *testing.B) {
	w := NewWriter(1 << 14)
	w.WriteBits(1, 3)
	const runs = 128
	for i := 0; i < runs; i++ {
		for j := 0; j < 6; j++ {
			w.WriteBits(uint64(i+j)&0xff, 8)
		}
		w.WriteBits(uint64(i)<<10, 24)
	}
	data := w.Bytes()
	out := make([]int64, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		if _, err := r.ReadBits(3); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < runs; j++ {
			if err := r.ReadBulkInt64(out, 8, 100); err != nil {
				b.Fatal(err)
			}
			if _, err := r.ReadBits(24); err != nil {
				b.Fatal(err)
			}
		}
	}
}
