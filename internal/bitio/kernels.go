package bitio

// The width-specialized bulk kernels in kernels_*_gen.go are produced by the
// generator in internal/bitio/gen. Regenerate with:
//
//go:generate go run bos/internal/bitio/gen
//
// Each bit width W in 1..64 gets branch-free pack/unpack functions working a
// whole block at a time — 64 values (exactly W big-endian words) or an
// 8-value tail (ceil(W/8) words) — with a fixed shift/mask schedule and a
// single bounds check per block. The ReadBulk/ReadBulkInt64/WriteBulk front
// doors in bulk.go dispatch into them through the generated jump-table
// switches (kernelUnpack64 and friends) whenever the stream position is
// byte-aligned and at least 8 values remain, and fall back to the scalar
// paths otherwise. CI regenerates the kernels and fails on any diff, so the
// checked-in files can never drift from the generator.

// kernelBlock and kernelTail are the two generated block sizes.
const (
	kernelBlock = 64
	kernelTail  = 8
)

// tailBytes returns the number of bytes an 8-value tail kernel loads or
// stores for the given width: ceil(W/8) whole 8-byte words. The logical
// payload is exactly W bytes (8 values * W bits); the excess is load/store
// slack the front doors must guarantee.
func tailBytes(width uint) int { return (int(width) + 7) &^ 7 }
