package bitio

import (
	"encoding/binary"
	"math/bits"
)

// RunReader is a resumable decoder for streams that interleave short
// fixed-width runs with single values — the shape decodeBOS faces, where the
// average center run is ~1/outlier-rate values and sits between 1-2 bit
// bitmap marks and full-width outliers. A plain Reader pays per-call entry
// cost (bounds math, alignment dispatch) for every run; a RunReader instead
// caches the current 64-bit stream window across calls, so consecutive short
// reads share one refill schedule: roughly one 8-byte load per 56 stream
// bits regardless of how the bits split into runs.
//
// The window invariant: cur holds stream bits left-aligned, the top `have`
// of which are accounted for; `next` is the byte index of the first byte not
// yet loaded into the accounted region. Bits of cur below `have` are either
// zero or a redundant copy of the bytes at `next` (refill ORs whole words,
// so the overlap always re-ORs identical bits). Consumption only ever
// shifts, so the invariant is maintained without masking.
//
// Obtain one with Reader.Run, use it for a burst of short reads, and call
// Detach to write the position back before using the Reader again.
type RunReader struct {
	r    *Reader
	cur  uint64 // stream bits, left-aligned
	have uint   // accounted bits at the top of cur
	next int    // byte index of the next refill load
}

// Run returns a RunReader positioned at r's current bit position. The
// RunReader reads ahead whole bytes; r's own position is stale until Detach.
//
//bos:hotpath
func (r *Reader) Run() RunReader {
	rr := RunReader{r: r}
	rr.resync()
	return rr
}

// resync reinitializes the window from the Reader's current position. It
// deliberately rebuilds in place rather than constructing a fresh RunReader:
// assigning a struct that contains rr.r through the pointer receiver reads to
// escape analysis as a heap flow and would force the Reader (and every decode
// call site using one) onto the heap.
//
//bos:hotpath
func (rr *RunReader) resync() {
	rr.cur, rr.have, rr.next = 0, 0, rr.r.pos>>3
	if o := uint(rr.r.pos) & 7; o != 0 {
		rr.refill()
		rr.cur <<= o
		rr.have -= o // refill loaded >= 8 bits: pos&7 != 0 implies a byte exists
	}
}

// Detach writes the RunReader's exact bit position back to the underlying
// Reader. The RunReader must not be used afterwards without re-Run.
func (rr *RunReader) Detach() {
	rr.r.SetBitPos(rr.BitPos())
}

// BitPos reports the absolute bit position of the next unread bit.
func (rr *RunReader) BitPos() int {
	return rr.next*8 - int(rr.have)
}

// refill tops the window up to at least 57 accounted bits (or everything the
// stream has left) and reports whether any bits are accounted. One 8-byte
// load covers the common case; the last 7 stream bytes load one at a time.
//
//bos:hotpath
func (rr *RunReader) refill() bool {
	data := rr.r.data
	if rr.have <= 56 && rr.next+8 <= len(data) {
		w := binary.BigEndian.Uint64(data[rr.next:])
		rr.cur |= w >> rr.have
		take := (64 - rr.have) >> 3
		rr.have += take * 8
		rr.next += int(take)
		return true
	}
	for rr.have <= 56 && rr.next < len(data) {
		rr.cur |= uint64(data[rr.next]) << (56 - rr.have)
		rr.have += 8
		rr.next++
	}
	return rr.have > 0
}

// consume discards the top n accounted bits (n <= have).
//
//bos:hotpath
func (rr *RunReader) consume(n uint) {
	rr.cur <<= n
	rr.have -= n
}

// ReadBits consumes `width` bits (MSB-first) and returns them
// right-aligned, exactly like Reader.ReadBits but served from the cached
// window. width must be in [0, 64].
//
//bos:hotpath
func (rr *RunReader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		return 0, ErrOverflow
	}
	if rr.have < width {
		rr.refill()
		if rr.have < width {
			return rr.readBitsSlow(width)
		}
	}
	if width == 0 {
		return 0, nil
	}
	v := rr.cur >> (64 - width)
	rr.consume(width)
	return v, nil
}

// readBitsSlow assembles a value that spans two windows (width 57..64 at an
// unlucky phase) or fails with ErrUnexpectedEOF when the stream is short.
func (rr *RunReader) readBitsSlow(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	take := rr.have
	v := uint64(0)
	if take > 0 {
		v = rr.cur >> (64 - take)
		rr.consume(take)
	}
	rest := width - take
	if !rr.refill() || rr.have < rest {
		// Restore nothing: decode errors abandon the block anyway.
		return 0, ErrUnexpectedEOF
	}
	v = v<<rest | rr.cur>>(64-rest)
	rr.consume(rest)
	return v, nil
}

// ZeroRun consumes consecutive 0 bits — up to lim of them — and reports how
// many it consumed. It stops early, without consuming the terminator, when a
// 1 bit follows the zeros, or when the stream ends. bits.LeadingZeros64 on
// the MSB-first window is this stream order's TrailingZeros64: one
// instruction finds the next outlier mark however far away it is, and an
// all-zero window (OnesCount64 == 0) skips 64 center values per load.
//
//bos:hotpath
func (rr *RunReader) ZeroRun(lim int) int {
	total := 0
	for total < lim {
		if rr.have == 0 && !rr.refill() {
			return total // stream exhausted mid-run
		}
		z := uint(bits.LeadingZeros64(rr.cur))
		if z < rr.have {
			// A 1 bit inside the accounted window terminates the run.
			if total+int(z) >= lim {
				rr.consume(uint(lim - total))
				return lim
			}
			rr.consume(z)
			return total + int(z)
		}
		// The whole accounted window is zeros.
		z = rr.have
		if total+int(z) >= lim {
			rr.consume(uint(lim - total))
			return lim
		}
		rr.consume(z)
		total += int(z)
	}
	return total
}

// ReadRunInt64 decodes len(out) consecutive width-bit offsets and stores
// base+offset, like Reader.ReadBulkInt64 but tuned for short runs: counts
// below the 8-value kernel threshold decode straight from the cached window
// through the generated gather kernels (constant shift schedules, no refill
// between values of a run), while longer runs sync the position back to the
// Reader and delegate to the width-specialized jump tables, then resume the
// window. A stream too short for the run returns ErrUnexpectedEOF; out may
// hold a decoded prefix (callers abandon the output on error).
//
//bos:hotpath
func (rr *RunReader) ReadRunInt64(out []int64, width uint, base uint64) error {
	if width > 64 {
		return ErrOverflow
	}
	if width == 0 {
		for i := range out {
			out[i] = int64(base)
		}
		return nil
	}
	if len(out) >= kernelTail {
		// Long run: the bulk jump tables (and their staging) win; share the
		// position rather than the window.
		rr.Detach()
		if err := rr.r.ReadBulkInt64(out, width, base); err != nil {
			return err
		}
		rr.resync()
		return nil
	}
	for len(out) > 0 {
		n := len(out)
		if m := int(gatherMax[width]); m >= 2 {
			if n > m {
				n = m
			}
			need := uint(n) * width
			if rr.have < need {
				rr.refill()
				for rr.have < need && n > 1 {
					// Short window near the stream end: decode what fits.
					n--
					need -= width
				}
			}
			if n >= 2 {
				kernelGatherInt64(width, rr.cur, out[:n], base)
				rr.consume(need)
				out = out[n:]
				continue
			}
		}
		v, err := rr.ReadBits(width)
		if err != nil {
			return err
		}
		out[0] = int64(base + v)
		out = out[1:]
	}
	return nil
}
