package bitio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	cases := []struct {
		v     uint64
		width uint
	}{
		{0, 0}, {0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{math.MaxUint64, 64}, {1, 64}, {0x8000000000000000, 64},
		{0xdeadbeef, 32}, {7, 5},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := c.v
		if c.width < 64 {
			want &= (1 << c.width) - 1
		}
		if got != want {
			t.Errorf("case %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xff, 4) // only low 4 bits should survive
	w.WriteBits(0, 4)
	b := w.Bytes()
	if b[0] != 0xf0 {
		t.Errorf("got %#x want 0xf0", b[0])
	}
}

func TestSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint64{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(8)
	if w.BitLen() != 0 {
		t.Fatalf("fresh writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(3, 3)
	if w.BitLen() != 3 {
		t.Errorf("BitLen = %d want 3", w.BitLen())
	}
	w.WriteBits(1, 13)
	if w.BitLen() != 16 {
		t.Errorf("BitLen = %d want 16", w.BitLen())
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1 << 35, math.MaxUint64}
	w := NewWriter(64)
	w.WriteBit(1) // force unaligned start
	for _, v := range vals {
		w.WriteUvarint(v)
	}
	r := NewReader(w.Bytes())
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	for _, want := range vals {
		got, err := r.ReadUvarint()
		if err != nil {
			t.Fatalf("%d: %v", want, err)
		}
		if got != want {
			t.Errorf("got %d want %d", got, want)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 12345, -98765}
	w := NewWriter(64)
	for _, v := range vals {
		w.WriteVarint(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadVarint()
		if err != nil {
			t.Fatalf("%d: %v", want, err)
		}
		if got != want {
			t.Errorf("got %d want %d", got, want)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZagOrdering(t *testing.T) {
	// Small absolute values must map to small codes.
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 || ZigZag(-2) != 3 {
		t.Errorf("zigzag mapping broken: %d %d %d %d",
			ZigZag(0), ZigZag(-1), ZigZag(1), ZigZag(-2))
	}
}

func TestWidthOf(t *testing.T) {
	cases := map[uint64]uint{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, want := range cases {
		if got := WidthOf(v); got != want {
			t.Errorf("WidthOf(%d) = %d want %d", v, got, want)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(9); err != ErrUnexpectedEOF {
		t.Errorf("ReadBits(9) err = %v", err)
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Errorf("ReadBits(8) err = %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Errorf("ReadBit at end err = %v", err)
	}
	if _, err := r.ReadUvarint(); err != ErrUnexpectedEOF {
		t.Errorf("ReadUvarint at end err = %v", err)
	}
}

func TestInvalidWidth(t *testing.T) {
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadBits(65); err == nil {
		t.Error("ReadBits(65) should fail")
	}
}

func TestUvarintOverflow(t *testing.T) {
	// Eleven continuation bytes cannot fit in 64 bits.
	data := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := NewReader(data).ReadUvarint(); err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(1, 3)
	w.AlignByte()
	w.WriteBits(0xab, 8)
	b := w.Bytes()
	if len(b) != 2 || b[1] != 0xab {
		t.Fatalf("bytes = %x", b)
	}
	r := NewReader(b)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.AlignByte()
	got, err := r.ReadBits(8)
	if err != nil || got != 0xab {
		t.Errorf("got %#x err %v", got, err)
	}
}

func TestRest(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(5, 3)
	w.AlignByte()
	w.WriteBits(0x1234, 16)
	b := w.Bytes()
	r := NewReader(b)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	rest := r.Rest()
	if len(rest) != 2 || rest[0] != 0x12 || rest[1] != 0x34 {
		t.Errorf("rest = %x", rest)
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(200) + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewWriter(n)
		for i := range vals {
			widths[i] = uint(rng.Intn(65))
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("iter %d value %d: %v", iter, i, err)
			}
			if got != vals[i] {
				t.Fatalf("iter %d value %d: got %d want %d (width %d)", iter, i, got, vals[i], widths[i])
			}
		}
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 1024; j++ {
			w.WriteBits(uint64(j), 11)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for j := 0; j < 1024; j++ {
		w.WriteBits(uint64(j), 11)
	}
	data := w.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		for j := 0; j < 1024; j++ {
			if _, err := r.ReadBits(11); err != nil {
				b.Fatal(err)
			}
		}
	}
}
