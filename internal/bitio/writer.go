// Package bitio provides bit-granular writers and readers used by every
// encoder in this repository, together with the zigzag and varint helpers
// shared by the block formats.
//
// Bits are packed MSB-first within each byte, matching the storage layout in
// Figure 7 of the BOS paper: the first bit written occupies the highest bit
// of the first byte. Varints use the standard little-endian base-128 layout
// of encoding/binary but may start at any bit offset, so headers and payloads
// can interleave freely inside one stream.
package bitio

// Writer accumulates a bit stream in memory. The zero value is ready to use.
type Writer struct {
	buf   []byte
	cur   uint64 // pending bits, left-aligned in the low `nbits` positions
	nbits uint   // number of pending bits in cur (always < 8)
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nbits = 0
}

// WriteBit appends a single bit (the low bit of b).
//
//bos:hotpath
func (w *Writer) WriteBit(b uint64) {
	w.cur = w.cur<<1 | (b & 1)
	w.nbits++
	if w.nbits == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nbits = 0
	}
}

// WriteBits appends the low `width` bits of v, most significant bit first.
// width must be in [0, 64]; width 0 writes nothing.
//
//bos:hotpath
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	// Fill the pending byte first.
	for width > 0 && w.nbits != 0 {
		width--
		w.WriteBit(v >> width)
	}
	// Then emit whole bytes.
	for width >= 8 {
		width -= 8
		w.buf = append(w.buf, byte(v>>width))
	}
	// Remainder stays pending.
	for width > 0 {
		width--
		w.WriteBit(v >> width)
	}
}

// WriteUvarint appends v in base-128 varint form (bit-aligned, 8 bits per
// group, so it works mid-stream).
func (w *Writer) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(v&0x7f|0x80, 8)
		v >>= 7
	}
	w.WriteBits(v, 8)
}

// WriteVarint appends v using zigzag-then-uvarint encoding.
func (w *Writer) WriteVarint(v int64) {
	w.WriteUvarint(ZigZag(v))
}

// AlignByte pads the stream with zero bits up to the next byte boundary.
func (w *Writer) AlignByte() {
	for w.nbits != 0 {
		w.WriteBit(0)
	}
}

// BitLen reports the number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbits)
}

// Bytes flushes any pending bits (zero-padding the final byte) and returns
// the accumulated buffer. The Writer may continue to be used afterwards, but
// the padding bits become part of the stream.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// ZigZag maps signed integers to unsigned ones with small absolute values
// mapping to small results: 0,-1,1,-2,... -> 0,1,2,3,...
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// WidthOf returns the number of bits needed to represent v, i.e.
// ceil(log2(v+1)); WidthOf(0) == 0.
func WidthOf(v uint64) uint {
	var n uint
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}
