package bitio

import (
	"math/rand"
	"testing"
)

func TestBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		width := uint(rng.Intn(65))
		n := rng.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
			if width < 64 {
				vals[i] &= 1<<width - 1
			}
		}
		lead := uint(rng.Intn(8)) // random misalignment

		scalar := NewWriter(64)
		scalar.WriteBits(1, lead)
		for _, v := range vals {
			scalar.WriteBits(v, width)
		}
		bulk := NewWriter(64)
		bulk.WriteBits(1, lead)
		bulk.WriteBulk(vals, width)

		sb, bb := scalar.Bytes(), bulk.Bytes()
		if len(sb) != len(bb) {
			t.Fatalf("iter %d: lengths %d vs %d", iter, len(sb), len(bb))
		}
		for i := range sb {
			if sb[i] != bb[i] {
				t.Fatalf("iter %d (width %d, lead %d): byte %d: %02x vs %02x",
					iter, width, lead, i, sb[i], bb[i])
			}
		}

		// Bulk read must recover the values from either stream.
		r := NewReader(bb)
		if _, err := r.ReadBits(lead); err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, n)
		if err := r.ReadBulk(got, width); err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d want %d", iter, i, got[i], vals[i])
			}
		}
	}
}

// TestWriteBulkGolden pins the exact stream bytes for a known input so a
// regression in the word-store path cannot hide behind a matching scalar bug.
func TestWriteBulkGolden(t *testing.T) {
	w := NewWriter(16)
	w.WriteBulk([]uint64{0b101, 0b010, 0b111, 0b001}, 3)
	// 101 010 111 001 -> 10101011 1001'0000 (final byte zero-padded)
	got := w.Bytes()
	want := []byte{0xab, 0x90}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %x want %x", got, want)
	}

	w = NewWriter(16)
	w.WriteBits(1, 1) // misaligned start
	w.WriteBulk([]uint64{0x3ff, 0x001}, 10)
	// 1 1111111111 0000000001 -> 11111111 11100000 00001'000
	got = w.Bytes()
	want = []byte{0xff, 0xe0, 0x08}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %x want %x", got, want)
		}
	}
}

// TestWriteBulkMidStream interleaves scalar and bulk writes at every
// alignment and verifies the stream stays byte-identical to all-scalar.
func TestWriteBulkMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		scalar, bulk := NewWriter(64), NewWriter(64)
		for seg := 0; seg < 4; seg++ {
			width := uint(1 + rng.Intn(56))
			n := rng.Intn(40)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & (1<<width - 1)
			}
			for _, v := range vals {
				scalar.WriteBits(v, width)
			}
			bulk.WriteBulk(vals, width)
			// A few stray bits between segments shift the alignment.
			stray := uint(rng.Intn(8))
			scalar.WriteBits(0b1011, stray)
			bulk.WriteBits(0b1011, stray)
		}
		sb, bb := scalar.Bytes(), bulk.Bytes()
		if len(sb) != len(bb) {
			t.Fatalf("iter %d: lengths %d vs %d", iter, len(sb), len(bb))
		}
		for i := range sb {
			if sb[i] != bb[i] {
				t.Fatalf("iter %d: byte %d: %02x vs %02x", iter, i, sb[i], bb[i])
			}
		}
	}
}

func TestBulkReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff, 0xff})
	out := make([]uint64, 3)
	if err := r.ReadBulk(out, 7); err != ErrUnexpectedEOF {
		t.Errorf("err = %v", err)
	}
	// Position must be untouched after the failed bulk read.
	if got, err := r.ReadBits(16); err != nil || got != 0xffff {
		t.Errorf("reader state disturbed: %x %v", got, err)
	}
}

func TestBulkZeroWidth(t *testing.T) {
	r := NewReader(nil)
	out := []uint64{7, 7}
	if err := r.ReadBulk(out, 0); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("out = %v", out)
	}
}

func BenchmarkWriteBulk(b *testing.B) {
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(i) & 0x7ff
	}
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteBulk(vals, 11)
	}
}

func BenchmarkReadBulk(b *testing.B) {
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = uint64(i) & 0x7ff
	}
	w := NewWriter(1 << 16)
	w.WriteBulk(vals, 11)
	data := w.Bytes()
	out := make([]uint64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		if err := r.ReadBulk(out, 11); err != nil {
			b.Fatal(err)
		}
	}
}
